"""Budgets, cancellation tokens, and the ambient checkpoint contract."""

import threading

import pytest

from repro.exceptions import CancelledError, DeadlineExceededError
from repro.supervision import (
    Budget,
    CancelToken,
    Heartbeat,
    checkpoint,
    current_budget,
    current_scope,
    current_token,
    supervised,
)


class FakeClock:
    """A hand-cranked monotonic clock so no expiry test ever sleeps."""

    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# -- CancelToken --------------------------------------------------------------
def test_token_starts_clear_and_cancels_once():
    token = CancelToken()
    assert not token.cancelled
    assert token.reason == ""
    token.cancel("first")
    token.cancel("second")  # idempotent: the first reason wins
    assert token.cancelled
    assert token.reason == "first"


def test_token_raise_if_cancelled():
    token = CancelToken()
    token.raise_if_cancelled("op")  # no-op while clear
    token.cancel("watchdog: reaped")
    with pytest.raises(CancelledError) as err:
        token.raise_if_cancelled("trial-3")
    assert "trial-3" in str(err.value)
    assert err.value.reason == "watchdog: reaped"


def test_child_token_sees_parent_cancellation():
    parent = CancelToken()
    child = parent.child()
    grandchild = child.child()
    parent.cancel("campaign stopping")
    assert child.cancelled
    assert grandchild.cancelled
    assert grandchild.reason == "campaign stopping"


def test_child_cancellation_does_not_reach_the_parent():
    parent = CancelToken()
    child = parent.child()
    child.cancel("one trial reaped")
    assert child.cancelled
    assert not parent.cancelled


# -- Budget -------------------------------------------------------------------
def test_budget_rejects_non_positive_deadline():
    with pytest.raises(ValueError):
        Budget(deadline_s=0)
    with pytest.raises(ValueError):
        Budget(deadline_s=-1.0)


def test_unlimited_budget_never_expires():
    clock = FakeClock()
    budget = Budget(clock=clock)
    clock.advance(1e6)
    assert not budget.expired
    assert budget.remaining() is None
    budget.check("op")  # no raise


def test_budget_expires_on_the_injected_clock():
    clock = FakeClock()
    budget = Budget(deadline_s=10.0, clock=clock)
    clock.advance(9.0)
    assert not budget.expired
    assert budget.remaining() == pytest.approx(1.0)
    budget.check("op")
    clock.advance(2.0)
    assert budget.expired
    assert budget.remaining() == 0.0  # clamped, never negative
    with pytest.raises(DeadlineExceededError) as err:
        budget.check("trial-7")
    assert err.value.operation == "trial-7"
    assert err.value.deadline == 10.0


def test_phase_deadline_enforced_inside_its_scope_only():
    clock = FakeClock()
    budget = Budget(phase_deadlines={"deploy": 5.0}, clock=clock)
    # outside the phase the allowance is dormant
    clock.advance(100.0)
    budget.check("op")
    with pytest.raises(DeadlineExceededError) as err:
        with budget.phase("deploy"):
            clock.advance(6.0)  # overran the slice; surfaces on exit
    assert "deploy" in str(err.value)
    # the scope unwound: the phase allowance is dormant again
    clock.advance(50.0)
    budget.check("op")


def test_phase_scope_checks_overall_budget_on_entry():
    clock = FakeClock()
    budget = Budget(deadline_s=10.0, clock=clock)
    clock.advance(11.0)
    with pytest.raises(DeadlineExceededError):
        with budget.phase("build"):
            pytest.fail("an expired budget must not admit a new phase")


def test_phase_scopes_nest_and_restore():
    clock = FakeClock()
    budget = Budget(phase_deadlines={"outer": 100.0, "inner": 1.0}, clock=clock)
    with budget.phase("outer"):
        with pytest.raises(DeadlineExceededError):
            with budget.phase("inner"):
                clock.advance(2.0)
        # the outer phase (started at t=0, allowance 100) is restored
        clock.advance(10.0)
        budget.check("op")


# -- the ambient scope --------------------------------------------------------
def test_checkpoint_is_a_noop_outside_supervision():
    assert current_scope() is None
    assert current_budget() is None
    assert current_token() is None
    checkpoint("anywhere")  # must not raise


def test_checkpoint_honours_ambient_token_and_budget():
    clock = FakeClock()
    budget = Budget(deadline_s=5.0, clock=clock)
    token = CancelToken()
    with supervised(budget, token, Heartbeat("t", clock=clock), "trial-1"):
        assert current_budget() is budget
        assert current_token() is token
        checkpoint()
        token.cancel("reaped")
        with pytest.raises(CancelledError):
            checkpoint("trial.build")
    # cancellation wins over deadline; with the token clear the budget bites
    with supervised(budget, CancelToken(), None, "trial-1"):
        clock.advance(6.0)
        with pytest.raises(DeadlineExceededError):
            checkpoint()


def test_checkpoint_beats_the_ambient_heartbeat():
    heartbeat = Heartbeat("worker")
    with supervised(None, None, heartbeat, "op"):
        before = heartbeat.beats
        checkpoint()
        checkpoint()
    assert heartbeat.beats == before + 2


def test_supervision_scope_is_thread_local():
    """A sibling thread must not inherit this thread's deadline."""
    token = CancelToken()
    token.cancel("only this thread")
    seen = {}

    def sibling():
        seen["scope"] = current_scope()
        checkpoint("sibling.op")  # must not raise: no ambient scope here
        seen["clean"] = True

    with supervised(Budget(deadline_s=1.0), token, None, "parent"):
        thread = threading.Thread(target=sibling)
        thread.start()
        thread.join()
    assert seen["scope"] is None
    assert seen["clean"]
