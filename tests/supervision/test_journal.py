"""The write-ahead trial journal: intents, recovery, torn lines."""

import json
import os

from repro.supervision import JOURNAL_NAME, OP_CHECKPOINT, OP_START, TrialJournal


def test_start_without_finish_is_an_open_intent(tmp_path):
    journal = TrialJournal(tmp_path)
    journal.start("t1", "hash1")
    journal.start("t2", "hash2")
    journal.finish("t1", "hash1", "ok")
    open_intents = journal.open_intents()
    assert set(open_intents) == {"hash2"}
    assert open_intents["hash2"].trial_id == "t2"


def test_finish_for_every_start_leaves_nothing_open(tmp_path):
    journal = TrialJournal(tmp_path)
    for n in range(3):
        journal.start("t%d" % n, "hash%d" % n)
        journal.finish("t%d" % n, "hash%d" % n, "ok")
    assert journal.open_intents() == {}


def test_checkpoint_keeps_intents_open_and_is_queryable(tmp_path):
    journal = TrialJournal(tmp_path)
    journal.start("t1", "hash1")
    journal.checkpoint("sigterm")
    assert set(journal.open_intents()) == {"hash1"}
    checkpoint = journal.last_checkpoint()
    assert checkpoint is not None
    assert checkpoint.op == OP_CHECKPOINT
    assert checkpoint.reason == "sigterm"
    assert checkpoint.at > 0


def test_empty_journal_reads_cleanly(tmp_path):
    journal = TrialJournal(tmp_path)
    assert journal.entries() == []
    assert journal.open_intents() == {}
    assert journal.last_checkpoint() is None
    assert journal.recover() == []


def test_torn_trailing_line_is_skipped_and_counted(tmp_path):
    journal = TrialJournal(tmp_path)
    journal.start("t1", "hash1")
    journal.start("t2", "hash2")
    # simulate a write cut off mid-line by the kernel killing the process
    with open(journal.path, "a") as handle:
        handle.write('{"op": "finish", "spec_hash": "ha')
    entries = journal.entries()
    assert len(entries) == 2
    assert journal.torn_lines == 1
    # the torn finish never lands: both intents stay open
    assert set(journal.open_intents()) == {"hash1", "hash2"}


def test_recover_reports_open_intents_and_compacts(tmp_path):
    journal = TrialJournal(tmp_path)
    for n in range(10):
        journal.start("t%d" % n, "hash%d" % n)
        journal.finish("t%d" % n, "hash%d" % n, "ok")
    journal.start("crashed", "hash_crashed")

    recovered = journal.recover()
    assert [entry.trial_id for entry in recovered] == ["crashed"]

    # compaction dropped the 20 finished lines: only the open intent remains
    with open(journal.path) as handle:
        lines = [line for line in handle if line.strip()]
    assert len(lines) == 1
    assert json.loads(lines[0])["op"] == OP_START
    # and the rewritten journal is still a valid journal
    assert set(journal.open_intents()) == {"hash_crashed"}


def test_recover_leaves_no_stray_temp_file(tmp_path):
    journal = TrialJournal(tmp_path)
    journal.start("t1", "hash1")
    journal.recover()
    assert os.listdir(tmp_path) == [JOURNAL_NAME]


def test_restart_is_a_finish_then_start_cycle(tmp_path):
    """The recover → re-execute → finish flow closes the intent."""
    journal = TrialJournal(tmp_path)
    journal.start("t1", "hash1")
    # ... SIGKILL here; a new process recovers:
    journal = TrialJournal(tmp_path)
    assert [e.trial_id for e in journal.recover()] == ["t1"]
    journal.finish("t1", "hash1", "interrupted")  # the recovery record
    journal.start("t1", "hash1")                  # the re-execution
    journal.finish("t1", "hash1", "ok")
    assert journal.open_intents() == {}
