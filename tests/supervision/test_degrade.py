"""The degradation ladder: ordered descent, never a crash."""

import pytest

from repro.supervision import EXECUTOR_LADDER, DegradationLadder


def test_executor_ladder_order():
    assert EXECUTOR_LADDER == ("process", "thread", "serial")


def test_defaults_start_at_the_top():
    ladder = DegradationLadder()
    assert ladder.current == "process"
    assert not ladder.degraded
    assert not ladder.exhausted


def test_steps_descend_in_order_with_reasons():
    ladder = DegradationLadder()
    assert ladder.step("pool broke") == "thread"
    assert ladder.step("worker died") == "serial"
    assert ladder.exhausted
    assert ladder.step("nothing left") is None
    assert ladder.current == "serial"
    assert ladder.steps == [
        ("process", "thread", "pool broke"),
        ("thread", "serial", "worker died"),
    ]


def test_start_picks_the_rung():
    ladder = DegradationLadder(start="thread")
    assert ladder.current == "thread"
    assert ladder.step() == "serial"
    # starting at the bottom means no fallback exists
    bottom = DegradationLadder(start="serial")
    assert bottom.exhausted
    assert bottom.step() is None


def test_validation():
    with pytest.raises(ValueError):
        DegradationLadder(levels=())
    with pytest.raises(ValueError):
        DegradationLadder(start="quantum")


def test_snapshot():
    ladder = DegradationLadder(start="thread")
    ladder.step("worker died")
    snap = ladder.snapshot()
    assert snap["current"] == "serial"
    assert snap["degraded"]
    assert snap["steps"] == [
        {"from": "thread", "to": "serial", "reason": "worker died"}
    ]
