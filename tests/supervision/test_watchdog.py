"""Heartbeats, the watchdog monitor, and the supervised-call boundary."""

import time

import pytest

from repro.exceptions import CancelledError, DeadlineExceededError, StallError
from repro.supervision import (
    Budget,
    CancelToken,
    Heartbeat,
    WatchdogMonitor,
    checkpoint,
    run_with_deadline,
    supervised_call,
)


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# -- Heartbeat ----------------------------------------------------------------
def test_heartbeat_age_tracks_the_injected_clock():
    clock = FakeClock()
    heartbeat = Heartbeat("w", clock=clock)
    clock.advance(3.0)
    assert heartbeat.age() == pytest.approx(3.0)
    heartbeat.beat()
    assert heartbeat.age() == 0.0
    assert heartbeat.beats == 1


# -- WatchdogMonitor (scan-driven, no threads, no sleeping) -------------------
def test_watchdog_reaps_only_silent_workers():
    clock = FakeClock()
    monitor = WatchdogMonitor()
    lively, lively_token = Heartbeat("lively", clock=clock), CancelToken()
    silent, silent_token = Heartbeat("silent", clock=clock), CancelToken()
    monitor.register("lively", lively, lively_token, stall_after=5.0)
    monitor.register("silent", silent, silent_token, stall_after=5.0)

    clock.advance(4.0)
    lively.beat()
    assert monitor.scan() == []

    clock.advance(2.0)  # silent is now 6s old; lively only 2s
    assert monitor.scan() == ["silent"]
    assert silent_token.cancelled
    assert silent_token.reason.startswith("watchdog:")
    assert not lively_token.cancelled
    assert monitor.stalls == ["silent"]
    # a reaped entry is not reaped twice
    clock.advance(10.0)
    lively.beat()
    assert monitor.scan() == []


def test_watchdog_register_rejects_bad_window_and_unregister_forgets():
    monitor = WatchdogMonitor()
    with pytest.raises(ValueError):
        monitor.register("w", Heartbeat("w"), CancelToken(), stall_after=0)
    monitor.register("w", Heartbeat("w"), CancelToken(), stall_after=1.0)
    assert monitor.watched() == ["w"]
    monitor.unregister("w")
    assert monitor.watched() == []


# -- supervised_call ----------------------------------------------------------
def test_unbounded_call_runs_inline_with_ambient_scope():
    token = CancelToken()

    def body():
        checkpoint("inline")
        return 42

    assert supervised_call(body, operation="op", token=token) == 42


def test_supervised_call_propagates_the_body_exception():
    def body():
        raise RuntimeError("boom")

    with pytest.raises(RuntimeError, match="boom"):
        supervised_call(body, operation="op", budget=Budget(5.0))


def test_deadline_abandons_an_uncooperative_worker():
    started = time.perf_counter()
    with pytest.raises(DeadlineExceededError) as err:
        supervised_call(
            lambda: time.sleep(30.0),  # no heartbeats, no checkpoints
            operation="hung-trial",
            budget=Budget(0.2),
            poll=0.02,
        )
    elapsed = time.perf_counter() - started
    assert elapsed < 5.0  # abandoned promptly, not after 30s
    assert err.value.operation == "hung-trial"


def test_stall_window_reaps_a_silent_worker():
    with pytest.raises(StallError) as err:
        supervised_call(
            lambda: time.sleep(30.0),
            operation="wedged",
            stall_after=0.2,
            poll=0.02,
        )
    assert err.value.operation == "wedged"
    assert err.value.stall_after == 0.2


def test_cooperative_worker_finishes_within_its_deadline():
    def body():
        for _ in range(3):
            checkpoint("step")
        return "done"

    assert supervised_call(body, operation="op", budget=Budget(10.0)) == "done"


def test_external_cancellation_surfaces_as_cancelled_error():
    token = CancelToken()
    token.cancel("operator said stop")
    with pytest.raises(CancelledError) as err:
        supervised_call(
            lambda: time.sleep(30.0),
            operation="op",
            budget=Budget(60.0),
            token=token,
            poll=0.02,
        )
    assert err.value.reason == "operator said stop"


def test_cooperative_worker_unwinds_on_cancellation():
    """A body that checkpoints sees the cancel and exits cleanly."""
    token = CancelToken()
    progress = []

    def body():
        progress.append("started")
        while True:
            checkpoint("loop")
            time.sleep(0.01)

    token.cancel("reaped")
    with pytest.raises(CancelledError):
        supervised_call(body, operation="op", stall_after=30.0, token=token, poll=0.02)
    assert progress == ["started"]


def test_run_with_deadline_returns_the_result():
    assert run_with_deadline(lambda: 7, 5.0, operation="quick") == 7


def test_run_with_deadline_times_out():
    with pytest.raises(DeadlineExceededError):
        run_with_deadline(
            lambda: time.sleep(30.0), 0.2, operation="slow", poll=0.02
        )


def test_monitor_registration_is_cleaned_up():
    monitor = WatchdogMonitor()
    supervised_call(
        lambda: "ok",
        operation="tracked",
        stall_after=5.0,
        monitor=monitor,
    )
    assert monitor.watched() == []
