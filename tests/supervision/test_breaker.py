"""The circuit-breaker state machine, deterministic via injected clocks."""

import pytest

from repro.exceptions import CircuitOpenError
from repro.supervision import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerRegistry,
    CircuitBreaker,
    breaker_call,
)


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_breaker(threshold=3, cooldown=30.0):
    clock = FakeClock()
    breaker = CircuitBreaker(
        "netkit", failure_threshold=threshold, cooldown_s=cooldown, clock=clock
    )
    return breaker, clock


def test_validation():
    with pytest.raises(ValueError):
        CircuitBreaker("x", failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker("x", cooldown_s=-1)


def test_trips_only_on_consecutive_failures():
    breaker, _ = make_breaker(threshold=3)
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()  # resets the streak
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == CLOSED
    assert breaker.allow()
    breaker.record_failure()  # third consecutive
    assert breaker.state == OPEN
    assert not breaker.allow()
    assert breaker.times_opened == 1


def test_guard_raises_while_open():
    breaker, _ = make_breaker(threshold=1)
    breaker.record_failure()
    with pytest.raises(CircuitOpenError) as err:
        breaker.guard()
    assert err.value.name == "netkit"


def test_half_open_admits_exactly_one_probe():
    breaker, clock = make_breaker(threshold=1, cooldown=30.0)
    breaker.record_failure()
    assert not breaker.allow()
    clock.advance(31.0)
    assert breaker.state == HALF_OPEN
    assert breaker.allow()       # the probe
    assert not breaker.allow()   # everyone else keeps deferring
    assert not breaker.allow()


def test_probe_success_closes_the_breaker():
    breaker, clock = make_breaker(threshold=1)
    breaker.record_failure()
    clock.advance(31.0)
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state == CLOSED
    assert breaker.allow() and breaker.allow()  # flow restored for all
    assert breaker.consecutive_failures == 0


def test_probe_failure_reopens_for_another_cooldown():
    breaker, clock = make_breaker(threshold=1, cooldown=30.0)
    breaker.record_failure()
    clock.advance(31.0)
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state == OPEN
    assert breaker.times_opened == 2
    assert not breaker.allow()
    clock.advance(31.0)
    assert breaker.allow()  # a fresh probe after the second cooldown


def test_snapshot_reports_effective_state():
    breaker, clock = make_breaker(threshold=1, cooldown=10.0)
    breaker.record_failure()
    assert breaker.snapshot()["state"] == OPEN
    clock.advance(11.0)
    snap = breaker.snapshot()
    assert snap["state"] == HALF_OPEN
    assert snap["times_opened"] == 1
    assert snap["failure_threshold"] == 1


def test_registry_creates_lazily_and_tracks_open_breakers():
    clock = FakeClock()
    registry = BreakerRegistry(failure_threshold=1, cooldown_s=30.0, clock=clock)
    assert len(registry) == 0
    assert registry.get("netkit") is registry.get("netkit")
    registry.get("cbgp").record_failure()
    assert registry.names() == ["cbgp", "netkit"]
    assert registry.open_breakers() == ["cbgp"]
    snapshot = registry.snapshot()
    assert snapshot["cbgp"]["state"] == OPEN
    assert snapshot["netkit"]["state"] == CLOSED


def test_breaker_call_reports_outcomes():
    breaker, clock = make_breaker(threshold=2)
    assert breaker_call(breaker, lambda: "ok") == "ok"
    for _ in range(2):
        with pytest.raises(RuntimeError):
            breaker_call(breaker, _boom)
    assert breaker.state == OPEN
    with pytest.raises(CircuitOpenError):
        breaker_call(breaker, lambda: "never runs")
    clock.advance(31.0)
    assert breaker_call(breaker, lambda: "probe") == "probe"
    assert breaker.state == CLOSED


def _boom():
    raise RuntimeError("injected")
