"""Unit tests for the IPv4 addressing overlay (§5.3, §5.2.4)."""

import ipaddress

from repro.design import (
    build_anm,
    build_ipv4,
    build_phy,
    collision_domains,
    design_network,
    domain_between,
    interface_address,
)
from repro.loader import (
    attach_servers,
    fig5_topology,
    line_topology,
    small_internet,
    star_with_switch,
)


def _designed(graph):
    anm = build_anm(graph)
    build_phy(anm)
    build_ipv4(anm)
    return anm


def test_every_link_gets_a_collision_domain(si_anm):
    g_ip = si_anm["ipv4"]
    # 18 physical links, all point-to-point.
    assert len(collision_domains(g_ip)) == 18


def test_p2p_domains_get_slash30(si_anm):
    for domain in collision_domains(si_anm["ipv4"]):
        assert domain.subnet.prefixlen == 30


def test_loopbacks_unique_across_network(si_anm):
    loopbacks = [node.loopback for node in si_anm["ipv4"] if node.loopback]
    assert len(loopbacks) == 14
    assert len(set(loopbacks)) == 14


def test_interface_addresses_within_domain_subnet(si_anm):
    g_ip = si_anm["ipv4"]
    for domain in collision_domains(g_ip):
        for device in domain.neighbors():
            address, prefixlen = interface_address(g_ip, device, domain)
            assert address in domain.subnet
            assert prefixlen == domain.subnet.prefixlen


def test_subnets_disjoint(si_anm):
    domains = collision_domains(si_anm["ipv4"])
    subnets = [d.subnet for d in domains]
    for i, a in enumerate(subnets):
        for b in subnets[i + 1:]:
            assert not a.overlaps(b)


def test_intra_as_domain_uses_as_block(si_anm):
    g_ip = si_anm["ipv4"]
    blocks = g_ip.data.infra_blocks
    for domain in collision_domains(g_ip):
        asns = {n.asn for n in domain.neighbors()}
        if len(asns) == 1:
            assert domain.subnet.subnet_of(blocks[domain.asn])


def test_inter_as_domain_assigned_lower_asn(si_anm):
    g_ip = si_anm["ipv4"]
    for domain in collision_domains(g_ip):
        asns = {n.asn for n in domain.neighbors()}
        assert domain.asn == min(asns)


def test_loopback_within_as_loopback_block(si_anm):
    g_ip = si_anm["ipv4"]
    blocks = g_ip.data.loopback_blocks
    for node in g_ip:
        if node.loopback is not None:
            assert node.loopback in blocks[node.asn]


def test_overlay_data_records_blocks(si_anm):
    g_ip = si_anm["ipv4"]
    assert set(g_ip.data.infra_blocks) == {1, 20, 30, 40, 100, 200, 300}
    assert set(g_ip.data.loopback_blocks) == {1, 20, 30, 40, 100, 200, 300}


def test_switch_aggregation_single_domain():
    anm = _designed(star_with_switch(4, asn=1))
    domains = collision_domains(anm["ipv4"])
    assert len(domains) == 1
    # Subnet sized for 4 attached routers: /29.
    assert domains[0].subnet.prefixlen == 29
    assert len(domains[0].neighbors()) == 4


def test_switch_chain_aggregates_to_one_domain():
    import networkx as nx

    from repro.loader import normalise

    graph = nx.Graph()
    graph.add_node("r1", asn=1)
    graph.add_node("r2", asn=1)
    graph.add_node("sw1", device_type="switch")
    graph.add_node("sw2", device_type="switch")
    graph.add_edge("r1", "sw1")
    graph.add_edge("sw1", "sw2")
    graph.add_edge("sw2", "r2")
    anm = _designed(normalise(graph, require_asn=False))
    domains = collision_domains(anm["ipv4"])
    assert len(domains) == 1
    members = {n.node_id for n in domains[0].neighbors()}
    assert members == {"r1", "r2"}


def test_servers_addressed_but_no_loopback():
    anm = _designed(attach_servers(line_topology(2), per_router=1))
    g_ip = anm["ipv4"]
    servers = [n for n in g_ip if n.device_type == "server"]
    assert servers
    for server in servers:
        assert server.loopback is None
        domains = [d for d in server.neighbors() if d.collision_domain]
        assert domains
        address, _ = interface_address(g_ip, server, domains[0])
        assert isinstance(address, ipaddress.IPv4Address)


def test_determinism_rebuild_identical():
    first = design_network(small_internet())["ipv4"]
    second = design_network(small_internet())["ipv4"]
    for node in first:
        assert second.node(node.node_id).loopback == node.loopback
    for domain in collision_domains(first):
        assert second.node(domain.node_id).subnet == domain.subnet


def test_domain_between_p2p():
    anm = _designed(fig5_topology())
    g_ip = anm["ipv4"]
    domain = domain_between(g_ip, "r1", "r2")
    assert domain is not None and domain.collision_domain
    members = {n.node_id for n in domain.neighbors()}
    assert members == {"r1", "r2"}


def test_domain_between_via_switch():
    anm = _designed(star_with_switch(3, asn=1))
    g_ip = anm["ipv4"]
    domain = domain_between(g_ip, "r1", "sw1")
    assert domain is not None
    assert domain.collision_domain


def test_domain_between_unrelated_returns_none():
    anm = _designed(fig5_topology())
    assert domain_between(anm["ipv4"], "r1", "r5") is None


def test_custom_allocator_plugin():
    from repro.addressing import PerAsnAllocator

    anm = build_anm(fig5_topology())
    build_phy(anm)
    allocator = PerAsnAllocator(
        infra_block="172.20.0.0/14", loopback_block="172.24.0.0/16"
    )
    g_ip = build_ipv4(anm, allocator=allocator)
    for domain in collision_domains(g_ip):
        assert domain.subnet.subnet_of(ipaddress.ip_network("172.20.0.0/14"))
