"""Unit tests for the IS-IS, eBGP, DNS and RPKI design rules (§3.3, §7)."""

import ipaddress

import pytest

from repro.design import (
    build_anm,
    build_dns,
    build_ebgp,
    build_ipv4,
    build_isis,
    build_ospf,
    build_phy,
    build_rpki,
    dns_servers,
    publication_point_of,
    zone_name,
)
from repro.exceptions import DesignError
from repro.loader import fig5_topology, rpki_topology, small_internet


def _phy(graph):
    anm = build_anm(graph)
    build_phy(anm)
    return anm


class TestIsis:
    def test_same_asn_rule(self):
        anm = _phy(fig5_topology())
        g_isis = build_isis(anm)
        pairs = {tuple(sorted((str(e.src_id), str(e.dst_id)))) for e in g_isis.edges()}
        assert pairs == {("r1", "r2"), ("r1", "r3"), ("r2", "r4"), ("r3", "r4")}

    def test_default_metric(self):
        anm = _phy(fig5_topology())
        g_isis = build_isis(anm)
        # fig5 has no isis_metric annotations -> default 10.
        assert all(edge.isis_metric == 10 for edge in g_isis.edges())

    def test_net_addresses_unique(self):
        anm = _phy(small_internet())
        g_isis = build_isis(anm)
        ids = [node.isis_system_id for node in g_isis]
        assert len(set(ids)) == len(ids)
        assert all(node.isis_area.startswith("49.") for node in g_isis)

    def test_custom_metric_retained(self):
        graph = fig5_topology()
        graph.edges["r1", "r2"]["isis_metric"] = 77
        anm = _phy(graph)
        g_isis = build_isis(anm)
        assert g_isis.edge("r1", "r2").isis_metric == 77


class TestEbgp:
    def test_directed_bidirected_sessions(self, fig5_anm):
        g_ebgp = fig5_anm["ebgp"]
        assert g_ebgp.is_directed()
        assert g_ebgp.has_edge("r3", "r5") and g_ebgp.has_edge("r5", "r3")

    def test_local_pref_policy_attribute_carried(self):
        graph = fig5_topology()
        graph.edges["r3", "r5"]["local_pref"] = 200
        anm = _phy(graph)
        g_ebgp = build_ebgp(anm)
        assert g_ebgp.edge("r3", "r5").local_pref == 200

    def test_prefixes_retained(self):
        graph = fig5_topology()
        graph.nodes["r5"]["prefixes"] = ["203.0.113.0/24"]
        anm = _phy(graph)
        g_ebgp = build_ebgp(anm)
        assert g_ebgp.node("r5").prefixes == ["203.0.113.0/24"]


class TestDns:
    def test_one_server_per_as(self, si_anm):
        g_dns = si_anm["dns"]
        servers = dns_servers(g_dns)
        assert len(servers) == 7
        assert {node.asn for node in servers} == {1, 20, 30, 40, 100, 200, 300}

    def test_server_is_lowest_router_id(self, si_anm):
        servers = {node.asn: node.node_id for node in dns_servers(si_anm["dns"])}
        assert servers[100] == "as100r1"
        assert servers[300] == "as300r1"

    def test_explicit_server_marking_wins(self):
        graph = small_internet()
        graph.nodes["as100r3"]["dns_server"] = True
        anm = _phy(graph)
        build_ipv4(anm)
        g_dns = build_dns(anm)
        servers = {node.asn: node.node_id for node in dns_servers(g_dns)}
        assert servers[100] == "as100r3"

    def test_client_edges_cover_as(self, si_anm):
        g_dns = si_anm["dns"]
        edges = g_dns.edges(type="dns_client")
        # 14 devices, 7 servers -> 7 client edges.
        assert len(edges) == 7
        for edge in edges:
            assert edge.src.asn == edge.dst.asn

    def test_zone_names(self, si_anm):
        assert zone_name(100) == "as100.lab"
        assert si_anm["dns"].node("as100r1").zone == "as100.lab"


class TestRpki:
    def test_overlay_edges_lifted_from_labels(self):
        anm = build_anm(rpki_topology())
        g_rpki = build_rpki(anm)
        types = {edge.type for edge in g_rpki.edges()}
        assert types == {"ca_parent", "publishes_to", "fetches_from", "rtr_feed"}

    def test_resources_sliced_down_hierarchy(self):
        anm = build_anm(rpki_topology(n_child_cas=2))
        g_rpki = build_rpki(anm)
        root_space = ipaddress.ip_network(g_rpki.node("ca_root").resources[0])
        for child in ("ca1", "ca2"):
            child_space = ipaddress.ip_network(g_rpki.node(child).resources[0])
            assert child_space.subnet_of(root_space)
        ca1 = ipaddress.ip_network(g_rpki.node("ca1").resources[0])
        ca2 = ipaddress.ip_network(g_rpki.node("ca2").resources[0])
        assert not ca1.overlaps(ca2)

    def test_roas_generated_for_resources(self):
        anm = build_anm(rpki_topology())
        g_rpki = build_rpki(anm)
        roas = g_rpki.node("ca1").roas
        assert roas and roas[0]["prefix"] == g_rpki.node("ca1").resources[0]

    def test_publication_point_lookup(self):
        anm = build_anm(rpki_topology())
        g_rpki = build_rpki(anm)
        point = publication_point_of(g_rpki, g_rpki.node("ca_root"))
        assert point is not None
        assert point.service == "rpki_publication"

    def test_no_service_edges_yields_empty_overlay(self):
        anm = build_anm(fig5_topology())
        g_rpki = build_rpki(anm)
        assert len(g_rpki) == 0

    def test_cas_without_root_raise(self):
        graph = rpki_topology()
        graph.nodes["ca_root"]["ca_root"] = False
        anm = build_anm(graph)
        with pytest.raises(DesignError, match="no root"):
            build_rpki(anm)
