"""Unit tests for iBGP designs: full mesh and route reflection (§7.1)."""

import pytest

from repro.design import (
    assign_route_reflectors_by_centrality,
    build_anm,
    build_ibgp,
    build_ibgp_full_mesh,
    build_ibgp_route_reflection,
    build_phy,
    ibgp_session_count,
)
from repro.loader import bad_gadget_topology, multi_as_topology, small_internet


def _phy_anm(graph):
    anm = build_anm(graph)
    build_phy(anm)
    return anm


def test_full_mesh_session_count(si_anm):
    """O(n^2): n(n-1) directed sessions per AS."""
    g_ibgp = si_anm["ibgp"]
    # AS20: 3 routers -> 6; AS100: 3 -> 6; AS300: 4 -> 12; singles: 0.
    assert g_ibgp.number_of_edges() == 6 + 6 + 12


def test_full_mesh_all_peer_sessions(si_anm):
    assert all(
        edge.session_type == "peer" for edge in si_anm["ibgp"].edges()
    )


def test_session_count_formula():
    assert ibgp_session_count(10) == 45
    assert ibgp_session_count(2) == 1
    assert ibgp_session_count(1) == 0


def test_no_cross_as_sessions(si_anm):
    for edge in si_anm["ibgp"].edges():
        assert edge.src.asn == edge.dst.asn


def test_route_reflection_hierarchy_built_from_rr_attribute():
    anm = _phy_anm(bad_gadget_topology())
    g_ibgp = build_ibgp_route_reflection(anm)
    down = [e for e in g_ibgp.edges() if e.session_type == "down"]
    up = [e for e in g_ibgp.edges() if e.session_type == "up"]
    peer = [e for e in g_ibgp.edges() if e.session_type == "peer"]
    # 3 clients, each with exactly one reflector (cluster-scoped).
    assert len(down) == 3 and len(up) == 3
    # rr full mesh: 3 pairs, both directions.
    assert len(peer) == 6


def test_route_reflection_cluster_scoping():
    anm = _phy_anm(bad_gadget_topology())
    g_ibgp = build_ibgp_route_reflection(anm)
    for edge in g_ibgp.edges(session_type="down"):
        assert edge.src.rr_cluster == edge.dst.rr_cluster


def test_route_reflection_without_clusters_connects_all_pairs():
    graph = multi_as_topology(n_ases=1, routers_per_as=5, seed=4)
    graph.nodes["as1r1"]["rr"] = True
    graph.nodes["as1r2"]["rr"] = True
    anm = _phy_anm(graph)
    g_ibgp = build_ibgp_route_reflection(anm)
    down = [e for e in g_ibgp.edges() if e.session_type == "down"]
    # 2 reflectors x 3 clients.
    assert len(down) == 6


def test_route_reflection_falls_back_to_mesh_without_rr():
    graph = multi_as_topology(n_ases=2, routers_per_as=3, seed=1)
    graph.nodes["as1r1"]["rr"] = True  # only AS 1 has a reflector
    anm = _phy_anm(graph)
    g_ibgp = build_ibgp_route_reflection(anm)
    as2_edges = [e for e in g_ibgp.edges() if e.src.asn == 2]
    assert all(e.session_type == "peer" for e in as2_edges)
    assert len(as2_edges) == 6  # 3 routers full mesh, directed


def test_build_ibgp_dispatches_on_rr_attribute():
    mesh_anm = _phy_anm(small_internet())
    assert all(e.session_type == "peer" for e in build_ibgp(mesh_anm).edges())
    rr_anm = _phy_anm(bad_gadget_topology())
    assert any(e.session_type == "down" for e in build_ibgp(rr_anm).edges())


def test_centrality_based_rr_assignment():
    graph = multi_as_topology(n_ases=2, routers_per_as=8, seed=6)
    anm = _phy_anm(graph)
    chosen = assign_route_reflectors_by_centrality(anm, fraction=0.25)
    # At least one per AS, marked in place.
    asns = {node.asn for node in chosen}
    assert asns == {1, 2}
    assert all(node.rr for node in chosen)
    # The reflector set contains a maximal-degree router of each AS.
    g_phy = anm["phy"]
    for asn in asns:
        members = g_phy.routers(asn=asn)
        best_degree = max(g_phy.degree(m) for m in members)
        chosen_degrees = [g_phy.degree(n) for n in chosen if n.asn == asn]
        assert max(chosen_degrees) == best_degree


def test_centrality_rr_reduces_sessions():
    graph = multi_as_topology(n_ases=1, routers_per_as=20, seed=8)
    anm = _phy_anm(graph)
    mesh_edges = build_ibgp_full_mesh(anm).number_of_edges()
    assign_route_reflectors_by_centrality(anm, fraction=0.1)
    rr_edges = build_ibgp_route_reflection(anm).number_of_edges()
    assert rr_edges < mesh_edges


def test_centrality_minimum_respected():
    graph = multi_as_topology(n_ases=1, routers_per_as=3, seed=2)
    anm = _phy_anm(graph)
    chosen = assign_route_reflectors_by_centrality(anm, fraction=0.0, minimum=2)
    assert len(chosen) == 2
