"""E1: exact reproduction of the Figure 5 overlay derivations (§4.2.1).

The paper gives the algebraic rules (1)-(3) and works them on the
5-node, 2-AS input; these tests assert the exact resulting edge sets.

Note: the paper's printed E_ibgp omits the (r3, r4) pair, but rule (2)
("between each pair of nodes in the same AS") yields all C(4,2) = 6
pairs for AS 1.  We assert rule (2); EXPERIMENTS.md records the
discrepancy.
"""

from repro.design import design_network
from repro.loader import fig5_topology


def _undirected_pairs(overlay):
    return {tuple(sorted((str(e.src_id), str(e.dst_id)))) for e in overlay.edges()}


def _directed_pairs(overlay):
    return {(str(e.src_id), str(e.dst_id)) for e in overlay.edges()}


def test_ospf_edges_match_equation_1(fig5_anm):
    assert _undirected_pairs(fig5_anm["ospf"]) == {
        ("r1", "r2"),
        ("r1", "r3"),
        ("r2", "r4"),
        ("r3", "r4"),
    }


def test_ebgp_edges_match_equation_3(fig5_anm):
    # Directed overlay, bidirected sessions: both orientations present.
    assert _directed_pairs(fig5_anm["ebgp"]) == {
        ("r3", "r5"),
        ("r5", "r3"),
        ("r4", "r5"),
        ("r5", "r4"),
    }


def test_ibgp_edges_match_equation_2(fig5_anm):
    # Full mesh inside AS 1: all 6 undirected pairs, both directions.
    expected_pairs = {
        ("r1", "r2"),
        ("r1", "r3"),
        ("r1", "r4"),
        ("r2", "r3"),
        ("r2", "r4"),
        ("r3", "r4"),
    }
    assert _undirected_pairs(fig5_anm["ibgp"]) == expected_pairs
    assert len(_directed_pairs(fig5_anm["ibgp"])) == 12


def test_r5_isolated_in_ibgp(fig5_anm):
    """AS 2 has a single router: no iBGP sessions."""
    assert fig5_anm["ibgp"].node("r5").edges() == []


def test_ospf_costs_carried_from_input(fig5_anm):
    g_ospf = fig5_anm["ospf"]
    assert g_ospf.edge("r1", "r2").ospf_cost == 10
    assert g_ospf.edge("r2", "r4").ospf_cost == 20


def test_rules_compose_without_mutating_input(fig5_anm):
    """The input overlay keeps all 6 physical edges after design."""
    assert len(fig5_anm["input"].edges()) == 6
    assert len(fig5_anm["phy"].edges()) == 6


def test_same_rules_apply_to_larger_topology():
    """§6: decoupled rules reuse unchanged on a different input."""
    from repro.loader import multi_as_topology

    anm = design_network(multi_as_topology(n_ases=3, routers_per_as=3, seed=2))
    g_ospf, g_ebgp = anm["ospf"], anm["ebgp"]
    for edge in g_ospf.edges():
        assert edge.src.asn == edge.dst.asn
    for edge in g_ebgp.edges():
        assert edge.src.asn != edge.dst.asn
