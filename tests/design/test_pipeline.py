"""Unit tests for the design-rule registry and pipeline (§4.2)."""

import pytest

from repro.design import (
    DEFAULT_RULES,
    DESIGN_RULES,
    apply_design,
    build_anm,
    design_network,
    register_design_rule,
)
from repro.exceptions import DesignError
from repro.loader import fig5_topology


def test_default_rules_build_expected_overlays():
    anm = design_network(fig5_topology())
    for overlay_id in DEFAULT_RULES:
        assert anm.has_overlay(overlay_id), overlay_id


def test_rule_subset_selection():
    anm = design_network(fig5_topology(), rules=("phy", "ipv4", "ospf"))
    assert anm.has_overlay("ospf")
    assert not anm.has_overlay("ebgp")


def test_unknown_rule_raises():
    anm = build_anm(fig5_topology())
    with pytest.raises(DesignError, match="no design rule"):
        apply_design(anm, rules=("phy", "nonexistent"))


def test_register_custom_rule():
    """§7: a new protocol = one registered rule."""

    def build_custom(anm):
        overlay = anm.add_overlay("custom", anm["phy"].routers(), retain=["asn"])
        overlay.add_edges_from(
            e for e in anm["phy"].edges() if e.src.asn == e.dst.asn
        )
        return overlay

    register_design_rule("custom", build_custom)
    try:
        anm = design_network(fig5_topology(), rules=("phy", "custom"))
        assert anm.has_overlay("custom")
        assert anm["custom"].number_of_edges() == 4
    finally:
        del DESIGN_RULES["custom"]


def test_build_anm_seeds_input_overlay():
    anm = build_anm(fig5_topology())
    assert len(anm["input"]) == 5
    assert anm["input"].node("r1").device_type == "router"


def test_isis_rule_registered_but_not_default():
    assert "isis" in DESIGN_RULES
    assert "isis" not in DEFAULT_RULES
