"""Unit tests for the OSPF design rule (§4.2.1 eq. 1, §5.2)."""

import networkx as nx

from repro.design import build_anm, build_ospf, build_phy
from repro.loader import normalise, small_internet, star_with_switch


def _design(graph):
    anm = build_anm(graph)
    build_phy(anm)
    return build_ospf(anm)


def test_only_intra_as_edges(si_anm):
    for edge in si_anm["ospf"].edges():
        assert edge.src.asn == edge.dst.asn


def test_single_router_ases_have_no_edges(si_anm):
    for name in ("as30r1", "as40r1", "as200r1"):
        assert si_anm["ospf"].node(name).edges() == []


def test_default_cost_and_area_applied(si_anm):
    for edge in si_anm["ospf"].edges():
        assert edge.ospf_cost == 1
        assert edge.area == 0


def test_custom_cost_preserved():
    graph = nx.Graph()
    graph.add_node("a", asn=1)
    graph.add_node("b", asn=1)
    graph.add_edge("a", "b", ospf_cost=55)
    g_ospf = _design(normalise(graph))
    assert g_ospf.edge("a", "b").ospf_cost == 55


def test_backbone_flag_from_area_zero(si_anm):
    g_ospf = si_anm["ospf"]
    assert g_ospf.node("as100r1").backbone is True


def test_custom_area_assignment():
    graph = nx.Graph()
    graph.add_node("a", asn=1, ospf_area=1)
    graph.add_node("b", asn=1, ospf_area=1)
    graph.add_edge("a", "b")
    g_ospf = _design(normalise(graph))
    assert g_ospf.node("a").area == 1
    assert g_ospf.edge("a", "b").area == 1
    # No area-0 edge: not a backbone router.
    assert g_ospf.node("a").backbone is None


def test_switch_explosion_creates_adjacency():
    """Routers on one switch become pairwise OSPF-adjacent."""
    g_ospf = _design(star_with_switch(3, asn=1))
    assert not g_ospf.has_node("sw1")
    for left, right in [("r1", "r2"), ("r1", "r3"), ("r2", "r3")]:
        assert g_ospf.has_edge(left, right)


def test_servers_excluded():
    from repro.loader import attach_servers, line_topology

    g_ospf = _design(attach_servers(line_topology(2), per_router=1))
    assert all(node.node_id.startswith("r") for node in g_ospf)


def test_process_id_set(si_anm):
    assert all(node.process_id == 1 for node in si_anm["ospf"])


def test_small_internet_edge_count(si_anm):
    # 3 (AS20 triangle) + 3 (AS100 triangle) + 4 (AS300 ring) = 10.
    assert si_anm["ospf"].number_of_edges() == 10
