"""Tests for the user-template extension point and render edge cases."""

import os

import pytest

from repro.nidb import DeviceModel, Nidb
from repro.render import add_template_directory, render_nidb, render_template
from repro.render.renderer import _entry


class TestUserTemplateDirectories:
    def test_user_directory_searched_first(self, tmp_path):
        os.makedirs(tmp_path / "custom")
        (tmp_path / "custom" / "motd.j2").write_text(
            "Welcome to {{ node.hostname }}\n"
        )
        add_template_directory(tmp_path)
        device = DeviceModel("r1", hostname="r1")
        assert render_template("custom/motd.j2", node=device) == "Welcome to r1\n"

    def test_user_template_can_shadow_bundled(self, tmp_path):
        os.makedirs(tmp_path / "quagga")
        (tmp_path / "quagga" / "daemons.j2").write_text("zebra=custom\n")
        add_template_directory(tmp_path)
        try:
            device = DeviceModel("r1")
            text = render_template("quagga/daemons.j2", node=device)
            assert text == "zebra=custom\n"
        finally:
            # Restore the bundled environment for later tests.
            from repro.render import renderer

            renderer._EXTRA_TEMPLATE_DIRS.clear()
            renderer._ENVIRONMENT = None

    def test_registering_same_directory_twice_is_idempotent(self, tmp_path):
        from repro.render import renderer

        before = len(renderer._EXTRA_TEMPLATE_DIRS)
        add_template_directory(tmp_path / "x")
        add_template_directory(tmp_path / "x")
        try:
            assert len(renderer._EXTRA_TEMPLATE_DIRS) == before + 1
        finally:
            renderer._EXTRA_TEMPLATE_DIRS.clear()
            renderer._ENVIRONMENT = None


class TestRenderEntryNormalisation:
    def test_dict_entry(self):
        assert _entry({"template": "a.j2", "path": "out/a"}) == ("a.j2", "out/a")

    def test_stanza_entry(self):
        from repro.nidb import ConfigStanza

        stanza = ConfigStanza(template="b.j2", path="out/b")
        assert _entry(stanza) == ("b.j2", "out/b")


class TestRenderRobustness:
    def test_device_without_render_stanza_skipped(self, tmp_path):
        nidb = Nidb()
        nidb.add_device("bare", device_type="server")
        nidb.topology.platform = "netkit"
        nidb.topology.host = "localhost"
        result = render_nidb(nidb, tmp_path)
        assert result.n_files == 0

    def test_empty_topology_render(self, tmp_path):
        nidb = Nidb()
        device = nidb.add_device("r1", device_type="router", hostname="r1")
        device.zebra = {"hostname": "r1", "password": "x"}
        device.render = {
            "files": [
                {"template": "quagga/zebra.conf.j2", "path": "r1/etc/quagga/zebra.conf"}
            ]
        }
        result = render_nidb(nidb, tmp_path)
        assert result.n_files == 1
        assert "unknown" in result.lab_dir  # no platform set


class TestTemplateFolders:
    """§5.5: a user folder of static + template files per device."""

    def _nidb_with_folder(self, tmp_path):
        source = tmp_path / "service_skel"
        os.makedirs(source / "conf.d")
        (source / "motd").write_text("static banner\n")
        (source / "conf.d" / "service.conf.j2").write_text(
            "name={{ node.hostname }}\n"
        )
        nidb = Nidb()
        device = nidb.add_device("r1", device_type="router", hostname="r1")
        device.render = {
            "files": [],
            "folders": [{"source": str(source), "dst": "r1/etc/service"}],
        }
        nidb.topology.platform = "netkit"
        nidb.topology.host = "localhost"
        return nidb

    def test_static_copied_and_templates_rendered(self, tmp_path):
        nidb = self._nidb_with_folder(tmp_path)
        result = render_nidb(nidb, tmp_path / "out")
        base = os.path.join(result.lab_dir, "r1", "etc", "service")
        assert open(os.path.join(base, "motd")).read() == "static banner\n"
        rendered = open(os.path.join(base, "conf.d", "service.conf")).read()
        assert rendered == "name=r1\n"
        assert result.n_files == 2

    def test_missing_folder_raises(self, tmp_path):
        nidb = Nidb()
        device = nidb.add_device("r1", device_type="router", hostname="r1")
        device.render = {
            "files": [],
            "folders": [{"source": str(tmp_path / "ghost"), "dst": "x"}],
        }
        import pytest as _pytest

        from repro.exceptions import RenderError

        with _pytest.raises(RenderError, match="does not exist"):
            render_nidb(nidb, tmp_path / "out")
