"""Unit tests for the rendering engine and filters (§4.1, §5.5)."""

import os

import pytest

from repro.exceptions import RenderError
from repro.nidb import DeviceModel
from repro.render import render_nidb, render_template
from repro.render.renderer import _netmask, _netmask_of, _network_address, _wildcard


class TestFilters:
    def test_netmask_from_prefixlen(self):
        assert _netmask(30) == "255.255.255.252"
        assert _netmask(24) == "255.255.255.0"
        assert _netmask(32) == "255.255.255.255"

    def test_netmask_of_cidr(self):
        assert _netmask_of("10.0.0.0/30") == "255.255.255.252"

    def test_wildcard(self):
        assert _wildcard("10.0.0.0/30") == "0.0.0.3"
        assert _wildcard("192.168.0.1/32") == "0.0.0.0"

    def test_network_address(self):
        assert _network_address("10.0.0.5/30") == "10.0.0.4"


class TestRenderTemplate:
    def test_missing_template_raises(self):
        with pytest.raises(RenderError, match="not found"):
            render_template("nope/missing.j2", node=None)

    def test_template_logic_limited_to_substitution(self):
        """§4.1's example shape: loops + ${...} substitution only."""
        device = DeviceModel(
            "as100r1",
            zebra={"hostname": "as100r1", "password": "1234"},
        )
        device.add_interface(id="lo", category="loopback", description="loopback")
        text = render_template("quagga/zebra.conf.j2", node=device)
        assert "hostname as100r1" in text
        assert "password 1234" in text
        assert "interface lo" in text

    def test_undefined_variable_is_error(self):
        """StrictUndefined: compiler omissions fail loudly at render."""
        device = DeviceModel("r1")  # no zebra stanza at all
        with pytest.raises(RenderError):
            render_template("quagga/ospfd.conf.j2", node=device)


class TestRenderNidb:
    def test_renders_all_files(self, si_nidb, tmp_path):
        result = render_nidb(si_nidb, tmp_path)
        assert result.n_files > 0
        assert all(os.path.exists(path) for path in result.files)
        assert result.total_bytes > 0
        assert result.elapsed_seconds >= 0

    def test_lab_dir_layout(self, si_nidb, tmp_path):
        """§5.4: output under <host>/<platform>/."""
        result = render_nidb(si_nidb, tmp_path)
        assert result.lab_dir == os.path.join(str(tmp_path), "localhost", "netkit")
        assert os.path.exists(os.path.join(result.lab_dir, "lab.conf"))
        assert os.path.exists(
            os.path.join(result.lab_dir, "as100r1", "etc", "quagga", "bgpd.conf")
        )

    def test_quagga_file_set_per_device(self, si_render):
        lab = si_render.lab_dir
        quagga_dir = os.path.join(lab, "as100r1", "etc", "quagga")
        assert sorted(os.listdir(quagga_dir)) == [
            "bgpd.conf",
            "daemons",
            "ospfd.conf",
            "zebra.conf",
        ]

    def test_stub_router_has_no_ospfd(self, si_render):
        quagga_dir = os.path.join(si_render.lab_dir, "as30r1", "etc", "quagga")
        assert "ospfd.conf" not in os.listdir(quagga_dir)

    def test_generated_config_matches_paper_example_shape(self, si_render):
        """§6.1's rendered example: hostname/password/interface/router ospf."""
        path = os.path.join(si_render.lab_dir, "as100r1", "etc", "quagga", "ospfd.conf")
        text = open(path).read()
        assert text.startswith("hostname as100r1\npassword 1234\n")
        assert "ip ospf cost 1" in text
        assert "router ospf" in text
        assert "area 0" in text

    def test_daemons_file_flags(self, si_render):
        text = open(
            os.path.join(si_render.lab_dir, "as100r1", "etc", "quagga", "daemons")
        ).read()
        assert "zebra=yes" in text
        assert "ospfd=yes" in text
        assert "bgpd=yes" in text
        assert "isisd=no" in text

    def test_lab_conf_lists_every_interface(self, si_render, si_nidb):
        text = open(os.path.join(si_render.lab_dir, "lab.conf")).read()
        n_wiring_lines = sum(1 for line in text.splitlines() if "[" in line and "]=" in line)
        n_interfaces = sum(len(d.physical_interfaces()) for d in si_nidb)
        assert n_wiring_lines == n_interfaces == 36

    def test_resolv_conf_rendered_for_clients(self, si_render):
        path = os.path.join(si_render.lab_dir, "as100r2", "etc", "resolv.conf")
        text = open(path).read()
        assert "nameserver" in text
        assert "domain as100.lab" in text

    def test_zone_files_rendered_for_dns_server(self, si_render):
        bind_dir = os.path.join(si_render.lab_dir, "as100r1", "etc", "bind")
        assert sorted(os.listdir(bind_dir)) == [
            "db.as100.lab",
            "db.reverse",
            "named.conf",
        ]
        zone = open(os.path.join(bind_dir, "db.as100.lab")).read()
        assert "as100r2 IN A" in zone

    def test_render_is_deterministic(self, si_nidb, tmp_path):
        first = render_nidb(si_nidb, tmp_path / "a")
        second = render_nidb(si_nidb, tmp_path / "b")
        texts_a = sorted(open(p).read() for p in first.files)
        texts_b = sorted(open(p).read() for p in second.files)
        assert texts_a == texts_b
