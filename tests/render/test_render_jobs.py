"""Render jobs and the thread-safe shared environment."""

import os
import threading

import pytest

from repro.compilers import platform_compiler
from repro.design import design_network
from repro.exceptions import RenderError
from repro.loader import fig5_topology
from repro.render import (
    RenderResult,
    add_template_directory,
    device_render_jobs,
    environment,
    render_nidb,
    template_directories,
    template_source,
    topology_render_jobs,
    write_job,
)


@pytest.fixture(scope="module")
def nidb():
    return platform_compiler("netkit", design_network(fig5_topology())).compile()


def test_device_jobs_are_pure(nidb, tmp_path):
    """Computing jobs writes nothing; writing them reproduces render_nidb."""
    devices = sorted(nidb.nodes(), key=lambda device: str(device.node_id))
    jobs = device_render_jobs(devices[0], nidb.topology, devices)
    assert jobs and not any(tmp_path.iterdir())
    for job in jobs:
        assert job.path
        assert (job.text is None) != (job.source is None)


def test_jobs_reproduce_render_nidb(nidb, tmp_path):
    classic_dir = tmp_path / "classic"
    render_nidb(nidb, str(classic_dir))

    jobs_dir = tmp_path / "jobs"
    lab_dir = os.path.join(str(jobs_dir), nidb.topology.host, nidb.topology.platform)
    result = RenderResult(output_dir=str(jobs_dir), lab_dir=lab_dir)
    devices = sorted(nidb.nodes(), key=lambda device: str(device.node_id))
    for device in devices:
        for job in device_render_jobs(device, nidb.topology, devices):
            write_job(result, lab_dir, job)
    for job in topology_render_jobs(nidb.topology, devices):
        write_job(result, lab_dir, job)

    def corpus(root):
        found = {}
        for dirpath, _, names in os.walk(str(root)):
            for name in names:
                path = os.path.join(dirpath, name)
                with open(path, "rb") as handle:
                    found[os.path.relpath(path, str(root))] = handle.read()
        return found

    assert corpus(classic_dir) == corpus(jobs_dir)


def test_template_source_reads_loader_text(nidb):
    device = nidb.routers()[0]
    name = str(device.render.files[0].template)
    source = template_source(name)
    assert source.strip()
    with pytest.raises(RenderError, match="not found"):
        template_source("no/such/template.j2")


def test_environment_is_shared_across_threads():
    environments = []
    barrier = threading.Barrier(8)

    def grab():
        barrier.wait()
        environments.append(environment())

    threads = [threading.Thread(target=grab) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(set(map(id, environments))) == 1


def test_add_template_directory_rebuilds_environment(tmp_path):
    before = environment()
    try:
        add_template_directory(tmp_path)
        assert str(tmp_path) in template_directories()
        after = environment()
        assert after is not before
    finally:
        # restore the module state for the rest of the suite
        from repro.render import renderer

        with renderer._ENVIRONMENT_LOCK:
            renderer._EXTRA_TEMPLATE_DIRS.remove(str(tmp_path))
            renderer._ENVIRONMENT = None
