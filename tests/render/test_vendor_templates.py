"""Unit tests for the vendor template outputs (IOS, JunOS, C-BGP)."""

import os

import pytest

from repro.compilers import platform_compiler
from repro.design import design_network
from repro.loader import bad_gadget_topology, small_internet
from repro.render import render_nidb


@pytest.fixture(scope="module")
def labs(tmp_path_factory):
    rendered = {}
    for platform in ("dynagen", "junosphere", "cbgp"):
        anm = design_network(small_internet())
        nidb = platform_compiler(platform, anm).compile()
        rendered[platform] = render_nidb(
            nidb, tmp_path_factory.mktemp("render_%s" % platform)
        )
    return rendered


class TestIosTemplate:
    def test_config_shape(self, labs):
        text = open(
            os.path.join(labs["dynagen"].lab_dir, "configs", "as100r1.cfg")
        ).read()
        assert text.startswith("hostname as100r1")
        assert "interface Loopback0" in text
        assert "interface f0/0" in text
        assert " ip address 10." in text
        assert text.rstrip().endswith("end")

    def test_dotted_masks_and_wildcards(self, labs):
        text = open(
            os.path.join(labs["dynagen"].lab_dir, "configs", "as100r1.cfg")
        ).read()
        assert "255.255.255.252" in text  # interface netmask
        assert " 0.0.0.3 area 0" in text  # OSPF wildcard

    def test_bgp_network_mask_syntax(self, labs):
        text = open(
            os.path.join(labs["dynagen"].lab_dir, "configs", "as100r1.cfg")
        ).read()
        assert " network " in text and " mask " in text

    def test_lab_net_wiring(self, labs):
        text = open(os.path.join(labs["dynagen"].lab_dir, "lab.net")).read()
        assert "[[ROUTER as100r1]]" in text
        assert "cnfg = configs/as100r1.cfg" in text
        assert "=" in text


class TestJunosTemplate:
    def test_hierarchical_shape(self, labs):
        text = open(
            os.path.join(labs["junosphere"].lab_dir, "configs", "as100r1.conf")
        ).read()
        assert "host-name as100r1;" in text
        assert "ge-0/0/0 {" in text
        assert "family inet {" in text
        assert "autonomous-system 100;" in text
        assert text.count("{") == text.count("}")

    def test_ospf_interfaces_and_metrics(self, labs):
        text = open(
            os.path.join(labs["junosphere"].lab_dir, "configs", "as100r1.conf")
        ).read()
        assert "ospf {" in text
        assert "metric 1;" in text

    def test_bgp_groups(self, labs):
        text = open(
            os.path.join(labs["junosphere"].lab_dir, "configs", "as100r1.conf")
        ).read()
        assert "group ebgp-as20r2 {" in text
        assert "peer-as 20;" in text
        assert "type internal;" in text

    def test_vmm_topology(self, labs):
        text = open(os.path.join(labs["junosphere"].lab_dir, "topology.vmm")).read()
        assert 'vm "as100r1"' in text
        assert "bridge" in text


class TestCbgpTemplate:
    def test_script_sections(self, labs):
        text = open(os.path.join(labs["cbgp"].lab_dir, "network.cli")).read()
        assert "net add node" in text
        assert "igp-weight --bidir" in text
        assert "net add domain 100 igp" in text
        assert "bgp add router 100" in text
        assert text.rstrip().endswith("sim run")

    def test_rr_client_and_next_hop_self_emitted(self, tmp_path):
        anm = design_network(bad_gadget_topology())
        nidb = platform_compiler("cbgp", anm).compile()
        result = render_nidb(nidb, tmp_path)
        text = open(os.path.join(result.lab_dir, "network.cli")).read()
        assert "rr-client" in text
        assert "next-hop-self" in text


class TestPolicyTemplates:
    def test_quagga_route_map_for_local_pref(self, tmp_path):
        graph = small_internet()
        graph.edges["as1r1", "as20r3"]["local_pref"] = 250
        anm = design_network(graph)
        nidb = platform_compiler("netkit", anm).compile()
        result = render_nidb(nidb, tmp_path)
        text = open(
            os.path.join(result.lab_dir, "as1r1", "etc", "quagga", "bgpd.conf")
        ).read()
        assert "route-map rm-in-as20r3 in" in text
        assert "set local-preference 250" in text
