"""Unit tests for the per-AS address allocator plugin (§5.3)."""

import ipaddress

import pytest

from repro.addressing import PerAsnAllocator
from repro.exceptions import AddressAllocationError


def test_blocks_are_per_asn_and_disjoint():
    allocator = PerAsnAllocator()
    allocator.allocate_asn_blocks([1, 20, 300])
    blocks = allocator.infra_blocks()
    assert set(blocks) == {1, 20, 300}
    nets = list(blocks.values())
    for i, a in enumerate(nets):
        for b in nets[i + 1:]:
            assert not a.overlaps(b)


def test_allocation_is_order_independent():
    forward = PerAsnAllocator()
    forward.allocate_asn_blocks([10, 20, 30])
    backward = PerAsnAllocator()
    backward.allocate_asn_blocks([30, 10, 20])
    assert forward.infra_blocks() == backward.infra_blocks()
    assert forward.loopback_blocks() == backward.loopback_blocks()


def test_infra_and_loopback_separate_spaces():
    allocator = PerAsnAllocator()
    allocator.allocate_asn_blocks([1])
    infra = allocator.infra_blocks()[1]
    loopback = allocator.loopback_blocks()[1]
    assert not infra.overlaps(loopback)


def test_default_blocks_mirror_paper_examples():
    allocator = PerAsnAllocator()
    allocator.allocate_asn_blocks([1, 2])
    assert allocator.infra_blocks()[1].subnet_of(ipaddress.ip_network("10.0.0.0/8"))
    assert allocator.loopback_blocks()[1].subnet_of(ipaddress.ip_network("192.168.0.0/16"))


def test_pools_allocate_within_blocks():
    allocator = PerAsnAllocator()
    allocator.allocate_asn_blocks([7])
    subnet = allocator.infra_pool(7).subnet_for_hosts(2)
    assert subnet.subnet_of(allocator.infra_blocks()[7])
    loopback = allocator.loopback_pool(7).next_address()
    assert loopback in allocator.loopback_blocks()[7]


def test_unallocated_asn_raises():
    allocator = PerAsnAllocator()
    allocator.allocate_asn_blocks([1])
    with pytest.raises(AddressAllocationError, match="no allocated block"):
        allocator.infra_pool(99)


def test_custom_blocks():
    allocator = PerAsnAllocator(
        infra_block="172.20.0.0/16", loopback_block="172.31.0.0/16"
    )
    allocator.allocate_asn_blocks([1, 2])
    assert allocator.infra_blocks()[1].subnet_of(ipaddress.ip_network("172.20.0.0/16"))


def test_many_asns_fit():
    allocator = PerAsnAllocator()
    allocator.allocate_asn_blocks(range(1, 43))  # the NREN model's 42 ASes
    assert len(allocator.infra_blocks()) == 42


def test_too_many_asns_for_block():
    allocator = PerAsnAllocator(loopback_block="192.168.0.0/28")
    with pytest.raises(AddressAllocationError):
        allocator.allocate_asn_blocks(range(200))


def test_empty_asn_set_is_noop():
    allocator = PerAsnAllocator()
    allocator.allocate_asn_blocks([])
    assert allocator.infra_blocks() == {}


def test_min_infra_prefixlen_enforced():
    allocator = PerAsnAllocator(min_infra_prefixlen=16)
    allocator.allocate_asn_blocks([1, 2])
    assert allocator.infra_blocks()[1].prefixlen == 16
