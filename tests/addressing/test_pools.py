"""Unit tests for deterministic subnet and host pools (§5.3)."""

import ipaddress

import pytest

from repro.addressing import HostPool, SubnetPool
from repro.exceptions import AddressAllocationError


class TestSubnetPool:
    def test_sequential_allocation(self):
        pool = SubnetPool("10.0.0.0/24")
        assert str(pool.subnet(26)) == "10.0.0.0/26"
        assert str(pool.subnet(26)) == "10.0.0.64/26"

    def test_mixed_sizes_align(self):
        pool = SubnetPool("10.0.0.0/24")
        assert str(pool.subnet(30)) == "10.0.0.0/30"
        # A /26 must align to its own boundary, skipping the gap.
        assert str(pool.subnet(26)) == "10.0.0.64/26"

    def test_exhaustion_raises(self):
        pool = SubnetPool("10.0.0.0/30")
        pool.subnet(31)
        pool.subnet(31)
        with pytest.raises(AddressAllocationError, match="exhausted"):
            pool.subnet(31)

    def test_oversized_request_raises(self):
        pool = SubnetPool("10.0.0.0/24")
        with pytest.raises(AddressAllocationError, match="larger than"):
            pool.subnet(16)

    def test_subnet_for_hosts_p2p_gets_slash30(self):
        pool = SubnetPool("10.0.0.0/16")
        assert pool.subnet_for_hosts(2).prefixlen == 30

    def test_subnet_for_hosts_lan_sizing(self):
        pool = SubnetPool("10.0.0.0/16")
        assert pool.subnet_for_hosts(5).prefixlen == 29
        assert pool.subnet_for_hosts(6).prefixlen == 29
        assert pool.subnet_for_hosts(7).prefixlen == 28

    def test_subnet_for_hosts_invalid(self):
        pool = SubnetPool("10.0.0.0/16")
        with pytest.raises(AddressAllocationError):
            pool.subnet_for_hosts(0)

    def test_allocated_recorded_and_disjoint(self):
        pool = SubnetPool("10.0.0.0/20")
        nets = [pool.subnet(26) for _ in range(10)]
        assert len(pool.allocated) == 10
        for i, a in enumerate(nets):
            for b in nets[i + 1:]:
                assert not a.overlaps(b)

    def test_remaining_decreases(self):
        pool = SubnetPool("10.0.0.0/24")
        before = pool.remaining()
        pool.subnet(26)
        assert pool.remaining() == before - 64

    def test_accepts_network_objects(self):
        pool = SubnetPool(ipaddress.ip_network("192.0.2.0/24"))
        assert pool.subnet(30).network_address == ipaddress.ip_address("192.0.2.0")


class TestHostPool:
    def test_sequential_hosts_skip_network_address(self):
        pool = HostPool("192.168.0.0/29")
        assert str(pool.next_address()) == "192.168.0.1"
        assert str(pool.next_address()) == "192.168.0.2"

    def test_exhaustion(self):
        pool = HostPool("192.168.0.0/30")
        pool.next_address()
        pool.next_address()
        with pytest.raises(AddressAllocationError, match="exhausted"):
            pool.next_address()

    def test_allocated_tracking(self):
        pool = HostPool("192.168.0.0/24")
        addresses = [pool.next_address() for _ in range(5)]
        assert pool.allocated == addresses
        assert len(set(addresses)) == 5
