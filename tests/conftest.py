"""Shared fixtures: designed models, rendered labs, booted emulations.

Expensive artefacts (the Small-Internet lab end to end, the Bad-Gadget
labs per platform) are session-scoped so the suite stays fast while
integration tests all exercise the same real pipeline output.
"""

from __future__ import annotations

import pytest

from repro.compilers import platform_compiler
from repro.deployment import LocalEmulationHost
from repro.deployment import deploy as deploy_lab
from repro.design import design_network
from repro.emulation import EmulatedLab
from repro.loader import bad_gadget_topology, fig5_topology, small_internet
from repro.render import render_nidb


@pytest.fixture(scope="session")
def fig5_anm():
    return design_network(fig5_topology())


@pytest.fixture(scope="session")
def si_anm():
    return design_network(small_internet())


@pytest.fixture(scope="session")
def si_nidb(si_anm):
    return platform_compiler("netkit", si_anm).compile()


@pytest.fixture(scope="session")
def si_render(si_nidb, tmp_path_factory):
    return render_nidb(si_nidb, tmp_path_factory.mktemp("si_render"))


@pytest.fixture(scope="session")
def si_lab(si_render):
    return EmulatedLab.boot(si_render.lab_dir)


@pytest.fixture(scope="session")
def si_deployment(si_render, tmp_path_factory):
    host = LocalEmulationHost(
        work_dir=str(tmp_path_factory.mktemp("host")), name="testhost"
    )
    return deploy_lab(si_render.lab_dir, host=host, lab_name="small_internet")


def _gadget_lab(platform, tmp_path_factory):
    anm = design_network(bad_gadget_topology())
    nidb = platform_compiler(platform, anm).compile()
    result = render_nidb(nidb, tmp_path_factory.mktemp("gadget_%s" % platform))
    return EmulatedLab.boot(result.lab_dir, max_rounds=40)


@pytest.fixture(scope="session")
def gadget_lab_quagga(tmp_path_factory):
    return _gadget_lab("netkit", tmp_path_factory)


@pytest.fixture(scope="session")
def gadget_lab_ios(tmp_path_factory):
    return _gadget_lab("dynagen", tmp_path_factory)


@pytest.fixture(scope="session")
def gadget_lab_junos(tmp_path_factory):
    return _gadget_lab("junosphere", tmp_path_factory)


@pytest.fixture(scope="session")
def gadget_lab_cbgp(tmp_path_factory):
    return _gadget_lab("cbgp", tmp_path_factory)


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate the golden rendered-config snapshots under "
        "tests/golden/ instead of comparing against them",
    )
