"""Unit tests for design-vs-measured validation (§5.7, E9)."""

from repro.measurement import (
    ValidationReport,
    measured_ospf_graph,
    validate_bgp_sessions,
    validate_ospf,
)


def test_measured_ospf_graph_shape(si_lab, si_nidb):
    graph = measured_ospf_graph(si_lab, si_nidb)
    # Only routers with OSPF configured appear: the 10 routers of the
    # multi-router ASes (3 + 3 + 4); the four single-router ASes run none.
    assert graph.number_of_nodes() == 10
    assert graph.number_of_edges() == 10


def test_ospf_validation_matches_design(si_lab, si_nidb, si_anm):
    report = validate_ospf(si_lab, si_nidb, si_anm["ospf"])
    assert report.ok, report.summary()
    assert report.missing == set()
    assert report.unexpected == set()
    assert "matches design" in report.summary()


def test_bgp_session_validation_matches_design(si_lab, si_nidb):
    report = validate_bgp_sessions(si_lab, si_nidb)
    assert report.ok, report.summary()
    # 8 eBGP + 12 iBGP bidirectional sessions.
    assert len(report.designed_edges) == 20


def test_validation_detects_missing_adjacency(si_lab, si_nidb, si_anm):
    """Design an extra edge the running network never had: flagged."""
    report = validate_ospf(si_lab, si_nidb, si_anm["ospf"])
    tampered = ValidationReport(
        overlay_id="ospf",
        designed_edges=report.designed_edges | {("as100r1", "as300r1")},
        measured_edges=report.measured_edges,
    )
    assert not tampered.ok
    assert tampered.missing == {("as100r1", "as300r1")}
    assert "1 missing" in tampered.summary()


def test_validation_detects_unexpected_adjacency(si_lab, si_nidb, si_anm):
    report = validate_ospf(si_lab, si_nidb, si_anm["ospf"])
    tampered = ValidationReport(
        overlay_id="ospf",
        designed_edges=report.designed_edges,
        measured_edges=report.measured_edges | {("as1r1", "as30r1")},
    )
    assert tampered.unexpected == {("as1r1", "as30r1")}
