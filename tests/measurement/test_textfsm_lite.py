"""Unit tests for the from-scratch textfsm-lite engine (§5.7)."""

import pytest

from repro.exceptions import TemplateParseError
from repro.measurement import TextFsm, parse

BASIC = """\
Value HOP (\\d+)
Value ADDRESS (\\d+\\.\\d+\\.\\d+\\.\\d+)

Start
  ^\\s*${HOP}\\s+${ADDRESS} -> Record
"""


class TestTemplateCompilation:
    def test_header_order(self):
        fsm = TextFsm(BASIC)
        assert fsm.header() == ["HOP", "ADDRESS"]

    def test_missing_start_state(self):
        with pytest.raises(TemplateParseError, match="Start"):
            TextFsm("Value X (\\d+)\n\nOther\n  ^${X} -> Record\n")

    def test_no_values(self):
        with pytest.raises(TemplateParseError, match="no Values"):
            TextFsm("\nStart\n  ^x\n")

    def test_bad_value_line(self):
        with pytest.raises(TemplateParseError, match="bad Value"):
            TextFsm("Value X \\d+\n\nStart\n  ^a\n")

    def test_unknown_value_option(self):
        with pytest.raises(TemplateParseError, match="unknown Value option"):
            TextFsm("Value Sticky X (\\d+)\n\nStart\n  ^${X}\n")

    def test_undeclared_value_in_rule(self):
        with pytest.raises(TemplateParseError, match="undeclared"):
            TextFsm("Value X (\\d+)\n\nStart\n  ^${Y} -> Record\n")

    def test_rule_must_start_with_caret(self):
        with pytest.raises(TemplateParseError, match="must start"):
            TextFsm("Value X (\\d+)\n\nStart\n  ${X} -> Record\n")

    def test_bad_action(self):
        with pytest.raises(TemplateParseError, match="bad action"):
            TextFsm("Value X (\\d+)\n\nStart\n  ^${X} -> Bogus.Thing\n")

    def test_continue_cannot_change_state(self):
        with pytest.raises(TemplateParseError, match="Continue"):
            TextFsm("Value X (\\d+)\n\nStart\n  ^${X} -> Continue Other\nOther\n  ^x\n")


class TestParsing:
    def test_basic_records(self):
        rows = TextFsm(BASIC).parse_text(" 1  10.0.0.1\n 2  10.0.0.5\n")
        assert rows == [["1", "10.0.0.1"], ["2", "10.0.0.5"]]

    def test_parse_to_dicts(self):
        rows = parse(BASIC, " 3  10.0.0.9\n")
        assert rows == [{"HOP": "3", "ADDRESS": "10.0.0.9"}]

    def test_non_matching_lines_skipped(self):
        rows = TextFsm(BASIC).parse_text("header junk\n 1  10.0.0.1\ntrailer\n")
        assert len(rows) == 1

    def test_filldown(self):
        template = (
            "Value Filldown GROUP (\\w+)\n"
            "Value ITEM (\\d+)\n\n"
            "Start\n"
            "  ^group ${GROUP}\n"
            "  ^item ${ITEM} -> Record\n"
        )
        rows = parse(template, "group alpha\nitem 1\nitem 2\ngroup beta\nitem 3\n")
        assert rows == [
            {"GROUP": "alpha", "ITEM": "1"},
            {"GROUP": "alpha", "ITEM": "2"},
            {"GROUP": "beta", "ITEM": "3"},
        ]

    def test_required_suppresses_partial_rows(self):
        template = (
            "Value Required ADDRESS (\\d+\\.\\d+\\.\\d+\\.\\d+)\n"
            "Value NAME (\\w+)\n\n"
            "Start\n"
            "  ^${NAME}$$ -> Record\n"
            "  ^${NAME} ${ADDRESS} -> Record\n"
        )
        rows = parse(template, "onlyname\nhost 10.0.0.1\n")
        assert rows == [{"NAME": "host", "ADDRESS": "10.0.0.1"}]

    def test_list_values_accumulate(self):
        template = (
            "Value NAME (\\w+)\n"
            "Value List MEMBERS (\\w+)\n\n"
            "Start\n"
            "  ^group ${NAME}\n"
            "  ^member ${MEMBERS}\n"
            "  ^end -> Record\n"
        )
        rows = parse(template, "group g1\nmember a\nmember b\nend\n")
        assert rows == [{"NAME": "g1", "MEMBERS": ["a", "b"]}]

    def test_state_transition(self):
        template = (
            "Value X (\\d+)\n\n"
            "Start\n"
            "  ^BEGIN -> Data\n"
            "Data\n"
            "  ^x=${X} -> Record\n"
        )
        rows = parse(template, "x=1\nBEGIN\nx=2\n")
        assert rows == [{"X": "2"}]

    def test_eof_state_stops_parsing(self):
        template = (
            "Value X (\\d+)\n\n"
            "Start\n"
            "  ^x=${X} -> Record\n"
            "  ^STOP -> EOF\n"
        )
        rows = parse(template, "x=1\nSTOP\nx=2\n")
        assert rows == [{"X": "1"}]

    def test_implicit_eof_records_partial_row(self):
        template = "Value X (\\d+)\n\nStart\n  ^x=${X}\n"
        rows = parse(template, "x=9\n")
        assert rows == [{"X": "9"}]

    def test_continue_runs_multiple_rules_on_one_line(self):
        template = (
            "Value A (\\d+)\n"
            "Value B (\\d+)\n\n"
            "Start\n"
            "  ^${A}- -> Continue\n"
            "  ^\\d+-${B} -> Record\n"
        )
        rows = parse(template, "12-34\n")
        assert rows == [{"A": "12", "B": "34"}]

    def test_clear_action(self):
        template = (
            "Value X (\\d+)\n\n"
            "Start\n"
            "  ^reset -> Clear\n"
            "  ^x=${X}\n"
            "  ^done -> Record\n"
        )
        rows = parse(template, "x=5\nreset\ndone\n")
        assert rows == []

    def test_error_action_raises(self):
        template = "Value X (\\d+)\n\nStart\n  ^bad -> Error\n  ^x=${X} -> Record\n"
        with pytest.raises(TemplateParseError, match="Error action"):
            parse(template, "bad\n")

    def test_empty_columns_for_unset_values(self):
        template = (
            "Value A (\\d+)\n"
            "Value B (\\d+)\n\n"
            "Start\n"
            "  ^a=${A} -> Record\n"
        )
        fsm = TextFsm(template)
        assert fsm.parse_text("a=1\n") == [["1", ""]]

    def test_reuse_across_parses(self):
        fsm = TextFsm(BASIC)
        assert fsm.parse_text(" 1  10.0.0.1\n")
        assert fsm.parse_text(" 2  10.0.0.2\n") == [["2", "10.0.0.2"]]
