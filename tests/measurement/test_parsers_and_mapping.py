"""Unit tests for bundled templates, IP mapping, and the client (§5.7)."""

import pytest

from repro.measurement import (
    IpMapper,
    MeasurementClient,
    map_traceroute,
    parse_bgp_summary,
    parse_ospf_neighbors,
    parse_ping,
    parse_traceroute,
    send,
    template_for_command,
)
from repro.exceptions import MeasurementError

TRACEROUTE_OUTPUT = """\
traceroute to 192.168.128.2 (192.168.128.2), 30 hops max, 60 byte packets
 1  10.6.0.1  0.920 ms  0.057 ms  0.094 ms
 2  10.6.0.6  0.438 ms  0.475 ms  0.512 ms
 3  192.168.128.2  0.491 ms  0.528 ms  0.565 ms
"""


class TestBundledTemplates:
    def test_traceroute_rows(self):
        rows = parse_traceroute(TRACEROUTE_OUTPUT)
        assert [row["HOP"] for row in rows] == ["1", "2", "3"]
        assert rows[0]["ADDRESS"] == "10.6.0.1"
        assert rows[0]["DESTINATION"] == "192.168.128.2"

    def test_traceroute_star_hops(self):
        rows = parse_traceroute(
            "traceroute to x (10.0.0.1), 30 hops max, 60 byte packets\n 1  * * *\n"
        )
        assert rows and rows[0]["HOP"] == "1"

    def test_ospf_neighbor_rows(self, si_lab):
        out = si_lab.vm("as100r1").run("show ip ospf neighbor")
        rows = parse_ospf_neighbors(out)
        assert len(rows) == 2
        assert all(row["STATE"].startswith("Full") for row in rows)

    def test_bgp_summary_rows(self, si_lab):
        out = si_lab.vm("as100r1").run("show ip bgp summary")
        rows = parse_bgp_summary(out)
        assert len(rows) == 3
        assert rows[0]["LOCAL_AS"] == "100"

    def test_ping_rows(self, si_lab):
        out = si_lab.vm("as100r1").run("ping -c 1 192.168.128.2")
        rows = parse_ping(out)
        assert rows == [
            {
                "DESTINATION": "192.168.128.2",
                "TRANSMITTED": "1",
                "RECEIVED": "1",
                "LOSS": "0",
            }
        ]

    def test_template_selection(self):
        assert template_for_command("traceroute -naU 1.2.3.4") is not None
        assert template_for_command("show ip ospf neighbor") is not None
        assert template_for_command("show ip bgp summary") is not None
        assert template_for_command("show ip bgp") is not None
        assert template_for_command("hostname") is None


class TestIpMapper:
    def test_interface_and_loopback_lookup(self, si_nidb):
        mapper = IpMapper(si_nidb)
        device = si_nidb.node("as100r1")
        assert mapper.device_for(device.loopback) == "as100r1"
        first_interface = device.physical_interfaces()[0]
        assert mapper.device_for(first_interface.ip_address) == "as100r1"
        assert mapper.asn_for(device.loopback) == 100
        assert mapper.interface_for(device.loopback) == "lo"

    def test_unknown_address(self, si_nidb):
        mapper = IpMapper(si_nidb)
        assert mapper.device_for("8.8.8.8") is None

    def test_map_path_keeps_unknowns(self, si_nidb):
        mapper = IpMapper(si_nidb)
        device = si_nidb.node("as1r1")
        path = mapper.map_path([str(device.loopback), "8.8.8.8", "*"])
        assert path == ["as1r1", "8.8.8.8", "*"]

    def test_as_path_dedupes_consecutive(self, si_nidb):
        mapper = IpMapper(si_nidb)
        a = str(si_nidb.node("as100r1").loopback)
        b = str(si_nidb.node("as100r2").loopback)
        c = str(si_nidb.node("as1r1").loopback)
        assert mapper.as_path([a, b, c]) == [100, 1]

    def test_map_traceroute_helper(self, si_nidb, si_lab):
        out = si_lab.vm("as300r2").run("traceroute -naU 192.168.128.2")
        mapped = map_traceroute(si_nidb, parse_traceroute(out))
        assert mapped["devices"][-1] == "as100r2"
        assert mapped["as_path"][-1] == 100


class TestMeasurementClient:
    def test_fan_out_traceroute(self, si_lab, si_nidb):
        client = MeasurementClient(si_lab, si_nidb)
        run = client.send(
            "traceroute -naU 192.168.128.2", ["as300r2", "as20r1"]
        )
        assert len(run.results) == 2
        by_machine = run.by_machine()
        assert by_machine["as300r2"].mapped_path[-1] == "as100r2"
        assert by_machine["as300r2"].as_path[0] in (200, 300, 40, 30)
        assert all(result.parsed for result in run.results)

    def test_paper_walkthrough_api(self, si_lab, si_nidb):
        """§6.1: measure.send(nidb, cmd, hosts) with TAP addresses."""
        hosts = [device.tap.ip for device in si_nidb.routers()][:3]
        run = send(si_nidb, "traceroute -naU 192.168.128.1", hosts, lab=si_lab)
        assert len(run.results) == 3
        assert all(result.machine for result in run.results)

    def test_paths_collector(self, si_lab, si_nidb):
        client = MeasurementClient(si_lab, si_nidb)
        run = client.send("traceroute -naU 192.168.0.1", ["as100r1", "as300r3"])
        assert len(run.paths()) == 2

    def test_show_commands_parsed_without_mapping(self, si_lab, si_nidb):
        client = MeasurementClient(si_lab, si_nidb)
        run = client.send("show ip ospf neighbor", ["as100r1"])
        assert run.results[0].parsed
        assert run.results[0].mapped_path == []

    def test_unknown_host_recorded_as_failure(self, si_lab, si_nidb):
        # One bad host no longer aborts the fan-out: its result carries
        # the error while the good host is still measured.
        client = MeasurementClient(si_lab, si_nidb)
        run = client.send("hostname", ["10.99.99.99", "as100r1"])
        assert len(run.results) == 2
        failed, good = run.results
        assert not failed.ok and "neither" in failed.error
        assert good.ok and good.output
        assert run.failures() == [failed]
        assert not run.ok
