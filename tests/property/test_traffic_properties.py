"""Property tests for the traffic engine's conservation laws.

Whatever workload a profile describes:

* delivered flows/bytes never exceed offered flows/bytes;
* a network whose links dwarf the offered load delivers everything —
  loss only ever comes from congestion (or faults), never from the
  bookkeeping;
* the report is bit-identical when re-run with the same seed.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.emulation import EmulatedLab
from repro.traffic import TrafficProfile, run_traffic

_class_strategy = st.one_of(
    st.fixed_dictionaries(
        {
            "kind": st.just("request_response"),
            "qps": st.floats(min_value=1.0, max_value=400.0),
            "request_bytes": st.integers(min_value=40, max_value=2000),
            "response_bytes": st.integers(min_value=100, max_value=40000),
            "pair_count": st.integers(min_value=1, max_value=32),
        }
    ),
    st.fixed_dictionaries(
        {
            "kind": st.just("bulk"),
            "flows": st.integers(min_value=1, max_value=60),
            "bytes": st.integers(min_value=1000, max_value=2_000_000),
            "pair_count": st.integers(min_value=1, max_value=16),
        }
    ),
    st.fixed_dictionaries(
        {
            "kind": st.just("ramp"),
            "users": st.integers(min_value=1, max_value=60),
            "qps": st.floats(min_value=0.5, max_value=8.0),
            "ramp_seconds": st.floats(min_value=0.0, max_value=2.0),
            "pair_count": st.integers(min_value=1, max_value=32),
        }
    ),
)

_profile_strategy = st.builds(
    lambda classes, duration: TrafficProfile.from_dict(
        {
            "name": "prop",
            "duration": duration,
            # far more capacity than any generated class can offer
            "default_capacity_mbps": 100000.0,
            "classes": [
                dict(entry, name="c%d" % index)
                for index, entry in enumerate(classes)
            ],
        }
    ),
    st.lists(_class_strategy, min_size=1, max_size=3),
    st.floats(min_value=0.5, max_value=4.0),
)

_settings = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@pytest.fixture(scope="module")
def lab(si_render):
    return EmulatedLab.boot(si_render.lab_dir)


@_settings
@given(profile=_profile_strategy, seed=st.integers(min_value=0, max_value=2**16))
def test_conservation_and_unsaturated_delivery(lab, profile, seed):
    report = run_traffic(lab, profile, seed=seed)

    # conservation: nothing delivered that was not offered
    assert report.delivered_flows <= report.offered_flows
    assert report.delivered_bytes <= report.offered_bytes
    for entry in report.classes:
        assert entry.delivered_flows <= entry.offered_flows
        assert (
            entry.delivered_flows + entry.dropped_flows + entry.unroutable_flows
            == entry.offered_flows
        )
        assert 0.0 <= entry.loss_rate <= 1.0

    # no link saturated (capacity dwarfs offered load) => no loss at all
    assert all(row["utilization"] < 0.5 for row in report.links)
    assert report.loss_rate == 0.0
    assert report.delivered_flows == report.offered_flows


@_settings
@given(profile=_profile_strategy, seed=st.integers(min_value=0, max_value=2**16))
def test_same_seed_reruns_bit_identical(lab, profile, seed):
    assert (
        run_traffic(lab, profile, seed=seed).to_json()
        == run_traffic(lab, profile, seed=seed).to_json()
    )
