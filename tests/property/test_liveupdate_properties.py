"""Property-based tests: the live-update differ and applier.

The differ's contract is checked over *random* design-edit sequences
drawn from the same :mod:`repro.liveupdate.edits` vocabulary the CLI
and campaign layer accept:

* pure (render + parse only): ``diff(A, B)`` simulates forward to B
  and its inverse back to A bit-exactly; diffing is deterministic;
  a design diffed against itself is empty;
* booted: applying the plan to a *running* lab and then its inverse
  restores the original aggregate routing state bit-identically, and
  the live-applied lab is equivalent to a fresh boot of the edited
  design — for arbitrary edit sequences, not just the curated cases
  in the differential suite.
"""

from __future__ import annotations

import tempfile

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.emulation import EmulatedLab
from repro.emulation.lab import detect_platform
from repro.emulation.parsing import LAB_PARSERS
from repro.exceptions import LiveUpdateError
from repro.liveupdate import (
    aggregate_state,
    apply_edits,
    apply_plan,
    diff_designs,
    lab_devices_to_dicts,
    simulate_plan,
    verify_equivalence,
)
from repro.loader import small_internet

# The Small Internet's fixed structure, so strategies only propose
# edits the vocabulary can accept.
SI_EDGES = [
    ("as100r1", "as100r2"), ("as100r1", "as100r3"), ("as100r1", "as20r2"),
    ("as100r2", "as100r3"), ("as100r3", "as200r1"), ("as1r1", "as20r3"),
    ("as1r1", "as30r1"), ("as1r1", "as40r1"), ("as200r1", "as300r4"),
    ("as20r1", "as20r2"), ("as20r1", "as20r3"), ("as20r2", "as20r3"),
    ("as300r1", "as300r2"), ("as300r1", "as300r4"), ("as300r1", "as30r1"),
    ("as300r2", "as300r3"), ("as300r2", "as40r1"), ("as300r3", "as300r4"),
]
#: Links on a cycle — removing one never disconnects the graph.
SAFE_REMOVE_LINKS = [
    ("as100r1", "as100r2"), ("as20r1", "as20r2"), ("as300r1", "as300r4"),
]
#: Nodes whose neighbors stay connected without them.
SAFE_REMOVE_NODES = ["as100r2", "as20r1", "as300r3"]
#: Node pairs with no existing link (mix of intra- and inter-AS).
NON_EDGES = [
    ("as20r1", "as100r1"), ("as30r1", "as40r1"),
    ("as100r2", "as200r1"), ("as300r1", "as300r3"),
]

cost_edits = st.builds(
    lambda link, value: {"kind": "cost", "link": list(link), "value": value},
    st.sampled_from(SI_EDGES), st.integers(min_value=1, max_value=64),
)
add_link_edits = st.builds(
    lambda link, cost: {"kind": "add_link", "link": list(link), "cost": cost},
    st.sampled_from(NON_EDGES), st.integers(min_value=1, max_value=20),
)
remove_link_edits = st.sampled_from(SAFE_REMOVE_LINKS).map(
    lambda link: {"kind": "remove_link", "link": list(link)}
)
remove_node_edits = st.sampled_from(SAFE_REMOVE_NODES).map(
    lambda node: {"kind": "remove_node", "node": node}
)
add_node_edits = st.builds(
    lambda like, attach, cost: {
        "kind": "add_node", "node": "px1", "like": like,
        "attach_to": list(attach), "cost": cost,
    },
    st.sampled_from(["as100r3", "as300r2"]),
    st.lists(
        st.sampled_from(["as100r1", "as300r1", "as20r2"]),
        min_size=1, max_size=2, unique=True,
    ),
    st.integers(min_value=1, max_value=10),
)

any_edit = st.one_of(
    cost_edits, add_link_edits, remove_link_edits,
    remove_node_edits, add_node_edits,
)

_lab_settings = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


def design_pair(edits):
    """(old, new) designs, skipping sequences the vocabulary rejects
    (e.g. a cost edit on a link a previous edit removed)."""
    old = small_internet()
    try:
        new = apply_edits(old, edits)
    except LiveUpdateError:
        assume(False)
    return old, new


def parse_devices(lab_dir):
    return lab_devices_to_dicts(LAB_PARSERS[detect_platform(lab_dir)](lab_dir))


class TestPureDiffProperties:
    @settings(max_examples=25, deadline=None)
    @given(edits=st.lists(any_edit, min_size=1, max_size=3))
    def test_plan_round_trips_forward_and_back(self, edits):
        old, new = design_pair(edits)
        with tempfile.TemporaryDirectory() as work:
            delta = diff_designs(old, new, "netkit", work_dir=work)
            old_devices = parse_devices(delta.old_dir)
            new_devices = parse_devices(delta.new_dir)

            forward, skipped = simulate_plan(old_devices, delta.plan.operations)
            assert not skipped
            assert forward == new_devices

            backward, skipped = simulate_plan(
                new_devices, delta.plan.inverse().operations
            )
            assert not skipped
            assert backward == old_devices

            inverse = delta.plan.inverse()
            assert inverse.inverse().to_dict() == delta.plan.to_dict()

    @settings(max_examples=10, deadline=None)
    @given(edits=st.lists(any_edit, min_size=1, max_size=2))
    def test_diffing_is_deterministic(self, edits):
        old, new = design_pair(edits)
        with tempfile.TemporaryDirectory() as first, \
                tempfile.TemporaryDirectory() as second:
            a = diff_designs(old, new, "netkit", work_dir=first)
            b = diff_designs(old, new, "netkit", work_dir=second)
            assert a.plan.to_dict() == b.plan.to_dict()
            assert a.plan.plan_hash() == b.plan.plan_hash()

    @settings(max_examples=10, deadline=None)
    @given(edits=st.lists(any_edit, min_size=1, max_size=2))
    def test_edited_design_diffs_empty_against_itself(self, edits):
        _old, new = design_pair(edits)
        with tempfile.TemporaryDirectory() as work:
            delta = diff_designs(new, new, "netkit", work_dir=work)
            assert delta.plan.is_empty


class TestBootedLiveUpdateProperties:
    @_lab_settings
    @given(edits=st.lists(any_edit, min_size=1, max_size=2))
    def test_apply_then_inverse_restores_state(self, si_lab, edits):
        old, new = design_pair(edits)
        with tempfile.TemporaryDirectory() as work:
            delta = diff_designs(old, new, "netkit", work_dir=work)
            lab = si_lab.fork()
            before = aggregate_state(lab)
            apply_plan(lab, delta.plan)
            apply_plan(lab, delta.plan.inverse())
            assert aggregate_state(lab) == before

    @_lab_settings
    @given(edits=st.lists(any_edit, min_size=1, max_size=2))
    def test_live_apply_equivalent_to_fresh_boot(self, si_lab, edits):
        old, new = design_pair(edits)
        with tempfile.TemporaryDirectory() as work:
            delta = diff_designs(old, new, "netkit", work_dir=work)
            lab = si_lab.fork()
            apply_plan(lab, delta.plan)
            oracle = EmulatedLab.boot(delta.new_dir)
            equivalence = verify_equivalence(lab, oracle)
            assert equivalence.ok, equivalence.summary()
