"""Property-based tests: address allocation invariants (§5.3).

The paper's stated allocation requirements are *uniqueness* and
*consistency*; these properties check them over randomly generated
request sequences and topologies.
"""

import ipaddress

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.addressing import HostPool, PerAsnAllocator, SubnetPool
from repro.design import collision_domains, design_network, interface_address
from repro.exceptions import AddressAllocationError
from repro.loader import multi_as_topology


@given(st.lists(st.integers(min_value=24, max_value=30), min_size=1, max_size=40))
def test_subnet_pool_disjoint_and_contained(prefixlens):
    pool = SubnetPool("10.0.0.0/16")
    allocated = []
    for prefixlen in prefixlens:
        try:
            allocated.append(pool.subnet(prefixlen))
        except AddressAllocationError:
            break
    parent = ipaddress.ip_network("10.0.0.0/16")
    for subnet in allocated:
        assert subnet.subnet_of(parent)
    for i, a in enumerate(allocated):
        for b in allocated[i + 1:]:
            assert not a.overlaps(b)


@given(st.lists(st.integers(min_value=24, max_value=30), min_size=1, max_size=20))
def test_subnet_pool_deterministic(prefixlens):
    first = SubnetPool("10.0.0.0/16")
    second = SubnetPool("10.0.0.0/16")
    for prefixlen in prefixlens:
        try:
            a = first.subnet(prefixlen)
        except AddressAllocationError:
            a = None
        try:
            b = second.subnet(prefixlen)
        except AddressAllocationError:
            b = None
        assert a == b


@given(st.integers(min_value=1, max_value=200))
def test_host_pool_unique(count):
    pool = HostPool("10.0.0.0/22")
    addresses = [pool.next_address() for _ in range(count)]
    assert len(set(addresses)) == count
    assert all(address in ipaddress.ip_network("10.0.0.0/22") for address in addresses)


@given(st.sets(st.integers(min_value=1, max_value=64000), min_size=1, max_size=30))
def test_allocator_blocks_disjoint_for_any_asn_set(asns):
    allocator = PerAsnAllocator()
    allocator.allocate_asn_blocks(asns)
    blocks = list(allocator.infra_blocks().values()) + list(
        allocator.loopback_blocks().values()
    )
    for i, a in enumerate(blocks):
        for b in blocks[i + 1:]:
            assert not a.overlaps(b)


@given(st.integers(min_value=1, max_value=14), st.integers(min_value=0, max_value=2 ** 31))
def test_subnet_for_hosts_capacity(n_hosts, _seed):
    pool = SubnetPool("10.0.0.0/8")
    subnet = pool.subnet_for_hosts(n_hosts)
    usable = subnet.num_addresses - 2
    assert usable >= n_hosts
    # And no more than twice oversized (smallest fitting power of two).
    assert subnet.num_addresses <= 2 * (n_hosts + 2)


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=0, max_value=10_000),
)
def test_designed_addressing_invariants(n_ases, routers_per_as, seed):
    """End-to-end allocation on random topologies: global uniqueness."""
    anm = design_network(
        multi_as_topology(n_ases=n_ases, routers_per_as=routers_per_as, seed=seed),
        rules=("phy", "ipv4"),
    )
    g_ip = anm["ipv4"]
    assigned = []
    for domain in collision_domains(g_ip):
        for device in domain.neighbors():
            address, _ = interface_address(g_ip, device, domain)
            assert address in domain.subnet
            assigned.append(address)
    loopbacks = [node.loopback for node in g_ip if node.loopback is not None]
    assigned.extend(loopbacks)
    assert len(assigned) == len(set(assigned))
    subnets = [domain.subnet for domain in collision_domains(g_ip)]
    for i, a in enumerate(subnets):
        for b in subnets[i + 1:]:
            assert not a.overlaps(b)
