"""Differential property tests: fast control-plane paths vs oracles.

The emulation layer ships two implementations of each expensive step —
incremental SPF vs full recompute (``spf_mode``), event-driven BGP vs
fixed global rounds (``bgp_mode``) — and the fast paths are only
admissible because they are *bit-identical* to the naive reference
engines.  These tests pin that equivalence down:

* random synthetic topologies + random link toggles: the incremental
  IGP produces the same routing table as a from-scratch recompute
  after every topology delta;
* random fault schedules against the Small Internet: a fast-mode lab
  and a reference-mode lab walked through the same schedule report the
  same per-incident convergence verdicts, final BGP state, IGP routes,
  and reachability;
* the §7.2 Bad-Gadget oscillator under a fixed fault schedule: both
  mode combinations agree on every verdict and on the detected
  oscillation period.
"""

from __future__ import annotations

import ipaddress

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compilers import platform_compiler
from repro.design import design_network
from repro.emulation import EmulatedLab, reachability_summary
from repro.emulation.intent import DeviceIntent, InterfaceIntent, LabIntent, OspfIntent
from repro.emulation.network import EmulatedNetwork
from repro.emulation.ospf_engine import IgpState
from repro.loader import bad_gadget_topology
from repro.render import render_nidb
from repro.resilience import FaultEvent, FaultSchedule, apply_schedule

_lab_settings = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


# ---------------------------------------------------------------------------
# Random topologies: incremental SPF vs full recompute
# ---------------------------------------------------------------------------

def _mesh_intent(n_routers: int, chords: list[tuple[int, int]],
                 second_area: frozenset[int]) -> tuple[LabIntent, list[tuple[str, str, str]]]:
    """A synthetic OSPF lab: a ring of routers plus chord links.

    Returns the intent and the edge list as (left, right, segment key)
    triples so tests can toggle individual links.  Edges whose index is
    in ``second_area`` are advertised in area 1 (their endpoints become
    ABRs), exercising the inter-area invalidation paths.
    """
    names = ["r%d" % i for i in range(n_routers)]
    edges = [(i, (i + 1) % n_routers) for i in range(n_routers)]
    for chord in chords:
        if chord not in edges and (chord[1], chord[0]) not in edges:
            edges.append(chord)
    lab = LabIntent(platform="netkit")
    for index, name in enumerate(names):
        device = DeviceIntent(name=name, vendor="quagga")
        device.ospf = OspfIntent(router_id="10.255.0.%d" % (index + 1))
        lab.devices[name] = device
    edge_keys = []
    for edge_index, (left, right) in enumerate(edges):
        subnet = ipaddress.ip_network("10.0.%d.0/30" % edge_index)
        hosts = list(subnet.hosts())
        key = "cd%d" % edge_index
        area = 1 if edge_index in second_area else 0
        for position, router_index in enumerate((left, right)):
            device = lab.devices[names[router_index]]
            device.interfaces.append(
                InterfaceIntent(
                    name="eth%d" % len(device.interfaces),
                    ip_address=hosts[position],
                    prefixlen=30,
                    collision_domain=key,
                    ospf_cost=1 + (edge_index % 3),
                )
            )
            device.ospf.networks.append((subnet, area))
        edge_keys.append((names[left], names[right], key))
    return lab, edge_keys


class TestIncrementalSpfDifferential:
    """RIB equality between spf_mode="incremental" and spf_mode="full"."""

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_random_link_toggles_identical_ribs(self, data):
        n_routers = data.draw(st.integers(min_value=4, max_value=8), label="n")
        chords = data.draw(
            st.lists(
                st.tuples(
                    st.integers(0, n_routers - 1), st.integers(0, n_routers - 1)
                ).filter(lambda pair: pair[0] < pair[1] - 1),
                max_size=3,
                unique=True,
            ),
            label="chords",
        )
        n_edges = n_routers + len(chords)  # upper bound; duplicates dropped
        second_area = frozenset(
            data.draw(
                st.sets(st.integers(0, n_edges - 1), max_size=2),
                label="second_area",
            )
        )
        intent, edges = _mesh_intent(n_routers, chords, second_area)
        toggles = data.draw(
            st.lists(st.integers(0, len(edges) - 1), min_size=1, max_size=6),
            label="toggles",
        )

        incremental = IgpState(EmulatedNetwork(intent), spf_mode="incremental")
        full = IgpState(EmulatedNetwork(intent), spf_mode="full")
        disabled: set[tuple[str, str]] = set()
        for edge_index in toggles:
            left, right, key = edges[edge_index]
            attachments = {(left, key), (right, key)}
            if attachments <= disabled:
                disabled -= attachments
            else:
                disabled |= attachments
            network = EmulatedNetwork(intent, disabled_attachments=disabled)
            incremental.rebuild(network)
            full.rebuild(EmulatedNetwork(intent, disabled_attachments=disabled))
            assert incremental.area_adjacency == full.area_adjacency
            for machine in sorted(network.machines):
                assert incremental.routes(machine) == full.routes(machine), (
                    "incremental SPF diverged from full recompute for %r "
                    "after toggling %s" % (machine, edges[edge_index])
                )

    @settings(max_examples=10, deadline=None)
    @given(
        n_routers=st.integers(min_value=4, max_value=7),
        down_edge=st.integers(min_value=0, max_value=6),
    )
    def test_warm_cache_survives_unrelated_queries(self, n_routers, down_edge):
        """Querying before and after a fault never changes the answer."""
        intent, edges = _mesh_intent(n_routers, [], frozenset())
        down_edge %= len(edges)
        incremental = IgpState(EmulatedNetwork(intent), spf_mode="incremental")
        for machine in sorted(incremental.network.machines):
            incremental.routes(machine)  # warm every cache entry
        left, right, key = edges[down_edge]
        network = EmulatedNetwork(
            intent, disabled_attachments={(left, key), (right, key)}
        )
        incremental.rebuild(network)
        cold = IgpState(
            EmulatedNetwork(
                intent, disabled_attachments={(left, key), (right, key)}
            ),
            spf_mode="full",
        )
        for machine in sorted(network.machines):
            assert incremental.routes(machine) == cold.routes(machine)


# ---------------------------------------------------------------------------
# Small Internet: random fault schedules, fast lab vs reference lab
# ---------------------------------------------------------------------------

SI_LINKS = [
    ("as100r1", "as100r2"),
    ("as100r1", "as100r3"),
    ("as100r2", "as100r3"),
]
SI_STUBS = ["as1r1", "as20r1", "as30r1", "as40r1"]

_si_events = st.one_of(
    st.tuples(st.sampled_from(["link_down", "link_up"]), st.sampled_from(SI_LINKS)),
    st.tuples(
        st.sampled_from(["node_down", "node_up"]),
        st.sampled_from(SI_STUBS).map(lambda name: (name,)),
    ),
)


@pytest.fixture(scope="module")
def si_mode_labs(si_render):
    """The Small Internet booted twice: fast paths vs reference oracles.

    ``spf_mode`` is pinned to ``"incremental"`` because the default
    (``"auto"``) resolves to ``"full"`` below the auto threshold, which
    would collapse the SPF differential on this small topology.
    """
    fast = EmulatedLab.boot(si_render.lab_dir, spf_mode="incremental")
    reference = EmulatedLab.boot(
        si_render.lab_dir, spf_mode="full", bgp_mode="rounds"
    )
    assert fast.spf_mode == "incremental" and fast.bgp_mode == "events"
    assert fast.bgp_result.selected == reference.bgp_result.selected
    return fast, reference


def test_auto_spf_mode_resolves_by_topology_size(si_render):
    """The default ``"auto"`` picks full SPF below the machine threshold
    (recomputing a small graph is cheaper than maintaining incremental
    state) and incremental above it, and keeps the requested mode
    visible on the lab."""
    from repro.emulation.ospf_engine import SPF_AUTO_THRESHOLD, resolve_spf_mode

    lab = EmulatedLab.boot(si_render.lab_dir)
    assert lab.spf_mode == "auto"
    machines = len(lab.network.all_machines)
    expected = "full" if machines < SPF_AUTO_THRESHOLD else "incremental"
    assert lab.igp.spf_mode == expected
    assert lab.igp.requested_spf_mode == "auto"
    assert resolve_spf_mode("incremental", lab.network) == "incremental"
    assert resolve_spf_mode("full", lab.network) == "full"


class TestFaultScheduleDifferential:
    @_lab_settings
    @given(events=st.lists(_si_events, min_size=1, max_size=4))
    def test_random_schedules_identical_outcomes(self, si_mode_labs, events):
        schedule = FaultSchedule(
            FaultEvent(at_round=index, kind=kind, target=tuple(target))
            for index, (kind, target) in enumerate(events)
        )
        fast_parent, reference_parent = si_mode_labs
        fast = fast_parent.fork()
        reference = reference_parent.fork()
        assert fast.spf_mode == "incremental" and fast.bgp_mode == "events"
        assert reference.spf_mode == "full" and reference.bgp_mode == "rounds"

        fast_report = apply_schedule(fast, schedule)
        reference_report = apply_schedule(reference, schedule)

        assert len(fast_report.steps) == len(reference_report.steps)
        for fast_step, reference_step in zip(
            fast_report.steps, reference_report.steps
        ):
            assert fast_step.report.to_dict() == reference_step.report.to_dict()
        assert fast.bgp_result.selected == reference.bgp_result.selected
        assert fast.bgp_result.converged == reference.bgp_result.converged
        assert fast.bgp_result.rounds == reference.bgp_result.rounds
        assert (
            fast.bgp_result.detected_period
            == reference.bgp_result.detected_period
        )
        for machine in sorted(fast.network.machines):
            assert fast.igp.routes(machine) == reference.igp.routes(machine)
        assert reachability_summary(fast) == reachability_summary(reference)

    @_lab_settings
    @given(link=st.sampled_from(SI_LINKS))
    def test_down_up_round_trip_restores_both_modes(self, si_mode_labs, link):
        schedule = FaultSchedule(
            [
                FaultEvent(at_round=0, kind="link_down", target=link),
                FaultEvent(at_round=1, kind="link_up", target=link),
            ]
        )
        fast_parent, reference_parent = si_mode_labs
        fast = fast_parent.fork()
        apply_schedule(fast, schedule)
        assert fast.bgp_result.selected == fast_parent.bgp_result.selected
        assert reachability_summary(fast) == reachability_summary(fast_parent)


# ---------------------------------------------------------------------------
# §7.2 Bad Gadget: the oscillator under a fixed fault schedule
# ---------------------------------------------------------------------------

GADGET_SCHEDULE = """
# perturb the oscillator: drop rr1's preferred exit, restore it,
# then bounce the origin that feeds every client.
at 1 link_down rr1 c2
at 3 link_up rr1 c2
at 5 node_down origin
at 7 node_up origin
"""


class TestBadGadgetDifferential:
    @pytest.fixture(scope="class")
    def gadget_dir(self, tmp_path_factory):
        anm = design_network(bad_gadget_topology())
        nidb = platform_compiler("dynagen", anm).compile()
        result = render_nidb(nidb, tmp_path_factory.mktemp("gadget_diff"))
        return result.lab_dir

    def test_fault_schedule_verdicts_and_period_match(self, gadget_dir):
        schedule = FaultSchedule.parse(GADGET_SCHEDULE)
        fast = EmulatedLab.boot(gadget_dir, max_rounds=40)
        reference = EmulatedLab.boot(
            gadget_dir, max_rounds=40, spf_mode="full", bgp_mode="rounds"
        )
        # The gadget oscillates on IOS before any fault is injected,
        # and both engines must detect the same cycle length.
        assert fast.oscillating and reference.oscillating
        assert (
            fast.bgp_result.detected_period
            == reference.bgp_result.detected_period
            > 1
        )

        fast_report = apply_schedule(fast, schedule)
        reference_report = apply_schedule(reference, schedule)
        for fast_step, reference_step in zip(
            fast_report.steps, reference_report.steps
        ):
            assert fast_step.report.to_dict() == reference_step.report.to_dict()
        assert fast.bgp_result.selected == reference.bgp_result.selected
        assert (
            fast.bgp_result.detected_period
            == reference.bgp_result.detected_period
        )
        # With the origin restored and the preferred exit back, the
        # gadget resumes oscillating in both engines.
        assert fast.oscillating == reference.oscillating

    def test_per_round_history_identical(self, gadget_dir):
        """Not just the endpoints: every intermediate round matches."""
        fast = EmulatedLab.boot(gadget_dir, max_rounds=40, keep_history=True)
        reference = EmulatedLab.boot(
            gadget_dir,
            max_rounds=40,
            keep_history=True,
            spf_mode="full",
            bgp_mode="rounds",
        )
        assert fast.bgp_result.history == reference.bgp_result.history
