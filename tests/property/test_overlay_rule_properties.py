"""Property-based tests: the overlay derivation algebra (§4.2.1).

For arbitrary annotated input topologies, the three rules must satisfy
the set identities the paper's equations imply:

* E_ospf and E_ebgp partition the (router-router) physical edges by
  ASN equality;
* E_ibgp is exactly the same-ASN complete graph per AS.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.design import design_network, ibgp_session_count
from repro.loader import multi_as_topology


def _designed(n_ases, routers_per_as, seed):
    return design_network(
        multi_as_topology(n_ases=n_ases, routers_per_as=routers_per_as, seed=seed),
        rules=("phy", "ipv4", "ospf", "ebgp", "ibgp"),
    )


topologies = st.tuples(
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=0, max_value=100_000),
)


@settings(max_examples=20, deadline=None)
@given(topologies)
def test_ospf_ebgp_partition_physical_edges(params):
    anm = _designed(*params)
    phy_pairs = {
        tuple(sorted((str(e.src_id), str(e.dst_id)))) for e in anm["phy"].edges()
    }
    ospf_pairs = {
        tuple(sorted((str(e.src_id), str(e.dst_id)))) for e in anm["ospf"].edges()
    }
    ebgp_pairs = {
        tuple(sorted((str(e.src_id), str(e.dst_id)))) for e in anm["ebgp"].edges()
    }
    assert ospf_pairs | ebgp_pairs == phy_pairs
    assert ospf_pairs & ebgp_pairs == set()


@settings(max_examples=20, deadline=None)
@given(topologies)
def test_ibgp_is_complete_per_as(params):
    n_ases, routers_per_as, _ = params
    anm = _designed(*params)
    g_ibgp = anm["ibgp"]
    expected_directed = n_ases * 2 * ibgp_session_count(routers_per_as)
    assert g_ibgp.number_of_edges() == expected_directed
    for edge in g_ibgp.edges():
        assert edge.src.asn == edge.dst.asn
        assert g_ibgp.has_edge(edge.dst, edge.src)  # bidirected


@settings(max_examples=20, deadline=None)
@given(topologies)
def test_design_is_deterministic(params):
    first = _designed(*params)
    second = _designed(*params)
    for overlay_id in ("ospf", "ebgp", "ibgp"):
        a = {
            (str(e.src_id), str(e.dst_id)) for e in first[overlay_id].edges()
        }
        b = {
            (str(e.src_id), str(e.dst_id)) for e in second[overlay_id].edges()
        }
        assert a == b


@settings(max_examples=10, deadline=None)
@given(topologies)
def test_loopback_count_matches_router_count(params):
    anm = _designed(*params)
    routers = anm["phy"].routers()
    loopbacks = [
        anm["ipv4"].node(router).loopback
        for router in routers
        if anm["ipv4"].has_node(router)
    ]
    assert len(loopbacks) == len(routers)
    assert all(loopback is not None for loopback in loopbacks)
