"""Property-based tests for what-if failure analysis invariants."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.emulation import (
    compare_reachability,
    fail_links,
    fail_node,
    reachability_matrix,
)
from repro.exceptions import EmulationError

# links of the small-internet topology that actually exist
SI_LINKS = [
    ("as100r1", "as100r2"),
    ("as100r1", "as100r3"),
    ("as100r2", "as100r3"),
]
SI_MACHINES = [
    "as100r1", "as100r2", "as100r3", "as1r1", "as20r1", "as30r1", "as40r1",
]

_lab_settings = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


class TestCompareReachabilityPartition:
    @given(
        pairs=st.dictionaries(
            st.tuples(st.sampled_from("abcdef"), st.sampled_from("abcdef")),
            st.booleans(),
            max_size=20,
        ),
        flips=st.sets(
            st.tuples(st.sampled_from("abcdef"), st.sampled_from("abcdef")),
            max_size=10,
        ),
    )
    def test_partition_is_disjoint_and_exhaustive(self, pairs, flips):
        """kept/lost/gained partition the union of both matrices."""
        after = dict(pairs)
        for pair in flips:
            after[pair] = not after.get(pair, False)
        delta = compare_reachability(pairs, after)
        kept, lost, gained = (
            set(delta["kept"]), set(delta["lost"]), set(delta["gained"])
        )
        assert kept.isdisjoint(lost)
        assert kept.isdisjoint(gained)
        assert lost.isdisjoint(gained)
        reachable_anywhere = {
            pair for pair, ok in pairs.items() if ok
        } | {pair for pair, ok in after.items() if ok}
        assert kept | lost | gained == reachable_anywhere

    @given(
        pairs=st.dictionaries(
            st.tuples(st.sampled_from("abcd"), st.sampled_from("abcd")),
            st.booleans(),
            max_size=12,
        )
    )
    def test_identical_matrices_lose_and_gain_nothing(self, pairs):
        delta = compare_reachability(pairs, dict(pairs))
        assert not delta["lost"] and not delta["gained"]
        assert set(delta["kept"]) == {pair for pair, ok in pairs.items() if ok}


class TestFailLinkProperties:
    @_lab_settings
    @given(link=st.sampled_from(SI_LINKS))
    def test_failed_link_never_improves_reachability(self, si_lab, link):
        before = reachability_matrix(si_lab)
        degraded = fail_links(si_lab, [link])
        after = reachability_matrix(degraded)
        delta = compare_reachability(before, after)
        assert not delta["gained"]

    @_lab_settings
    @given(
        pair=st.sampled_from(
            [("as100r1", "as1r1"), ("as100r2", "as20r1"), ("as200r1", "as20r1")]
        )
    )
    def test_nonexistent_link_raises(self, si_lab, pair):
        with pytest.raises(EmulationError, match="no link"):
            fail_links(si_lab, [pair])

    def test_unknown_machine_raises(self, si_lab):
        with pytest.raises(EmulationError, match="no machine"):
            fail_links(si_lab, [("ghost", "as100r1")])

    @_lab_settings
    @given(link=st.sampled_from(SI_LINKS))
    def test_original_lab_untouched(self, si_lab, link):
        before = reachability_matrix(si_lab)
        fail_links(si_lab, [link])
        assert reachability_matrix(si_lab) == before


class TestFailNodeProperties:
    @_lab_settings
    @given(machine=st.sampled_from(SI_MACHINES))
    def test_failed_node_absent_from_post_incident_matrix(self, si_lab, machine):
        degraded = fail_node(si_lab, machine)
        matrix = reachability_matrix(degraded)
        assert machine not in degraded.network.machines
        assert all(
            machine not in pair for pair in matrix
        ), "failed node appeared in the post-incident matrix"

    @_lab_settings
    @given(machine=st.sampled_from(SI_MACHINES))
    def test_survivors_keep_symmetric_matrix_keys(self, si_lab, machine):
        degraded = fail_node(si_lab, machine)
        survivors = sorted(degraded.network.machines)
        matrix = reachability_matrix(degraded)
        expected = {
            (src, dst)
            for src in survivors for dst in survivors if src != dst
        }
        assert set(matrix) == expected
