"""Property-based tests: protocol engines and the textfsm parser."""

import ipaddress
import random

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.emulation import EmulatedNetwork, IgpState
from repro.emulation.intent import DeviceIntent, InterfaceIntent, LabIntent, OspfIntent
from repro.measurement import parse_traceroute
from repro.measurement.textfsm_lite import TextFsm


def _random_single_as_lab(n_nodes, extra_edges, cost_seed):
    """A connected random single-AS lab with symmetric costs."""
    rng = random.Random(cost_seed)
    graph = nx.random_labeled_tree(n_nodes, seed=cost_seed)
    graph = nx.relabel_nodes(graph, {i: "r%d" % i for i in range(n_nodes)})
    nodes = list(graph.nodes)
    for _ in range(extra_edges):
        u, v = rng.sample(nodes, 2)
        graph.add_edge(u, v)
    costs = {
        tuple(sorted(edge)): rng.randint(1, 20) for edge in graph.edges
    }

    lab = LabIntent(platform="netkit")
    subnet_pool = ipaddress.ip_network("10.0.0.0/8").subnets(new_prefix=30)
    subnets = {tuple(sorted(edge)): next(subnet_pool) for edge in graph.edges}
    for index, name in enumerate(nodes):
        device = DeviceIntent(name=name, vendor="quagga", hostname=name)
        loopback = ipaddress.ip_address("192.168.0.%d" % (index + 1))
        device.interfaces.append(
            InterfaceIntent(name="lo", ip_address=loopback, prefixlen=32, is_loopback=True)
        )
        advertised = [(ipaddress.ip_network("%s/32" % loopback), 0)]
        interface_costs = {}
        for port, neighbor in enumerate(sorted(graph.neighbors(name))):
            key = tuple(sorted((name, neighbor)))
            subnet = subnets[key]
            hosts = list(subnet.hosts())
            address = hosts[0] if name == key[0] else hosts[1]
            iface_name = "eth%d" % port
            device.interfaces.append(
                InterfaceIntent(
                    name=iface_name,
                    ip_address=address,
                    prefixlen=30,
                    ospf_cost=costs[key],
                )
            )
            advertised.append((subnet, 0))
            interface_costs[iface_name] = costs[key]
        device.ospf = OspfIntent(networks=advertised, interface_costs=interface_costs)
        lab.devices[name] = device
    return lab, graph, costs


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=2, max_value=10),
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=0, max_value=10_000),
)
def test_igp_distances_match_networkx_dijkstra(n_nodes, extra_edges, seed):
    """Our SPF must agree with NetworkX on symmetric-cost graphs."""
    lab, graph, costs = _random_single_as_lab(n_nodes, extra_edges, seed)
    weighted = nx.Graph()
    for (u, v), cost in costs.items():
        weighted.add_edge(u, v, weight=cost)
    igp = IgpState(EmulatedNetwork(lab))
    reference = dict(nx.all_pairs_dijkstra_path_length(weighted))
    for source in graph.nodes:
        for target in graph.nodes:
            if source == target:
                continue
            assert igp.distance(source, target) == reference[source][target]


@settings(max_examples=10, deadline=None)
@given(
    st.integers(min_value=2, max_value=8),
    st.integers(min_value=0, max_value=4),
    st.integers(min_value=0, max_value=10_000),
)
def test_igp_routes_follow_shortest_paths(n_nodes, extra_edges, seed):
    """The first hop of every route lies on a shortest path."""
    lab, graph, costs = _random_single_as_lab(n_nodes, extra_edges, seed)
    igp = IgpState(EmulatedNetwork(lab))
    weighted = nx.Graph()
    for (u, v), cost in costs.items():
        weighted.add_edge(u, v, weight=cost)
    for source in graph.nodes:
        for prefix, route in igp.routes(source).items():
            if prefix.prefixlen != 32:
                continue
            target = route.advertiser
            direct = nx.dijkstra_path_length(weighted, source, target)
            via = costs[tuple(sorted((source, route.next_hop)))] + nx.dijkstra_path_length(
                weighted, route.next_hop, target
            )
            assert via == direct == route.metric


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=30),
            st.tuples(*[st.integers(min_value=0, max_value=255)] * 4),
        ),
        min_size=1,
        max_size=12,
    )
)
def test_traceroute_template_parses_generated_hops(hops):
    """Round-trip: synthesised traceroute text parses hop-for-hop."""
    lines = ["traceroute to 203.0.113.1 (203.0.113.1), 30 hops max, 60 byte packets"]
    for hop, octets in hops:
        address = ".".join(str(o) for o in octets)
        lines.append(" %d  %s  0.123 ms  0.456 ms  0.789 ms" % (hop, address))
    rows = parse_traceroute("\n".join(lines))
    assert len(rows) == len(hops)
    for row, (hop, octets) in zip(rows, hops):
        assert row["HOP"] == str(hop)
        assert row["ADDRESS"] == ".".join(str(o) for o in octets)
        assert row["DESTINATION"] == "203.0.113.1"


@settings(max_examples=50, deadline=None)
@given(st.text(max_size=400))
def test_traceroute_template_never_crashes_on_noise(noise):
    parse_traceroute(noise)


@settings(max_examples=30, deadline=None)
@given(st.text(alphabet=st.characters(blacklist_categories=("Cs",)), max_size=200))
def test_bundled_templates_robust_to_arbitrary_text(noise):
    from repro.measurement import TEMPLATES, template_for

    for kind in TEMPLATES:
        template_for(kind).parse_text_to_dicts(noise)


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_bgp_decision_is_order_invariant(si_lab, data):
    """Shuffling candidate order never changes the decision."""
    import ipaddress as ipa
    from dataclasses import replace

    from repro.emulation import BgpRoute

    sim = si_lab._simulation
    n = data.draw(st.integers(min_value=2, max_value=6))
    candidates = []
    for index in range(n):
        candidates.append(
            BgpRoute(
                prefix=ipa.ip_network("203.0.113.0/24"),
                as_path=tuple(
                    data.draw(
                        st.lists(
                            st.integers(min_value=1, max_value=500),
                            min_size=0,
                            max_size=4,
                            unique=True,
                        )
                    )
                ),
                next_hop=ipa.ip_address("10.1.0.10"),
                local_pref=data.draw(st.sampled_from([50, 100, 200])),
                learned_via=data.draw(st.sampled_from(["ebgp", "ibgp"])),
                learned_from="peer%d" % index,
                peer_router_id="10.0.0.%d" % (index + 1),
                peer_address="10.0.0.%d" % (index + 1),
            )
        )
    best = sim.decide("as100r1", candidates)
    shuffled = data.draw(st.permutations(candidates))
    assert sim.decide("as100r1", list(shuffled)) == best


@settings(max_examples=8, deadline=None)
@given(
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=2, max_value=4),
    st.integers(min_value=0, max_value=10_000),
)
def test_policy_free_networks_always_converge(n_ases, routers_per_as, seed):
    """Safety property: without policy, shortest-AS-path BGP over a
    full iBGP mesh converges (no Bad-Gadget without circular policy)."""
    import tempfile

    from repro.compilers import platform_compiler
    from repro.design import design_network
    from repro.emulation import EmulatedLab
    from repro.loader import multi_as_topology
    from repro.render import render_nidb

    graph = multi_as_topology(n_ases=n_ases, routers_per_as=routers_per_as, seed=seed)
    anm = design_network(graph)
    nidb = platform_compiler("netkit", anm).compile()
    rendered = render_nidb(nidb, tempfile.mkdtemp())
    lab = EmulatedLab.boot(rendered.lab_dir, max_rounds=64, keep_history=False)
    assert lab.converged
    # And the result is total: every router holds a route for every
    # AS's loopback block.
    blocks = {
        str(block) for block in anm["ipv4"].data.loopback_blocks.values()
    }
    for machine, table in lab.bgp_result.selected.items():
        held = {str(prefix) for prefix in table}
        assert blocks <= held, machine
