"""Smoke tests: every shipped example must run cleanly.

Examples are part of the public API surface (the paper's §6 claims
hinge on them being short and runnable); these tests execute each one's
``main()`` in-process so they can never rot silently.
"""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def _run_example(name, argv=()):
    path = os.path.join(EXAMPLES_DIR, "%s.py" % name)
    spec = importlib.util.spec_from_file_location("example_%s" % name, path)
    module = importlib.util.module_from_spec(spec)
    old_argv = sys.argv
    sys.argv = [path, *argv]
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.argv = old_argv


def test_quickstart(capsys):
    _run_example("quickstart")
    out = capsys.readouterr().out
    assert "overlay ospf" in out
    assert "traceroute to" in out


def test_small_internet_lab(capsys):
    _run_example("small_internet_lab")
    out = capsys.readouterr().out
    assert "measured topology matches design" in out
    assert "AS path:" in out
    assert "visualisation written" in out


def test_bad_gadget(capsys):
    _run_example("bad_gadget")
    out = capsys.readouterr().out
    assert out.count("OSCILLATES") == 3
    assert "converges" in out
    assert "rr1 exits via c1" in out


def test_campaign_driver(capsys):
    _run_example("campaign_driver")
    out = capsys.readouterr().out
    assert "4 executed (0 failed)" in out
    assert "re-run executed 0 trials (resumed 4)" in out
    assert "| bad_gadget | netkit | converged in 3 rounds |" in out
    assert out.count("oscillating (period 2)") >= 3


def test_dns_lab(capsys):
    _run_example("dns_lab")
    out = capsys.readouterr().out
    assert "zones served: 7" in out
    assert "as100r1.as100.lab" in out


def test_rpki_lab(capsys):
    _run_example("rpki_lab")
    out = capsys.readouterr().out
    assert "machines up: 21" in out
    assert "'ca': 5" in out


def test_incident_whatif(capsys):
    _run_example("incident_whatif")
    out = capsys.readouterr().out
    assert "baseline: 30/30" in out
    assert "incident 3" in out
    assert "pairs lost:            10" in out


def test_multi_host(capsys):
    _run_example("multi_host")
    out = capsys.readouterr().out
    assert "serverb" in out
    assert "type=gre" in out


def test_extend_new_protocol(capsys):
    _run_example("extend_new_protocol")
    out = capsys.readouterr().out
    assert "lldp overlay" in out
    assert "rendered 14 lldp neighbour files" in out


def test_nren_scale_small(capsys):
    _run_example("nren_scale", argv=["0.05"])
    out = capsys.readouterr().out
    assert "phase        this run" in out
    assert "rendered" in out
