"""Unit tests for the Rocketfuel .cch parser (§5.1)."""

import networkx as nx
import pytest

from repro.exceptions import LoaderError
from repro.loader import load_rocketfuel, parse_cch_line, write_cch
from repro.loader.topology_gen import ring_topology

SAMPLE = """\
# Rocketfuel-style map
121 @ATLANTA,GA + bb (3) &1 -> <5227> <5229> {-1} =fe0.cr1.atl r0
5227 @ATLANTA,GA + (2) -> <121> <5229> =ge1.ar1.atl r1
5229 @CHICAGO,IL (2) -> <121> <5227> =so0.cr2.chi r1
-1 @EXTERNAL (1) -> <121> =peer.example r2
"""


def test_parse_single_line_fields():
    record = parse_cch_line("121 @ATLANTA,GA + bb (3) &1 -> <5227> <5229> {-1} =fe0.cr1.atl r0")
    assert record["uid"] == 121
    assert record["location"] == "ATLANTA,GA"
    assert record["backbone"] is True
    assert record["responsive"] is True
    assert record["neighbors"] == [5227, 5229]
    assert record["external_neighbors"] == [-1]
    assert record["name"] == "fe0.cr1.atl"
    assert record["radius"] == 0


def test_parse_line_without_optionals():
    record = parse_cch_line("5229 @CHICAGO,IL (2) -> <121> <5227> =so0.cr2.chi r1")
    assert record["backbone"] is False
    assert record["responsive"] is False
    assert record["external_neighbors"] == []


def test_parse_skips_blank_and_comments():
    assert parse_cch_line("") is None
    assert parse_cch_line("# comment") is None


def test_parse_bad_line_raises():
    with pytest.raises(LoaderError):
        parse_cch_line("garbage line without structure")


def test_load_rocketfuel_builds_graph(tmp_path):
    path = tmp_path / "as1.cch"
    path.write_text(SAMPLE)
    graph = load_rocketfuel(path, asn=7018)
    assert set(graph.nodes) == {"r121", "r5227", "r5229"}
    assert graph.nodes["r121"]["asn"] == 7018
    assert graph.nodes["r121"]["backbone"] is True
    assert graph.has_edge("r121", "r5227")
    assert graph.number_of_edges() == 3


def test_load_rocketfuel_with_externals(tmp_path):
    path = tmp_path / "as1.cch"
    path.write_text(SAMPLE)
    graph = load_rocketfuel(path, include_external=True)
    assert "ext1" in graph.nodes
    assert graph.nodes["ext1"]["device_type"] == "external"
    assert graph.has_edge("r121", "ext1")


def test_load_rocketfuel_empty_file(tmp_path):
    path = tmp_path / "empty.cch"
    path.write_text("# nothing\n")
    with pytest.raises(LoaderError, match="no router records"):
        load_rocketfuel(path)


def test_write_cch_roundtrip(tmp_path):
    original = ring_topology(5, asn=3)
    path = tmp_path / "ring.cch"
    write_cch(original, path)
    loaded = load_rocketfuel(path, asn=3)
    assert len(loaded) == 5
    assert loaded.number_of_edges() == 5
    assert nx.is_connected(loaded)


def test_rocketfuel_labels_use_names(tmp_path):
    path = tmp_path / "as1.cch"
    path.write_text(SAMPLE)
    graph = load_rocketfuel(path)
    assert graph.nodes["r121"]["label"] == "fe0.cr1.atl"
