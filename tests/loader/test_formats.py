"""Unit tests for GraphML/GML/JSON round-trips (§5.1)."""

import networkx as nx
import pytest

from repro.exceptions import LoaderError
from repro.loader import (
    dump_json,
    fig5_topology,
    graph_from_dict,
    load_gml,
    load_graphml,
    load_json,
    save_gml,
    save_graphml,
)


def test_graphml_roundtrip(tmp_path):
    path = tmp_path / "net.graphml"
    save_graphml(fig5_topology(), path)
    loaded = load_graphml(path)
    assert set(loaded.nodes) == {"r1", "r2", "r3", "r4", "r5"}
    assert loaded.nodes["r5"]["asn"] == 2
    assert loaded.has_edge("r1", "r2")


def test_graphml_string_asn_coerced(tmp_path):
    graph = nx.Graph()
    graph.add_node("r1", asn="10")
    graph.add_node("r2", asn="10")
    graph.add_edge("r1", "r2")
    path = tmp_path / "s.graphml"
    nx.write_graphml(graph, path)
    loaded = load_graphml(path)
    assert loaded.nodes["r1"]["asn"] == 10


def test_graphml_applies_defaults(tmp_path):
    path = tmp_path / "net.graphml"
    save_graphml(fig5_topology(), path)
    loaded = load_graphml(path)
    assert loaded.nodes["r1"]["platform"] == "netkit"


def test_graphml_bad_file_raises(tmp_path):
    path = tmp_path / "broken.graphml"
    path.write_text("this is not xml")
    with pytest.raises(LoaderError):
        load_graphml(path)


def test_graphml_missing_file_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_graphml(tmp_path / "missing.graphml")


def test_gml_roundtrip(tmp_path):
    path = tmp_path / "net.gml"
    save_gml(fig5_topology(), path)
    loaded = load_gml(path)
    assert len(loaded) == 5
    assert loaded.nodes["r1"]["device_type"] == "router"


def test_gml_bad_file_raises(tmp_path):
    path = tmp_path / "broken.gml"
    path.write_text("graph [ node [ id")
    with pytest.raises(LoaderError):
        load_gml(path)


def test_json_graph_from_dict():
    graph = graph_from_dict(
        {
            "nodes": [{"id": "a", "asn": 1}, {"id": "b", "asn": 2}],
            "links": [{"src": "a", "dst": "b", "ospf_cost": 5}],
        }
    )
    assert graph.nodes["b"]["asn"] == 2
    assert graph.edges["a", "b"]["ospf_cost"] == 5


def test_json_dict_missing_nodes_key():
    with pytest.raises(LoaderError, match="nodes"):
        graph_from_dict({"links": []})


def test_json_node_without_id():
    with pytest.raises(LoaderError, match="id"):
        graph_from_dict({"nodes": [{"asn": 1}]})


def test_json_link_with_unknown_endpoint():
    with pytest.raises(LoaderError, match="declared node"):
        graph_from_dict(
            {"nodes": [{"id": "a", "asn": 1}], "links": [{"src": "a", "dst": "ghost"}]}
        )


def test_json_file_roundtrip(tmp_path):
    path = tmp_path / "net.json"
    dump_json(fig5_topology(), path)
    loaded = load_json(path)
    assert set(loaded.nodes) == {"r1", "r2", "r3", "r4", "r5"}
    assert loaded.has_edge("r3", "r5")


def test_json_bad_file_raises(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json")
    with pytest.raises(LoaderError):
        load_json(path)


def test_json_accepts_edges_alias():
    graph = graph_from_dict(
        {
            "nodes": [{"id": "a", "asn": 1}, {"id": "b", "asn": 1}],
            "edges": [{"src": "a", "dst": "b"}],
        }
    )
    assert graph.has_edge("a", "b")


class TestAnnotateAsByAttribute:
    def _zoo_graph(self):
        graph = nx.Graph()
        graph.add_node("ber", Country="Germany")
        graph.add_node("muc", Country="Germany")
        graph.add_node("par", Country="France")
        graph.add_node("unknown")
        graph.add_edge("ber", "muc")
        graph.add_edge("muc", "par")
        graph.add_edge("par", "unknown")
        return graph

    def test_one_as_per_country(self):
        from repro.loader import annotate_as_by_attribute

        graph = annotate_as_by_attribute(self._zoo_graph())
        assert graph.nodes["ber"]["asn"] == graph.nodes["muc"]["asn"]
        assert graph.nodes["ber"]["asn"] != graph.nodes["par"]["asn"]

    def test_fallback_asn_for_missing_attribute(self):
        from repro.loader import annotate_as_by_attribute

        graph = annotate_as_by_attribute(self._zoo_graph(), base_asn=200)
        assert graph.nodes["unknown"]["asn"] == 199

    def test_deterministic_assignment(self):
        from repro.loader import annotate_as_by_attribute

        first = annotate_as_by_attribute(self._zoo_graph())
        second = annotate_as_by_attribute(self._zoo_graph())
        for name in first.nodes:
            assert first.nodes[name]["asn"] == second.nodes[name]["asn"]

    def test_designs_end_to_end(self):
        from repro.design import design_network
        from repro.loader import annotate_as_by_attribute

        graph = annotate_as_by_attribute(self._zoo_graph())
        anm = design_network(graph)
        # Germany's two routers form the only same-AS (OSPF) edge.
        assert anm["ospf"].number_of_edges() == 1
        assert anm["ebgp"].number_of_edges() == 4  # two links, bidirected


class TestBundledTopologyFiles:
    """The files under examples/topologies/ must stay loadable."""

    DIR = __import__("os").path.join(
        __import__("os").path.dirname(__file__), "..", "..", "examples", "topologies"
    )

    def _path(self, name):
        import os

        return os.path.join(self.DIR, name)

    def test_small_internet_graphml(self):
        graph = load_graphml(self._path("small_internet.graphml"))
        assert len(graph) == 14

    def test_fig5_all_formats_agree(self):
        from_graphml = load_graphml(self._path("fig5.graphml"))
        from_json = load_json(self._path("fig5.json"))
        from_gml = load_gml(self._path("fig5.gml"))
        assert set(from_graphml.nodes) == set(from_json.nodes) == set(from_gml.nodes)
        assert (
            from_graphml.number_of_edges()
            == from_json.number_of_edges()
            == from_gml.number_of_edges()
        )

    def test_isp_cch(self):
        from repro.loader import load_rocketfuel

        graph = load_rocketfuel(self._path("isp.cch"), asn=64512)
        assert len(graph) == 8

    def test_three_areas_designs(self):
        from repro.design import design_network

        graph = load_graphml(self._path("three_areas.graphml"))
        anm = design_network(graph)
        areas = {edge.area for edge in anm["ospf"].edges()}
        assert areas == {0, 1, 2}
