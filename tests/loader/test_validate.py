"""Unit tests for input validation and defaulting (§5.1, §6.1)."""

import networkx as nx
import pytest

from repro.exceptions import TopologyValidationError
from repro.loader import apply_defaults, coerce_asn, normalise, validate
from repro.loader.validate import EDGE_DEFAULTS, NODE_DEFAULTS, physical_edges


def _graph(**node_attrs):
    graph = nx.Graph()
    graph.add_node("r1", asn=1, **node_attrs)
    graph.add_node("r2", asn=1)
    graph.add_edge("r1", "r2")
    return graph


def test_defaults_match_walkthrough():
    """§6.1: device_type=router, platform=netkit, syntax=quagga."""
    assert NODE_DEFAULTS["device_type"] == "router"
    assert NODE_DEFAULTS["platform"] == "netkit"
    assert NODE_DEFAULTS["syntax"] == "quagga"
    assert EDGE_DEFAULTS["type"] == "physical"


def test_apply_defaults_fills_missing_only():
    graph = _graph(device_type="server")
    apply_defaults(graph)
    assert graph.nodes["r1"]["device_type"] == "server"
    assert graph.nodes["r2"]["device_type"] == "router"
    assert graph.edges["r1", "r2"]["type"] == "physical"


def test_validate_accepts_good_graph():
    validate(apply_defaults(_graph()))


def test_validate_rejects_empty_graph():
    with pytest.raises(TopologyValidationError):
        validate(nx.Graph())


def test_validate_rejects_self_loops():
    graph = apply_defaults(_graph())
    graph.add_edge("r1", "r1")
    with pytest.raises(TopologyValidationError, match="self-loop"):
        validate(graph)


def test_validate_rejects_missing_asn():
    graph = nx.Graph()
    graph.add_node("r1")
    apply_defaults(graph)
    with pytest.raises(TopologyValidationError, match="no asn"):
        validate(graph)


def test_validate_asn_optional_when_disabled():
    graph = nx.Graph()
    graph.add_node("r1")
    apply_defaults(graph)
    validate(graph, require_asn=False)


@pytest.mark.parametrize("bad_asn", [0, -5, 1.5, "20", True])
def test_validate_rejects_bad_asn_values(bad_asn):
    graph = nx.Graph()
    graph.add_node("r1", asn=bad_asn)
    apply_defaults(graph)
    with pytest.raises(TopologyValidationError):
        validate(graph)


def test_validate_ignores_asn_on_switches():
    graph = nx.Graph()
    graph.add_node("sw1", device_type="switch")
    graph.add_node("r1", asn=1)
    apply_defaults(graph)
    validate(graph)


def test_validate_string_coercion_collision():
    graph = nx.Graph()
    graph.add_node(1, asn=1)
    graph.add_node("1", asn=1)
    apply_defaults(graph)
    with pytest.raises(TopologyValidationError, match="collide"):
        validate(graph)


def test_coerce_asn_converts_strings():
    graph = nx.Graph()
    graph.add_node("r1", asn="42")
    coerce_asn(graph)
    assert graph.nodes["r1"]["asn"] == 42


def test_coerce_asn_rejects_garbage():
    graph = nx.Graph()
    graph.add_node("r1", asn="twenty")
    with pytest.raises(TopologyValidationError):
        coerce_asn(graph)


def test_normalise_full_pipeline():
    graph = nx.Graph()
    graph.add_node("r1", asn="7")
    graph.add_node("r2", asn=7)
    graph.add_edge("r1", "r2")
    normalise(graph)
    assert graph.nodes["r1"]["asn"] == 7
    assert graph.nodes["r1"]["device_type"] == "router"


def test_physical_edges_filter():
    graph = _graph()
    graph.add_edge("r1", "r1x") if False else None
    graph.add_node("s1", asn=1)
    graph.add_edge("r2", "s1", type="service")
    apply_defaults(graph)
    kept = list(physical_edges(graph))
    assert len(kept) == 1
    assert kept[0][:2] == ("r1", "r2")
