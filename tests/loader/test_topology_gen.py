"""Unit tests for the built-in and synthetic topology generators."""

import networkx as nx
import pytest

from repro.loader import (
    attach_servers,
    bad_gadget_topology,
    european_nren_model,
    fig5_topology,
    full_mesh_topology,
    line_topology,
    multi_as_topology,
    ring_topology,
    rpki_topology,
    small_internet,
    star_with_switch,
)
from repro.loader.topology_gen import (
    BAD_GADGET_PREFIX,
    NREN_N_ASES,
    NREN_N_LINKS,
    NREN_N_ROUTERS,
)


def _asns(graph):
    return {data["asn"] for _, data in graph.nodes(data=True) if data.get("asn")}


class TestFig5:
    def test_exact_nodes_and_edges(self):
        graph = fig5_topology()
        assert set(graph.nodes) == {"r1", "r2", "r3", "r4", "r5"}
        expected = {
            ("r1", "r2"), ("r1", "r3"), ("r2", "r4"),
            ("r3", "r4"), ("r3", "r5"), ("r4", "r5"),
        }
        assert {tuple(sorted(e)) for e in graph.edges} == expected

    def test_asn_allocation_matches_paper(self):
        graph = fig5_topology()
        assert [graph.nodes["r%d" % i]["asn"] for i in range(1, 6)] == [1, 1, 1, 1, 2]

    def test_ospf_costs_follow_figure(self):
        graph = fig5_topology()
        assert graph.edges["r1", "r2"]["ospf_cost"] == 10
        assert graph.edges["r2", "r4"]["ospf_cost"] == 20


class TestSmallInternet:
    def test_seven_ases_fourteen_routers(self):
        graph = small_internet()
        assert len(graph) == 14
        assert _asns(graph) == {1, 20, 30, 40, 100, 200, 300}

    def test_connected(self):
        assert nx.is_connected(small_internet())

    def test_figure7_chain_links_present(self):
        graph = small_internet()
        chain = ["as300r2", "as40r1", "as1r1", "as20r3", "as20r2", "as100r1", "as100r2"]
        for left, right in zip(chain, chain[1:]):
            assert graph.has_edge(left, right), (left, right)

    def test_deterministic(self):
        assert nx.utils.graphs_equal(small_internet(), small_internet())


class TestNrenModel:
    def test_exact_documented_size_at_full_scale(self):
        graph = european_nren_model()
        assert len(_asns(graph)) == NREN_N_ASES == 42
        assert graph.number_of_nodes() == NREN_N_ROUTERS == 1158
        assert graph.number_of_edges() == NREN_N_LINKS == 1470

    def test_connected_at_full_scale(self):
        assert nx.is_connected(european_nren_model())

    def test_scaled_down_proportions(self):
        graph = european_nren_model(scale=0.1)
        assert abs(graph.number_of_nodes() - 116) <= 3
        assert len(_asns(graph)) == 4

    def test_deterministic_given_seed(self):
        a = european_nren_model(scale=0.2, seed=9)
        b = european_nren_model(scale=0.2, seed=9)
        assert nx.utils.graphs_equal(a, b)

    def test_different_seed_changes_graph(self):
        a = european_nren_model(scale=0.2, seed=1)
        b = european_nren_model(scale=0.2, seed=2)
        assert not nx.utils.graphs_equal(a, b)

    def test_backbone_is_asn_1(self):
        graph = european_nren_model(scale=0.2)
        backbone = [n for n, d in graph.nodes(data=True) if d["asn"] == 1]
        assert backbone
        assert all(name.startswith("geant") for name in backbone)

    def test_invalid_scale_raises(self):
        with pytest.raises(ValueError):
            european_nren_model(scale=0)


class TestBadGadget:
    def test_structure(self):
        graph = bad_gadget_topology()
        assert len(graph) == 7
        reflectors = [n for n, d in graph.nodes(data=True) if d.get("rr")]
        assert sorted(reflectors) == ["rr1", "rr2", "rr3"]

    def test_circular_igp_costs(self):
        graph = bad_gadget_topology()
        assert graph.edges["rr1", "c1"]["ospf_cost"] == 10
        assert graph.edges["rr1", "c2"]["ospf_cost"] == 5
        assert graph.edges["rr1", "c3"]["ospf_cost"] == 15
        assert graph.edges["rr2", "c3"]["ospf_cost"] == 5

    def test_origin_advertises_prefix(self):
        graph = bad_gadget_topology()
        assert graph.nodes["origin"]["prefixes"] == [BAD_GADGET_PREFIX]
        assert graph.nodes["origin"]["asn"] != graph.nodes["c1"]["asn"]

    def test_clients_use_next_hop_self(self):
        graph = bad_gadget_topology()
        for client in ("c1", "c2", "c3"):
            assert graph.nodes[client]["bgp_next_hop_self"] is True

    def test_clusters_pair_each_client_with_one_reflector(self):
        graph = bad_gadget_topology()
        for index in (1, 2, 3):
            assert (
                graph.nodes["c%d" % index]["rr_cluster"]
                == graph.nodes["rr%d" % index]["rr_cluster"]
            )


class TestRpkiTopology:
    def test_roles_present(self):
        graph = rpki_topology()
        services = {d.get("service") for _, d in graph.nodes(data=True)}
        assert {"rpki_ca", "rpki_publication", "rpki_cache"} <= services

    def test_labelled_edges(self):
        graph = rpki_topology()
        types = {d.get("type") for _, _, d in graph.edges(data=True)}
        assert {"ca_parent", "publishes_to", "fetches_from", "rtr_feed"} <= types

    def test_scales_to_many_nodes(self):
        graph = rpki_topology(n_child_cas=10, n_publication_points=4, n_caches=50, n_routers=100)
        assert len(graph) == 1 + 10 + 4 + 50 + 100

    def test_single_root(self):
        graph = rpki_topology()
        roots = [n for n, d in graph.nodes(data=True) if d.get("ca_root")]
        assert roots == ["ca_root"]


class TestStructuralHelpers:
    def test_line(self):
        graph = line_topology(4)
        assert graph.number_of_edges() == 3

    def test_ring(self):
        graph = ring_topology(4)
        assert graph.number_of_edges() == 4
        assert all(graph.degree(n) == 2 for n in graph)

    def test_full_mesh(self):
        graph = full_mesh_topology(5)
        assert graph.number_of_edges() == 10

    def test_star_with_switch(self):
        graph = star_with_switch(3)
        assert graph.nodes["sw1"]["device_type"] == "switch"
        assert graph.degree("sw1") == 3

    def test_multi_as_connected_and_sized(self):
        graph = multi_as_topology(n_ases=4, routers_per_as=5, seed=3)
        assert nx.is_connected(graph)
        assert len(graph) == 20
        assert _asns(graph) == {1, 2, 3, 4}

    def test_multi_as_deterministic(self):
        a = multi_as_topology(seed=5)
        b = multi_as_topology(seed=5)
        assert nx.utils.graphs_equal(a, b)

    def test_attach_servers(self):
        graph = attach_servers(line_topology(3), per_router=2)
        servers = [n for n, d in graph.nodes(data=True) if d["device_type"] == "server"]
        assert len(servers) == 6
        assert all(graph.degree(s) == 1 for s in servers)
        # servers inherit the router's ASN
        assert graph.nodes[servers[0]]["asn"] == 1
