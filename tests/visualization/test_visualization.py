"""Unit tests for d3 export, highlighting, and rendering (§5.6)."""

import json

import pytest

from repro.visualization import (
    adjacency_table,
    anm_to_d3,
    highlight,
    highlight_trace,
    overlay_summary,
    overlay_to_d3,
    path_diagram,
    render_svg,
    write_html,
    write_json,
)


@pytest.fixture(scope="module")
def d3(si_anm_module):
    return overlay_to_d3(si_anm_module["ebgp"])


@pytest.fixture(scope="module")
def si_anm_module():
    from repro.design import design_network
    from repro.loader import small_internet

    return design_network(small_internet())


class TestD3Export:
    def test_node_and_link_structure(self, d3):
        assert d3["overlay"] == "ebgp"
        assert d3["directed"] is True
        assert len(d3["nodes"]) == 14
        assert len(d3["links"]) == 16  # 8 sessions, both directions
        sample = d3["nodes"][0]
        assert set(sample) >= {"id", "label", "group", "attributes"}

    def test_grouping_by_asn(self, d3):
        groups = {node["id"]: node["group"] for node in d3["nodes"]}
        assert groups["as100r1"] == 100
        assert groups["as1r1"] == 1

    def test_custom_group_attribute(self, si_anm_module):
        data = overlay_to_d3(si_anm_module["phy"], group_attr="device_type")
        assert all(node["group"] == "router" for node in data["nodes"])

    def test_attribute_selection(self, si_anm_module):
        data = overlay_to_d3(si_anm_module["phy"], attributes=["asn"])
        assert "attributes" not in data["nodes"][0]
        assert data["nodes"][0]["asn"] is not None

    def test_json_serialisable(self, d3, tmp_path):
        write_json(d3, str(tmp_path / "out.json"))
        loaded = json.loads((tmp_path / "out.json").read_text())
        assert loaded["overlay"] == "ebgp"

    def test_anm_export_covers_all_overlays(self, si_anm_module):
        data = anm_to_d3(si_anm_module)
        assert set(data) == set(si_anm_module.overlays())


class TestHighlight:
    def test_nodes_and_paths(self, d3):
        result = highlight_trace(d3, ["as300r2", "as40r1", "as1r1"])
        highlighted_nodes = {n["id"] for n in result["nodes"] if n["highlighted"]}
        assert highlighted_nodes == {"as300r2", "as1r1"}  # endpoints
        highlighted_links = [l for l in result["links"] if l["highlighted"]]
        assert highlighted_links
        assert result["paths"] == [["as300r2", "as40r1", "as1r1"]]

    def test_empty_path(self, d3):
        result = highlight_trace(d3, [])
        assert not any(n["highlighted"] for n in result["nodes"])

    def test_original_untouched(self, d3):
        highlight(d3, nodes=["as1r1"])
        assert "highlighted" not in d3["nodes"][0]

    def test_explicit_edges(self, d3):
        result = highlight(d3, edges=[("as1r1", "as40r1")])
        marked = {
            tuple(sorted((l["source"], l["target"])))
            for l in result["links"]
            if l["highlighted"]
        }
        assert marked == {("as1r1", "as40r1")}


class TestRendering:
    def test_svg_contains_all_nodes(self, d3):
        svg = render_svg(d3)
        assert svg.count("<circle") == 14
        assert "as100r1" in svg

    def test_svg_highlight_color(self, d3):
        marked = highlight_trace(d3, ["as300r2", "as40r1"])
        svg = render_svg(marked)
        assert "#d62728" in svg

    def test_write_html_self_contained(self, d3, tmp_path):
        path = tmp_path / "view.html"
        write_html(d3, str(path), title="eBGP sessions")
        text = path.read_text()
        assert text.startswith("<!DOCTYPE html>")
        assert "eBGP sessions" in text
        assert "<svg" in text and "</svg>" in text
        assert "http" not in text.split("</head>")[0]  # no external deps

    def test_empty_overlay_svg(self):
        assert render_svg({"nodes": [], "links": []}) == "<svg/>"


class TestAscii:
    def test_overlay_summary(self, si_anm_module):
        text = overlay_summary(si_anm_module["ospf"])
        assert text.startswith("overlay ospf: 14 nodes, 10 edges")
        assert "asn 100:" in text

    def test_adjacency_table(self, si_anm_module):
        text = adjacency_table(si_anm_module["ospf"])
        assert "as100r1" in text
        assert "(isolated)" in text  # single-router ASes

    def test_path_diagram(self):
        assert path_diagram(["a", "b", "c"]) == "a -> b -> c"
