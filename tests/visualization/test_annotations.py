"""Metric annotations on the d3 export: the service dashboard's feed."""

import pytest

from repro.visualization import annotate_d3, overlay_to_d3


@pytest.fixture()
def anm():
    from repro.design import design_network
    from repro.loader import small_internet

    return design_network(small_internet())


def link_index(data):
    return {
        (link["source"], link["target"]): link for link in data["links"]
    }


def test_annotated_export_shape(anm):
    data = overlay_to_d3(
        anm["phy"],
        node_metrics={"as1r1": {"trials_ok": 3, "role": "core"}},
        link_metrics={("as1r1", "as20r3"): {"utilization": 0.75, "drops": 2}},
    )
    nodes = {node["id"]: node for node in data["nodes"]}
    assert nodes["as1r1"]["metrics"] == {"trials_ok": 3, "role": "core"}
    assert "metrics" not in nodes["as20r1"]
    annotated = [link for link in data["links"] if "metrics" in link]
    assert annotated
    for link in annotated:
        assert {link["source"], link["target"]} == {"as1r1", "as20r3"}
        assert link["metrics"] == {"utilization": 0.75, "drops": 2}
    # the base shape is untouched: plain consumers keep working
    assert set(data) >= {"overlay", "nodes", "links"}
    assert set(data["nodes"][0]) >= {"id", "label", "group"}


def test_string_link_keys_match_either_orientation(anm):
    data = overlay_to_d3(anm["phy"])
    reference = next(iter(link_index(data)))
    backwards = "%s->%s" % (reference[1], reference[0])
    annotate_d3(data, link_metrics={backwards: {"utilization": 0.4}})
    assert link_index(data)[reference]["metrics"] == {"utilization": 0.4}


def test_reversed_duplicates_keep_the_hotter_direction(anm):
    data = overlay_to_d3(anm["phy"])
    (a, b) = next(iter(link_index(data)))
    annotate_d3(
        data,
        link_metrics={
            "%s->%s" % (a, b): {"utilization": 0.2, "flows": 10},
            "%s->%s" % (b, a): {"utilization": 0.9, "flows": 4},
        },
    )
    merged = link_index(data)[(a, b)]["metrics"]
    assert merged["utilization"] == 0.9
    assert merged["flows"] == 10


def test_annotating_twice_merges(anm):
    data = overlay_to_d3(anm["phy"])
    (a, b) = next(iter(link_index(data)))
    annotate_d3(data, link_metrics={(a, b): {"utilization": 0.1}})
    annotate_d3(data, link_metrics={(a, b): {"drops": 5}})
    assert link_index(data)[(a, b)]["metrics"] == {
        "utilization": 0.1, "drops": 5,
    }


def test_unknown_ids_are_ignored(anm):
    data = overlay_to_d3(anm["phy"])
    before = [dict(link) for link in data["links"]]
    annotate_d3(
        data,
        node_metrics={"ghost": {"x": 1}},
        link_metrics={("ghost", "phantom"): {"utilization": 1.0}},
    )
    assert data["links"] == before
    assert all("metrics" not in node for node in data["nodes"])


def test_export_is_json_serialisable(anm):
    import json

    data = overlay_to_d3(
        anm["phy"], link_metrics={("as1r1", "as20r3"): {"utilization": 0.5}}
    )
    json.dumps(data)
