"""Unit tests for the four platform compilers (§5.4)."""

import pytest

from repro.compilers import (
    PLATFORM_COMPILERS,
    CbgpPlatformCompiler,
    DynagenCompiler,
    JunosphereCompiler,
    NetkitCompiler,
    platform_compiler,
)
from repro.design import design_network
from repro.exceptions import CompilerError
from repro.loader import fig5_topology, small_internet, star_with_switch


@pytest.fixture(scope="module")
def anm():
    return design_network(small_internet())


def test_registry_contents():
    assert set(PLATFORM_COMPILERS) == {"netkit", "dynagen", "junosphere", "cbgp"}


def test_unknown_platform_raises(anm):
    with pytest.raises(CompilerError, match="unknown platform"):
        platform_compiler("gns3", anm)


def test_compile_requires_ipv4_overlay():
    from repro.design import apply_design, build_anm

    anm = build_anm(fig5_topology())
    apply_design(anm, rules=("phy",))
    with pytest.raises(CompilerError, match="ipv4"):
        NetkitCompiler(anm).compile()


class TestNetkit:
    def test_interface_names_eth(self, anm):
        nidb = NetkitCompiler(anm).compile()
        names = [i.id for i in nidb.node("as100r1").physical_interfaces()]
        assert names == ["eth0", "eth1", "eth2"]

    def test_loopback_named_lo(self, anm):
        nidb = NetkitCompiler(anm).compile()
        assert nidb.node("as100r1").loopback_interface().id == "lo"

    def test_hostnames_lowercased(self):
        graph = small_internet()
        import networkx as nx

        graph = nx.relabel_nodes(graph, {"as1r1": "AS1-R1.core"})
        nidb = NetkitCompiler(design_network(graph)).compile()
        assert nidb.node("AS1-R1.core").hostname == "as1-r1_core"

    def test_tap_addresses_unique(self, anm):
        nidb = NetkitCompiler(anm).compile()
        taps = [device.tap.ip for device in nidb]
        assert len(set(taps)) == len(taps) == 14
        assert all(tap.startswith("172.16.") for tap in taps)

    def test_tap_interface_follows_physical(self, anm):
        nidb = NetkitCompiler(anm).compile()
        device = nidb.node("as100r1")
        assert device.tap.interface == "eth3"

    def test_render_entries_per_daemon(self, anm):
        nidb = NetkitCompiler(anm).compile()
        device = nidb.node("as100r1")
        templates = {f.template for f in device.render.files}
        assert "quagga/zebra.conf.j2" in templates
        assert "quagga/ospfd.conf.j2" in templates
        assert "quagga/bgpd.conf.j2" in templates
        assert "netkit/startup.j2" in templates
        assert "bind/named.conf.j2" in templates  # DNS server

    def test_render_dst_folder_matches_paper(self, anm):
        """§5.4: base_dst_folder like localhost/netkit/as100r1."""
        nidb = NetkitCompiler(anm).compile()
        assert nidb.node("as100r1").render.dst_folder == "localhost/netkit/as100r1"

    def test_no_ospfd_render_for_stub_router(self, anm):
        nidb = NetkitCompiler(anm).compile()
        templates = {f.template for f in nidb.node("as30r1").render.files}
        assert "quagga/ospfd.conf.j2" not in templates

    def test_collision_domains_on_topology(self, anm):
        nidb = NetkitCompiler(anm).compile()
        domains = nidb.topology.collision_domains.to_dict()
        assert len(domains) == 18
        assert all(len(members) == 2 for members in domains.values())

    def test_switch_becomes_shared_domain(self):
        nidb = NetkitCompiler(design_network(star_with_switch(3, asn=1))).compile()
        domains = nidb.topology.collision_domains.to_dict()
        assert len(domains) == 1
        (members,) = domains.values()
        assert sorted(members) == ["r1", "r2", "r3"]


class TestDynagen:
    def test_interface_names_slot_port(self, anm):
        nidb = DynagenCompiler(anm).compile()
        names = [i.id for i in nidb.node("as100r1").physical_interfaces()]
        assert names == ["f0/0", "f0/1", "f1/0"]

    def test_loopback_interface_name(self, anm):
        nidb = DynagenCompiler(anm).compile()
        assert nidb.node("as100r1").loopback_interface().id == "Loopback0"

    def test_topology_links_have_both_interfaces(self, anm):
        nidb = DynagenCompiler(anm).compile()
        links = [link.to_dict() for link in nidb.topology.links]
        assert len(links) == 18
        sample = links[0]
        assert set(sample) == {"src", "src_interface", "dst", "dst_interface"}

    def test_render_single_config_per_router(self, anm):
        nidb = DynagenCompiler(anm).compile()
        files = nidb.node("as100r1").render.files
        assert len(files) == 1
        assert files[0].path == "configs/as100r1.cfg"


class TestJunosphere:
    def test_interface_names_ge(self, anm):
        nidb = JunosphereCompiler(anm).compile()
        names = [i.id for i in nidb.node("as100r1").physical_interfaces()]
        assert names == ["ge-0/0/0", "ge-0/0/1", "ge-0/0/2"]

    def test_topology_render_is_vmm(self, anm):
        nidb = JunosphereCompiler(anm).compile()
        paths = [f.path for f in nidb.topology.render.files]
        assert paths == ["topology.vmm"]


class TestCbgp:
    def test_no_per_device_files(self, anm):
        nidb = CbgpPlatformCompiler(anm).compile()
        assert nidb.node("as100r1").render.files == []

    def test_single_topology_script(self, anm):
        nidb = CbgpPlatformCompiler(anm).compile()
        paths = [f.path for f in nidb.topology.render.files]
        assert paths == ["network.cli"]

    def test_links_carry_igp_weight(self, anm):
        nidb = CbgpPlatformCompiler(anm).compile()
        links = [link.to_dict() for link in nidb.topology.links]
        assert len(links) == 18
        assert all(link["igp_weight"] >= 1 for link in links)

    def test_asn_list(self, anm):
        nidb = CbgpPlatformCompiler(anm).compile()
        assert nidb.topology.asns == [1, 20, 30, 40, 100, 200, 300]


def test_interfaces_sorted_by_neighbor_for_determinism(anm):
    first = NetkitCompiler(anm).compile()
    second = NetkitCompiler(anm).compile()
    for device in first:
        other = second.node(device.node_id)
        assert [i.id for i in device.interfaces] == [i.id for i in other.interfaces]
        assert [str(i.ip_address) for i in device.interfaces] == [
            str(i.ip_address) for i in other.interfaces
        ]
