"""Unit tests for multi-host / multi-platform compilation (§5.4)."""

import os
import tempfile

import pytest

from repro.compilers import (
    compile_multi,
    cross_host_links,
    device_targets,
    platform_compiler,
)
from repro.design import design_network
from repro.exceptions import CompilerError
from repro.loader import small_internet
from repro.render import render_nidb


def _split_topology():
    """Small-Internet with AS300 hosted on a second emulation server."""
    graph = small_internet()
    for name, data in graph.nodes(data=True):
        if data["asn"] == 300:
            data["host"] = "serverb"
    return graph


@pytest.fixture(scope="module")
def result():
    return compile_multi(design_network(_split_topology()))


def test_device_grouping():
    anm = design_network(_split_topology())
    groups = device_targets(anm)
    assert set(groups) == {("localhost", "netkit"), ("serverb", "netkit")}
    assert len(groups[("serverb", "netkit")]) == 4


def test_one_nidb_per_target(result):
    assert result.targets() == [("localhost", "netkit"), ("serverb", "netkit")]
    assert len(result.nidb("localhost", "netkit")) == 10
    assert len(result.nidb("serverb", "netkit")) == 4


def test_unknown_target_raises(result):
    with pytest.raises(CompilerError):
        result.nidb("nowhere", "netkit")


def test_cross_host_links_query():
    anm = design_network(_split_topology())
    links = cross_host_links(anm)
    pairs = {tuple(sorted((link.src, link.dst))) for link in links}
    # AS300's three inter-AS links leave serverb.
    assert pairs == {
        ("as300r1", "as30r1"),
        ("as300r2", "as40r1"),
        ("as200r1", "as300r4"),
    }
    assert all(link.collision_domain for link in links)


def test_tunnels_attached_to_both_sides(result):
    local = result.nidb("localhost", "netkit").topology.tunnels
    remote = result.nidb("serverb", "netkit").topology.tunnels
    assert len(local) == 3 and len(remote) == 3
    assert {t.remote_host for t in local} == {"serverb"}
    assert {t.remote_host for t in remote} == {"localhost"}


def test_collision_domains_scoped_per_lab(result):
    local_domains = set(
        result.nidb("localhost", "netkit").topology.collision_domains.to_dict()
    )
    remote_domains = set(
        result.nidb("serverb", "netkit").topology.collision_domains.to_dict()
    )
    # Cross-host domains appear in both labs; pure-local ones in one.
    assert local_domains & remote_domains  # the 3 tunnel domains
    assert local_domains - remote_domains  # localhost-only domains
    assert remote_domains - local_domains  # AS300-internal domains


def test_rendered_labs_land_in_separate_trees(result):
    out = tempfile.mkdtemp()
    for target in result.targets():
        render_nidb(result.nidbs[target], out)
    assert os.path.exists(os.path.join(out, "localhost", "netkit", "lab.conf"))
    assert os.path.exists(os.path.join(out, "serverb", "netkit", "lab.conf"))
    text = open(os.path.join(out, "serverb", "netkit", "lab.conf")).read()
    assert "as300r1" in text and "as100r1" not in text


def test_tunnel_script_rendered(result):
    out = tempfile.mkdtemp()
    render_nidb(result.nidb("serverb", "netkit"), out)
    script = open(os.path.join(out, "serverb", "netkit", "tunnels.sh")).read()
    assert "ovs-vsctl add-port" in script
    assert "type=gre" in script
    assert "remote_host=localhost" in script
    assert script.count("add-port") == 3


def test_mixed_platforms_supported():
    graph = small_internet()
    for name, data in graph.nodes(data=True):
        if data["asn"] == 20:
            data["platform"] = "dynagen"
            data["syntax"] = "ios"
    result = compile_multi(design_network(graph))
    assert ("localhost", "dynagen") in result.nidbs
    assert len(result.nidb("localhost", "dynagen")) == 3
    # Cross-platform links on the same host also become tunnels.
    assert result.cross_links


def test_single_target_has_no_tunnels():
    result = compile_multi(design_network(small_internet()))
    assert result.targets() == [("localhost", "netkit")]
    assert result.cross_links == []
    assert result.nidb("localhost", "netkit").topology.tunnels is None
