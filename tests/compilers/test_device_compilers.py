"""Unit tests for device compilation into NIDB stanzas (§5.4)."""

import ipaddress

import pytest

from repro.compilers import platform_compiler
from repro.design import design_network
from repro.loader import bad_gadget_topology, fig5_topology, small_internet


@pytest.fixture(scope="module")
def si_device(si_nidb_module):
    return si_nidb_module.node("as100r1")


@pytest.fixture(scope="module")
def si_nidb_module():
    return platform_compiler("netkit", design_network(small_internet())).compile()


def test_zebra_stanza_matches_paper(si_device):
    """§5.4: {"zebra": {"password": "1234", "hostname": "as100r1"}}."""
    assert si_device.zebra.hostname == "as100r1"
    assert si_device.zebra.password == "1234"


def test_ospf_stanza_structure(si_device):
    ospf = si_device.ospf
    assert ospf.process_id == 1
    networks = {str(link.network) for link in ospf.ospf_links}
    # Two intra-AS interfaces plus the loopback /32.
    assert len(networks) == 3
    assert any(net.endswith("/32") for net in networks)
    assert all(link.area == 0 for link in ospf.ospf_links)


def test_ospf_excludes_inter_as_interfaces(si_device):
    # as100r1 has a link to as20r2: its subnet must not be in OSPF.
    inter_as = [
        interface
        for interface in si_device.physical_interfaces()
        if not interface.igp_active
    ]
    assert len(inter_as) == 1
    ospf_nets = {str(link.network) for link in si_device.ospf.ospf_links}
    assert str(inter_as[0].subnet) not in ospf_nets


def test_interface_descriptions(si_device):
    descriptions = {i.description for i in si_device.physical_interfaces()}
    assert "as100r1 to as100r2" in descriptions
    assert "as100r1 to as100r3" in descriptions


def test_bgp_stanza_ebgp_neighbor(si_device):
    ebgp = si_device.bgp.ebgp_neighbors
    assert len(ebgp) == 1
    neighbor = ebgp[0]
    assert neighbor.neighbor == "as20r2"
    assert neighbor.remote_asn == 20
    # The neighbor address is the peer's interface on the shared /30.
    address = ipaddress.ip_address(neighbor.neighbor_ip)
    subnet = next(
        ipaddress.ip_network(i.subnet)
        for i in si_device.physical_interfaces()
        if not i.igp_active
    )
    assert address in subnet


def test_bgp_stanza_ibgp_full_mesh(si_device, si_nidb_module):
    ibgp = si_device.bgp.ibgp_neighbors
    assert {n.neighbor for n in ibgp} == {"as100r2", "as100r3"}
    for neighbor in ibgp:
        peer = si_nidb_module.node(neighbor.neighbor)
        assert neighbor.neighbor_ip == str(peer.loopback)
        assert neighbor.next_hop_self is True  # library default
        assert neighbor.rr_client is False


def test_bgp_originates_as_blocks(si_device):
    networks = set(si_device.bgp.networks)
    # AS 100's infra and loopback blocks.
    assert len(networks) == 2
    assert any(ipaddress.ip_network(n).prefixlen <= 24 for n in networks)


def test_rr_sessions_compiled_from_gadget():
    nidb = platform_compiler("netkit", design_network(bad_gadget_topology())).compile()
    rr1 = nidb.node("rr1")
    by_peer = {n.neighbor: n for n in rr1.bgp.ibgp_neighbors}
    assert by_peer["c1"].rr_client is True
    assert by_peer["rr2"].rr_client is False
    c1 = nidb.node("c1")
    client_sessions = {n.neighbor for n in c1.bgp.ibgp_neighbors}
    assert client_sessions == {"rr1"}
    assert all(n.next_hop_self for n in c1.bgp.ibgp_neighbors)


def test_prefix_origination_from_attribute():
    nidb = platform_compiler("netkit", design_network(bad_gadget_topology())).compile()
    origin = nidb.node("origin")
    assert "203.0.113.0/24" in origin.bgp.networks


def test_dns_stanza_on_server(si_nidb_module):
    server = si_nidb_module.node("as100r1")
    assert server.dns.zone == "as100.lab"
    names = {record.name for record in server.dns.records}
    assert names == {"as100r1", "as100r2", "as100r3"}
    assert len(server.dns.reverse_records) == 3


def test_dns_client_stanza(si_nidb_module):
    client = si_nidb_module.node("as100r2")
    assert client.dns is None
    assert client.dns_client.domain == "as100.lab"
    server = si_nidb_module.node("as100r1")
    assert client.dns_client.resolver == str(server.loopback)


def test_isis_compiler_when_overlay_present():
    """§7: the IS-IS compiler hook condenses the isis overlay."""
    anm = design_network(
        fig5_topology(), rules=("phy", "ipv4", "ospf", "isis", "ebgp", "ibgp")
    )
    nidb = platform_compiler("netkit", anm).compile()
    device = nidb.node("r1")
    assert device.isis is not None
    assert device.isis.net.startswith("49.")
    assert all(i.metric == 10 for i in device.isis.interfaces)


def test_no_isis_stanza_without_overlay(si_device):
    assert si_device.isis is None


def test_single_router_as_has_no_ospf(si_nidb_module):
    """as30r1 has no intra-AS edges: no OSPF stanza (§5.4)."""
    device = si_nidb_module.node("as30r1")
    assert device.ospf is None
    assert device.bgp is not None
