"""Integration: an IS-IS lab boots and routes in the substrate (E4+).

The paper's IS-IS extension (§7) generates isisd configurations; here
we prove the rendered lab actually *works* — the IGP engine consumes
IS-IS intent, BGP next hops resolve, and cross-AS traceroutes succeed —
so the extension is end-to-end, not render-only.
"""

import tempfile

import pytest

from repro.compilers import platform_compiler
from repro.design import design_network
from repro.emulation import EmulatedLab
from repro.loader import line_topology, small_internet
from repro.render import render_nidb

ISIS_RULES = ("phy", "ipv4", "isis", "ebgp", "ibgp", "dns")


@pytest.fixture(scope="module")
def isis_lab(tmp_path_factory):
    anm = design_network(small_internet(), rules=ISIS_RULES)
    nidb = platform_compiler("netkit", anm).compile()
    rendered = render_nidb(nidb, tmp_path_factory.mktemp("isis"))
    return EmulatedLab.boot(rendered.lab_dir)


def test_isis_lab_converges(isis_lab):
    assert isis_lab.converged


def test_isis_adjacency_matches_topology(isis_lab):
    assert [n for n, _ in isis_lab.igp.neighbors("as100r1")] == [
        "as100r2",
        "as100r3",
    ]
    # Single-router ASes run no IGP.
    assert isis_lab.igp.neighbors("as30r1") == []


def test_isis_intra_as_routing(isis_lab):
    loopback = isis_lab.network.device("as100r2").loopback
    trace = isis_lab.dataplane.trace("as100r1", loopback)
    assert trace.reached
    assert trace.machines() == ["as100r2"]


def test_isis_cross_as_reachability(isis_lab):
    loopback = isis_lab.network.device("as100r2").loopback
    trace = isis_lab.dataplane.trace("as300r2", loopback)
    assert trace.reached


def test_isis_metrics_steer_paths(tmp_path):
    """Raise one IS-IS metric: traffic shifts to the other triangle leg."""
    graph = small_internet()
    graph.edges["as100r1", "as100r2"]["isis_metric"] = 100
    anm = design_network(graph, rules=ISIS_RULES)
    nidb = platform_compiler("netkit", anm).compile()
    rendered = render_nidb(nidb, tmp_path)
    lab = EmulatedLab.boot(rendered.lab_dir)
    loopback = lab.network.device("as100r2").loopback
    trace = lab.dataplane.trace("as100r1", loopback)
    assert trace.machines() == ["as100r3", "as100r2"]


def test_isis_only_single_as(tmp_path):
    anm = design_network(line_topology(4), rules=("phy", "ipv4", "isis"))
    nidb = platform_compiler("netkit", anm).compile()
    rendered = render_nidb(nidb, tmp_path)
    lab = EmulatedLab.boot(rendered.lab_dir)
    # 3 hops at default metric 10 each.
    assert lab.igp.distance("r1", "r4") == 30
    assert lab.dataplane.ping("r1", lab.network.device("r4").loopback)
