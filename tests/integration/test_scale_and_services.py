"""Integration: scale (E3/E8), RPKI (E7), IS-IS (E4), Rocketfuel input."""

import os

import pytest

from repro import run_experiment
from repro.compilers import platform_compiler
from repro.deployment import LocalEmulationHost, deploy
from repro.design import design_network
from repro.loader import (
    attach_servers,
    european_nren_model,
    load_rocketfuel,
    multi_as_topology,
    rpki_topology,
    small_internet,
    write_cch,
)
from repro.render import render_nidb


class TestNrenScaleSlice:
    """A reduced-scale slice of the §3.2 experiment (full scale runs in
    the benchmark harness)."""

    @pytest.fixture(scope="class")
    def result(self, tmp_path_factory):
        return run_experiment(
            european_nren_model(scale=0.05),
            output_dir=str(tmp_path_factory.mktemp("nren")),
            deploy=False,
        )

    def test_configuration_pipeline_completes(self, result):
        assert result.render_result.n_files > 100

    def test_every_router_configured(self, result):
        lab_dir = result.render_result.lab_dir
        for device in result.nidb.routers():
            assert os.path.exists(
                os.path.join(lab_dir, device.hostname, "etc", "quagga", "zebra.conf")
            )

    def test_scaled_lab_boots_and_converges(self, result, tmp_path_factory):
        from repro.emulation import EmulatedLab

        lab = EmulatedLab.boot(
            result.render_result.lab_dir, max_rounds=96, keep_history=False
        )
        assert lab.converged
        # Cross-AS reachability spot check between two NREN routers.
        machines = sorted(lab.network.machines)
        source = machines[0]
        target = machines[-1]
        loopback = lab.network.device(target).loopback
        assert lab.dataplane.ping(source, loopback)


class TestServersAtScale:
    def test_routers_plus_servers_compile(self, tmp_path):
        graph = attach_servers(multi_as_topology(n_ases=2, routers_per_as=3), per_router=2)
        result = run_experiment(graph, output_dir=str(tmp_path), deploy=False)
        assert len(result.nidb.servers()) == 12
        # Servers have addresses and resolv.conf but no routing daemons.
        server = result.nidb.servers()[0]
        assert server.physical_interfaces()
        assert server.bgp is None


class TestRpkiDeployment:
    """E7 (§3.3): an RPKI service network deployed as a lab."""

    @pytest.fixture(scope="class")
    def record(self, tmp_path_factory):
        graph = rpki_topology(n_child_cas=3, n_caches=5, n_routers=4)
        anm = design_network(
            graph, rules=("phy", "ipv4", "ospf", "ebgp", "ibgp", "dns", "rpki")
        )
        nidb = platform_compiler("netkit", anm).compile()
        rendered = render_nidb(nidb, tmp_path_factory.mktemp("rpki"))
        host = LocalEmulationHost(work_dir=str(tmp_path_factory.mktemp("rpki_host")))
        return deploy(rendered.lab_dir, host=host, lab_name="rpki")

    def test_all_vms_deploy(self, record):
        # 1 root CA + 3 CAs + 2 pubs + 5 caches + 4 routers = 15 machines.
        assert len(record.lab.network) == 15

    def test_rpki_configs_parsed_on_boot(self, record):
        devices = record.lab.network.machines
        roles = {d.rpki_role for d in devices.values() if d.rpki_role}
        assert roles == {"ca", "publication", "cache", "rtr_client"}

    def test_ca_resources_flow_into_configs(self, record):
        ca_root = record.lab.network.device("ca_root")
        assert ca_root.rpki_config["is_root"] == "True"
        assert ca_root.rpki_config["resources"]
        child = record.lab.network.device("ca1")
        assert child.rpki_config["parent"] == "ca_root"
        assert child.rpki_config["roas"]


class TestIsisExtension:
    """E4 (§7): IS-IS as the extensibility example."""

    def test_isis_end_to_end(self, tmp_path):
        result = run_experiment(
            small_internet(),
            rules=("phy", "ipv4", "isis", "ebgp", "ibgp"),
            output_dir=str(tmp_path),
            deploy=False,
        )
        lab_dir = result.render_result.lab_dir
        path = os.path.join(lab_dir, "as100r1", "etc", "quagga", "isisd.conf")
        text = open(path).read()
        assert "router isis" in text
        assert "net 49." in text
        daemons = open(
            os.path.join(lab_dir, "as100r1", "etc", "quagga", "daemons")
        ).read()
        assert "isisd=yes" in daemons and "ospfd=no" in daemons


class TestRocketfuelInput:
    def test_cch_to_configs(self, tmp_path):
        write_cch(multi_as_topology(n_ases=1, routers_per_as=6, seed=3), tmp_path / "isp.cch")
        graph = load_rocketfuel(tmp_path / "isp.cch", asn=7018)
        result = run_experiment(graph, output_dir=str(tmp_path / "out"))
        assert result.lab.converged
        assert len(result.lab.network) == 6
