"""Integration: the one-call experiment workflow (§6, Figure 2)."""

import os

import pytest

from repro import run_experiment, small_internet
from repro.loader import fig5_topology, save_graphml
from repro.workflow import load_topology


@pytest.fixture(scope="module")
def result(tmp_path_factory):
    return run_experiment(
        small_internet(),
        output_dir=str(tmp_path_factory.mktemp("workflow")),
        lab_name="si",
    )


def test_all_phases_timed(result):
    assert set(result.timings) == {"load_build", "compile", "render", "deploy"}
    assert all(value >= 0 for value in result.timings.values())
    assert "load_build" in result.timing_summary()


def test_artifacts_chained(result):
    assert result.anm.has_overlay("ospf")
    assert len(result.nidb) == 14
    assert result.render_result.n_files > 50
    assert result.lab is not None and result.lab.converged


def test_small_internet_under_a_second(result):
    """§3.1/§6.1: build + compile for the lab takes well under a second."""
    assert result.timings["load_build"] + result.timings["compile"] < 1.0


def test_deploy_can_be_skipped(tmp_path):
    result = run_experiment(fig5_topology(), deploy=False, output_dir=str(tmp_path))
    assert result.deployment is None
    assert result.lab is None
    assert os.path.exists(os.path.join(result.render_result.lab_dir, "lab.conf"))


def test_load_topology_from_files(tmp_path):
    path = tmp_path / "fig5.graphml"
    save_graphml(fig5_topology(), path)
    graph = load_topology(str(path))
    assert len(graph) == 5
    # graph objects pass through unchanged
    assert load_topology(graph) is graph


def test_load_topology_unknown_extension_is_a_clear_error(tmp_path):
    from repro.exceptions import LoaderError

    path = tmp_path / "topology.yaml"
    path.write_text("routers: []\n")
    with pytest.raises(LoaderError) as failure:
        load_topology(str(path))
    message = str(failure.value)
    for extension in (".graphml", ".gml", ".json"):
        assert extension in message


def test_workflow_from_graphml_file(tmp_path):
    path = tmp_path / "fig5.graphml"
    save_graphml(fig5_topology(), path)
    result = run_experiment(str(path), output_dir=str(tmp_path / "out"))
    assert result.lab.converged
    assert len(result.lab.network) == 5


def test_other_platforms_render_without_deploy(tmp_path):
    for platform in ("dynagen", "junosphere", "cbgp"):
        result = run_experiment(
            fig5_topology(),
            platform=platform,
            deploy=False,
            output_dir=str(tmp_path / platform),
        )
        assert result.render_result.n_files >= 1


def test_experiment_is_repeatable(tmp_path, result):
    """§2: rebuilding the experiment yields identical configurations."""
    again = run_experiment(
        small_internet(), output_dir=str(tmp_path / "again"), deploy=False
    )
    first_texts = {
        os.path.relpath(p, result.render_result.lab_dir): open(p).read()
        for p in result.render_result.files
    }
    second_texts = {
        os.path.relpath(p, again.render_result.lab_dir): open(p).read()
        for p in again.render_result.files
    }
    assert first_texts == second_texts
