"""Determinism: repeated and parallel builds yield identical corpora.

The §2 repeatability claim, sharpened to bytes: the configuration
corpus must be a pure function of the input topology — across repeated
runs, across executor kinds, and across the classic straight-line
renderer versus the build engine.
"""

import os

import pytest

from repro.engine import BuildEngine
from repro.loader import small_internet
from repro.workflow import run_experiment


def _corpus(root):
    found = {}
    for dirpath, _, names in os.walk(root):
        for name in names:
            path = os.path.join(dirpath, name)
            with open(path, "rb") as handle:
                found[os.path.relpath(path, root)] = handle.read()
    return found


def test_back_to_back_runs_byte_identical(tmp_path):
    first = run_experiment(
        small_internet(), deploy=False, output_dir=str(tmp_path / "first")
    )
    second = run_experiment(
        small_internet(), deploy=False, output_dir=str(tmp_path / "second")
    )
    corpus_a = _corpus(str(tmp_path / "first"))
    corpus_b = _corpus(str(tmp_path / "second"))
    assert corpus_a and corpus_a == corpus_b
    assert first.render_result.n_files == second.render_result.n_files


@pytest.mark.parametrize("jobs", [1, 4])
def test_engine_workflow_matches_classic(tmp_path, jobs):
    classic_dir = tmp_path / "classic"
    run_experiment(small_internet(), deploy=False, output_dir=str(classic_dir))

    engine_dir = tmp_path / ("engine%d" % jobs)
    engine = BuildEngine(jobs=jobs)
    run_experiment(
        small_internet(), deploy=False, output_dir=str(engine_dir), engine=engine
    )
    engine.shutdown()
    assert _corpus(str(engine_dir)) == _corpus(str(classic_dir))
