"""Integration: dual-stack IPv6 addressing through the pipeline (§5.3).

The paper's allocator is a plugin; the IPv6 design rule reuses the
same collision-domain machinery with IPv6 conventions (/64 per domain,
/128 loopbacks) and the compiler emits dual-stack interface
configuration for every vendor.
"""

import ipaddress
import os
import tempfile

import pytest

from repro.compilers import platform_compiler
from repro.design import collision_domains, design_network
from repro.emulation import EmulatedLab
from repro.loader import fig5_topology, small_internet
from repro.render import render_nidb

DUAL_STACK_RULES = ("phy", "ipv4", "ipv6", "ospf", "ebgp", "ibgp", "dns")


@pytest.fixture(scope="module")
def anm():
    return design_network(small_internet(), rules=DUAL_STACK_RULES)


class TestIpv6Overlay:
    def test_every_domain_gets_a_slash_64(self, anm):
        domains = collision_domains(anm["ipv6"])
        assert len(domains) == 18
        assert all(domain.subnet.prefixlen == 64 for domain in domains)

    def test_loopbacks_unique_v6(self, anm):
        loopbacks = [node.loopback for node in anm["ipv6"] if node.loopback]
        assert len(loopbacks) == 14
        assert len(set(loopbacks)) == 14
        assert all(
            loopback in ipaddress.ip_network("2001:db8:ffff::/48")
            for loopback in loopbacks
        )

    def test_v6_subnets_disjoint(self, anm):
        subnets = [d.subnet for d in collision_domains(anm["ipv6"])]
        for i, a in enumerate(subnets):
            for b in subnets[i + 1:]:
                assert not a.overlaps(b)

    def test_per_as_blocks_recorded(self, anm):
        blocks = anm["ipv6"].data.infra_blocks
        assert set(blocks) == {1, 20, 30, 40, 100, 200, 300}
        assert all(block.version == 6 for block in blocks.values())

    def test_same_collision_domain_structure_as_v4(self, anm):
        v4_ids = {str(d.node_id) for d in collision_domains(anm["ipv4"])}
        v6_ids = {str(d.node_id) for d in collision_domains(anm["ipv6"])}
        assert v4_ids == v6_ids

    def test_deterministic(self):
        first = design_network(small_internet(), rules=DUAL_STACK_RULES)["ipv6"]
        second = design_network(small_internet(), rules=DUAL_STACK_RULES)["ipv6"]
        for node in first:
            assert second.node(node.node_id).loopback == node.loopback


class TestDualStackCompile:
    @pytest.fixture(scope="class")
    def nidb(self, anm):
        return platform_compiler("netkit", anm).compile()

    def test_interfaces_carry_both_families(self, nidb):
        device = nidb.node("as100r1")
        assert device.loopback_v6 is not None
        for interface in device.physical_interfaces():
            assert interface.ipv6_address is not None
            assert interface.ipv6_prefixlen == 64
        loopback = device.loopback_interface()
        assert loopback.ipv6_prefixlen == 128

    def test_v4_only_designs_unaffected(self):
        anm = design_network(small_internet())
        nidb = platform_compiler("netkit", anm).compile()
        device = nidb.node("as100r1")
        assert device.loopback_v6 is None
        assert device.physical_interfaces()[0].ipv6_address is None


class TestDualStackRendering:
    @pytest.fixture(scope="class")
    def rendered(self, anm, tmp_path_factory):
        nidb = platform_compiler("netkit", anm).compile()
        return render_nidb(nidb, tmp_path_factory.mktemp("v6"))

    def test_startup_has_v6_lines(self, rendered):
        text = open(os.path.join(rendered.lab_dir, "as100r1.startup")).read()
        assert "add 2001:db8:" in text
        assert "/64 up" in text
        assert "/128 up" in text

    def test_ios_and_junos_dual_stack(self, tmp_path):
        anm = design_network(fig5_topology(), rules=DUAL_STACK_RULES)
        ios = render_nidb(platform_compiler("dynagen", anm).compile(), tmp_path / "i")
        text = open(os.path.join(ios.lab_dir, "configs", "r1.cfg")).read()
        assert "ipv6 address 2001:db8:" in text
        anm = design_network(fig5_topology(), rules=DUAL_STACK_RULES)
        junos = render_nidb(
            platform_compiler("junosphere", anm).compile(), tmp_path / "j"
        )
        text = open(os.path.join(junos.lab_dir, "configs", "r1.conf")).read()
        assert "family inet6 {" in text

    def test_lab_boots_with_v6_intent(self, rendered):
        lab = EmulatedLab.boot(rendered.lab_dir)
        assert lab.converged  # v4 control plane unaffected
        device = lab.network.device("as100r1")
        physical = [i for i in device.interfaces if not i.is_loopback and not i.is_management]
        assert all(i.ipv6_address is not None for i in physical)
        loopback = next(i for i in device.interfaces if i.is_loopback)
        assert loopback.ipv6_prefixlen == 128
