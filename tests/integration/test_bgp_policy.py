"""Integration: eBGP routing policy end to end (§7.3).

"The routing policy can be stored as a string attribute on the edge in
the topology graph ... or use attributes that are transformed in the
compiler."  These tests put ``local_pref`` / ``med`` /
``as_path_prepend`` attributes on input edges and verify they steer
route selection in the booted lab — through the rendered config text of
each vendor.
"""

import ipaddress
import tempfile

import networkx as nx
import pytest

from repro.compilers import platform_compiler
from repro.design import design_network
from repro.emulation import EmulatedLab
from repro.loader import normalise, small_internet
from repro.render import render_nidb

PREFIX = "203.0.113.0/24"


def _dual_exit_topology(**edge_policy):
    """AS 1 (r1a, r1b) dual-homed to AS 2 (r2): two eBGP exits.

    ``edge_policy`` maps "a"/"b" to attribute dicts applied to the
    r1a--r2 / r1b--r2 links respectively.
    """
    graph = nx.Graph()
    for name in ("r1a", "r1b"):
        graph.add_node(name, asn=1, device_type="router")
    graph.add_node("r2", asn=2, device_type="router")
    graph.add_node("origin", asn=3, device_type="router", prefixes=[PREFIX])
    graph.add_edge("r1a", "r1b")
    graph.add_edge("r1a", "r2", **edge_policy.get("a", {}))
    graph.add_edge("r1b", "r2", **edge_policy.get("b", {}))
    graph.add_edge("r1a", "origin")
    return normalise(graph)


def _boot(graph, platform="netkit"):
    anm = design_network(graph)
    nidb = platform_compiler(platform, anm).compile()
    rendered = render_nidb(nidb, tempfile.mkdtemp())
    return EmulatedLab.boot(rendered.lab_dir, max_rounds=40)


def _selected_exit(lab, machine="r2"):
    route = lab.bgp_result.selected[machine][ipaddress.ip_network(PREFIX)]
    return route.learned_from, route


def test_baseline_tie_breaks_by_router_id():
    lab = _boot(_dual_exit_topology())
    exit_machine, _ = _selected_exit(lab)
    # Equal attributes: quagga falls to peer router-id; r1a < r1b.
    assert exit_machine == "r1a"


@pytest.mark.parametrize("platform", ["netkit", "dynagen", "junosphere"])
def test_prepend_shifts_selection(platform):
    """Prepending on the r1a link makes r2 prefer the r1b exit."""
    lab = _boot(_dual_exit_topology(a={"as_path_prepend": 2}), platform)
    exit_machine, route = _selected_exit(lab)
    assert exit_machine == "r1b"
    # The alternative (prepended) path would carry 1,1,1,3.
    assert route.as_path == (1, 3)


@pytest.mark.parametrize("platform", ["netkit", "dynagen", "junosphere"])
def test_med_shifts_selection(platform):
    """A lower MED on the r1b link wins within the same neighbour AS."""
    lab = _boot(
        _dual_exit_topology(a={"med": 50}, b={"med": 10}), platform
    )
    exit_machine, route = _selected_exit(lab)
    assert exit_machine == "r1b"
    assert route.med == 10


def test_local_pref_dominates_prepend():
    """local_pref on the prepended session still wins (step 1 beats 3)."""
    lab = _boot(
        _dual_exit_topology(a={"as_path_prepend": 3, "local_pref": 500})
    )
    exit_machine, route = _selected_exit(lab)
    assert exit_machine == "r1a"
    assert route.local_pref == 500


def test_prepend_visible_in_rendered_configs():
    graph = _dual_exit_topology(a={"as_path_prepend": 2})
    anm = design_network(graph)
    nidb = platform_compiler("netkit", anm).compile()
    rendered = render_nidb(nidb, tempfile.mkdtemp())
    import os

    text = open(
        os.path.join(rendered.lab_dir, "r1a", "etc", "quagga", "bgpd.conf")
    ).read()
    assert "route-map rm-out-r2 out" in text
    assert "set as-path prepend 1 1" in text


def test_med_visible_in_all_vendor_configs(tmp_path):
    graph = _dual_exit_topology(a={"med": 50})
    import os

    anm = design_network(graph)
    quagga = render_nidb(
        platform_compiler("netkit", anm).compile(), tmp_path / "q"
    )
    assert "set metric 50" in open(
        os.path.join(quagga.lab_dir, "r1a", "etc", "quagga", "bgpd.conf")
    ).read()
    anm = design_network(graph)
    ios = render_nidb(
        platform_compiler("dynagen", anm).compile(), tmp_path / "i"
    )
    assert "set metric 50" in open(
        os.path.join(ios.lab_dir, "configs", "r1a.cfg")
    ).read()
    anm = design_network(graph)
    junos = render_nidb(
        platform_compiler("junosphere", anm).compile(), tmp_path / "j"
    )
    assert "metric 50;" in open(
        os.path.join(junos.lab_dir, "configs", "r1a.conf")
    ).read()


def test_prepend_parse_roundtrip():
    """The parsed intent carries the prepend count for every vendor."""
    graph = _dual_exit_topology(a={"as_path_prepend": 2})
    for platform, machine in (("netkit", "r1a"), ("dynagen", "r1a"), ("junosphere", "r1a")):
        lab = _boot(graph, platform)
        device = lab.network.device(machine)
        r2_sessions = [
            n for n in device.bgp.neighbors if n.remote_asn == 2
        ]
        assert r2_sessions and r2_sessions[0].prepend_out == 2, platform


class TestCommunities:
    def _community_topology(self):
        return _dual_exit_topology(a={"community": "1:666"})

    @pytest.mark.parametrize("platform", ["netkit", "dynagen", "junosphere"])
    def test_communities_attached_on_export(self, platform):
        lab = _boot(self._community_topology(), platform)
        prefix = ipaddress.ip_network(PREFIX)
        # r2's Adj-RIB holds two paths; the selected one (via r1a,
        # router-id tie-break) carries the tagged community.
        route = lab.bgp_result.selected["r2"][prefix]
        assert route.learned_from == "r1a"
        assert route.communities == ("1:666",)

    def test_communities_transit_through_ibgp(self):
        """Communities are transitive: they survive iBGP propagation."""
        graph = small_internet()
        graph.edges["as1r1", "as20r3"]["community"] = "1:100"
        lab = _boot(graph)
        prefix = next(
            p
            for p in lab.bgp_result.selected["as20r1"]
            if str(p).startswith("192.168.0.")  # AS1's loopback block
        )
        route = lab.bgp_result.selected["as20r1"][prefix]
        if route.learned_from == "as20r3" or route.learned_via == "ibgp":
            assert "1:100" in route.communities

    def test_community_rendered_in_configs(self, tmp_path):
        import os

        anm = design_network(self._community_topology())
        nidb = platform_compiler("netkit", anm).compile()
        rendered = render_nidb(nidb, tmp_path)
        text = open(
            os.path.join(rendered.lab_dir, "r1a", "etc", "quagga", "bgpd.conf")
        ).read()
        assert "set community 1:666 additive" in text

    def test_community_parse_roundtrip_all_vendors(self):
        for platform in ("netkit", "dynagen", "junosphere"):
            lab = _boot(self._community_topology(), platform)
            device = lab.network.device("r1a")
            session = next(n for n in device.bgp.neighbors if n.remote_asn == 2)
            assert session.communities_out == ("1:666",), platform


class TestPrefixFilters:
    """deny_prefixes_out / deny_prefixes_in edge attributes (§7.3)."""

    def _filtered_topology(self, direction="out"):
        graph = _dual_exit_topology()
        # AS 1's loopback block (2 ASes + origin AS -> /18s? compute
        # from the design) is what we filter; use the origin prefix
        # instead, which is stable.
        key = "deny_prefixes_%s" % direction
        graph.edges["r1a", "r2"][key] = [PREFIX]
        return graph

    @pytest.mark.parametrize("platform", ["netkit", "dynagen", "junosphere"])
    def test_outbound_filter_forces_other_exit(self, platform):
        lab = _boot(self._filtered_topology("out"), platform)
        exit_machine, route = _selected_exit(lab)
        # r1a suppresses the prefix on its session: r2 learns via r1b.
        assert exit_machine == "r1b", platform

    @pytest.mark.parametrize("platform", ["netkit", "dynagen", "junosphere"])
    def test_inbound_filter_equivalent(self, platform):
        lab = _boot(self._filtered_topology("in"), platform)
        exit_machine, _ = _selected_exit(lab)
        assert exit_machine == "r1b", platform

    def test_other_prefixes_unaffected(self):
        lab = _boot(self._filtered_topology("out"))
        # AS 1's own blocks still flow over the filtered session.
        selected = lab.bgp_result.selected["r2"]
        from_r1a = [
            route for route in selected.values() if route.learned_from == "r1a"
        ]
        assert from_r1a  # only the filtered prefix moved away

    def test_filter_rendered_in_quagga_config(self, tmp_path):
        import os

        anm = design_network(self._filtered_topology("out"))
        nidb = platform_compiler("netkit", anm).compile()
        rendered = render_nidb(nidb, tmp_path)
        text = open(
            os.path.join(rendered.lab_dir, "r1a", "etc", "quagga", "bgpd.conf")
        ).read()
        assert "prefix-list pl-out-r2 out" in text
        assert "ip prefix-list pl-out-r2 seq 5 deny %s" % PREFIX in text
        assert "permit 0.0.0.0/0 le 32" in text

    def test_filter_parse_roundtrip_all_vendors(self):
        import ipaddress as ipa

        for platform in ("netkit", "dynagen", "junosphere"):
            lab = _boot(self._filtered_topology("out"), platform)
            device = lab.network.device("r1a")
            session = next(n for n in device.bgp.neighbors if n.remote_asn == 2)
            assert session.deny_out == (ipa.ip_network(PREFIX),), platform
