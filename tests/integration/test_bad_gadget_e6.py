"""Integration E6 (§7.2): the Bad-Gadget vendor comparison.

"We did so on Quagga, IOS, Junos, and C-BGP.  Oscillations were
observed in the last three, but not in Quagga."

Each lab here is compiled *to its own platform syntax*, rendered to
files, parsed back, and simulated with that vendor's decision process —
the full pipeline, four times.
"""

import ipaddress

import pytest

from repro.loader.topology_gen import BAD_GADGET_PREFIX

PREFIX = ipaddress.ip_network(BAD_GADGET_PREFIX)


def test_quagga_converges(gadget_lab_quagga):
    assert gadget_lab_quagga.converged
    assert not gadget_lab_quagga.oscillating


@pytest.mark.parametrize(
    "lab_fixture", ["gadget_lab_ios", "gadget_lab_junos", "gadget_lab_cbgp"]
)
def test_igp_tiebreak_vendors_oscillate(lab_fixture, request):
    lab = request.getfixturevalue(lab_fixture)
    assert lab.oscillating, repr(lab)
    assert lab.bgp_result.period == 2


def test_oscillation_alternates_reflector_exits(gadget_lab_ios):
    """The reflectors flip between their own exit and the next cluster's."""
    lab = gadget_lab_ios
    history = lab.bgp_result.history
    reflectors = [n for n in lab.network.machines if "rr" in str(n)]
    assert len(reflectors) == 3
    late = history[-2:]
    choices = [
        {name: snap[name][PREFIX].learned_from for name in reflectors if PREFIX in snap.get(name, {})}
        for snap in late
    ]
    assert choices[0] != choices[1]
    # One phase of the cycle is "every reflector on its own client",
    # the other is "every reflector chasing a neighbouring reflector".
    def all_own(choice):
        return all(not value.startswith("rr") for value in choice.values())

    assert all_own(choices[0]) != all_own(choices[1])


def test_quagga_stable_choice_is_router_id_based(gadget_lab_quagga):
    """Without the IGP tie-break, reflectors settle on peer router-id."""
    lab = gadget_lab_quagga
    selected = lab.bgp_result.selected
    for name in lab.network.machines:
        if not str(name).startswith("rr"):
            continue
        route = selected[name].get(PREFIX)
        assert route is not None
        # Each reflector keeps its own cluster's exit.
        assert route.learned_from == str(name).replace("rr", "c")


def test_repeated_traceroutes_show_flapping(gadget_lab_ios):
    """§7.2: oscillation demonstrated via repeated automated traceroutes."""
    lab = gadget_lab_ios
    source = next(n for n in lab.network.machines if str(n).startswith("rr"))
    target = PREFIX.network_address + 1
    paths = set()
    for round_index in (len(lab.bgp_result.history) - 2, len(lab.bgp_result.history) - 1):
        dataplane = lab.dataplane_at_round(round_index)
        trace = dataplane.trace(source, target)
        paths.add(tuple(trace.machines()))
    assert len(paths) == 2  # the path flaps between rounds


def test_clients_never_flap(gadget_lab_ios):
    """eBGP beats iBGP at the clients: their choice is stable."""
    history = gadget_lab_ios.bgp_result.history
    for snapshot in history[2:]:
        for client in ("c1", "c2", "c3"):
            route = snapshot[client][PREFIX]
            assert route.learned_via == "ebgp"


def test_same_input_topology_all_platforms(
    gadget_lab_quagga, gadget_lab_ios, gadget_lab_junos, gadget_lab_cbgp
):
    """The same 7-node model ran on every platform (§7.2: 'the same
    network model on different types of router')."""
    assert len(gadget_lab_quagga.network) == 7
    assert len(gadget_lab_ios.network) == 7
    assert len(gadget_lab_junos.network) == 7
    assert len(gadget_lab_cbgp.network) == 7
