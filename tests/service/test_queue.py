"""Scheduling semantics of the service job queue, on a fake clock.

Quota keeps one client from occupying every worker, aging keeps low
priority work from starving, round-robin breaks ties fairly — all
asserted deterministically without a single sleep.
"""

import pytest

from repro.exceptions import ServiceError
from repro.service import (
    CANCELLED,
    DONE,
    QUEUED,
    RUNNING,
    Job,
    JobJournal,
    JobQueue,
)


class FakeClock:
    def __init__(self, value: float = 0.0):
        self.value = value

    def __call__(self) -> float:
        return self.value

    def advance(self, delta: float) -> None:
        self.value += delta


def job(job_id: str, client: str = "a", priority: int = 0) -> Job:
    return Job(
        job_id=job_id, client=client, spec_data={"name": job_id},
        directory="/tmp/%s" % job_id, priority=priority,
    )


def test_fifo_within_one_client():
    queue = JobQueue(quota=4, clock=FakeClock())
    for name in ("one", "two", "three"):
        queue.submit(job(name))
    assert [queue.claim(timeout=0).job_id for _ in range(3)] == [
        "one", "two", "three",
    ]


def test_higher_priority_jumps_the_line():
    queue = JobQueue(quota=4, clock=FakeClock())
    queue.submit(job("routine"))
    queue.submit(job("urgent", priority=5))
    assert queue.claim(timeout=0).job_id == "urgent"


def test_quota_blocks_a_clients_second_job():
    queue = JobQueue(quota=1, clock=FakeClock())
    queue.submit(job("a1", client="alice"))
    queue.submit(job("a2", client="alice"))
    queue.submit(job("b1", client="bob"))
    first = queue.claim(timeout=0)
    assert first.job_id == "a1"
    # alice is at quota: her a2 is skipped even though it is older
    second = queue.claim(timeout=0)
    assert second.job_id == "b1"
    # both clients saturated -> nothing claimable
    assert queue.claim(timeout=0) is None
    # finishing a1 frees alice's slot
    queue.finish(first, DONE)
    assert queue.claim(timeout=0).job_id == "a2"


def test_quota_prevents_starvation_between_two_clients():
    """One enthusiastic client cannot lock out a modest one (the ISSUE
    acceptance shape, condensed onto a fake clock)."""
    queue = JobQueue(quota=1, clock=FakeClock())
    for number in range(5):
        queue.submit(job("flood-%d" % number, client="flood"))
    queue.submit(job("modest-1", client="modest"))
    order = []
    running = []
    # two workers draining the queue, jobs finish in claim order
    for _ in range(6):
        while len(running) < 2:
            claimed = queue.claim(timeout=0)
            if claimed is None:
                break
            running.append(claimed)
            order.append(claimed.job_id)
        queue.finish(running.pop(0), DONE)
    assert "modest-1" in order[:2], order


def test_aging_lifts_a_starved_job_past_fresh_priorities():
    clock = FakeClock()
    queue = JobQueue(quota=4, aging_s=10.0, clock=clock)
    queue.submit(job("old-low", priority=0))
    clock.advance(25.0)   # 2.5 aging periods -> effective priority 2.5
    queue.submit(job("new-high", priority=2))
    assert queue.claim(timeout=0).job_id == "old-low"


def test_ties_rotate_to_the_least_recently_served_client():
    clock = FakeClock()
    queue = JobQueue(quota=4, clock=clock)
    queue.submit(job("a1", client="alice"))
    queue.submit(job("b1", client="bob"))
    queue.submit(job("a2", client="alice"))
    queue.submit(job("b2", client="bob"))
    clock.advance(1.0)     # every job has waited equally: priorities tie
    first = queue.claim(timeout=0)
    assert first.job_id == "a1"
    # alice's served stamp (1.0) now trails bob's never-served default:
    # bob's b1 outranks alice's a2 despite identical priorities
    assert queue.claim(timeout=0).job_id == "b1"
    assert queue.claim(timeout=0).job_id == "a2"
    assert queue.claim(timeout=0).job_id == "b2"


def test_cancel_removes_a_queued_job():
    queue = JobQueue(clock=FakeClock())
    queue.submit(job("victim"))
    cancelled = queue.cancel("victim")
    assert cancelled.state == CANCELLED
    assert queue.claim(timeout=0) is None
    assert queue.cancel("missing") is None


def test_snapshot_reports_effective_priorities():
    clock = FakeClock()
    queue = JobQueue(quota=2, aging_s=10.0, clock=clock)
    queue.submit(job("one", priority=1))
    clock.advance(5.0)
    snapshot = queue.snapshot()
    assert snapshot["depth"] == 1
    assert snapshot["queued"][0]["effective_priority"] == pytest.approx(1.5)


def test_bad_parameters_are_rejected():
    with pytest.raises(ServiceError):
        JobQueue(quota=0)
    with pytest.raises(ServiceError):
        JobQueue(aging_s=0)


# -- the journal -------------------------------------------------------------
def test_journal_replays_last_known_state(tmp_path):
    journal = JobJournal(tmp_path)
    one, two, three = job("one"), job("two"), job("three")
    for entry in (one, two, three):
        journal.submit(entry)
    one.state = RUNNING
    journal.state(one)
    one.state = DONE
    one.result = {"executed": 4}
    journal.state(one)
    two.state = RUNNING
    journal.state(two)   # cut off mid-run: stays pending

    replayed = {j.job_id: j for j in JobJournal(tmp_path).replay()}
    assert replayed["one"].state == DONE
    assert replayed["one"].result == {"executed": 4}
    assert replayed["two"].state == RUNNING
    assert replayed["three"].state == QUEUED
    pending = [j.job_id for j in replayed.values()
               if j.state in (QUEUED, RUNNING)]
    assert sorted(pending) == ["three", "two"]


def test_journal_tolerates_a_torn_final_line(tmp_path):
    journal = JobJournal(tmp_path)
    journal.submit(job("whole"))
    with open(journal.path, "a") as handle:
        handle.write('{"op": "state", "id": "whole", "sta')  # power loss
    fresh = JobJournal(tmp_path)
    replayed = fresh.replay()
    assert [j.job_id for j in replayed] == ["whole"]
    assert replayed[0].state == QUEUED
    assert fresh.torn_lines == 1


def test_journal_replay_preserves_spec_and_options(tmp_path):
    journal = JobJournal(tmp_path)
    submitted = job("rich", client="carol", priority=3)
    submitted.options = {"jobs": 2}
    submitted.total_trials = 7
    journal.submit(submitted)
    replayed = JobJournal(tmp_path).replay()[0]
    assert replayed.client == "carol"
    assert replayed.priority == 3
    assert replayed.options == {"jobs": 2}
    assert replayed.total_trials == 7
    assert replayed.spec_data == {"name": "rich"}
