"""The SQLite result index: incremental tailing, idempotent upserts,
aggregation queries."""

import json
import os

import pytest

from repro.campaign import ResultStore, TrialRecord
from repro.exceptions import ServiceError
from repro.service import ResultIndex


def record(suffix: str, status: str = "ok", platform: str = "netkit",
           topology: str = "fig5", **extra) -> TrialRecord:
    return TrialRecord(
        trial_id="%s@%s-%s" % (topology, platform, suffix),
        spec_hash="hash-%s" % suffix,
        status=status,
        topology=topology,
        platform=platform,
        **extra,
    )


def traffic(p50: float, p95: float, p99: float, loss: float = 0.01) -> dict:
    return {
        "totals": {"loss_rate": loss},
        "classes": {
            "web": {"latency_ms": {"p50": p50, "p95": p95, "p99": p99}},
            "bulk": {"latency_ms": {"p50": p50 / 2, "p95": p95 / 2,
                                    "p99": p99 / 2}},
        },
    }


@pytest.fixture()
def store(tmp_path):
    return ResultStore(tmp_path / "campaign")


def test_index_is_incremental(store):
    index = ResultIndex()
    store.append(record("a"))
    store.append(record("b", status="failed", error="boom"))
    first = index.index_store("job-1", store.directory)
    assert [r.spec_hash for r in first] == ["hash-a", "hash-b"]
    # nothing appended -> nothing re-read, nothing returned
    assert index.index_store("job-1", store.directory) == []
    store.append(record("c"))
    delta = index.index_store("job-1", store.directory)
    assert [r.spec_hash for r in delta] == ["hash-c"]
    assert {row["spec_hash"] for row in index.trials("job-1")} == {
        "hash-a", "hash-b", "hash-c",
    }


def test_offsets_persist_across_index_instances(tmp_path, store):
    db_path = tmp_path / "service.db"
    store.append(record("a"))
    ResultIndex(db_path).index_store("job-1", store.directory)
    store.append(record("b"))
    # a fresh index (service restart) resumes from the stored offset
    reopened = ResultIndex(db_path)
    delta = reopened.index_store("job-1", store.directory)
    assert [r.spec_hash for r in delta] == ["hash-b"]
    assert len(reopened.trials("job-1")) == 2


def test_torn_trailing_line_stays_pending(store):
    index = ResultIndex()
    store.append(record("a"))
    with open(store.index_path, "a") as handle:
        handle.write('{"trial_id": "torn", "spec_')   # power loss mid-write
    assert [r.spec_hash for r in index.index_store("j", store.directory)] == [
        "hash-a"
    ]
    # the writer recovers: append self-heals the torn tail and the new
    # record is picked up; the torn fragment never becomes a row
    store.append(record("b"))
    delta = index.index_store("j", store.directory)
    assert [r.spec_hash for r in delta] == ["hash-b"]
    assert len(index.trials("j")) == 2


def test_replayed_records_upsert_not_duplicate(store):
    """Crash-recovery appends superseding records for re-run trials; the
    index must converge to one row per (campaign, spec_hash)."""
    index = ResultIndex()
    store.append(record("a", status="interrupted"))
    index.index_store("j", store.directory)
    store.append(record("a", status="ok"))   # the recovery re-run
    index.index_store("j", store.directory)
    rows = index.trials("j")
    assert len(rows) == 1
    assert rows[0]["status"] == "ok"


def test_reindex_from_scratch_matches(store):
    index = ResultIndex()
    store.append(record("a"))
    store.append(record("b", status="failed", error="x"))
    index.index_store("j", store.directory)
    before = index.trials("j")
    index.reset_offsets()
    assert index.index_store("j", store.directory) != []
    assert index.trials("j") == before


def test_counts_and_status_filter(store):
    index = ResultIndex()
    store.append(record("a"))
    store.append(record("b", status="failed", error="x"))
    store.append(record("c"))
    index.index_store("j", store.directory)
    assert index.counts("j") == {"ok": 2, "failed": 1, "indexed": 3}
    assert [r["spec_hash"] for r in index.trials("j", status="failed")] == [
        "hash-b"
    ]


def test_aggregate_by_platform_and_campaign(store):
    index = ResultIndex()
    store.append(record("a", platform="netkit", duration_seconds=1.0))
    store.append(record("b", platform="netkit", status="failed", error="x",
                        duration_seconds=3.0))
    store.append(record("c", platform="cbgp", duration_seconds=2.0))
    index.index_store("j1", store.directory)
    rows = {row["platform"]: row for row in index.aggregate("platform")}
    assert rows["netkit"]["trials"] == 2
    assert rows["netkit"]["ok"] == 1
    assert rows["netkit"]["failed"] == 1
    assert rows["netkit"]["total_seconds"] == pytest.approx(4.0)
    assert rows["cbgp"]["mean_seconds"] == pytest.approx(2.0)
    by_campaign = index.aggregate("campaign")
    assert by_campaign[0]["campaign"] == "j1"
    assert by_campaign[0]["trials"] == 3
    with pytest.raises(ServiceError):
        index.aggregate("nonsense")


def test_platform_rollup_shape(store):
    index = ResultIndex()
    store.append(record("a", convergence={"status": "converged", "rounds": 4}))
    store.append(record("b", platform="cbgp",
                        convergence={"status": "oscillating", "rounds": 9}))
    index.index_store("j", store.directory)
    rollup = index.platform_rollup()
    assert [(row["topology"], row["platform"]) for row in rollup] == [
        ("fig5", "cbgp"), ("fig5", "netkit"),
    ]
    assert all(row["trials"] == 1 for row in rollup)


def test_latency_percentiles_come_from_traffic_reports(store):
    index = ResultIndex()
    store.append(record("a", traffic=traffic(10.0, 50.0, 90.0, loss=0.02)))
    store.append(record("b", traffic=traffic(20.0, 60.0, 120.0, loss=0.04)))
    store.append(record("c"))   # no traffic: excluded from latency stats
    index.index_store("j", store.directory)
    stats = index.latency_stats("platform")
    assert len(stats) == 1
    row = stats[0]
    assert row["trials"] == 2
    # per-trial figures are the worst class; rollup is mean/max of those
    assert row["latency_ms"]["p50"] == {"mean": 15.0, "max": 20.0}
    assert row["latency_ms"]["p99"] == {"mean": 105.0, "max": 120.0}
    assert row["mean_loss_rate"] == pytest.approx(0.03)


def test_campaign_metadata_upserts(tmp_path):
    index = ResultIndex(tmp_path / "db.sqlite")
    job = {"id": "j1", "campaign": "demo", "client": "alice",
           "state": "queued", "priority": 1, "submitted_at": 1.0,
           "total_trials": 4, "directory": "/tmp/j1"}
    index.upsert_campaign(job)
    job["state"] = "done"
    index.upsert_campaign(job)
    assert len(index.campaigns()) == 1
    assert index.campaign("j1")["state"] == "done"
    assert index.campaign("missing") is None
