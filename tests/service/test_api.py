"""The campaign service end to end: REST API, fairness, cancellation,
live events, aggregate-vs-report equivalence, and kill -9 recovery.

Everything runs against a real ``ThreadingHTTPServer`` on an ephemeral
port through the :class:`ServiceClient`, except the crash test, which
SIGKILLs a subprocess service mid-campaign and restarts on the same
data directory.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

import repro
from repro.campaign import ResultStore
from repro.campaign.report import outcome_table, summary
from repro.exceptions import ServiceError
from repro.service import CampaignService, ServiceClient, make_server
from repro.supervision import TrialJournal

SRC = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

#: A small build-only matrix: four quick trials across two platforms.
SPEC = {
    "name": "svc_matrix",
    "topologies": ["fig5"],
    "platforms": ["netkit", "cbgp"],
    "deploy": False,
    "trials": [
        {"topology": "fig5", "platform": "netkit",
         "overrides": {"deploy": False, "max_rounds": 10}},
        {"topology": "fig5", "platform": "cbgp",
         "overrides": {"deploy": False, "max_rounds": 12}},
    ],
}


def slow_spec(name: str, naps: int = 4, nap_s: float = 0.15) -> dict:
    """A campaign whose every trial sleeps: cancellable mid-flight."""
    return {
        "name": name,
        "topologies": ["fig5"],
        "platforms": ["netkit"],
        "deploy": False,
        "trials": [
            {"topology": "fig5", "platform": "netkit",
             "overrides": {"deploy": False, "inject_hang": "build",
                           "hang_seconds": nap_s, "max_rounds": 10 + n}}
            for n in range(naps)
        ],
    }


class Service:
    """An in-process service + HTTP server on an ephemeral port."""

    def __init__(self, data_dir, **kwargs):
        kwargs.setdefault("workers", 2)
        kwargs.setdefault("poll_interval_s", 0.02)
        self.service = CampaignService(str(data_dir), **kwargs)
        self.service.start()
        self.server = make_server(self.service, port=0)
        self.url = "http://127.0.0.1:%d" % self.server.server_address[1]
        self._thread = threading.Thread(
            target=self.server.serve_forever, daemon=True
        )
        self._thread.start()

    def client(self, name: str = "anon") -> ServiceClient:
        return ServiceClient(self.url, client_name=name)

    def close(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        self.service.stop()


@pytest.fixture()
def service(tmp_path):
    box = Service(tmp_path / "svc")
    yield box
    box.close()


def test_submit_run_and_query_lifecycle(service):
    client = service.client("alice")
    job = client.submit(SPEC)
    assert job["state"] == "queued"
    assert job["total_trials"] == 4
    assert job["client"] == "alice"

    done = client.wait(job["id"])
    assert done["state"] == "done"
    assert done["result"]["executed"] == 4
    done = client.wait_indexed(job["id"], 4)
    assert done["counts"]["ok"] == 4

    trials = client.trials(job["id"])
    assert len(trials) == 4
    assert {t["platform"] for t in trials} == {"netkit", "cbgp"}
    assert client.trials(job["id"], status="failed") == []
    assert [j["id"] for j in client.jobs()] == [job["id"]]

    # unknown routes and ids answer with clean errors, not tracebacks
    with pytest.raises(ServiceError) as missing:
        client.job("nope")
    assert missing.value.status == 404


def test_invalid_spec_is_rejected_with_400(service):
    with pytest.raises(ServiceError) as rejected:
        service.client().submit({"name": "broken"})   # no trials, no matrix
    assert rejected.value.status == 400
    assert service.client().jobs() == []


def test_aggregate_matches_offline_campaign_report(service):
    client = service.client()
    job = client.submit(SPEC)
    client.wait(job["id"])
    client.wait_indexed(job["id"], 4)

    records = list(
        ResultStore(client.job(job["id"])["directory"]).latest().values()
    )
    offline_rows = outcome_table(records)
    offline_summary = summary(records)

    aggregate = client.aggregate(group_by="platform", campaign=job["id"])
    rollup = aggregate["platform_rollup"]
    assert len(rollup) == len(offline_rows)
    for got, expected in zip(rollup, offline_rows):
        assert got["topology"] == expected["topology"]
        assert got["platform"] == expected["platform"]
        assert got["trials"] == expected["trials"]
        assert got["ok"] == expected["ok"]
        assert got["failed"] == expected["failed"]
        assert got["rounds"] == expected["rounds"]
        assert set(got["outcome"].split("; ")) == set(
            expected["outcome"].split("; ")
        )
        # the index rounds durations to microseconds on the way in
        assert got["seconds"] == pytest.approx(expected["seconds"], abs=1e-6)
    assert sum(r["trials"] for r in aggregate["rows"]) == offline_summary["trials"]
    assert sum(r["ok"] for r in aggregate["rows"]) == offline_summary["ok"]
    assert sum(r["failed"] for r in aggregate["rows"]) == offline_summary["failed"]


def test_two_clients_share_one_artifact_cache(service):
    """The second client's identical build renders nothing: every
    artifact comes from the cache the first client warmed."""
    alice, bob = service.client("alice"), service.client("bob")
    first = alice.submit(SPEC)
    alice.wait(first["id"])
    second = bob.submit(dict(SPEC, name="svc_matrix_again"))
    view = bob.wait(second["id"])
    assert view["result"]["cache_misses"] == 0
    assert view["result"]["cache_hits"] > 0


def test_quota_prevents_starvation_between_clients(tmp_path):
    """A flood of one client's jobs cannot lock out another client:
    with quota=1 only one flood job may run at a time, so the modest
    client's single job starts on the second worker immediately."""
    box = Service(tmp_path / "svc", workers=2, quota=1)
    try:
        flood, modest = box.client("flood"), box.client("modest")
        flooded = [flood.submit(slow_spec("flood_%d" % n)) for n in range(4)]
        lone = modest.submit(slow_spec("modest"))
        view = modest.wait(lone["id"], timeout=60)
        assert view["state"] == "done"
        # the modest job must not have waited for the flood to drain:
        # at most one flood job can have finished before it started
        finished_before = [
            job for job in flooded
            if (flood.job(job["id"]).get("finished_at") or float("inf"))
            <= view["started_at"]
        ]
        assert len(finished_before) <= 1, finished_before
        for job in flooded:
            flood.wait(job["id"], timeout=120)
    finally:
        box.close()


def test_cancel_queued_and_running_jobs(tmp_path):
    box = Service(tmp_path / "svc", workers=1)
    try:
        client = box.client()
        running = client.submit(slow_spec("victim_running", naps=30))
        queued = client.submit(slow_spec("victim_queued"))
        # the single worker is busy with the first: the second is queued
        view = client.cancel(queued["id"])
        assert view["state"] == "cancelled"
        # the running job cancels cooperatively between trial chunks:
        # wait for the first trial to land, then pull the token
        client.wait_indexed(running["id"], 1, timeout=60)
        view = client.cancel(running["id"])
        final = client.wait(running["id"], timeout=60)
        assert final["state"] == "cancelled"
        # completed trials landed durably before the cancel took hold
        store = ResultStore(final["directory"])
        assert 0 < len(store.latest()) < final["total_trials"]
        # cancelling a finished job is a conflict, not a crash
        with pytest.raises(ServiceError) as conflict:
            client.cancel(running["id"])
        assert conflict.value.status == 409
    finally:
        box.close()


def test_events_long_poll_streams_progress(service):
    client = service.client()
    job = client.submit(SPEC)
    seen, since = [], 0
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        batch = client.events(since=since, timeout=5.0)
        seen.extend(batch["events"])
        since = batch["next"]
        kinds = [e["kind"] for e in seen]
        # the indexer tails the store asynchronously: the last trial
        # event may land after the job's own finished event
        if "finished" in kinds and kinds.count("trial") == 4:
            break
    kinds = [e["kind"] for e in seen]
    assert "submitted" in kinds
    assert "started" in kinds
    assert kinds.count("trial") == 4
    assert "finished" in kinds
    # seqs are strictly increasing: the long-poll cursor never replays
    seqs = [e["seq"] for e in seen]
    assert seqs == sorted(set(seqs))
    trial_events = [e for e in seen if e["kind"] == "trial"]
    assert all(e["job"] == job["id"] for e in trial_events)
    assert {e["status"] for e in trial_events} == {"ok"}


def test_dashboard_and_queue_endpoints(service):
    import urllib.request

    client = service.client()
    job = client.submit(SPEC)
    client.wait(job["id"])
    snapshot = client.queue()
    assert snapshot["depth"] == 0
    assert snapshot["quota"] == 2
    page = urllib.request.urlopen(service.url + "/").read().decode()
    assert "repro campaign service" in page
    assert "/events?since=" in page


def test_topology_endpoint_exports_d3(service):
    client = service.client()
    job = client.submit(SPEC)
    client.wait(job["id"])
    data = client.topology(job["id"])
    assert data["campaign"] == job["id"]
    assert {n["id"] for n in data["nodes"]}
    assert all({"source", "target"} <= set(l) for l in data["links"])


#: Runs a service in a subprocess and SIGKILLs it the instant the wired
#: trial reaches its chaos stage — a worker thread dies exactly like a
#: power loss, mid-campaign, with the journal's start intent open.
KILLER_SERVICE = """
import os, signal, sys, time

sys.path.insert(0, %(src)r)
import repro.campaign.runner as runner

def kill9(overrides, stage):
    if overrides.get("inject_hang") == stage:
        os.kill(os.getpid(), signal.SIGKILL)

runner._maybe_hang = kill9

import json
from repro.service import CampaignService

service = CampaignService(%(data_dir)r, workers=1, poll_interval_s=0.02)
service.start()
job = service.submit(json.loads(%(spec)r), client="crashme")
print(job["id"], flush=True)
time.sleep(300)   # the SIGKILL in the worker thread ends the process
"""


def crash_spec() -> dict:
    return {
        "name": "crash",
        "topologies": ["fig5"],
        "platforms": ["netkit", "cbgp"],
        "deploy": False,
        "trials": [
            {"topology": "fig5", "platform": "netkit",
             "overrides": {"deploy": False, "inject_hang": "build",
                           "hang_seconds": 0.01}},
        ],
    }


def outcome_view(directory) -> dict:
    return {
        record.trial_id: (
            record.status,
            record.outcome(),
            record.convergence,
            record.reachability,
        )
        for record in ResultStore(directory).latest().values()
    }


def test_kill9_restart_resumes_exactly_the_pending_delta(tmp_path):
    data_dir = str(tmp_path / "svc")
    spec = crash_spec()
    driver = KILLER_SERVICE % {
        "src": SRC, "data_dir": data_dir, "spec": json.dumps(spec),
    }
    process = subprocess.run(
        [sys.executable, "-c", driver], capture_output=True, timeout=300
    )
    assert process.returncode == -signal.SIGKILL, process.stderr.decode()
    job_id = process.stdout.decode().split()[0]
    job_dir = os.path.join(data_dir, "campaigns", job_id)

    # kill-time state: the healthy trials landed, the in-flight one left
    # an open start intent in the trial journal
    latest = ResultStore(job_dir).latest()
    assert len(latest) == 2
    assert TrialJournal(job_dir).open_intents() != {}

    # restart on the same data dir: the job journal replays the cut-off
    # job and the campaign layer re-executes exactly the delta
    restarted = CampaignService(data_dir, workers=1, poll_interval_s=0.02)
    restarted.start()
    try:
        assert restarted.recovered == [job_id]
        deadline = time.monotonic() + 120
        while not restarted.job(job_id)["state"] == "done":
            assert time.monotonic() < deadline, restarted.job(job_id)
            time.sleep(0.05)
        view = restarted.job(job_id)
        # exactly the one interrupted trial re-ran
        assert view["result"]["executed"] == 1
        assert view["result"]["skipped"] == 2
        assert view["result"]["recovered"] == 1
        # journal-verified: no intent left open, nothing duplicated
        assert TrialJournal(job_dir).open_intents() == {}
        restarted.index_once()   # drain the tail the last append left
        indexed = restarted.index.trials(job_id)
        assert len(indexed) == 3
        assert all(row["status"] == "ok" for row in indexed)
    finally:
        restarted.stop()

    # bit-identical to a run that was never killed
    healthy = Service(tmp_path / "healthy", workers=1)
    try:
        client = healthy.client()
        fresh = client.submit(spec)
        fresh_view = client.wait(fresh["id"])
        assert outcome_view(job_dir) == outcome_view(fresh_view["directory"])
    finally:
        healthy.close()

    # the append-only history still shows the crash happened
    history = ResultStore(job_dir).records()
    assert sum(1 for r in history if r.status == "interrupted") == 1
