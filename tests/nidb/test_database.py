"""Unit tests for the Resource Database (NIDB) (§5.4, §5.5)."""

import json

import pytest

from repro.exceptions import CompilerError, NodeNotFoundError
from repro.nidb import ConfigStanza, DeviceModel, Nidb, subnet_items


class TestConfigStanza:
    def test_attribute_set_get(self):
        stanza = ConfigStanza()
        stanza.hostname = "r1"
        assert stanza.hostname == "r1"

    def test_missing_attribute_reads_none(self):
        assert ConfigStanza().missing is None

    def test_nested_dict_becomes_stanza(self):
        stanza = ConfigStanza(zebra={"hostname": "r1", "password": "1234"})
        assert stanza.zebra.hostname == "r1"
        assert isinstance(stanza.zebra, ConfigStanza)

    def test_list_of_dicts_becomes_stanza_list(self):
        stanza = ConfigStanza(links=[{"network": "10.0.0.0/30", "area": 0}])
        assert stanza.links[0].network == "10.0.0.0/30"

    def test_to_dict_roundtrip(self):
        original = {"ospf": {"process_id": 1, "ospf_links": [{"area": 0}]}}
        assert ConfigStanza(**original).to_dict() == original

    def test_to_json_paper_shape(self):
        """The §5.4 dump: nested JSON with zebra/ospf stanzas."""
        stanza = ConfigStanza(
            zebra={"password": "1234", "hostname": "as100r1"},
            ospf={"process_id": 1},
        )
        parsed = json.loads(stanza.to_json())
        assert parsed["zebra"]["hostname"] == "as100r1"
        assert parsed["ospf"]["process_id"] == 1

    def test_contains_and_get(self):
        stanza = ConfigStanza(x=1)
        assert "x" in stanza and "y" not in stanza
        assert stanza.get("y", 5) == 5

    def test_require_raises_when_missing(self):
        with pytest.raises(CompilerError, match="never compiled"):
            ConfigStanza().require("hostname")

    def test_setdefault(self):
        stanza = ConfigStanza(x=1)
        assert stanza.setdefault("x", 9) == 1
        stanza.setdefault("y", [])
        assert stanza.y == []

    def test_equality_by_content(self):
        assert ConfigStanza(a=1) == ConfigStanza(a=1)
        assert ConfigStanza(a=1) != ConfigStanza(a=2)


class TestDeviceModel:
    def test_interfaces_default_empty(self):
        device = DeviceModel("r1")
        assert device.interfaces == []

    def test_add_and_lookup_interface(self):
        device = DeviceModel("r1")
        device.add_interface(id="eth0", category="physical")
        assert device.interface("eth0").category == "physical"
        with pytest.raises(CompilerError):
            device.interface("eth9")

    def test_interface_category_partition(self):
        device = DeviceModel("r1")
        device.add_interface(id="lo", category="loopback")
        device.add_interface(id="eth0", category="physical")
        assert [i.id for i in device.physical_interfaces()] == ["eth0"]
        assert device.loopback_interface().id == "lo"

    def test_no_loopback_returns_none(self):
        assert DeviceModel("r1").loopback_interface() is None

    def test_type_predicates(self):
        router = DeviceModel("r1", device_type="router")
        server = DeviceModel("s1", device_type="server")
        assert router.is_router() and not router.is_server()
        assert server.is_server() and not server.is_router()


class TestNidb:
    def _populated(self):
        nidb = Nidb()
        r1 = nidb.add_device("r1", device_type="router", asn=1)
        r1.add_interface(id="eth0", ip_address="10.0.0.1", prefixlen=30)
        r2 = nidb.add_device("r2", device_type="router", asn=2)
        nidb.add_device("s1", device_type="server", asn=1)
        nidb.add_link("r1", "r2", collision_domain="cd_r1_r2")
        return nidb

    def test_add_and_lookup(self):
        nidb = self._populated()
        assert nidb.node("r1").asn == 1
        assert nidb.has_node("r1")
        assert not nidb.has_node("ghost")
        with pytest.raises(NodeNotFoundError):
            nidb.node("ghost")

    def test_filtered_queries(self):
        nidb = self._populated()
        assert {d.node_id for d in nidb.routers()} == {"r1", "r2"}
        assert [d.node_id for d in nidb.servers()] == ["s1"]
        assert [d.node_id for d in nidb.nodes(asn=2)] == ["r2"]

    def test_links_and_neighbors(self):
        nidb = self._populated()
        links = nidb.links()
        assert len(links) == 1
        src, dst, data = links[0]
        assert {src.node_id, dst.node_id} == {"r1", "r2"}
        assert data["collision_domain"] == "cd_r1_r2"
        assert [d.node_id for d in nidb.neighbors("r1")] == ["r2"]

    def test_iteration_and_len(self):
        nidb = self._populated()
        assert len(nidb) == 3
        assert {d.node_id for d in nidb} == {"r1", "r2", "s1"}

    def test_topology_stanza(self):
        nidb = Nidb()
        nidb.topology.platform = "netkit"
        assert nidb.topology.platform == "netkit"

    def test_to_dict_and_json(self):
        nidb = self._populated()
        payload = nidb.to_dict()
        assert set(payload["devices"]) == {"r1", "r2", "s1"}
        assert payload["links"][0]["collision_domain"] == "cd_r1_r2"
        json.loads(nidb.to_json())

    def test_subnet_items_iterates_addressed_interfaces(self):
        nidb = self._populated()
        items = list(subnet_items(nidb))
        assert len(items) == 1
        address, prefixlen, device, interface = items[0]
        assert address == "10.0.0.1"
        assert device.node_id == "r1"
        assert interface.id == "eth0"


class TestNidbDiff:
    def _compiled(self, graph):
        from repro.compilers import platform_compiler
        from repro.design import design_network

        return platform_compiler("netkit", design_network(graph)).compile()

    def test_identical_rebuilds_diff_clean(self):
        from repro.loader import small_internet
        from repro.nidb import diff_nidbs

        diff = diff_nidbs(
            self._compiled(small_internet()), self._compiled(small_internet())
        )
        assert diff.unchanged
        assert diff.summary() == "resource databases are identical"

    def test_cost_change_blast_radius(self):
        """Changing one OSPF cost touches only the two attached routers."""
        from repro.loader import small_internet
        from repro.nidb import diff_nidbs

        before = self._compiled(small_internet())
        tweaked = small_internet()
        tweaked.edges["as100r1", "as100r2"]["ospf_cost"] = 50
        after = self._compiled(tweaked)
        diff = diff_nidbs(before, after)
        assert diff.touched_devices() == ["as100r1", "as100r2"]
        changed_paths = {c.path for c in diff.changed["as100r1"]}
        assert any("ospf_cost" in path or "cost" in path for path in changed_paths)

    def test_added_and_removed_devices(self):
        from repro.loader import line_topology
        from repro.nidb import diff_nidbs

        diff = diff_nidbs(self._compiled(line_topology(3)), self._compiled(line_topology(4)))
        assert diff.added_devices == ["r4"]
        assert "added" in diff.summary()
        reverse = diff_nidbs(self._compiled(line_topology(4)), self._compiled(line_topology(3)))
        assert reverse.removed_devices == ["r4"]

    def test_topology_change_propagates_to_addressing(self):
        """Adding a link renumbers later collision domains: visible."""
        from repro.loader import line_topology
        from repro.nidb import diff_nidbs

        before_graph = line_topology(4)
        after_graph = line_topology(4)
        after_graph.add_edge("r1", "r4")
        diff = diff_nidbs(self._compiled(before_graph), self._compiled(after_graph))
        assert "r1" in diff.changed and "r4" in diff.changed

    def test_list_length_changes_reported(self):
        from repro.nidb import AttributeChange, NidbDiff, diff_nidbs
        from repro.nidb import Nidb

        a, b = Nidb(), Nidb()
        a.add_device("r1", tags=[1, 2])
        b.add_device("r1", tags=[1, 2, 3])
        diff = diff_nidbs(a, b)
        assert diff.changed["r1"][0].path == "tags"
        assert "list[2]" in str(diff.changed["r1"][0])
