"""Integration: the whole pipeline records one coherent telemetry.

The acceptance surface of the observability subsystem: a Small-Internet
``run_experiment`` produces a span tree covering every phase with
per-rule and per-device children, nonzero protocol metrics, a
structured event log, and trace files both exporters can consume.
"""

import json

import pytest

from repro import run_experiment, small_internet
from repro.cli import main
from repro.observability import chrome_trace, read_jsonl


@pytest.fixture(scope="module")
def result(tmp_path_factory):
    return run_experiment(
        small_internet(),
        output_dir=str(tmp_path_factory.mktemp("telemetry")),
        lab_name="si",
    )


class TestSpanTree:
    def test_phases_are_children_of_experiment(self, result):
        root = result.telemetry.root_span()
        assert root.name == "experiment"
        assert [child.name for child in root.children] == [
            "load_build",
            "compile",
            "render",
            "deploy",
        ]

    def test_per_rule_spans_under_load_build(self, result):
        load_build = result.telemetry.root_span().find("load_build")
        assert [child.name for child in load_build.children] == [
            "design.phy",
            "design.ipv4",
            "design.ospf",
            "design.ebgp",
            "design.ibgp",
            "design.dns",
        ]

    def test_per_device_spans_under_compile(self, result):
        compile_span = result.telemetry.root_span().find("compile")
        device_spans = [child.name for child in compile_span.children]
        assert len(device_spans) == 14
        assert "compile.as100r1" in device_spans

    def test_per_device_spans_under_render(self, result):
        render_span = result.telemetry.root_span().find("render")
        assert len(render_span.find_all("render.as100r1")) == 1

    def test_deploy_stages_and_emulation_under_deploy(self, result):
        deploy_span = result.telemetry.root_span().find("deploy")
        names = [span.name for span in deploy_span.walk()]
        for stage in ("deploy.archive", "deploy.transfer", "deploy.extract",
                      "deploy.lstart", "emulation.parse", "emulation.igp",
                      "emulation.bgp"):
            assert stage in names

    def test_bgp_span_carries_convergence_attributes(self, result):
        bgp_span = result.telemetry.root_span().find("emulation.bgp")
        assert bgp_span.attributes["converged"] is True
        assert bgp_span.attributes["rounds"] > 0

    def test_timings_view_derives_from_spans(self, result):
        root = result.telemetry.root_span()
        assert set(result.timings) == {"load_build", "compile", "render", "deploy"}
        for child in root.children:
            assert result.timings[child.name] == pytest.approx(child.duration)
        # phases are measured uniformly: they sum to (almost) the total
        assert sum(result.timings.values()) <= root.duration

    def test_timing_tree_renders(self, result):
        tree = result.timing_tree()
        assert "experiment" in tree
        assert "design.ipv4" in tree


class TestMetrics:
    def test_protocol_metrics_nonzero(self, result):
        metrics = result.telemetry.metrics
        assert metrics.value("ospf.spf_runs") > 0
        assert metrics.value("bgp.rounds") > 0
        assert metrics.value("bgp.messages") > 0
        assert metrics.value("bgp.state_hash_checks") > 0

    def test_pipeline_volume_metrics(self, result):
        metrics = result.telemetry.metrics
        assert metrics.value("design.rules_applied") == 6
        assert metrics.value("compile.devices_compiled") == 14
        assert metrics.value("deploy.configs_parsed") == 14
        assert metrics.value("render.templates_rendered") > 50
        assert metrics.value("render.files_written") == result.render_result.n_files
        assert metrics.value("render.bytes_written") == result.render_result.total_bytes
        assert metrics.value("alloc.subnets_assigned") > 0
        assert metrics.value("alloc.loopbacks_assigned") == 14

    def test_measurement_metrics_join_the_same_run(self, result):
        from repro.measurement import MeasurementClient

        client = MeasurementClient(result.lab, result.nidb)
        with result.telemetry.activate():
            client.send("show ip bgp summary", ["as100r1", "as20r1"])
        assert result.telemetry.metrics.value("measure.commands_sent") == 2
        assert result.telemetry.tracer.find("measure.send") is not None


class TestEvents:
    def test_deploy_progress_routed_to_event_log(self, result):
        stages = result.telemetry.events.stages()
        for stage in ("deploy.archive", "deploy.transfer", "deploy.extract",
                      "deploy.lstart", "deploy.ready"):
            assert stage in stages

    def test_bgp_convergence_event_present(self, result):
        emulation_events = result.telemetry.events.filter(stage="emulation")
        assert any("converged" in event.message for event in emulation_events)

    def test_progress_events_have_monotonic_stamps(self, result):
        events = result.deployment.monitor.events
        assert all(event.monotonic > 0 for event in events)
        stamps = [event.monotonic for event in events]
        assert stamps == sorted(stamps)


class TestOscillationDiagnosableFromTrace:
    def test_bad_gadget_metrics_show_period(self, tmp_path):
        from repro import bad_gadget_topology

        result = run_experiment(
            bad_gadget_topology(),
            platform="dynagen",
            output_dir=str(tmp_path),
            max_rounds=40,
        )
        metrics = result.telemetry.metrics
        assert result.lab.oscillating
        assert metrics.value("bgp.period") > 0
        assert metrics.value("bgp.converged") == 0
        assert (
            metrics.value("bgp.period")
            == result.lab.bgp_result.detected_period
            > 1
        )
        warnings = result.telemetry.events.filter(stage="emulation")
        assert any("oscillates" in event.message for event in warnings)

    def test_converged_lab_reports_period_one_not_zero(self, result):
        """Regression: ``bgp.period`` used to read 0 on converged labs,
        indistinguishable from "undetermined at the round budget".  A
        converged run is a fixpoint — detected period 1 — and the
        separate ``bgp.converged`` gauge makes the verdict explicit."""
        metrics = result.telemetry.metrics
        assert result.lab.converged
        assert metrics.value("bgp.period") == 1
        assert metrics.value("bgp.converged") == 1
        assert result.lab.bgp_result.detected_period == 1
        # the legacy field keeps its old meaning (0 unless oscillating)
        assert result.lab.bgp_result.period == 0


class TestCliTrace:
    def test_build_trace_is_valid_jsonl_and_chrome_loadable(self, tmp_path, capsys):
        trace_path = str(tmp_path / "out.jsonl")
        assert main(["build", "fig5", "-o", str(tmp_path / "lab"),
                     "--trace", trace_path]) == 0
        records = read_jsonl(trace_path)
        span_names = [r["name"] for r in records if r["type"] == "span"]
        assert "build" in span_names
        assert "design.ipv4" in span_names
        assert "compile.r1" in span_names
        document = chrome_trace(records)
        assert len(document["traceEvents"]) == len(span_names)
        assert any(r["type"] == "metric" for r in records)

    def test_quiet_suppresses_output(self, tmp_path, capsys):
        assert main(["build", "fig5", "-o", str(tmp_path), "--quiet"]) == 0
        assert capsys.readouterr().out == ""

    def test_json_mode_is_machine_readable(self, tmp_path, capsys):
        assert main(["build", "fig5", "-o", str(tmp_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "build"
        assert payload["exit_code"] == 0
        assert payload["devices"] == 5
        assert payload["metrics"]["counters"]["compile.devices_compiled"] == 5
        assert payload["timings"]["render"] > 0

    def test_json_mode_verify(self, capsys):
        assert main(["verify", "fig5", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["static_ok"] is True
        assert payload["stable"] is True

    def test_metrics_and_timings_flags(self, tmp_path, capsys):
        assert main(["build", "fig5", "-o", str(tmp_path),
                     "--metrics", "--timings"]) == 0
        out = capsys.readouterr().out
        assert "render.templates_rendered" in out
        assert "design.ipv4" in out

    def test_chrome_trace_flag(self, tmp_path):
        path = str(tmp_path / "chrome.json")
        assert main(["build", "fig5", "-o", str(tmp_path / "lab"),
                     "--chrome-trace", path, "--quiet"]) == 0
        document = json.load(open(path))
        assert document["traceEvents"]


class TestBenchRecord:
    def test_record_pipeline_emits_bench_json(self, result, tmp_path):
        import importlib.util
        import os
        import sys

        bench_dir = os.path.join(os.path.dirname(__file__), "..", "..", "benchmarks")
        spec = importlib.util.spec_from_file_location(
            "bench_util", os.path.join(bench_dir, "_util.py")
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        path = module.record_pipeline(
            result.telemetry,
            path=str(tmp_path / "BENCH_pipeline.json"),
            topology="small_internet",
        )
        record = json.load(open(path))
        assert record["bench"] == "pipeline"
        assert set(record["phases"]) >= {"load_build", "compile", "render", "deploy"}
        assert record["metrics"]["counters"]["ospf.spf_runs"] > 0
        assert record["total_seconds"] > 0
        assert record["topology"] == "small_internet"
