"""Unit tests for the structured event log."""

from repro.observability import DEBUG, ERROR, INFO, WARNING, EventLog


class TestStructure:
    def test_events_carry_structured_fields(self):
        log = EventLog()
        event = log.info("deploy.lstart", "starting lab", lab_name="si", machines=14)
        assert event.level == INFO
        assert event.stage == "deploy.lstart"
        assert event.fields == {"lab_name": "si", "machines": 14}
        assert event.timestamp > 0
        assert event.monotonic > 0
        assert event.elapsed >= 0

    def test_monotonic_ordering(self):
        log = EventLog()
        first = log.info("a", "one")
        second = log.info("b", "two")
        assert second.monotonic >= first.monotonic
        assert second.elapsed >= first.elapsed

    def test_str_formats_at_display_time(self):
        log = EventLog()
        event = log.warning("emulation", "BGP oscillates", period=3)
        text = str(event)
        assert "warning" in text
        assert "emulation" in text
        assert "BGP oscillates" in text
        assert "period=3" in text

    def test_to_dict(self):
        log = EventLog()
        record = log.error("render", "template missing", template="x.j2").to_dict()
        assert record["level"] == "error"
        assert record["stage"] == "render"
        assert record["fields"] == {"template": "x.j2"}


class TestFiltering:
    def test_min_level_drops_below(self):
        log = EventLog(min_level=INFO)
        assert log.debug("s", "dropped") is None
        log.info("s", "kept")
        assert len(log) == 1

    def test_filter_by_level_and_stage(self):
        log = EventLog()
        log.debug("a", "d")
        log.info("a", "i")
        log.warning("b", "w")
        log.error("b", "e")
        assert len(log.filter(level=WARNING)) == 2
        assert len(log.filter(stage="a")) == 2
        assert len(log.filter(level=ERROR, stage="b")) == 1

    def test_stages_in_first_seen_order(self):
        log = EventLog()
        log.info("deploy.archive", "x")
        log.info("deploy.lstart", "y")
        log.info("deploy.archive", "z")
        assert log.stages() == ["deploy.archive", "deploy.lstart"]

    def test_format_renders_all(self):
        log = EventLog()
        log.info("one", "first")
        log.info("two", "second")
        text = log.format()
        assert "first" in text and "second" in text
        assert text.index("first") < text.index("second")


class TestCallbacks:
    def test_callbacks_see_each_event(self):
        log = EventLog()
        seen = []
        log.callbacks.append(seen.append)
        log.info("s", "hello")
        assert len(seen) == 1 and seen[0].message == "hello"

    def test_level_helpers(self):
        log = EventLog()
        log.debug("s", "1")
        log.info("s", "2")
        log.warning("s", "3")
        log.error("s", "4")
        assert [event.level for event in log] == [DEBUG, INFO, WARNING, ERROR]
