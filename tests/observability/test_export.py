"""Unit tests for the JSON-lines, Chrome-trace and timing-tree exporters."""

import json

from repro.observability import (
    Telemetry,
    chrome_trace,
    read_jsonl,
    timing_tree,
    write_chrome_trace,
    write_jsonl,
)


def _sample_telemetry() -> Telemetry:
    telemetry = Telemetry()
    with telemetry.activate():
        with telemetry.span("experiment", platform="netkit"):
            with telemetry.span("load_build"):
                telemetry.metrics.inc("design.rules_applied", 6)
            with telemetry.span("compile"):
                telemetry.metrics.set_gauge("emulation.machines", 14)
        telemetry.events.info("deploy.lstart", "starting lab", lab_name="si")
    return telemetry


class TestJsonLines:
    def test_round_trip(self, tmp_path):
        telemetry = _sample_telemetry()
        path = write_jsonl(telemetry, str(tmp_path / "run.jsonl"))
        records = read_jsonl(path)
        kinds = {record["type"] for record in records}
        assert kinds == {"span", "metric", "event"}
        spans = [r for r in records if r["type"] == "span"]
        assert [s["name"] for s in spans] == ["experiment", "load_build", "compile"]
        metrics = {r["name"]: r for r in records if r["type"] == "metric"}
        assert metrics["design.rules_applied"]["value"] == 6
        assert metrics["emulation.machines"]["kind"] == "gauge"
        events = [r for r in records if r["type"] == "event"]
        assert events[0]["fields"] == {"lab_name": "si"}

    def test_each_line_is_valid_json(self, tmp_path):
        path = write_jsonl(_sample_telemetry(), str(tmp_path / "run.jsonl"))
        for line in open(path):
            json.loads(line)


class TestChromeTrace:
    def test_structure(self):
        document = chrome_trace(_sample_telemetry())
        events = document["traceEvents"]
        assert len(events) == 3
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0
            assert event["dur"] >= 0
            assert event["pid"] == 1
        names = [event["name"] for event in events]
        assert "experiment" in names

    def test_loadable_from_jsonl_records(self, tmp_path):
        """The JSON-lines file feeds the Chrome exporter directly."""
        path = write_jsonl(_sample_telemetry(), str(tmp_path / "run.jsonl"))
        document = chrome_trace(read_jsonl(path))
        assert len(document["traceEvents"]) == 3

    def test_write_file(self, tmp_path):
        path = write_chrome_trace(_sample_telemetry(), str(tmp_path / "trace.json"))
        document = json.load(open(path))
        assert "traceEvents" in document

    def test_empty(self):
        assert chrome_trace([]) == {"traceEvents": [], "displayTimeUnit": "ms"}


class TestTimingTree:
    def test_hierarchy_and_percentages(self):
        tree = timing_tree(_sample_telemetry())
        lines = tree.splitlines()
        assert lines[0].startswith("experiment")
        assert lines[1].startswith("  load_build")
        assert "%" in lines[1]

    def test_error_span_flagged(self):
        telemetry = Telemetry()
        try:
            with telemetry.span("fails"):
                raise ValueError("x")
        except ValueError:
            pass
        assert "[ERROR]" in timing_tree(telemetry)

    def test_wide_sibling_runs_fold(self):
        telemetry = Telemetry()
        with telemetry.span("compile"):
            for index in range(30):
                with telemetry.span("compile.r%d" % index):
                    pass
        tree = timing_tree(telemetry, max_children=20)
        assert "... 10 more spans" in tree
