"""Unit tests for the JSON-lines, Chrome-trace and timing-tree exporters."""

import json
import time

from repro.engine import ProcessExecutor, ThreadExecutor
from repro.observability import (
    Telemetry,
    chrome_trace,
    read_jsonl,
    span,
    timing_tree,
    write_chrome_trace,
    write_jsonl,
)


def _sample_telemetry() -> Telemetry:
    telemetry = Telemetry()
    with telemetry.activate():
        with telemetry.span("experiment", platform="netkit"):
            with telemetry.span("load_build"):
                telemetry.metrics.inc("design.rules_applied", 6)
            with telemetry.span("compile"):
                telemetry.metrics.set_gauge("emulation.machines", 14)
        telemetry.events.info("deploy.lstart", "starting lab", lab_name="si")
    return telemetry


class TestJsonLines:
    def test_round_trip(self, tmp_path):
        telemetry = _sample_telemetry()
        path = write_jsonl(telemetry, str(tmp_path / "run.jsonl"))
        records = read_jsonl(path)
        kinds = {record["type"] for record in records}
        assert kinds == {"span", "metric", "event"}
        spans = [r for r in records if r["type"] == "span"]
        assert [s["name"] for s in spans] == ["experiment", "load_build", "compile"]
        metrics = {r["name"]: r for r in records if r["type"] == "metric"}
        assert metrics["design.rules_applied"]["value"] == 6
        assert metrics["emulation.machines"]["kind"] == "gauge"
        events = [r for r in records if r["type"] == "event"]
        assert events[0]["fields"] == {"lab_name": "si"}

    def test_each_line_is_valid_json(self, tmp_path):
        path = write_jsonl(_sample_telemetry(), str(tmp_path / "run.jsonl"))
        for line in open(path):
            json.loads(line)


class TestChromeTrace:
    def test_structure(self):
        document = chrome_trace(_sample_telemetry())
        events = document["traceEvents"]
        assert len(events) == 3
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0
            assert event["dur"] >= 0
            assert event["pid"] == 1
        names = [event["name"] for event in events]
        assert "experiment" in names

    def test_loadable_from_jsonl_records(self, tmp_path):
        """The JSON-lines file feeds the Chrome exporter directly."""
        path = write_jsonl(_sample_telemetry(), str(tmp_path / "run.jsonl"))
        document = chrome_trace(read_jsonl(path))
        assert len(document["traceEvents"]) == 3

    def test_write_file(self, tmp_path):
        path = write_chrome_trace(_sample_telemetry(), str(tmp_path / "trace.json"))
        document = json.load(open(path))
        assert "traceEvents" in document

    def test_empty(self):
        assert chrome_trace([]) == {"traceEvents": [], "displayTimeUnit": "ms"}

    def test_round_trip_matches_direct_export(self, tmp_path):
        """jsonl -> read_jsonl -> chrome_trace equals the direct export."""
        telemetry = _sample_telemetry()
        direct = chrome_trace(telemetry)
        path = write_jsonl(telemetry, str(tmp_path / "run.jsonl"))
        assert chrome_trace(read_jsonl(path)) == direct


def _traced_square(value):
    """Module-level so the process executor can pickle it."""
    with span("proc.task"):
        return value * value


class TestExecutorSpanTrees:
    """Spans opened on executor workers must form correct trees."""

    def _run_on_threads(self, telemetry, jobs=4, tasks=8):
        executor = ThreadExecutor(jobs=jobs)

        def task(index):
            with span("render.device", device=index):
                time.sleep(0.002)
            return index

        try:
            with telemetry.span("engine.run"):
                results = executor.run(
                    [("t%d" % i, task, i) for i in range(tasks)]
                )
        finally:
            executor.shutdown()
        return results

    def test_thread_executor_parents_stay_on_thread(self):
        telemetry = Telemetry()
        with telemetry.activate():
            results = self._run_on_threads(telemetry)
        spans = telemetry.tracer.all_spans()
        device_spans = [s for s in spans if s.name == "render.device"]
        assert results == list(range(8))
        assert len(device_spans) == 8
        # a span's parent must live on the span's own thread — worker
        # spans never interleave into another thread's open span
        by_id = {s.span_id: s for s in spans}
        for record in device_spans:
            if record.parent_id is not None:
                assert by_id[record.parent_id].thread == record.thread

    def test_worker_spans_become_roots_not_children_of_main(self):
        telemetry = Telemetry()
        with telemetry.activate():
            self._run_on_threads(telemetry)
        outer = telemetry.tracer.find("engine.run")
        assert outer is not None
        assert [child.name for child in outer.children] == []
        root_names = [root.name for root in telemetry.tracer.roots]
        assert root_names.count("render.device") == 8

    def test_chrome_trace_gives_worker_threads_distinct_tids(self):
        telemetry = Telemetry()
        with telemetry.activate():
            self._run_on_threads(telemetry)
        document = chrome_trace(telemetry)
        tid_of = {event["name"]: event["tid"]
                  for event in document["traceEvents"]}
        main_tid = tid_of["engine.run"]
        worker_tids = {event["tid"] for event in document["traceEvents"]
                       if event["name"] == "render.device"}
        assert main_tid not in worker_tids

    def test_process_executor_spans_stay_in_child(self):
        telemetry = Telemetry()
        executor = ProcessExecutor(jobs=2)
        try:
            with telemetry.activate():
                results = executor.run(
                    [("p%d" % i, _traced_square, i) for i in range(4)]
                )
        finally:
            executor.shutdown()
        assert results == [0, 1, 4, 9]
        # child processes have their own (inactive) telemetry — their
        # spans never leak into the parent's tracer
        names = [s.name for s in telemetry.tracer.all_spans()]
        assert "proc.task" not in names


class TestTimingTree:
    def test_hierarchy_and_percentages(self):
        tree = timing_tree(_sample_telemetry())
        lines = tree.splitlines()
        assert lines[0].startswith("experiment")
        assert lines[1].startswith("  load_build")
        assert "%" in lines[1]

    def test_error_span_flagged(self):
        telemetry = Telemetry()
        try:
            with telemetry.span("fails"):
                raise ValueError("x")
        except ValueError:
            pass
        assert "[ERROR]" in timing_tree(telemetry)

    def test_wide_sibling_runs_fold(self):
        telemetry = Telemetry()
        with telemetry.span("compile"):
            for index in range(30):
                with telemetry.span("compile.r%d" % index):
                    pass
        tree = timing_tree(telemetry, max_children=20)
        assert "... 10 more spans" in tree
