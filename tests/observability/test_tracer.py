"""Unit tests for span nesting, exception safety and thread safety."""

import threading

import pytest

from repro.observability import NULL_SPAN, Span, Telemetry, Tracer, span
from repro.observability.tracer import detached_span


class TestNesting:
    def test_child_spans_nest_under_parent(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("child_a") as child_a:
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child_b"):
                pass
        assert [child.name for child in parent.children] == ["child_a", "child_b"]
        assert [child.name for child in child_a.children] == ["grandchild"]
        assert tracer.roots == [parent]

    def test_parent_ids_recorded(self):
        tracer = Tracer()
        with tracer.span("a") as a:
            with tracer.span("b") as b:
                pass
        assert a.parent_id is None
        assert b.parent_id == a.span_id

    def test_sequential_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [root.name for root in tracer.roots] == ["first", "second"]

    def test_walk_and_find(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("phase"):
                with tracer.span("inner"):
                    pass
        root = tracer.roots[0]
        assert [s.name for s in root.walk()] == ["root", "phase", "inner"]
        assert root.find("inner").name == "inner"
        assert root.find("missing") is None
        assert tracer.find("phase").name == "phase"

    def test_durations_monotonic(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.end is not None and inner.end is not None
        assert outer.duration >= inner.duration >= 0

    def test_attributes_and_set(self):
        tracer = Tracer()
        with tracer.span("s", device="r1") as current:
            current.set("rounds", 6)
        assert current.attributes == {"device": "r1", "rounds": 6}


class TestExceptionSafety:
    def test_span_closed_and_marked_on_error(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom") as failing:
                raise ValueError("bad input")
        assert failing.end is not None
        assert failing.status == "error"
        assert "ValueError" in failing.error
        assert "bad input" in failing.error

    def test_stack_unwinds_after_error(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with pytest.raises(RuntimeError):
                with tracer.span("failing"):
                    raise RuntimeError("x")
            with tracer.span("sibling"):
                pass
        assert [child.name for child in outer.children] == ["failing", "sibling"]
        assert outer.status == "ok"
        assert tracer.current_span() is None

    def test_detached_span_records_error_too(self):
        with pytest.raises(KeyError):
            with detached_span("lonely") as lonely:
                raise KeyError("gone")
        assert lonely.status == "error"
        assert lonely.end is not None


class TestThreadSafety:
    def test_concurrent_spans_stay_per_thread(self):
        tracer = Tracer()
        errors = []

        def worker(index):
            try:
                for _ in range(50):
                    with tracer.span("w%d" % index) as outer:
                        with tracer.span("w%d.inner" % index) as inner:
                            assert inner.parent_id == outer.span_id
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # 4 workers x 50 outers, each a root (thread stacks are independent)
        assert len(tracer.roots) == 200
        for root in tracer.roots:
            assert len(root.children) == 1
            assert root.children[0].name == root.name + ".inner"

    def test_span_ids_unique_across_threads(self):
        tracer = Tracer()

        def worker():
            for _ in range(100):
                with tracer.span("s"):
                    pass

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        ids = [s.span_id for s in tracer.all_spans()]
        assert len(ids) == len(set(ids)) == 400


class TestAmbientApi:
    def test_span_without_telemetry_is_detached_but_timed(self):
        with span("orphan") as orphan:
            pass
        assert orphan.span_id == 0
        assert orphan.duration >= 0
        assert orphan.end is not None

    def test_span_with_active_telemetry_records(self):
        telemetry = Telemetry()
        with telemetry.activate():
            with span("phase") as phase:
                pass
        assert phase in telemetry.tracer.roots
        assert telemetry.tracer.find("phase") is phase

    def test_activation_nests(self):
        outer_telemetry = Telemetry()
        inner_telemetry = Telemetry()
        with outer_telemetry.activate():
            with span("outer_span"):
                pass
            with inner_telemetry.activate():
                with span("inner_span"):
                    pass
            with span("outer_again"):
                pass
        assert [s.name for s in outer_telemetry.tracer.roots] == [
            "outer_span",
            "outer_again",
        ]
        assert [s.name for s in inner_telemetry.tracer.roots] == ["inner_span"]

    def test_null_span_is_inert(self):
        assert NULL_SPAN.set("k", "v") is NULL_SPAN
        assert NULL_SPAN.find("x") is None
        assert list(NULL_SPAN.walk()) == []


class TestSpanSerialization:
    def test_to_dict_round_trip_fields(self):
        tracer = Tracer()
        with tracer.span("phase", platform="netkit") as phase:
            pass
        record = phase.to_dict()
        assert record["name"] == "phase"
        assert record["attributes"] == {"platform": "netkit"}
        assert record["status"] == "ok"
        assert record["duration"] > 0
        assert isinstance(record["id"], int)

    def test_span_repr(self):
        assert "Span(" in repr(Span(name="x", span_id=1))
