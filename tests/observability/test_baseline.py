"""The perf-baseline store: records, history, tolerance gates, trends."""

import json

import pytest

from repro.observability import (
    SCHEMA_VERSION,
    BaselineRecord,
    BaselineStore,
    compare_records,
    environment_fingerprint,
    git_sha,
    record_from_bench,
    render_trend_report,
)
from repro.observability.baseline import flatten_series, higher_is_better


BENCH = {
    "bench": "pipeline",
    "timestamp": 123.0,
    "topology": "small_internet",
    "total_seconds": 0.1,
    "phases": {"render": 0.04, "deploy": 0.06},
    "metrics": {
        "counters": {"bgp.messages": 296, "ospf.spf_cache_hits": 80},
    },
    "control_plane": {"fault_cycle_speedup": 0.85, "fast": {"converged": True}},
}


def make_record(series, sha="abc1234", timestamp=1.0, key="pipeline:small_internet:default"):
    return BaselineRecord(
        key=key, bench="pipeline", topology="small_internet", mode="default",
        git_sha=sha, timestamp=timestamp, series=dict(series),
    )


class TestFlatten:
    def test_nested_numbers_get_dotted_keys(self):
        series = flatten_series(BENCH)
        assert series["total_seconds"] == 0.1
        assert series["phases.render"] == 0.04
        assert series["metrics.counters.bgp.messages"] == 296
        assert series["control_plane.fault_cycle_speedup"] == 0.85

    def test_booleans_become_binary_series(self):
        assert flatten_series(BENCH)["control_plane.fast.converged"] == 1.0

    def test_provenance_keys_skipped_at_top_level(self):
        series = flatten_series({"timestamp": 5.0, "schema_version": 1,
                                 "inner": {"timestamp": 7.0}})
        assert "timestamp" not in series
        assert series["inner.timestamp"] == 7.0


class TestRecordFromBench:
    def test_key_and_stamps(self):
        record = record_from_bench(BENCH, sha="deadbee", timestamp=42.0)
        assert record.key == "pipeline:small_internet:default"
        assert record.git_sha == "deadbee"
        assert record.schema_version == SCHEMA_VERSION
        assert record.environment["python"]
        assert record.series["phases.deploy"] == 0.06

    def test_round_trip(self):
        record = record_from_bench(BENCH, sha="deadbee", timestamp=42.0)
        again = BaselineRecord.from_dict(
            json.loads(json.dumps(record.to_dict()))
        )
        assert again == record


class TestGitShaAndEnvironment:
    def test_git_sha_in_repo(self):
        import os

        root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        sha = git_sha(root)
        assert sha == "unknown" or len(sha) >= 7

    def test_git_sha_outside_repo(self, tmp_path):
        assert git_sha(str(tmp_path)) == "unknown"

    def test_fingerprint_fields(self):
        fingerprint = environment_fingerprint()
        assert set(fingerprint) == {
            "python", "implementation", "system", "machine", "cpu_count"
        }


class TestStore:
    def test_append_and_latest(self, tmp_path):
        store = BaselineStore(tmp_path / "history.jsonl")
        store.append(make_record({"total_seconds": 0.1}, timestamp=1.0))
        store.append(make_record({"total_seconds": 0.2}, timestamp=2.0))
        latest = store.latest("pipeline:small_internet:default")
        assert latest.series["total_seconds"] == 0.2
        assert store.keys() == ["pipeline:small_internet:default"]

    def test_missing_history_is_empty(self, tmp_path):
        store = BaselineStore(tmp_path / "nope.jsonl")
        assert store.records() == []
        assert store.latest("anything") is None

    def test_torn_tail_line_tolerated(self, tmp_path):
        path = tmp_path / "history.jsonl"
        store = BaselineStore(path)
        store.append(make_record({"a": 1.0}))
        with open(path, "a") as handle:
            handle.write('{"key": "pipeline:small_inte')  # torn write
        assert len(store.records()) == 1

    def test_newer_schema_records_skipped(self, tmp_path):
        path = tmp_path / "history.jsonl"
        store = BaselineStore(path)
        record = make_record({"a": 1.0}).to_dict()
        record["schema_version"] = SCHEMA_VERSION + 1
        with open(path, "w") as handle:
            handle.write(json.dumps(record) + "\n")
        assert store.records() == []

    def test_series_across_history(self, tmp_path):
        store = BaselineStore(tmp_path / "history.jsonl")
        store.append(make_record({"total_seconds": 0.1}, sha="a", timestamp=1))
        store.append(make_record({"total_seconds": 0.3}, sha="b", timestamp=2))
        points = store.series("pipeline:small_internet:default", "total_seconds")
        assert points == [(1, "a", 0.1), (2, "b", 0.3)]


class TestCompare:
    def test_twenty_percent_slowdown_regresses(self):
        baseline = make_record({"total_seconds": 1.0})
        current = make_record({"total_seconds": 1.2}, sha="def5678")
        comparison = compare_records(baseline, current)
        assert not comparison.ok
        assert [d.name for d in comparison.regressions] == ["total_seconds"]
        assert comparison.regressions[0].delta_ratio == pytest.approx(0.2)

    def test_within_tolerance_is_ok(self):
        baseline = make_record({"total_seconds": 1.0})
        current = make_record({"total_seconds": 1.1})
        assert compare_records(baseline, current, tolerance=0.15).ok

    def test_counters_gate_tighter_than_wall_clock(self):
        baseline = make_record({"metrics.counters.bgp.messages": 100.0})
        current = make_record({"metrics.counters.bgp.messages": 110.0})
        comparison = compare_records(baseline, current,
                                     tolerance=0.15, metric_tolerance=0.05)
        assert not comparison.ok  # +10% counter drift > 5% gate

    def test_higher_is_better_series_regress_on_decrease(self):
        assert higher_is_better("control_plane.fault_cycle_speedup")
        assert not higher_is_better("phases.render")
        baseline = make_record({"control_plane.fault_cycle_speedup": 2.0})
        current = make_record({"control_plane.fault_cycle_speedup": 1.0})
        comparison = compare_records(baseline, current)
        assert [d.name for d in comparison.regressions] == [
            "control_plane.fault_cycle_speedup"
        ]

    def test_speedup_increase_is_improvement(self):
        baseline = make_record({"control_plane.fault_cycle_speedup": 1.0})
        current = make_record({"control_plane.fault_cycle_speedup": 2.0})
        comparison = compare_records(baseline, current)
        assert comparison.ok
        assert comparison.improvements

    def test_added_and_removed_series_do_not_gate(self):
        baseline = make_record({"old": 1.0})
        current = make_record({"new": 1.0})
        comparison = compare_records(baseline, current)
        assert comparison.ok
        statuses = {d.name: d.status for d in comparison.deltas}
        assert statuses == {"old": "removed", "new": "added"}

    def test_format_mentions_regression(self):
        baseline = make_record({"phases.deploy": 1.0})
        current = make_record({"phases.deploy": 2.0})
        text = compare_records(baseline, current).format()
        assert "WORSE" in text
        assert "phases.deploy" in text


class TestTrendReport:
    def _store(self, tmp_path):
        store = BaselineStore(tmp_path / "history.jsonl")
        for i, sha in enumerate(["aaa1111", "bbb2222", "ccc3333"]):
            store.append(make_record(
                {"total_seconds": 0.1 * (i + 1), "phases.render": 0.01},
                sha=sha, timestamp=float(i),
            ))
        return store

    def test_markdown_table_with_sparkline(self, tmp_path):
        text = render_trend_report(self._store(tmp_path))
        assert "## pipeline:small_internet:default" in text
        assert "| total_seconds |" in text
        assert "aaa1111" in text and "ccc3333" in text
        assert "▁" in text  # sparkline rendered

    def test_html_document(self, tmp_path):
        text = render_trend_report(self._store(tmp_path), fmt="html")
        assert text.startswith("<!doctype html>")
        assert "<table>" in text
        assert "total_seconds" in text

    def test_unknown_format_raises(self, tmp_path):
        with pytest.raises(ValueError):
            render_trend_report(self._store(tmp_path), fmt="pdf")

    def test_empty_store(self, tmp_path):
        text = render_trend_report(BaselineStore(tmp_path / "none.jsonl"))
        assert "no history" in text
