"""The profiler layer: hot functions, collapsed stacks, span hotspots."""

import threading
import time

from repro.observability import (
    ProfileReport,
    Profiler,
    Telemetry,
    format_span_table,
    span_hotspots,
)


def _busy(deadline_seconds: float = 0.05) -> int:
    """Pure-python spin that the sampler reliably catches."""
    total = 0
    stop = time.perf_counter() + deadline_seconds
    while time.perf_counter() < stop:
        for i in range(1000):
            total += i * i
    return total


class TestDeterministicProfiler:
    def test_hot_function_table_names_the_hot_function(self):
        profiler = Profiler(interval=0.001)
        with profiler:
            _busy()
        report = profiler.report()
        top = report.hot_functions(limit=5)
        assert top, "profiler produced no function stats"
        names = [stat.name for stat in top]
        assert any("_busy" in name for name in names)
        # deterministic stats carry exact call counts
        busy_stat = next(stat for stat in top if "_busy" in stat.name)
        assert busy_stat.calls == 1
        assert busy_stat.self_seconds > 0

    def test_format_table_is_aligned_text(self):
        profiler = Profiler()
        with profiler:
            _busy(0.02)
        table = profiler.report().format_table(limit=5)
        lines = table.splitlines()
        assert lines[0].split() == ["self(s)", "cum(s)", "calls", "function"]
        assert len(lines) > 1

    def test_report_is_cached(self):
        profiler = Profiler()
        with profiler:
            _busy(0.01)
        assert profiler.report() is profiler.report()


class TestSamplingProfiler:
    def test_collapsed_stacks_capture_the_busy_frame(self):
        profiler = Profiler(interval=0.001, deterministic=False)
        with profiler:
            _busy()
        report = profiler.report()
        assert report.sample_count > 0
        assert any("_busy" in stack for stack in report.stacks)
        assert any("_busy" in frame for frame in report.top_frames())

    def test_collapsed_line_format(self, tmp_path):
        profiler = Profiler(interval=0.001, deterministic=False)
        with profiler:
            _busy()
        path = profiler.report().write_collapsed(str(tmp_path / "out.collapsed"))
        lines = open(path).read().splitlines()
        assert lines
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert int(count) >= 1
            assert ";" in stack or ":" in stack

    def test_sampling_sees_worker_threads(self):
        profiler = Profiler(interval=0.001, deterministic=False)
        with profiler:
            worker = threading.Thread(target=_busy, args=(0.08,),
                                      name="busy-worker")
            worker.start()
            worker.join()
        report = profiler.report()
        assert any("busy-worker" in name for name in report.threads_seen)
        assert any("_busy" in stack for stack in report.stacks)

    def test_sampled_function_stats_estimate_time(self):
        profiler = Profiler(interval=0.001, deterministic=False)
        with profiler:
            _busy()
        stats = profiler.report().hot_functions(limit=3)
        assert stats
        assert all(stat.calls is None for stat in stats)
        assert all(stat.source == "sampling" for stat in stats)

    def test_to_dict_payload(self):
        profiler = Profiler(interval=0.001)
        with profiler:
            _busy(0.02)
        payload = profiler.report().to_dict(limit=3)
        assert payload["sample_count"] >= 0
        assert len(payload["hot_functions"]) <= 3
        assert payload["elapsed_seconds"] > 0


class TestSpanHotspots:
    def test_self_time_excludes_children(self):
        telemetry = Telemetry()
        with telemetry.activate():
            with telemetry.span("outer"):
                time.sleep(0.01)
                with telemetry.span("inner"):
                    time.sleep(0.03)
        rows = {row["name"]: row for row in span_hotspots(telemetry)}
        assert rows["inner"]["self_seconds"] >= 0.02
        assert rows["outer"]["total_seconds"] >= rows["inner"]["total_seconds"]
        # outer's self time must not include inner's sleep
        assert rows["outer"]["self_seconds"] < rows["outer"]["total_seconds"]

    def test_repeated_span_names_aggregate(self):
        telemetry = Telemetry()
        with telemetry.activate():
            for _ in range(3):
                with telemetry.span("render.device"):
                    pass
        rows = {row["name"]: row for row in span_hotspots(telemetry)}
        assert rows["render.device"]["count"] == 3

    def test_format_span_table(self):
        telemetry = Telemetry()
        with telemetry.activate():
            with telemetry.span("phase"):
                pass
        table = format_span_table(telemetry)
        assert "phase" in table
        assert table.splitlines()[0].split() == [
            "self(s)", "total(s)", "count", "span"
        ]

    def test_empty_report_collapsed_is_empty(self):
        report = ProfileReport()
        assert report.collapsed() == []
        assert report.top_frames() == []
