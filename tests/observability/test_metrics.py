"""Unit tests for metric accumulation, including under concurrency."""

import threading

from repro.observability import MetricsRegistry, Telemetry, metric_inc


class TestCounters:
    def test_created_on_first_inc(self):
        metrics = MetricsRegistry()
        assert metrics.value("ospf.spf_runs") == 0
        metrics.inc("ospf.spf_runs")
        metrics.inc("ospf.spf_runs", 4)
        assert metrics.value("ospf.spf_runs") == 5

    def test_independent_names(self):
        metrics = MetricsRegistry()
        metrics.inc("a")
        metrics.inc("b", 2)
        assert metrics.value("a") == 1
        assert metrics.value("b") == 2
        assert metrics.names() == ["a", "b"]


class TestGauges:
    def test_last_write_wins(self):
        metrics = MetricsRegistry()
        metrics.set_gauge("bgp.period", 0)
        metrics.set_gauge("bgp.period", 3)
        assert metrics.value("bgp.period") == 3


class TestHistograms:
    def test_summary_statistics(self):
        metrics = MetricsRegistry()
        for value in (1.0, 3.0, 2.0):
            metrics.observe("render.file_bytes", value)
        histogram = metrics.histogram("render.file_bytes")
        assert histogram.count == 3
        assert histogram.total == 6.0
        assert histogram.minimum == 1.0
        assert histogram.maximum == 3.0
        assert histogram.mean == 2.0

    def test_empty_histogram(self):
        histogram = MetricsRegistry().histogram("missing")
        assert histogram.count == 0
        assert histogram.mean == 0.0
        assert histogram.percentile(50) is None


class TestPercentiles:
    def test_p50_p95_p99_on_uniform_values(self):
        metrics = MetricsRegistry()
        for value in range(1, 101):  # 1..100
            metrics.observe("spf.seconds", float(value))
        histogram = metrics.histogram("spf.seconds")
        assert histogram.percentile(50) == 50.5
        assert histogram.percentile(95) == 95.05
        assert histogram.percentile(99) == 99.01
        assert histogram.percentile(0) == 1.0
        assert histogram.percentile(100) == 100.0

    def test_single_sample(self):
        metrics = MetricsRegistry()
        metrics.observe("h", 7.0)
        histogram = metrics.histogram("h")
        assert histogram.percentile(50) == 7.0
        assert histogram.percentile(99) == 7.0

    def test_to_dict_carries_percentiles(self):
        metrics = MetricsRegistry()
        for value in (1.0, 2.0, 3.0):
            metrics.observe("h", value)
        stats = metrics.snapshot()["histograms"]["h"]
        assert stats["p50"] == 2.0
        assert stats["p95"] >= stats["p50"]
        assert stats["p99"] >= stats["p95"]

    def test_reservoir_decimates_deterministically(self):
        metrics = MetricsRegistry()
        for value in range(2000):
            metrics.observe("h", float(value))
        histogram = metrics.histogram("h")
        # aggregates stay exact even after decimation...
        assert histogram.count == 2000
        assert histogram.minimum == 0.0
        assert histogram.maximum == 1999.0
        # ...while the reservoir stays bounded and still spans the run
        assert len(histogram.samples) < 512
        assert histogram.stride > 1
        p50 = histogram.percentile(50)
        assert 800 <= p50 <= 1200

    def test_format_shows_percentiles(self):
        metrics = MetricsRegistry()
        for value in (0.1, 0.2, 0.9):
            metrics.observe("engine.task_seconds", value)
        line = [l for l in metrics.format().splitlines()
                if "engine.task_seconds" in l][0]
        assert "p50=" in line and "p95=" in line and "p99=" in line


class TestSnapshotAndFormat:
    def test_snapshot_is_plain_data(self):
        metrics = MetricsRegistry()
        metrics.inc("c", 2)
        metrics.set_gauge("g", 7)
        metrics.observe("h", 1.5)
        snapshot = metrics.snapshot()
        assert snapshot["counters"] == {"c": 2}
        assert snapshot["gauges"] == {"g": 7}
        assert snapshot["histograms"]["h"]["count"] == 1
        # mutating the snapshot must not touch the registry
        snapshot["counters"]["c"] = 99
        assert metrics.value("c") == 2

    def test_format_lists_every_instrument(self):
        metrics = MetricsRegistry()
        metrics.inc("compile.devices_compiled", 14)
        metrics.set_gauge("emulation.machines", 14)
        metrics.observe("spf.seconds", 0.25)
        text = metrics.format()
        assert "compile.devices_compiled" in text
        assert "emulation.machines" in text
        assert "spf.seconds" in text


class TestThreadSafety:
    def test_concurrent_increments_none_lost(self):
        metrics = MetricsRegistry()

        def worker():
            for _ in range(1000):
                metrics.inc("shared")

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert metrics.value("shared") == 8000

    def test_ambient_inc_from_threads(self):
        telemetry = Telemetry()
        with telemetry.activate():

            def worker():
                for _ in range(500):
                    metric_inc("ambient.counter")

            threads = [threading.Thread(target=worker) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert telemetry.metrics.value("ambient.counter") == 2000

    def test_ambient_inc_without_telemetry_is_noop(self):
        metric_inc("nobody.listening")  # must not raise
