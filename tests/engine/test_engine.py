"""The build engine end to end: parallel == serial, caching, incrementality."""

import os

import pytest

from repro.engine import ArtifactCache, BuildEngine, make_executor
from repro.exceptions import EngineError
from repro.loader import small_internet
from repro.observability import Telemetry
from repro.workflow import run_experiment


def _corpus(root):
    found = {}
    for dirpath, _, names in os.walk(root):
        for name in names:
            path = os.path.join(dirpath, name)
            with open(path, "rb") as handle:
                found[os.path.relpath(path, root)] = handle.read()
    return found


@pytest.fixture(scope="module")
def serial_corpus(tmp_path_factory):
    out = tmp_path_factory.mktemp("serial")
    BuildEngine(jobs=1).build(small_internet(), output_dir=str(out))
    return _corpus(str(out))


def test_serial_build_matches_classic_renderer(serial_corpus, tmp_path):
    result = run_experiment(
        small_internet(), deploy=False, output_dir=str(tmp_path)
    )
    assert result.render_result.n_files > 50
    assert _corpus(str(tmp_path)) == serial_corpus


def test_thread_parallel_build_is_byte_identical(serial_corpus, tmp_path):
    engine = BuildEngine(jobs=4)
    engine.build(small_internet(), output_dir=str(tmp_path))
    engine.shutdown()
    assert _corpus(str(tmp_path)) == serial_corpus


def test_process_parallel_build_is_byte_identical(serial_corpus, tmp_path):
    engine = BuildEngine(executor=make_executor(2, "process"))
    engine.build(small_internet(), output_dir=str(tmp_path))
    engine.shutdown()
    assert _corpus(str(tmp_path)) == serial_corpus


def test_parallel_matches_serial_on_reduced_nren(tmp_path):
    from repro.loader import european_nren_model

    graph = european_nren_model(scale=0.05)
    serial_dir = tmp_path / "serial"
    BuildEngine(jobs=1).build(graph, output_dir=str(serial_dir))

    parallel_dir = tmp_path / "parallel"
    engine = BuildEngine(jobs=4)
    engine.build(graph, output_dir=str(parallel_dir))
    engine.shutdown()

    corpus = _corpus(str(serial_dir))
    assert corpus and _corpus(str(parallel_dir)) == corpus


def test_warm_cache_rebuild_renders_nothing(serial_corpus, tmp_path):
    engine = BuildEngine(jobs=1)
    cold = engine.build(small_internet(), output_dir=str(tmp_path))
    assert cold.cache_hits == 0
    assert len(cold.rendered_devices) == cold.devices_total

    warm = engine.build(small_internet(), output_dir=str(tmp_path))
    assert warm.cache_hits == warm.devices_total
    assert warm.cache_misses == 0
    assert warm.rendered_devices == []
    assert warm.files_written == 0  # everything on disk already matched
    assert _corpus(str(tmp_path)) == serial_corpus


def test_disk_cache_shared_across_engines(serial_corpus, tmp_path):
    cache_dir = tmp_path / "cache"
    BuildEngine(jobs=1, cache_dir=str(cache_dir)).build(
        small_internet(), output_dir=str(tmp_path / "first")
    )
    second = BuildEngine(jobs=1, cache_dir=str(cache_dir))
    report = second.build(small_internet(), output_dir=str(tmp_path / "second"))
    assert report.cache_hits == report.devices_total
    assert report.rendered_devices == []
    assert _corpus(str(tmp_path / "second")) == serial_corpus


def test_cache_accounting_in_telemetry(tmp_path):
    telemetry = Telemetry()
    engine = BuildEngine(jobs=1)
    engine.build(small_internet(), output_dir=str(tmp_path), telemetry=telemetry)
    engine.build(small_internet(), output_dir=str(tmp_path), telemetry=telemetry)
    counters = telemetry.metrics.snapshot()["counters"]
    devices = len(engine.nidb.nodes())
    assert counters["engine.cache_misses"] >= devices
    assert counters["engine.cache_hits"] >= devices
    assert counters["engine.tasks_run"] > 2 * devices


def test_no_cache_mode_always_renders(tmp_path):
    engine = BuildEngine(jobs=1, use_cache=False)
    first = engine.build(small_internet(), output_dir=str(tmp_path))
    second = engine.build(small_internet(), output_dir=str(tmp_path))
    assert engine.cache is None
    assert first.cache_hits == second.cache_hits == 0
    assert len(second.rendered_devices) == second.devices_total


def test_incremental_link_change_rerenders_endpoints_only(tmp_path):
    graph = small_internet()
    engine = BuildEngine(jobs=1)
    engine.build(graph, output_dir=str(tmp_path / "inc"))

    changed = graph.copy()
    edge = next(
        (u, v)
        for u, v, data in changed.edges(data=True)
        if changed.nodes[u].get("device_type") == "router"
        and changed.nodes[v].get("device_type") == "router"
        and changed.nodes[u].get("asn") == changed.nodes[v].get("asn")
    )
    changed.edges[edge]["ospf_cost"] = 42

    report = engine.incremental_update(changed)
    assert report.mode == "incremental-partial"
    assert sorted(report.rendered_devices) == sorted(str(n) for n in edge)

    fresh = tmp_path / "fresh"
    BuildEngine(jobs=1).build(changed, output_dir=str(fresh))
    assert _corpus(str(tmp_path / "inc")) == _corpus(str(fresh))


def test_incremental_noop_rerenders_nothing(tmp_path):
    graph = small_internet()
    engine = BuildEngine(jobs=1)
    engine.build(graph, output_dir=str(tmp_path))
    report = engine.incremental_update(graph.copy())
    assert report.rendered_devices == []
    assert report.files_written == 0


def test_incremental_node_removal_falls_back_to_full(tmp_path):
    graph = small_internet()
    engine = BuildEngine(jobs=1)
    engine.build(graph, output_dir=str(tmp_path / "inc"))

    changed = graph.copy()
    victim = min(changed.degree, key=lambda pair: pair[1])[0]
    changed.remove_node(victim)

    report = engine.incremental_update(changed)
    assert report.mode == "incremental-full"
    assert str(victim) in report.removed_devices
    assert not os.path.isdir(str(tmp_path / "inc" / "localhost" / "netkit" / str(victim)))

    fresh = tmp_path / "fresh"
    BuildEngine(jobs=1).build(changed, output_dir=str(fresh))
    assert _corpus(str(tmp_path / "inc")) == _corpus(str(fresh))


def test_incremental_requires_a_prior_build():
    with pytest.raises(EngineError, match="requires a completed build"):
        BuildEngine(jobs=1).incremental_update(small_internet())


def test_engine_phase_spans_match_workflow(tmp_path):
    telemetry = Telemetry()
    result = run_experiment(
        small_internet(),
        deploy=False,
        output_dir=str(tmp_path),
        telemetry=telemetry,
        engine=BuildEngine(jobs=2),
    )
    assert set(result.timings) == {"load_build", "compile", "render"}
    assert result.render_result.n_files > 50


def test_deploy_through_engine_dag(tmp_path):
    engine = BuildEngine(jobs=1)
    report = engine.build(
        small_internet(), output_dir=str(tmp_path), deploy=True, lab_name="si"
    )
    assert report.deployment is not None
    assert report.deployment.lab.converged


def test_manifest_prune_removes_stale_outputs(tmp_path):
    cache = ArtifactCache(str(tmp_path / "cache"))
    graph = small_internet()
    out = tmp_path / "out"
    BuildEngine(jobs=1, cache=cache).build(
        graph, output_dir=str(out), manifest_name="si@netkit"
    )

    changed = graph.copy()
    victim = min(changed.degree, key=lambda pair: pair[1])[0]
    changed.remove_node(victim)

    report = BuildEngine(jobs=1, cache=cache).build(
        changed, output_dir=str(out), manifest_name="si@netkit", prune_stale=True
    )
    assert str(victim) in report.removed_devices
    assert not os.path.isdir(str(out / "localhost" / "netkit" / str(victim)))
