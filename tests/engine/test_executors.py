"""The pluggable executors: equivalence, selection, telemetry."""

import pytest

from repro.engine import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
)
from repro.engine.executors import run_calls
from repro.exceptions import EngineError
from repro.observability import Telemetry


def _square(n):
    return n * n


CALLS = [("t%d" % n, _square, n) for n in range(8)]


def test_serial_and_thread_agree():
    serial = SerialExecutor().run(CALLS)
    thread = ThreadExecutor(jobs=4)
    try:
        assert thread.run(CALLS) == serial == [n * n for n in range(8)]
    finally:
        thread.shutdown()


def test_process_executor_agrees():
    process = ProcessExecutor(jobs=2)
    try:
        assert process.run(CALLS) == [n * n for n in range(8)]
    finally:
        process.shutdown()


def test_make_executor_selection():
    assert make_executor(1).kind == "serial"
    assert make_executor(4).kind == "thread"
    assert make_executor(4, "process").kind == "process"
    assert make_executor(8, "serial").kind == "serial"
    with pytest.raises(EngineError, match="unknown executor"):
        make_executor(2, "quantum")


def test_run_calls_empty_batch():
    assert run_calls(SerialExecutor(), []) == []


def test_executors_record_latency_metrics():
    telemetry = Telemetry()
    with telemetry.activate():
        run_calls(SerialExecutor(), CALLS)
    snapshot = telemetry.metrics.snapshot()
    assert snapshot["counters"]["engine.tasks_scheduled"] == len(CALLS)
    assert snapshot["histograms"]["engine.task_seconds"]["count"] == len(CALLS)
    assert snapshot["histograms"]["engine.queue_seconds"]["count"] == len(CALLS)


def test_thread_executor_records_queue_wait():
    telemetry = Telemetry()
    thread = ThreadExecutor(jobs=2)
    try:
        with telemetry.activate():
            run_calls(thread, CALLS)
    finally:
        thread.shutdown()
    snapshot = telemetry.metrics.snapshot()
    assert snapshot["histograms"]["engine.task_seconds"]["count"] == len(CALLS)
    assert snapshot["gauges"]["engine.executor.jobs"] == 2
