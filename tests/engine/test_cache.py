"""The content-addressed artifact cache: memory, disk, manifests."""

import json
import os

from repro.engine import Artifact, ArtifactCache
from repro.engine.cache import text_sha


def _artifact(key="k" * 64, owner="r1"):
    # the sha must be honest: disk reads verify it since the cache
    # grew corruption detection
    return Artifact(
        key=key,
        owner=owner,
        files=[{"path": "r1/zebra/ospfd.conf", "sha": text_sha("x" * 10),
                "size": 10, "text": "x" * 10}],
    )


def test_memory_roundtrip_and_counters():
    cache = ArtifactCache()
    assert cache.get("missing" * 8) is None
    cache.put(_artifact())
    assert cache.get("k" * 64).owner == "r1"
    assert cache.hits == 1 and cache.misses == 1


def test_empty_cache_is_still_truthy():
    # truthiness must never follow __len__: `if cache` on an empty
    # cache silently disabling caching was a real bug
    assert bool(ArtifactCache())
    assert len(ArtifactCache()) == 0


def test_disk_roundtrip_across_instances(tmp_path):
    first = ArtifactCache(tmp_path)
    first.put(_artifact())
    second = ArtifactCache(tmp_path)
    found = second.get("k" * 64)
    assert found is not None
    assert found.files[0]["text"] == "x" * 10
    assert second.hits == 1


def test_corrupt_disk_object_is_a_miss(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.put(_artifact())
    cache.clear_memory()
    object_path = cache._object_path("k" * 64)
    with open(object_path, "w") as handle:
        handle.write("{not json")
    assert cache.get("k" * 64) is None
    assert cache.misses == 1


def test_contains_does_not_touch_counters(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.put(_artifact())
    assert cache.contains("k" * 64)
    assert not cache.contains("z" * 64)
    assert cache.hits == 0 and cache.misses == 0


def test_manifest_roundtrip(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.save_manifest("nren@netkit", {"fingerprints": {"r1": "abc"}})
    manifest = cache.load_manifest("nren@netkit")
    assert manifest["name"] == "nren@netkit"
    assert manifest["fingerprints"] == {"r1": "abc"}
    assert cache.load_manifest("other") is None


def test_memory_only_cache_has_no_manifests():
    cache = ArtifactCache()
    cache.save_manifest("x", {"a": 1})
    assert cache.load_manifest("x") is None


def test_artifact_serialisation():
    artifact = _artifact()
    again = Artifact.from_dict(json.loads(json.dumps(artifact.to_dict())))
    assert again.key == artifact.key
    assert again.paths() == ["r1/zebra/ospfd.conf"]
    assert again.total_bytes() == 10


def test_objects_are_sharded_by_key_prefix(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.put(_artifact())
    assert os.path.exists(
        os.path.join(tmp_path, "objects", "kk", "%s.json" % ("k" * 64))
    )
