"""The task graph and scheduler: ordering, expansion, failure modes."""

import pytest

from repro.engine import Expansion, Scheduler, SerialExecutor, Task, TaskGraph
from repro.exceptions import EngineError


def test_tasks_run_in_dependency_order():
    order = []
    graph = TaskGraph()
    graph.add_task("a", lambda _: order.append("a"))
    graph.add_task("b", lambda _: order.append("b"), deps=("a",))
    graph.add_task("c", lambda _: order.append("c"), deps=("a", "b"))
    Scheduler(SerialExecutor()).run(graph)
    assert order == ["a", "b", "c"]


def test_results_keyed_by_task_id():
    graph = TaskGraph()
    graph.add_task("one", lambda _: 1)
    graph.add_task("two", lambda n: n + 1, arg=1, deps=("one",))
    results = Scheduler(SerialExecutor()).run(graph)
    assert results == {"one": 1, "two": 2}


def test_duplicate_task_id_rejected():
    graph = TaskGraph()
    graph.add_task("a", lambda _: None)
    with pytest.raises(EngineError, match="duplicate"):
        graph.add_task("a", lambda _: None)


def test_unknown_dependency_rejected():
    graph = TaskGraph()
    graph.add_task("a", lambda _: None, deps=("ghost",))
    with pytest.raises(EngineError, match="unknown task"):
        graph.validate()


def test_cycle_detected():
    graph = TaskGraph()
    graph.add_task("a", lambda _: None, deps=("b",))
    graph.add_task("b", lambda _: None, deps=("a",))
    with pytest.raises(EngineError, match="cycle"):
        Scheduler(SerialExecutor()).run(graph)


def test_expansion_inserts_tasks_and_blocks_dependents():
    """A task that fans out delays everything that depended on it."""
    order = []

    def fan_out(_):
        children = [
            Task("child.%d" % index, lambda _, i=index: order.append("child.%d" % i))
            for index in range(3)
        ]
        order.append("compile")
        return Expansion(tasks=children, result="nidb")

    graph = TaskGraph()
    graph.add_task("compile", fan_out)
    graph.add_task("deploy", lambda _: order.append("deploy"), deps=("compile",))
    results = Scheduler(SerialExecutor()).run(graph)

    assert results["compile"] == "nidb"
    assert order[0] == "compile"
    assert order[-1] == "deploy"
    assert set(order[1:-1]) == {"child.0", "child.1", "child.2"}


def test_expansion_with_unknown_dep_rejected():
    def bad(_):
        return Expansion(tasks=[Task("child", lambda _: None, deps=("ghost",))])

    graph = TaskGraph()
    graph.add_task("root", bad)
    with pytest.raises(EngineError, match="unknown task"):
        Scheduler(SerialExecutor()).run(graph)


def test_scheduler_counts_tasks():
    graph = TaskGraph()
    for index in range(5):
        graph.add_task("t%d" % index, lambda _: None)
    scheduler = Scheduler(SerialExecutor())
    scheduler.run(graph)
    assert scheduler.tasks_run == 5
