"""Cache keys: stability across compiles, sensitivity to real changes."""

from repro.compilers import platform_compiler
from repro.design import design_network
from repro.engine import TemplateHasher, device_cache_key, topology_cache_key
from repro.loader import fig5_topology
from repro.nidb import stable_hash


def _nidb():
    return platform_compiler("netkit", design_network(fig5_topology())).compile()


def test_stable_hash_is_order_insensitive():
    assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})
    assert stable_hash({"a": 1}) != stable_hash({"a": 2})


def test_device_keys_stable_across_compiles():
    first, second = _nidb(), _nidb()
    hasher = TemplateHasher()
    for device in first:
        twin = second.node(device.node_id)
        assert device_cache_key(device, hasher) == device_cache_key(twin, hasher)


def test_device_key_tracks_compiled_state():
    nidb = _nidb()
    device = nidb.routers()[0]
    before = device_cache_key(device)
    device.zebra.hostname = "renamed"
    assert device_cache_key(device) != before


def test_keys_differ_between_devices():
    nidb = _nidb()
    hasher = TemplateHasher()
    keys = {device_cache_key(device, hasher) for device in nidb}
    assert len(keys) == len(nidb)


def test_topology_key_moves_with_any_device():
    first, second = _nidb(), _nidb()
    assert topology_cache_key(first) == topology_cache_key(second)
    second.routers()[0].zebra.hostname = "renamed"
    assert topology_cache_key(first) != topology_cache_key(second)


def test_template_hasher_memoises():
    hasher = TemplateHasher()
    nidb = _nidb()
    device = nidb.routers()[0]
    device_cache_key(device, hasher)
    assert hasher._hashes  # sources were read...
    first = dict(hasher._hashes)
    device_cache_key(device, hasher)
    assert hasher._hashes == first  # ...and not re-read
