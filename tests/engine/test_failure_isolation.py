"""Failure-isolated builds: partial reports, skips, cache corruption."""

import json
import os

import pytest

from repro.engine import ArtifactCache, BuildEngine
from repro.engine.cache import text_sha
from repro.engine.dag import Scheduler, Task, TaskFailure, TaskGraph
from repro.engine.executors import SerialExecutor, ThreadExecutor
from repro.exceptions import EngineError, TransientError
from repro.loader import small_internet
from repro.observability import Telemetry
from repro.resilience import RetryPolicy


def _boom(_arg):
    raise EngineError("kaboom")


def _ok(_arg):
    return "fine"


class TestSchedulerIsolation:
    def _graph(self):
        graph = TaskGraph()
        graph.add_task("a", _ok, in_parent=True)
        graph.add_task("bad", _boom, deps=("a",), in_parent=True)
        graph.add_task("good", _ok, deps=("a",), in_parent=True)
        graph.add_task("dependent", _ok, deps=("bad",), in_parent=True)
        graph.add_task("grandchild", _ok, deps=("dependent",), in_parent=True)
        return graph

    def test_strict_mode_still_raises(self):
        scheduler = Scheduler(SerialExecutor())
        with pytest.raises(EngineError, match="kaboom"):
            scheduler.run(self._graph())

    def test_non_strict_isolates_and_cascades(self):
        scheduler = Scheduler(SerialExecutor(), strict=False)
        results = scheduler.run(self._graph())
        assert results["a"] == "fine" and results["good"] == "fine"
        assert set(scheduler.failures) == {"bad"}
        assert scheduler.failures["bad"].error_type == "EngineError"
        # everything downstream of the failure is skipped, transitively
        assert scheduler.skipped == {"dependent", "grandchild"}
        assert "bad" not in results and "dependent" not in results

    def test_pool_tasks_isolated_too(self):
        graph = TaskGraph()
        graph.add_task("bad", _boom)
        graph.add_task("good", _ok)
        scheduler = Scheduler(ThreadExecutor(jobs=2), strict=False)
        results = scheduler.run(graph)
        assert results["good"] == "fine"
        assert isinstance(scheduler.failures["bad"], TaskFailure)

    def test_retry_policy_recovers_transients(self):
        state = {"calls": 0}

        def flaky(_arg):
            state["calls"] += 1
            if state["calls"] < 3:
                raise TransientError("warming up")
            return "warm"

        graph = TaskGraph()
        graph.add_task("flaky", flaky, in_parent=True)
        scheduler = Scheduler(
            SerialExecutor(),
            retry_policy=RetryPolicy(max_attempts=3, base_delay=0.0),
        )
        results = scheduler.run(graph)
        assert results["flaky"] == "warm"
        assert state["calls"] == 3
        assert not scheduler.failures

    def test_telemetry_counts_failures(self):
        telemetry = Telemetry()
        with telemetry.activate():
            Scheduler(SerialExecutor(), strict=False).run(self._graph())
        counters = telemetry.metrics.snapshot()["counters"]
        assert counters["engine.tasks_failed"] == 1
        assert counters["engine.tasks_skipped"] == 2


class TestEnginePartialBuilds:
    def test_render_failure_yields_partial_report(self, tmp_path, monkeypatch):
        engine = BuildEngine(output_dir=tmp_path, strict=False, use_cache=False)
        original = BuildEngine._task_render_device

        def sabotage(self, arg):
            device, key = arg
            if str(device.node_id) == "as100r1":
                raise EngineError("render sabotaged")
            return original(self, arg)

        monkeypatch.setattr(BuildEngine, "_task_render_device", sabotage)
        report = engine.build(small_internet())
        assert not report.ok
        assert set(report.failed_tasks) == {"render.as100r1"}
        assert "render sabotaged" in report.failed_tasks["render.as100r1"]
        # every other device still rendered
        assert len(report.rendered_devices) == report.devices_total - 1
        assert "as100r1" not in report.rendered_devices
        assert os.path.exists(os.path.join(engine.lab_dir, "lab.conf"))

    def test_strict_engine_preserves_abort(self, tmp_path, monkeypatch):
        engine = BuildEngine(output_dir=tmp_path, use_cache=False)

        def sabotage(self, arg):
            raise EngineError("render sabotaged")

        monkeypatch.setattr(BuildEngine, "_task_render_device", sabotage)
        with pytest.raises(EngineError, match="sabotaged"):
            engine.build(small_internet())

    def test_compile_failure_reports_instead_of_crashing(self, tmp_path, monkeypatch):
        engine = BuildEngine(output_dir=tmp_path, strict=False, use_cache=False)

        def sabotage(self, _arg):
            raise EngineError("compile sabotaged")

        monkeypatch.setattr(BuildEngine, "_task_compile", sabotage)
        report = engine.build(small_internet())
        assert not report.ok
        assert "compile" in report.failed_tasks
        assert report.rendered_devices == []
        assert "FAILED" in report.summary()


class TestCacheCorruption:
    def _cache_with_object(self, tmp_path):
        from repro.engine import Artifact

        cache = ArtifactCache(tmp_path)
        cache.put(
            Artifact(
                key="c" * 64,
                owner="r1",
                files=[{"path": "r1.conf", "sha": text_sha("hello"),
                        "size": 5, "text": "hello"}],
            )
        )
        cache.clear_memory()
        return cache

    def test_tampered_text_evicts_and_counts(self, tmp_path):
        cache = self._cache_with_object(tmp_path)
        object_path = cache._object_path("c" * 64)
        with open(object_path) as handle:
            data = json.load(handle)
        data["files"][0]["text"] = "hellp"  # bit flip, sha now stale
        with open(object_path, "w") as handle:
            json.dump(data, handle)

        telemetry = Telemetry()
        with telemetry.activate():
            assert cache.get("c" * 64) is None
        assert not os.path.exists(object_path), "corrupt object not evicted"
        counters = telemetry.metrics.snapshot()["counters"]
        assert counters["engine.cache_corrupt"] == 1
        assert counters["engine.cache_misses"] == 1

    def test_unreadable_object_also_evicted(self, tmp_path):
        cache = self._cache_with_object(tmp_path)
        object_path = cache._object_path("c" * 64)
        with open(object_path, "w") as handle:
            handle.write("{truncated")
        telemetry = Telemetry()
        with telemetry.activate():
            assert cache.get("c" * 64) is None
        assert not os.path.exists(object_path)
        assert telemetry.metrics.snapshot()["counters"]["engine.cache_corrupt"] == 1

    def test_intact_object_unaffected(self, tmp_path):
        cache = self._cache_with_object(tmp_path)
        found = cache.get("c" * 64)
        assert found is not None and found.files[0]["text"] == "hello"
