"""Golden-snapshot tests: DiffPlans pinned byte-for-byte.

For each canonical Small Internet edit (cost change, neighbor add via
a new inter-AS link, node removal) and every vendor target, the differ
must keep emitting the *same* plan — same operations, same order, same
preconditions, same hashes.  Any drift in the differ, the parsers, or
the renderer shows up here as a unified diff of the plan JSON.

To bless intentional changes::

    pytest tests/golden --update-golden
"""

from __future__ import annotations

import difflib
import os

import pytest

from repro.liveupdate import DiffPlan, apply_edits, diff_designs
from repro.loader import small_internet

GOLDEN_ROOT = os.path.join(os.path.dirname(__file__), "diffplans")
PLATFORMS = ("netkit", "dynagen", "junosphere", "cbgp")

EDITS = {
    "cost_change": [
        {"kind": "cost", "link": ["as20r1", "as20r2"], "value": 17},
    ],
    "neighbor_add": [
        {"kind": "add_link", "link": ["as20r1", "as100r1"], "cost": 5},
    ],
    "node_remove": [
        {"kind": "remove_node", "node": "as300r3"},
    ],
}


def _plan_json(platform, edits, tmp_path):
    old = small_internet()
    new = apply_edits(old, edits)
    delta = diff_designs(old, new, platform, work_dir=str(tmp_path))
    return delta.plan.to_json()


@pytest.mark.parametrize("platform", PLATFORMS)
@pytest.mark.parametrize("edit", sorted(EDITS))
def test_diffplan_matches_golden(platform, edit, tmp_path, request):
    golden_path = os.path.join(GOLDEN_ROOT, platform, "%s.json" % edit)
    rendered = _plan_json(platform, EDITS[edit], tmp_path)

    if request.config.getoption("--update-golden"):
        os.makedirs(os.path.dirname(golden_path), exist_ok=True)
        with open(golden_path, "w") as handle:
            handle.write(rendered)
        pytest.skip("golden diffplan %s/%s regenerated" % (platform, edit))

    assert os.path.isfile(golden_path), (
        "no golden diffplan for %s/%s: run pytest tests/golden "
        "--update-golden" % (platform, edit)
    )
    with open(golden_path) as handle:
        golden = handle.read()
    if golden != rendered:
        diff = "".join(
            difflib.unified_diff(
                golden.splitlines(keepends=True),
                rendered.splitlines(keepends=True),
                fromfile="golden/%s/%s.json" % (platform, edit),
                tofile="rendered/%s/%s.json" % (platform, edit),
            )
        )
        pytest.fail(
            "DiffPlan drifted from the golden snapshot for %s/%s "
            "(--update-golden blesses intentional changes):\n\n%s"
            % (platform, edit, diff)
        )


@pytest.mark.parametrize("platform", PLATFORMS)
@pytest.mark.parametrize("edit", sorted(EDITS))
def test_golden_diffplan_still_loads_and_inverts(platform, edit):
    """The checked-in snapshots are themselves valid, invertible plans."""
    golden_path = os.path.join(GOLDEN_ROOT, platform, "%s.json" % edit)
    if not os.path.isfile(golden_path):
        pytest.skip("no golden diffplan for %s/%s yet" % (platform, edit))
    plan = DiffPlan.load(golden_path)
    assert plan.platform == platform
    assert len(plan) > 0
    assert plan.inverse().inverse().to_dict() == plan.to_dict()
