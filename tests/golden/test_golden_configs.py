"""Golden-snapshot tests: rendered configs pinned byte-for-byte.

The Small Internet is rendered for every vendor target and compared
against the canonical trees checked in under ``tests/golden/``.  Any
drift in the design rules, compilers, templates, or renderer shows up
here as a unified diff of the exact configuration lines that changed —
the rcc-style property that what we emit is what we validated.

To bless intentional changes::

    pytest tests/golden --update-golden

which regenerates the snapshots in place (review the git diff before
committing them).
"""

from __future__ import annotations

import difflib
import os
import shutil

import pytest

from repro.compilers import platform_compiler
from repro.design import design_network
from repro.loader import small_internet
from repro.render import render_nidb

GOLDEN_ROOT = os.path.join(os.path.dirname(__file__), "small_internet")
PLATFORMS = ("netkit", "dynagen", "junosphere", "cbgp")


def _render(platform, tmp_path):
    anm = design_network(small_internet())
    nidb = platform_compiler(platform, anm).compile()
    result = render_nidb(nidb, str(tmp_path))
    return result.lab_dir


def _tree_files(base):
    """Relative paths of every file under ``base``, sorted."""
    found = []
    for root, dirs, files in os.walk(base):
        dirs.sort()
        for name in sorted(files):
            found.append(os.path.relpath(os.path.join(root, name), base))
    return found


def _read(path):
    with open(path, "rb") as handle:
        return handle.read()


def _unified_diff(golden_path, rendered_path, label):
    try:
        golden_lines = _read(golden_path).decode().splitlines(keepends=True)
        rendered_lines = _read(rendered_path).decode().splitlines(keepends=True)
    except UnicodeDecodeError:
        return "binary files differ: %s" % label
    return "".join(
        difflib.unified_diff(
            golden_lines,
            rendered_lines,
            fromfile="golden/%s" % label,
            tofile="rendered/%s" % label,
        )
    )


@pytest.mark.parametrize("platform", PLATFORMS)
def test_small_internet_rendering_matches_golden(platform, tmp_path, request):
    golden_dir = os.path.join(GOLDEN_ROOT, platform)
    lab_dir = _render(platform, tmp_path)

    if request.config.getoption("--update-golden"):
        if os.path.isdir(golden_dir):
            shutil.rmtree(golden_dir)
        shutil.copytree(lab_dir, golden_dir)
        pytest.skip("golden snapshots for %s regenerated" % platform)

    assert os.path.isdir(golden_dir), (
        "no golden snapshots for %s: run pytest tests/golden --update-golden"
        % platform
    )

    golden_files = _tree_files(golden_dir)
    rendered_files = _tree_files(lab_dir)
    missing = sorted(set(golden_files) - set(rendered_files))
    extra = sorted(set(rendered_files) - set(golden_files))
    assert not missing and not extra, (
        "rendered tree shape drifted for %s\nmissing (in golden, not "
        "rendered): %s\nextra (rendered, not in golden): %s"
        % (platform, missing, extra)
    )

    diffs = []
    for relative in golden_files:
        golden_path = os.path.join(golden_dir, relative)
        rendered_path = os.path.join(lab_dir, relative)
        if _read(golden_path) != _read(rendered_path):
            diffs.append(_unified_diff(golden_path, rendered_path, relative))
    assert not diffs, (
        "%d file(s) drifted from the golden snapshots for %s "
        "(--update-golden blesses intentional changes):\n\n%s"
        % (len(diffs), platform, "\n".join(diffs))
    )


@pytest.mark.parametrize("platform", PLATFORMS)
def test_golden_lab_still_boots(platform):
    """The checked-in snapshots are themselves bootable labs."""
    from repro.emulation import EmulatedLab

    golden_dir = os.path.join(GOLDEN_ROOT, platform)
    if not os.path.isdir(golden_dir):
        pytest.skip("no golden snapshots for %s yet" % platform)
    lab = EmulatedLab.boot(golden_dir)
    assert lab.converged
