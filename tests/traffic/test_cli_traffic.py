"""CLI surface of the traffic engine: `repro traffic` and `repro measure`."""

import json

import pytest

from repro.cli import main

PROFILE = {
    "name": "cli",
    "duration": 2.0,
    "default_capacity_mbps": 20.0,
    "classes": [
        {"name": "web", "kind": "request_response", "qps": 120, "pair_count": 16},
        {"name": "bulk", "kind": "bulk", "flows": 5, "bytes": 400000, "pair_count": 4},
    ],
}


@pytest.fixture()
def profile_file(tmp_path):
    path = tmp_path / "profile.json"
    path.write_text(json.dumps(PROFILE))
    return str(path)


def test_traffic_show_prints_parsed_profile(profile_file, capsys):
    assert main(
        ["traffic", "show", "--topology", "small_internet",
         "--profile", profile_file]
    ) == 0
    out = capsys.readouterr().out
    assert json.loads(out)["name"] == "cli"


def test_traffic_run_reports_percentiles(profile_file, capsys):
    assert main(
        ["traffic", "run", "--topology", "small_internet",
         "--profile", profile_file, "--seed", "7"]
    ) == 0
    out = capsys.readouterr().out
    assert "lab up: 14 machines" in out
    assert "p50 ms" in out and "p99 ms" in out
    assert "web" in out and "bulk" in out
    assert "flows/sec" in out


def test_traffic_run_json_payload(profile_file, capsys):
    assert main(
        ["traffic", "run", "--topology", "small_internet",
         "--profile", profile_file, "--seed", "7", "--json", "--max-links", "4"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    traffic = payload["traffic"]
    assert traffic["seed"] == 7
    assert traffic["totals"]["offered_flows"] > 0
    assert set(traffic["classes"]) == {"web", "bulk"}
    assert len(traffic["links"]) <= 4
    for entry in traffic["classes"].values():
        assert "p99" in entry["latency_ms"]


def test_traffic_run_same_seed_same_payload(profile_file, capsys):
    main(["traffic", "run", "--topology", "small_internet",
          "--profile", profile_file, "--seed", "3", "--json"])
    first = json.loads(capsys.readouterr().out)["traffic"]
    main(["traffic", "run", "--topology", "small_internet",
          "--profile", profile_file, "--seed", "3", "--json"])
    second = json.loads(capsys.readouterr().out)["traffic"]
    assert first == second


def test_traffic_run_with_inline_fault_event(profile_file, capsys):
    assert main(
        ["traffic", "run", "--topology", "small_internet",
         "--profile", profile_file, "--seed", "1",
         "--event", "at 1 link_down as100r1 as100r2"]
    ) == 0
    out = capsys.readouterr().out
    assert "fault @1.0s: link_down as100r1 as100r2" in out


def test_traffic_run_scale_multiplies_offered_load(profile_file, capsys):
    main(["traffic", "run", "--topology", "small_internet",
          "--profile", profile_file, "--seed", "2", "--json"])
    base = json.loads(capsys.readouterr().out)["traffic"]["totals"]
    main(["traffic", "run", "--topology", "small_internet",
          "--profile", profile_file, "--seed", "2", "--scale", "3.0", "--json"])
    scaled = json.loads(capsys.readouterr().out)["traffic"]["totals"]
    assert scaled["offered_flows"] > 2 * base["offered_flows"]


def test_traffic_missing_profile_is_clean_error(capsys):
    assert main(
        ["traffic", "run", "--topology", "small_internet",
         "--profile", "/nonexistent/profile.json"]
    ) == 2
    assert "error:" in capsys.readouterr().err


def test_measure_json_has_no_traffic_key_by_default(capsys):
    assert main(
        ["measure", "fig5", "-c", "show ip bgp summary", "-H", "r3", "--json"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert "traffic" not in payload


def test_measure_with_traffic_flag_adds_section(profile_file, capsys):
    assert main(
        ["measure", "fig5", "-c", "show ip bgp summary", "-H", "r3", "--json",
         "--traffic", profile_file, "--traffic-seed", "5"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["traffic"]["seed"] == 5
    assert payload["traffic"]["totals"]["offered_flows"] > 0
    # the measurement results are still there alongside
    (result,) = payload["results"]
    assert result["machine"] == "r3" and result["ok"] is True
