"""The traffic engine against a real booted lab.

Congestion, loss and fault disruption must *emerge* from the link model
— none of these quantities are scripted — and the whole report must be
bit-identical under a fixed seed, whatever executor booted the lab.
"""

import json

import pytest

from repro.emulation import EmulatedLab
from repro.exceptions import TrafficError
from repro.observability import Telemetry
from repro.resilience import FaultSchedule
from repro.traffic import TrafficProfile, run_traffic

WEB = {"name": "web", "kind": "request_response", "qps": 300, "pair_count": 24}


def make_profile(capacity=1000.0, **extra):
    data = {
        "name": "t",
        "duration": 3.0,
        "default_capacity_mbps": capacity,
        "classes": [WEB],
    }
    data.update(extra)
    return TrafficProfile.from_dict(data)


@pytest.fixture(scope="module")
def lab(si_render):
    return EmulatedLab.boot(si_render.lab_dir)


class TestDeterminism:
    def test_same_seed_is_bit_identical(self, lab):
        first = run_traffic(lab, make_profile(), seed=7)
        second = run_traffic(lab, make_profile(), seed=7)
        assert first.to_json() == second.to_json()

    def test_different_seed_differs(self, lab):
        first = run_traffic(lab, make_profile(), seed=7)
        second = run_traffic(lab, make_profile(), seed=8)
        assert first.to_json() != second.to_json()

    def test_identical_across_boot_executors(self, si_render):
        """jobs=1 and jobs=4 boots feed the same converged dataplane to
        the engine, so the report must not depend on boot fan-out."""
        serial_lab = EmulatedLab.boot(si_render.lab_dir, jobs=1)
        threaded_lab = EmulatedLab.boot(si_render.lab_dir, jobs=4)
        profile = make_profile()
        serial = run_traffic(serial_lab, profile, seed=11)
        threaded = run_traffic(threaded_lab, profile, seed=11)
        assert serial.to_json() == threaded.to_json()


class TestCongestion:
    def test_unsaturated_network_has_no_loss(self, lab):
        report = run_traffic(lab, make_profile(capacity=10000.0), seed=3)
        assert report.offered_flows > 0
        assert report.loss_rate == 0.0
        assert report.delivered_flows == report.offered_flows

    def test_saturation_produces_loss_and_latency(self, lab):
        calm = run_traffic(lab, make_profile(capacity=10000.0), seed=3)
        jammed = run_traffic(lab, make_profile(capacity=1.0), seed=3)
        assert jammed.loss_rate > 0.0
        assert jammed.delivered_flows < jammed.offered_flows
        calm_p99 = calm.classes[0].latency_ms()["p99"]
        jammed_p99 = jammed.classes[0].latency_ms()["p99"]
        assert jammed_p99 > calm_p99
        # drops show up on the links that carried the flows
        assert sum(row["drops"] for row in jammed.links) > 0

    def test_delivered_never_exceeds_offered(self, lab):
        for capacity in (0.5, 5.0, 500.0):
            report = run_traffic(lab, make_profile(capacity=capacity), seed=1)
            assert report.delivered_flows <= report.offered_flows
            assert report.delivered_bytes <= report.offered_bytes


class TestFaults:
    def test_mid_run_link_down_disrupts_then_recovers(self, lab):
        profile = make_profile(
            duration=6.0, capacity=100.0,
            reconvergence_seconds=0.5,
            classes=[dict(WEB, qps=600)],
        )
        schedule = FaultSchedule.parse("at 2 link_down as100r1 as100r2")
        baseline = run_traffic(lab.fork(), profile, seed=5)
        faulted = run_traffic(lab.fork(), profile, seed=5, schedule=schedule)

        assert faulted.faults and faulted.faults[0]["time"] == 2.0
        assert faulted.faults[0]["kind"] == "link_down"

        def bucket(report, start):
            return next(b for b in report.timeline if b["start"] == start)

        # the fault bucket's p99 spikes well above the same seed's
        # baseline bucket; later buckets recover to the same order
        assert bucket(faulted, 2.0)["p99_ms"] > 2 * bucket(baseline, 2.0)["p99_ms"]
        recovered = bucket(faulted, 5.0)["p99_ms"]
        assert recovered < bucket(faulted, 2.0)["p99_ms"] / 2

    def test_fault_run_is_still_deterministic(self, lab):
        profile = make_profile(duration=4.0, capacity=50.0)
        schedule = FaultSchedule.parse("at 1 link_down as100r1 as100r2")
        first = run_traffic(lab.fork(), profile, seed=9, schedule=schedule)
        second = run_traffic(lab.fork(), profile, seed=9, schedule=schedule)
        assert first.to_json() == second.to_json()

    def test_schedule_naming_unknown_machine_rejected(self, lab):
        schedule = FaultSchedule.parse("at 1 node_down nosuch")
        with pytest.raises(Exception):
            run_traffic(lab.fork(), make_profile(), seed=0, schedule=schedule)


class TestLiveUpdates:
    """A mid-run DiffPlan reroutes flows like a fault, minus the loss:
    bounded p99 blip in the change bucket, recovery in the next."""

    @pytest.fixture(scope="class")
    def cost_plan(self, tmp_path_factory):
        from repro.liveupdate import apply_edits, diff_designs
        from repro.loader import small_internet

        edits = [{"kind": "cost", "link": ["as100r1", "as100r2"], "value": 50}]
        delta = diff_designs(
            small_internet(), apply_edits(small_internet(), edits),
            "netkit", work_dir=str(tmp_path_factory.mktemp("live_plan")),
        )
        return delta.plan

    def test_mid_run_cost_change_blips_then_recovers(self, lab, cost_plan):
        profile = make_profile(
            duration=6.0, capacity=100.0,
            reconvergence_seconds=0.5,
            classes=[dict(WEB, qps=600)],
        )
        baseline = run_traffic(lab.fork(), profile, seed=5)
        updated = run_traffic(
            lab.fork(), profile, seed=5, live_plans=[(2.0, cost_plan)]
        )

        assert updated.faults == [{
            "time": 2.0, "kind": "live_update", "target": "as100r1 as100r2",
        }]

        def bucket(report, start):
            return next(b for b in report.timeline if b["start"] == start)

        # flows in flight across the disturbed routers stall until the
        # reconvergence window closes, then retry over the new paths —
        # the same disruption shape a fault produces
        assert bucket(updated, 2.0)["p99_ms"] > 2 * bucket(baseline, 2.0)["p99_ms"]
        recovered = bucket(updated, 5.0)["p99_ms"]
        assert recovered < bucket(updated, 2.0)["p99_ms"] / 2

    def test_live_update_run_is_deterministic(self, lab, cost_plan):
        profile = make_profile(duration=4.0, capacity=50.0)
        first = run_traffic(
            lab.fork(), profile, seed=9, live_plans=[(1.0, cost_plan)]
        )
        second = run_traffic(
            lab.fork(), profile, seed=9, live_plans=[(1.0, cost_plan)]
        )
        assert first.to_json() == second.to_json()

    def test_plan_accepts_dict_form(self, lab, cost_plan):
        profile = make_profile(duration=2.0)
        report = run_traffic(
            lab.fork(), profile, seed=1,
            live_plans=[(1.0, cost_plan.to_dict())],
        )
        assert report.faults[0]["kind"] == "live_update"

    def test_platform_mismatch_rejected(self, lab, cost_plan):
        wrong = type(cost_plan).from_dict(
            dict(cost_plan.to_dict(), platform="cbgp")
        )
        with pytest.raises(TrafficError, match="platform"):
            run_traffic(
                lab.fork(), make_profile(), seed=0, live_plans=[(1.0, wrong)]
            )

    def test_negative_time_rejected(self, lab, cost_plan):
        with pytest.raises(TrafficError, match=">= 0"):
            run_traffic(
                lab.fork(), make_profile(), seed=0, live_plans=[(-1.0, cost_plan)]
            )


class TestReportShape:
    def test_metrics_exported_into_registry(self, si_render):
        telemetry = Telemetry()
        with telemetry.activate():
            lab = EmulatedLab.boot(si_render.lab_dir)
            report = run_traffic(lab, make_profile(), seed=2)
        counters = telemetry.metrics.snapshot()["counters"]
        assert counters["traffic.flows_offered"] == report.offered_flows
        assert counters["traffic.flows_delivered"] == report.delivered_flows
        histograms = telemetry.metrics.snapshot()["histograms"]
        assert "traffic.latency_ms.web" in histograms

    def test_report_serialises_and_formats(self, lab):
        report = run_traffic(lab, make_profile(), seed=4)
        payload = json.loads(report.to_json(max_links=3))
        assert payload["totals"]["offered_flows"] == report.offered_flows
        assert len(payload["links"]) <= 3
        assert "web" in payload["classes"]
        lines = report.format_lines()
        assert any("web" in line for line in lines)
        assert any("flows offered" in line for line in lines)

    def test_timeline_covers_duration(self, lab):
        report = run_traffic(lab, make_profile(duration=3.0), seed=6)
        starts = [bucket["start"] for bucket in report.timeline]
        assert starts == sorted(starts)
        assert starts[0] == 0.0
        assert starts[-1] <= 3.0
        assert sum(b["offered"] for b in report.timeline) == report.offered_flows

    def test_sources_destinations_restrict_pairs(self, lab):
        profile = make_profile(
            classes=[dict(WEB, sources=["as100r1"], destinations=["as100r2"])]
        )
        report = run_traffic(lab, profile, seed=1)
        assert report.offered_flows > 0
        assert report.loss_rate == 0.0

    def test_unknown_machine_in_class_rejected(self, lab):
        profile = make_profile(classes=[dict(WEB, sources=["nosuch"])])
        with pytest.raises(TrafficError, match="unknown machine"):
            run_traffic(lab, profile, seed=0)
