"""TrafficProfile spec: parsing, validation, canonical serialisation."""

import json

import pytest

from repro.exceptions import TrafficError
from repro.traffic import (
    CLASS_KINDS,
    LinkOverride,
    TrafficClass,
    TrafficProfile,
    coerce_profile,
)

WEB = {"name": "web", "kind": "request_response", "qps": 100}
BULK = {"name": "bulk", "kind": "bulk", "flows": 10, "bytes": 500000}
RAMP = {"name": "users", "kind": "ramp", "users": 20, "qps": 2.0, "ramp_seconds": 2.0}


def make_profile(**extra):
    data = {"name": "p", "duration": 5.0, "classes": [WEB, BULK, RAMP]}
    data.update(extra)
    return TrafficProfile.from_dict(data)


def test_round_trip_is_identity():
    profile = make_profile(
        default_capacity_mbps=50.0,
        default_delay_ms=2.0,
        links=[{"a": "r1", "b": "r2", "capacity_mbps": 10.0}],
    )
    again = TrafficProfile.from_json(profile.to_json())
    assert again == profile
    assert again.to_json() == profile.to_json()


def test_canonical_json_is_key_sorted():
    text = make_profile().to_json()
    assert json.loads(text) == json.loads(
        json.dumps(json.loads(text), sort_keys=True)
    )


def test_every_kind_parses():
    profile = make_profile()
    assert sorted({entry.kind for entry in profile.classes}) == sorted(
        set(CLASS_KINDS)
    )


def test_unknown_class_field_rejected():
    with pytest.raises(TrafficError, match="unknown field"):
        make_profile(classes=[{"name": "web", "qqps": 4}])


def test_unknown_kind_rejected():
    with pytest.raises(TrafficError, match="unknown traffic class kind"):
        make_profile(classes=[{"name": "web", "kind": "voip"}])


def test_duplicate_class_names_rejected():
    with pytest.raises(TrafficError, match="duplicate class names"):
        make_profile(classes=[WEB, WEB])


def test_empty_profile_rejected():
    with pytest.raises(TrafficError, match="no traffic classes"):
        make_profile(classes=[])


def test_nonpositive_duration_rejected():
    with pytest.raises(TrafficError, match="duration"):
        make_profile(duration=0)


def test_class_window_clamps_to_profile_duration():
    profile = make_profile(
        duration=5.0,
        classes=[dict(WEB, start=2.0, duration=10.0)],
    )
    assert profile.class_window(profile.classes[0]) == (2.0, 5.0)


def test_queue_bytes_defaults_to_bandwidth_delay_product():
    profile = make_profile(default_capacity_mbps=1000.0, default_delay_ms=1.0)
    # 1000 Mbps * 2ms round trip = 250000 bytes
    assert profile.resolved_queue_bytes() == 250000
    explicit = make_profile(queue_bytes=4096)
    assert explicit.resolved_queue_bytes() == 4096


def test_scaled_multiplies_rates_only():
    profile = make_profile()
    doubled = profile.scaled(2.0)
    by_name = {entry.name: entry for entry in doubled.classes}
    assert by_name["web"].qps == 200
    assert by_name["bulk"].flows == 20
    assert by_name["users"].users == 40
    # the pattern (sizes, windows, pairs) is preserved
    assert by_name["web"].request_bytes == profile.classes[0].request_bytes
    assert doubled.duration == profile.duration


def test_link_override_key_is_unordered():
    assert LinkOverride("b", "a").key() == LinkOverride("a", "b").key()


def test_coerce_accepts_all_forms(tmp_path):
    profile = make_profile()
    assert coerce_profile(profile) is profile
    assert coerce_profile(profile.to_dict()) == profile
    assert coerce_profile(profile.to_json()) == profile
    path = tmp_path / "p.json"
    path.write_text(profile.to_json())
    assert coerce_profile(str(path)) == profile
    with pytest.raises(TrafficError):
        coerce_profile(42)
    with pytest.raises(TrafficError, match="not found"):
        coerce_profile(str(tmp_path / "missing.json"))


def test_flow_bytes_by_kind():
    assert TrafficClass(name="w", kind="request_response",
                        request_bytes=400, response_bytes=600).flow_bytes() == 1000
    assert TrafficClass(name="b", kind="bulk", bytes=5000).flow_bytes() == 5000
