"""Unit tests for design-time iBGP stability detection (§8)."""

from repro.design import design_network
from repro.loader import bad_gadget_topology, multi_as_topology, small_internet
from repro.verification import check_ibgp_stability


def test_full_mesh_is_stable(si_anm):
    report = check_ibgp_stability(si_anm)
    assert report.design == "full-mesh"
    assert report.stable
    assert "oscillation-free" in report.summary()


def test_bad_gadget_flagged_before_deployment():
    """The §7.2 gadget is caught *at design time* — no simulation run."""
    anm = design_network(bad_gadget_topology())
    report = check_ibgp_stability(anm)
    assert report.design == "route-reflection"
    assert not report.stable
    # Each of the three reflectors is closer to another cluster's exit.
    reflectors = {entry[0] for entry in report.risky_reflectors}
    assert reflectors == {"rr1", "rr2", "rr3"}
    assert "oscillation" in report.summary()


def test_congruent_reflection_is_stable():
    """Reflectors adjacent to their own clients at minimal cost: safe."""
    graph = multi_as_topology(n_ases=1, routers_per_as=6, seed=5)
    # as1r1 reflects for everyone; it is within one hop of every client
    # on the ring, and no other cluster exists to be closer to.
    graph.nodes["as1r1"]["rr"] = True
    anm = design_network(graph)
    report = check_ibgp_stability(anm)
    assert report.design == "route-reflection"
    assert report.stable


def test_risky_entries_carry_distances():
    anm = design_network(bad_gadget_topology())
    report = check_ibgp_stability(anm)
    reflector, other_client, own_client, other_dist, own_dist = report.risky_reflectors[0]
    assert other_dist < own_dist
    assert other_dist == 5 and own_dist == 10  # the gadget's constructed costs
