"""Unit tests for pre-deployment static verification (§8)."""

import pytest

from repro.compilers import platform_compiler
from repro.design import design_network
from repro.loader import small_internet
from repro.verification import VerificationReport, verify_nidb


@pytest.fixture()
def nidb():
    return platform_compiler("netkit", design_network(small_internet())).compile()


def test_clean_compile_passes(nidb):
    report = verify_nidb(nidb)
    assert report.ok, [str(f) for f in report.findings]
    assert report.errors == []
    assert "passed" in report.summary() or report.warnings


def test_duplicate_address_detected(nidb):
    a = nidb.node("as100r1").physical_interfaces()[0]
    b = nidb.node("as300r1").physical_interfaces()[0]
    b.ip_address = a.ip_address
    report = verify_nidb(nidb)
    assert not report.ok
    assert any(f.check == "unique-address" for f in report.errors)


def test_link_subnet_mismatch_detected(nidb):
    interface = nidb.node("as100r1").physical_interfaces()[0]
    interface.subnet = "10.99.0.0/30"
    report = verify_nidb(nidb)
    assert any(f.check == "link-subnet" for f in report.errors)


def test_wrong_remote_asn_detected(nidb):
    neighbor = nidb.node("as100r1").bgp.ebgp_neighbors[0]
    neighbor.remote_asn = 65000
    report = verify_nidb(nidb)
    assert any(f.check == "bgp-remote-asn" for f in report.errors)


def test_dangling_peer_address_detected(nidb):
    neighbor = nidb.node("as100r1").bgp.ebgp_neighbors[0]
    neighbor.neighbor_ip = "198.51.100.1"
    report = verify_nidb(nidb)
    assert any(f.check == "bgp-peer-address" for f in report.errors)


def test_non_reciprocal_session_warned(nidb):
    nidb.node("as30r1").bgp.ebgp_neighbors = []
    report = verify_nidb(nidb)
    assert any(f.check == "bgp-reciprocal" for f in report.warnings)


def test_missing_next_hop_self_warned(nidb):
    for session in nidb.node("as100r1").bgp.ibgp_neighbors:
        session.next_hop_self = False
    report = verify_nidb(nidb)
    assert any(f.check == "ibgp-next-hop" for f in report.warnings)
    # warnings alone don't fail verification
    assert report.ok


def test_one_sided_ospf_detected(nidb):
    device = nidb.node("as100r1")
    device.ospf.ospf_links = [
        link for link in device.ospf.ospf_links if link.interface != "eth0"
    ]
    report = verify_nidb(nidb)
    assert any(f.check == "ospf-one-sided" for f in report.errors)


def test_report_accessors():
    report = VerificationReport()
    report.add("error", "x", "r1", "boom")
    report.add("warning", "y", "r2", "meh")
    assert len(report.errors) == 1 and len(report.warnings) == 1
    assert "1 error(s), 1 warning(s)" in report.summary()
    assert "[error] x r1: boom" == str(report.errors[0])
