"""Unit tests for deployment: archive, host, monitor, full flow (§5.7)."""

import os
import shutil
import tarfile
import tempfile

import pytest

from repro.deployment import (
    LocalEmulationHost,
    ProgressMonitor,
    archive_lab,
    deploy,
)
from repro.exceptions import DeploymentError


class TestArchive:
    def test_archive_contains_lab_files(self, si_render, tmp_path):
        archive_path = archive_lab(si_render.lab_dir, "si", str(tmp_path))
        assert os.path.exists(archive_path)
        with tarfile.open(archive_path) as archive:
            names = archive.getnames()
        assert "lab.conf" in names
        assert any(name.endswith("bgpd.conf") for name in names)

    def test_archive_missing_dir_raises(self, tmp_path):
        with pytest.raises(DeploymentError):
            archive_lab(str(tmp_path / "nope"), "x")


class TestHost:
    def test_receive_extract_start(self, si_render, tmp_path):
        host = LocalEmulationHost(work_dir=str(tmp_path / "host"))
        archive_path = archive_lab(si_render.lab_dir, "si", str(tmp_path))
        remote = host.receive(archive_path, "si")
        assert os.path.exists(remote)
        lab_dir = host.extract(remote, "si")
        assert os.path.exists(os.path.join(lab_dir, "lab.conf"))
        lab = host.lstart(lab_dir, "si")
        assert len(lab.network) == 14
        assert host.running_labs() == ["si"]
        assert host.vm_count("si") == 14

    def test_receive_missing_archive_raises(self, tmp_path):
        host = LocalEmulationHost(work_dir=str(tmp_path))
        with pytest.raises(DeploymentError):
            host.receive(str(tmp_path / "ghost.tar.gz"), "x")

    def test_lstart_empty_dir_fails(self, tmp_path):
        host = LocalEmulationHost(work_dir=str(tmp_path))
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(DeploymentError, match="failed to start"):
            host.lstart(str(empty), "broken")

    def test_lhalt(self, si_render, tmp_path):
        host = LocalEmulationHost(work_dir=str(tmp_path / "host"))
        record = deploy(si_render.lab_dir, host=host, lab_name="si")
        assert host.running_labs() == ["si"]
        host.lhalt("si")
        assert host.running_labs() == []
        with pytest.raises(DeploymentError):
            host.lhalt("si")

    def test_lab_lookup_missing_raises(self, tmp_path):
        host = LocalEmulationHost(work_dir=str(tmp_path))
        with pytest.raises(DeploymentError):
            host.lab("nothing")


class TestMonitor:
    def test_events_collected_in_order(self):
        monitor = ProgressMonitor()
        monitor.start()
        monitor.update("archive", "a")
        monitor.update("transfer", "b")
        assert monitor.stages() == ["archive", "transfer"]
        assert monitor.events[0].elapsed <= monitor.events[1].elapsed

    def test_callbacks_invoked(self):
        seen = []
        monitor = ProgressMonitor(callbacks=[seen.append])
        monitor.start()
        monitor.update("x", "msg")
        assert len(seen) == 1 and seen[0].stage == "x"

    def test_log_rendering(self):
        monitor = ProgressMonitor()
        monitor.start()
        monitor.update("lstart", "starting lab")
        assert "lstart" in monitor.log()


class TestFullDeployFlow:
    def test_deploy_produces_running_lab(self, si_deployment):
        assert si_deployment.lab.converged
        assert si_deployment.lab_name == "small_internet"
        assert len(si_deployment.lab.network) == 14

    def test_deploy_stage_timings(self, si_deployment):
        assert set(si_deployment.timings) == {
            "archive",
            "transfer",
            "extract",
            "start",
        }
        assert all(value >= 0 for value in si_deployment.timings.values())

    def test_deploy_monitor_stages(self, si_deployment):
        assert si_deployment.monitor.stages() == [
            "archive",
            "transfer",
            "extract",
            "lstart",
            "ready",
        ]
        ready = si_deployment.monitor.events[-1]
        assert "14 virtual machines up" in ready.message

    def test_deployment_artifacts_on_disk(self, si_deployment):
        # The staged archive is cleaned up by default; what survives is
        # the extracted lab on the host.
        assert not os.path.exists(si_deployment.archive_path)
        assert os.path.exists(os.path.join(si_deployment.lab_dir, "lab.conf"))

    def test_keep_archive_flag_preserves_archive(self, si_render, tmp_path):
        host = LocalEmulationHost(work_dir=str(tmp_path / "host"))
        record = deploy(
            si_render.lab_dir, host=host, lab_name="kept", keep_archive=True
        )
        assert os.path.exists(record.archive_path)
        shutil.rmtree(os.path.dirname(record.archive_path))

    def test_no_stray_archive_dirs_survive(self, si_render, tmp_path, monkeypatch):
        # Route mkdtemp under tmp_path so the test sees exactly the
        # staging dirs this deploy creates.
        staging_root = tmp_path / "staging"
        staging_root.mkdir()
        monkeypatch.setattr(tempfile, "tempdir", str(staging_root))
        host = LocalEmulationHost(work_dir=str(tmp_path / "host"))
        deploy(si_render.lab_dir, host=host, lab_name="tidy")
        strays = [
            entry
            for entry in os.listdir(staging_root)
            if entry.startswith("lab_archive_")
        ]
        assert strays == []


class TestLogging:
    def test_boot_and_deploy_emit_log_records(self, si_render, tmp_path, caplog):
        import logging

        with caplog.at_level(logging.INFO, logger="repro.emulation"):
            with caplog.at_level(logging.INFO, logger="repro.deployment"):
                host = LocalEmulationHost(work_dir=str(tmp_path))
                deploy(si_render.lab_dir, host=host, lab_name="logged")
        messages = [record.getMessage() for record in caplog.records]
        assert any("booting netkit lab" in message for message in messages)
        assert any("BGP converged" in message for message in messages)
        assert any("deployed to" in message for message in messages)
