"""Parallel boot determinism: ``jobs=N`` is indistinguishable from serial.

``deploy(..., jobs=4)`` fans config parsing and VM bring-up over the
engine executors; the resulting lab must be *identical* to a serial
boot — same reachability, same per-router RIB dumps, same BGP outcome.
These tests are the contract that lets ``--jobs`` default safely into
campaign runs.
"""

from __future__ import annotations

import pytest

from repro.deployment import LocalEmulationHost
from repro.deployment import deploy as deploy_lab
from repro.emulation import EmulatedLab, reachability_summary


@pytest.fixture(scope="module")
def deployments(si_render, tmp_path_factory):
    records = {}
    for jobs in (1, 4):
        host = LocalEmulationHost(
            work_dir=str(tmp_path_factory.mktemp("host_j%d" % jobs)),
            name="host-j%d" % jobs,
        )
        records[jobs] = deploy_lab(
            si_render.lab_dir,
            host=host,
            lab_name="small_internet",
            jobs=jobs,
        )
    return records


class TestParallelBootDeterminism:
    def test_reachability_summary_identical(self, deployments):
        serial, parallel = deployments[1].lab, deployments[4].lab
        assert reachability_summary(serial) == reachability_summary(parallel)

    def test_per_router_rib_dumps_identical(self, deployments):
        serial, parallel = deployments[1].lab, deployments[4].lab
        assert sorted(serial.network.machines) == sorted(
            parallel.network.machines
        )
        for name in sorted(serial.network.machines):
            for command in ("show ip route", "show ip bgp"):
                assert serial.vm(name).run(command) == parallel.vm(name).run(
                    command
                ), "%s diverged on %r under parallel boot" % (name, command)

    def test_bgp_outcome_identical(self, deployments):
        serial, parallel = deployments[1].lab, deployments[4].lab
        assert serial.bgp_result.selected == parallel.bgp_result.selected
        assert serial.bgp_result.rounds == parallel.bgp_result.rounds
        assert serial.converged and parallel.converged

    def test_parallel_boot_also_matches_direct_boot(self, si_render):
        direct = EmulatedLab.boot(si_render.lab_dir, jobs=4)
        serial = EmulatedLab.boot(si_render.lab_dir)
        assert direct.bgp_result.selected == serial.bgp_result.selected
        assert sorted(direct.network.machines) == sorted(
            serial.network.machines
        )
