"""Unit tests for the command-line interface."""

import os

import pytest

from repro.cli import main
from repro.loader import fig5_topology, save_graphml


@pytest.fixture()
def topology_file(tmp_path):
    path = tmp_path / "fig5.graphml"
    save_graphml(fig5_topology(), path)
    return str(path)


def test_info_builtin(capsys):
    assert main(["info", "fig5"]) == 0
    out = capsys.readouterr().out
    assert "overlay ospf" in out
    assert "overlay ebgp" in out


def test_info_from_file(topology_file, capsys):
    assert main(["info", topology_file]) == 0
    assert "overlay phy: 5 nodes" in capsys.readouterr().out


def test_build_renders_lab(tmp_path, capsys):
    assert main(["build", "fig5", "-o", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "rendered" in out
    assert os.path.exists(tmp_path / "localhost" / "netkit" / "lab.conf")


def test_build_other_platform(tmp_path):
    assert main(["build", "fig5", "--platform", "cbgp", "-o", str(tmp_path)]) == 0
    assert os.path.exists(tmp_path / "localhost" / "cbgp" / "network.cli")


def test_build_with_rule_subset(tmp_path, capsys):
    assert (
        main(["build", "fig5", "--rules", "phy", "ipv4", "isis", "-o", str(tmp_path)])
        == 0
    )
    quagga_dir = tmp_path / "localhost" / "netkit" / "r1" / "etc" / "quagga"
    assert (quagga_dir / "isisd.conf").exists()
    assert not (quagga_dir / "ospfd.conf").exists()


def test_verify_clean_topology(capsys):
    assert main(["verify", "small_internet"]) == 0
    out = capsys.readouterr().out
    assert "static verification passed" in out
    assert "oscillation-free" in out


def test_verify_flags_bad_gadget(capsys):
    assert main(["verify", "bad_gadget"]) == 1
    assert "risks oscillation" in capsys.readouterr().out


def test_deploy(capsys):
    assert main(["deploy", "fig5"]) == 0
    out = capsys.readouterr().out
    assert "lstart" in out
    assert "lab up: 5 machines, BGP converged" in out


def test_measure(capsys):
    assert main(["measure", "fig5", "-c", "show ip bgp summary", "-H", "r3", "r5"]) == 0
    out = capsys.readouterr().out
    assert "=== r3 ===" in out
    assert "local AS number 1" in out


def test_measure_json_reports_per_host_results(capsys):
    import json

    assert (
        main(["measure", "fig5", "-c", "show ip bgp summary", "-H", "r3", "--json"])
        == 0
    )
    data = json.loads(capsys.readouterr().out)
    assert data["failures"] == []
    (result,) = data["results"]
    assert result["machine"] == "r3"
    assert result["ok"] is True
    assert result["error"] is None
    assert "local AS number 1" in result["output"]


def test_measure_failed_host_is_reported_and_nonzero(capsys):
    import json

    assert (
        main(
            [
                "measure", "fig5", "-c", "show ip bgp summary",
                "-H", "r3", "nosuch", "--json",
            ]
        )
        == 1
    )
    data = json.loads(capsys.readouterr().out)
    assert data["failures"] == ["nosuch"]
    by_machine = {result["machine"]: result for result in data["results"]}
    assert by_machine["r3"]["ok"] is True
    assert by_machine["nosuch"]["ok"] is False
    assert by_machine["nosuch"]["error"]
    assert data["exit_code"] == 1


def test_measure_failed_host_text_output(capsys):
    assert (
        main(["measure", "fig5", "-c", "show ip bgp summary", "-H", "nosuch"]) == 1
    )
    out = capsys.readouterr().out
    assert "FAILED:" in out
    assert "1/1 measurements failed: nosuch" in out


def test_keyboard_interrupt_exits_130(monkeypatch, capsys):
    from repro import cli

    def interrupted(args, out):
        raise KeyboardInterrupt

    monkeypatch.setattr(cli, "_cmd_info", interrupted)
    assert main(["info", "fig5"]) == 130
    assert "interrupted" in capsys.readouterr().err


def test_measure_traceroute_maps_path(capsys):
    assert main(["measure", "fig5", "-c", "traceroute -naU 192.168.128.1", "-H", "r1"]) == 0
    out = capsys.readouterr().out
    assert "mapped:" in out
    assert "AS path:" in out


def test_visualize_html(tmp_path, capsys):
    output = str(tmp_path / "view.html")
    assert main(["visualize", "fig5", "--overlay", "ebgp", "-o", output]) == 0
    assert open(output).read().startswith("<!DOCTYPE html>")


def test_visualize_json(tmp_path):
    output = str(tmp_path / "view.json")
    assert main(["visualize", "fig5", "--overlay", "ospf", "-o", output]) == 0
    import json

    data = json.loads(open(output).read())
    assert data["overlay"] == "ospf"


def test_missing_file_is_error(capsys):
    assert main(["info", "/nonexistent/net.graphml"]) == 2
    assert "error:" in capsys.readouterr().err


def test_invalid_topology_is_error(tmp_path, capsys):
    path = tmp_path / "broken.json"
    path.write_text("{\"nodes\": []}")
    assert main(["build", str(path)]) == 2
    assert "error:" in capsys.readouterr().err


class TestWhatIf:
    def test_requires_a_failure(self, capsys):
        assert main(["whatif", "fig5"]) == 2
        assert "nothing to fail" in capsys.readouterr().err

    def test_redundant_link_failure_exits_zero(self, capsys):
        assert main(["whatif", "small_internet", "--fail-link", "as100r1", "as100r2"]) == 0
        out = capsys.readouterr().out
        assert "pairs lost: 0" in out

    def test_partition_exits_nonzero(self, capsys):
        code = main([
            "whatif", "small_internet",
            "--fail-link", "as1r1", "as30r1",
            "--fail-link", "as30r1", "as300r1",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "lost as100r1 -> as30r1" in out

    def test_fail_node(self, capsys):
        assert main(["whatif", "small_internet", "--fail-node", "as1r1"]) == 0
        assert "pairs kept:" in capsys.readouterr().out


class TestPerf:
    """`repro perf record|compare|report` — the regression gate."""

    def _bench_file(self, tmp_path, total=1.0, render=0.5,
                    name="BENCH_current.json"):
        import json

        bench = {
            "bench": "pipeline",
            "topology": "small_internet",
            "timestamp": 1.0,
            "git_sha": "abc1234",
            "total_seconds": total,
            "phases": {"render": render, "deploy": total - render},
            "metrics": {"counters": {"bgp.messages": 296}},
        }
        path = tmp_path / name
        path.write_text(json.dumps(bench))
        return str(path)

    def test_record_then_clean_compare(self, tmp_path, capsys):
        history = str(tmp_path / "history.jsonl")
        bench = self._bench_file(tmp_path)
        assert main(["perf", "record", "--bench", bench,
                     "--history", history]) == 0
        out = capsys.readouterr().out
        assert "recorded pipeline:small_internet:default" in out
        assert main(["perf", "compare", "--bench", bench,
                     "--history", history]) == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_compare_detects_injected_slowdown(self, tmp_path, capsys):
        history = str(tmp_path / "history.jsonl")
        baseline = self._bench_file(tmp_path, total=1.0, render=0.5,
                                    name="BENCH_base.json")
        assert main(["perf", "record", "--bench", baseline,
                     "--history", history]) == 0
        # inject a 25% end-to-end slowdown (>= the 20% acceptance bar)
        slower = self._bench_file(tmp_path, total=1.25, render=0.5,
                                  name="BENCH_slow.json")
        capsys.readouterr()
        assert main(["perf", "compare", "--bench", slower,
                     "--history", history]) == 1
        out = capsys.readouterr().out
        assert "total_seconds" in out
        assert "WORSE" in out
        assert "+25.0%" in out

    def test_warn_only_reports_but_exits_zero(self, tmp_path, capsys):
        history = str(tmp_path / "history.jsonl")
        baseline = self._bench_file(tmp_path, name="BENCH_base.json")
        assert main(["perf", "record", "--bench", baseline,
                     "--history", history]) == 0
        slower = self._bench_file(tmp_path, total=2.0, name="BENCH_slow.json")
        assert main(["perf", "compare", "--bench", slower,
                     "--history", history, "--warn-only"]) == 0
        assert "WORSE" in capsys.readouterr().out

    def test_compare_without_baseline_is_not_fatal(self, tmp_path, capsys):
        bench = self._bench_file(tmp_path)
        assert main(["perf", "compare", "--bench", bench,
                     "--history", str(tmp_path / "empty.jsonl")]) == 0
        assert "no baseline" in capsys.readouterr().out

    def test_report_writes_markdown_trend(self, tmp_path, capsys):
        history = str(tmp_path / "history.jsonl")
        bench = self._bench_file(tmp_path)
        assert main(["perf", "record", "--bench", bench,
                     "--history", history]) == 0
        output = str(tmp_path / "trend.md")
        assert main(["perf", "report", "--history", history,
                     "-o", output]) == 0
        text = open(output).read()
        assert "# Performance trend" in text
        assert "pipeline:small_internet:default" in text
        assert "total_seconds" in text

    def test_report_html(self, tmp_path, capsys):
        history = str(tmp_path / "history.jsonl")
        bench = self._bench_file(tmp_path)
        assert main(["perf", "record", "--bench", bench,
                     "--history", history]) == 0
        output = str(tmp_path / "trend.html")
        assert main(["perf", "report", "--history", history,
                     "--format", "html", "-o", output]) == 0
        assert open(output).read().startswith("<!doctype html>")


class TestProfileFlag:
    """`--profile` wraps any subcommand in the dual profiler."""

    def test_deploy_profile_prints_tables_and_writes_stacks(
            self, tmp_path, capsys):
        prefix = str(tmp_path / "prof")
        assert main(["deploy", "fig5", "--profile", prefix]) == 0
        out = capsys.readouterr().out
        assert "span hotspots" in out
        assert "hot functions" in out
        assert "collapsed stacks:" in out
        collapsed = prefix + ".collapsed"
        assert os.path.exists(collapsed)
        for line in open(collapsed).read().splitlines():
            stack, count = line.rsplit(" ", 1)
            assert int(count) >= 1

    def test_profile_json_payload_names_real_hot_paths(self, tmp_path, capsys):
        import json

        prefix = str(tmp_path / "prof")
        assert main(["deploy", "fig5", "--profile", prefix, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        profile = data["profile"]
        assert profile["collapsed_file"] == prefix + ".collapsed"
        assert profile["elapsed_seconds"] > 0
        assert profile["hot_functions"]
        # the sampled stacks walk through the pipeline's own frames
        stacks = open(profile["collapsed_file"]).read()
        assert "repro/" in stacks
        hotspots = profile["span_hotspots"]
        assert any(row["name"] == "deploy" for row in hotspots)


class TestDiff:
    def test_identical(self, capsys):
        assert main(["diff", "fig5", "fig5"]) == 0
        assert "identical" in capsys.readouterr().out

    def test_changed_cost(self, tmp_path, capsys):
        from repro.loader import save_graphml, small_internet

        graph = small_internet()
        graph.edges["as100r1", "as100r2"]["ospf_cost"] = 42
        path = tmp_path / "tweak.graphml"
        save_graphml(graph, path)
        assert main(["diff", "small_internet", str(path)]) == 1
        out = capsys.readouterr().out
        assert "~ as100r1" in out
        assert "ospf_cost: 1 -> 42" in out

    def test_added_device(self, tmp_path, capsys):
        from repro.loader import line_topology, save_graphml

        save_graphml(line_topology(3), tmp_path / "a.graphml")
        save_graphml(line_topology(4), tmp_path / "b.graphml")
        assert main(["diff", str(tmp_path / "a.graphml"), str(tmp_path / "b.graphml")]) == 1
        out = capsys.readouterr().out
        assert "+ r4" in out


class TestLiveUpdateCli:
    """`repro diff --plan` / `repro apply`: exit codes, plan files,
    journals, and clean termination on pipes and signals."""

    COST_EDIT = '[{"kind": "cost", "link": ["as20r1", "as20r2"], "value": 17}]'

    def test_diff_plan_identical_exits_zero(self, capsys):
        assert main(["diff", "small_internet", "small_internet", "--plan"]) == 0
        assert "plan:" in capsys.readouterr().out

    def test_diff_plan_nonempty_exits_one(self, tmp_path, capsys):
        from repro.loader import save_graphml, small_internet

        graph = small_internet()
        graph.edges["as20r1", "as20r2"]["ospf_cost"] = 17
        path = tmp_path / "tweak.graphml"
        save_graphml(graph, path)
        plan_out = str(tmp_path / "plan.json")
        assert (
            main(["diff", "small_internet", str(path), "--plan-out", plan_out])
            == 1
        )
        out = capsys.readouterr().out
        assert "set_cost" in out
        from repro.liveupdate import DiffPlan

        plan = DiffPlan.load(plan_out)
        assert len(plan) > 0
        assert plan.platform == "netkit"

    def test_apply_dry_run_exits_zero(self, capsys):
        assert (
            main(["apply", "small_internet", "--delta", self.COST_EDIT]) == 0
        )
        out = capsys.readouterr().out
        assert "edit: cost as20r1-as20r2 -> 17" in out
        assert "dry run" in out

    def test_apply_without_target_is_error(self, capsys):
        assert main(["apply", "small_internet"]) == 2
        assert "target design" in capsys.readouterr().err

    def test_apply_live_verify_rollback(self, tmp_path, capsys):
        journal_dir = str(tmp_path / "journal")
        assert (
            main([
                "apply", "small_internet", "--delta", self.COST_EDIT,
                "--verify", "--rollback", "--journal", journal_dir,
                "--plan-out", str(tmp_path / "plan.json"),
            ])
            == 0
        )
        out = capsys.readouterr().out
        assert "apply:" in out
        assert "verify: equivalent" in out
        assert "rollback verify: equivalent" in out
        assert os.listdir(journal_dir)
        assert os.path.exists(tmp_path / "plan.json")

    def test_apply_interrupt_exits_130(self, monkeypatch, capsys):
        from repro import cli

        def interrupted(args, out):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "_cmd_apply", interrupted)
        assert main(["apply", "small_internet", "--delta", "[]"]) == 130
        assert "interrupted" in capsys.readouterr().err

    def test_apply_sigterm_exits_143(self, monkeypatch, capsys):
        from repro import cli
        from repro.exceptions import TerminationRequested

        def terminated(args, out):
            raise TerminationRequested()

        monkeypatch.setattr(cli, "_cmd_apply", terminated)
        assert main(["apply", "small_internet", "--delta", "[]"]) == 143
        assert "terminated" in capsys.readouterr().err

    def test_diff_broken_pipe_exits_zero(self, monkeypatch, tmp_path):
        # `repro diff ... | head` closing the pipe early is normal use,
        # not a crash: the handler must swallow the late flush too
        import sys as _sys

        from repro import cli

        def broken(args, out):
            raise BrokenPipeError

        monkeypatch.setattr(cli, "_cmd_diff", broken)
        sink = open(tmp_path / "sink", "w")
        monkeypatch.setattr(_sys, "stdout", sink)
        assert main(["diff", "fig5", "fig5", "--plan"]) == 0
