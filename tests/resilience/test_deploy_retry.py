"""Fault-tolerant deployment: flaky hosts recover within the budget."""

import pytest

from repro.deployment import LocalEmulationHost, deploy
from repro.exceptions import RetryExhaustedError
from repro.observability import Telemetry
from repro.resilience import FlakyHost, RetryPolicy

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.0)


def test_flaky_host_recovers_within_budget(si_render, tmp_path):
    host = FlakyHost(
        LocalEmulationHost(work_dir=str(tmp_path / "host")),
        failures=1,
        stages=("receive", "extract"),
    )
    telemetry = Telemetry()
    with telemetry.activate():
        record = deploy(
            si_render.lab_dir, host=host, lab_name="flaky",
            retry_policy=FAST_RETRY,
        )
    assert record.lab.converged
    counters = telemetry.metrics.snapshot()["counters"]
    assert counters["retry.recoveries"] == 2
    assert counters["fault.transient_errors"] == 2
    assert counters["deploy.labs_started"] == 1
    faults = [e for e in telemetry.events.events if e.stage.startswith("fault.")]
    assert any(e.stage == "fault.deploy.transfer" for e in faults)
    assert any(e.stage == "fault.deploy.extract" for e in faults)


def test_flaky_lstart_recovers(si_render, tmp_path):
    host = FlakyHost(
        LocalEmulationHost(work_dir=str(tmp_path / "host")),
        failures=2,
        stages=("lstart",),
    )
    record = deploy(
        si_render.lab_dir, host=host, lab_name="flaky",
        retry_policy=FAST_RETRY,
    )
    assert record.lab.converged
    assert host.calls.count("lstart") == 3


def test_budget_exhaustion_raises(si_render, tmp_path):
    host = FlakyHost(
        LocalEmulationHost(work_dir=str(tmp_path / "host")),
        failures=5,
        stages=("receive",),
    )
    telemetry = Telemetry()
    with telemetry.activate():
        with pytest.raises(RetryExhaustedError) as err:
            deploy(
                si_render.lab_dir, host=host, lab_name="flaky",
                retry_policy=FAST_RETRY,
            )
    assert err.value.operation == "deploy.transfer"
    assert telemetry.metrics.snapshot()["counters"]["retry.exhausted"] == 1


def test_default_policy_still_fails_fast(si_render, tmp_path):
    # NO_RETRY makes one attempt: the transient error surfaces (wrapped
    # as exhaustion of a 1-attempt budget) without a second call.
    host = FlakyHost(
        LocalEmulationHost(work_dir=str(tmp_path / "host")),
        failures=1,
        stages=("receive",),
    )
    with pytest.raises(RetryExhaustedError):
        deploy(si_render.lab_dir, host=host, lab_name="flaky")
    assert host.calls == ["receive"]
