"""A hung VM blows the per-host deadline instead of wedging the fan-out."""

import time

from repro.emulation import EmulatedLab
from repro.measurement import MeasurementClient
from repro.observability import Telemetry
from repro.resilience import RetryPolicy, SleepyVM, inject_sleepy_vm

BOUNDED = RetryPolicy(max_attempts=1, base_delay=0.0, deadline=0.3)


def _lab(si_render):
    # a private boot: these tests swap VM handles in place
    return EmulatedLab.boot(si_render.lab_dir)


def test_hung_vm_is_reaped_with_reason_timeout(si_render, si_nidb):
    lab = _lab(si_render)
    sleepy = inject_sleepy_vm(lab, "as100r1", sleep_s=30.0, hangs=1)
    client = MeasurementClient(lab, si_nidb, retry_policy=BOUNDED)
    telemetry = Telemetry()
    started = time.perf_counter()
    with telemetry.activate():
        run = client.send("hostname", ["as100r1", "as100r2"])
    elapsed = time.perf_counter() - started
    assert elapsed < 10.0  # the 30s hang was abandoned, not awaited

    hung = run.by_machine()["as100r1"]
    assert not hung.ok
    assert hung.reason == "timeout"
    assert "deadline exceeded" in hung.error
    # the rest of the fan-out still happened
    healthy = run.by_machine()["as100r2"]
    assert healthy.ok
    assert healthy.reason == ""

    counters = telemetry.metrics.snapshot()["counters"]
    assert counters["measure.failures"] == 1
    assert sleepy.calls == ["hostname"]


def test_sleepy_vm_delegates_after_its_hangs_are_spent(si_render):
    lab = _lab(si_render)
    sleepy = SleepyVM(lab.vm("as100r1"), sleep_s=0.01, hangs=1)
    first = sleepy.run("hostname")
    second = sleepy.run("hostname")
    assert first == second
    assert sleepy.calls == ["hostname", "hostname"]


def test_failures_without_deadline_keep_reason_error(si_render, si_nidb):
    lab = _lab(si_render)
    client = MeasurementClient(lab, si_nidb)
    run = client.send("hostname", ["no_such_machine"])
    assert not run.ok
    assert run.results[0].reason == "error"
