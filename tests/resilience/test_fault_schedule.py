"""Fault schedules: the DSL, validation, and live-lab chaos runs."""

import pytest

from repro.emulation import EmulatedLab
from repro.exceptions import FaultScheduleError
from repro.observability import Telemetry
from repro.resilience import (
    FaultEvent,
    FaultSchedule,
    apply_schedule,
)


def _rib_view(lab):
    """A comparable projection of every machine's selected BGP routes."""
    view = {}
    for machine, table in lab.bgp_result.selected.items():
        view[machine] = {
            str(prefix): (route.as_path, route.learned_via, str(route.next_hop))
            for prefix, route in table.items()
        }
    return view


class TestDsl:
    def test_parse_events_and_comments(self):
        schedule = FaultSchedule.parse(
            """
            # incident one
            at 2 link_down r1 r2   # inline comment
            at 5 link_up r1 r2
            at 7 node_down r9
            """
        )
        assert len(schedule) == 3
        assert schedule.rounds() == [2, 5, 7]
        first = schedule.events[0]
        assert (first.at_round, first.kind, first.target) == (2, "link_down", ("r1", "r2"))

    def test_events_sorted_by_round(self):
        schedule = FaultSchedule.parse("at 9 node_down r1\nat 1 node_up r1\n")
        assert [event.at_round for event in schedule] == [1, 9]

    def test_bad_round_number_names_the_line(self):
        with pytest.raises(FaultScheduleError, match="line 2"):
            FaultSchedule.parse("at 1 node_down r1\nat soon node_down r2\n")

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultScheduleError, match="unknown fault kind"):
            FaultSchedule.parse("at 1 explode r1\n")

    def test_wrong_target_arity_rejected(self):
        with pytest.raises(FaultScheduleError):
            FaultEvent(at_round=1, kind="link_down", target=("r1",))
        with pytest.raises(FaultScheduleError):
            FaultEvent(at_round=1, kind="node_down", target=("r1", "r2"))

    def test_negative_round_rejected(self):
        with pytest.raises(FaultScheduleError):
            FaultEvent(at_round=-1, kind="node_down", target=("r1",))

    def test_dict_roundtrip(self):
        schedule = FaultSchedule.parse("at 2 link_down r1 r2\nat 5 node_up r9\n")
        again = FaultSchedule.from_dicts(schedule.to_dicts())
        assert again.to_dicts() == schedule.to_dicts()

    def test_grouped_batches_same_round(self):
        schedule = FaultSchedule.parse(
            "at 3 link_down r1 r2\nat 3 node_down r9\nat 5 link_up r1 r2\n"
        )
        groups = list(schedule.grouped())
        assert [at_round for at_round, _ in groups] == [3, 5]
        assert len(groups[0][1]) == 2


class TestValidation:
    def test_unknown_machine_rejected(self, si_lab):
        schedule = FaultSchedule.parse("at 1 node_down ghost\n")
        with pytest.raises(FaultScheduleError, match="unknown machine"):
            schedule.validate(si_lab)

    def test_nonexistent_link_rejected(self, si_lab):
        # both machines exist, but share no segment
        schedule = FaultSchedule.parse("at 1 link_down as100r1 as1r1\n")
        with pytest.raises(FaultScheduleError, match="no link"):
            schedule.validate(si_lab)

    def test_valid_schedule_passes(self, si_lab):
        FaultSchedule.parse(
            "at 1 link_down as100r1 as100r2\nat 3 link_up as100r1 as100r2\n"
        ).validate(si_lab)


class TestApplySchedule:
    def test_down_then_restore_matches_fresh_boot(self, si_render):
        """Determinism: a lab that lived through an incident and recovered
        ends with exactly the RIBs of a lab that never saw it."""
        lab = EmulatedLab.boot(si_render.lab_dir)
        pristine = _rib_view(lab)
        schedule = FaultSchedule.parse(
            "at 2 link_down as100r1 as100r2\nat 5 link_up as100r1 as100r2\n"
        )
        report = apply_schedule(lab, schedule)
        assert report.settled
        assert len(report.steps) == 2
        assert _rib_view(lab) == pristine

    def test_incident_matches_whatif_reboot(self, si_render):
        """A live link_down settles on the same reachability as the
        fork-based what-if path for the same incident."""
        from repro.emulation import fail_links, reachability_matrix

        lab = EmulatedLab.boot(si_render.lab_dir)
        whatif_lab = fail_links(lab, [("as100r1", "as100r2")])
        schedule = FaultSchedule.parse("at 2 link_down as100r1 as100r2\n")
        apply_schedule(lab, schedule)
        assert _rib_view(lab) == _rib_view(whatif_lab)
        assert reachability_matrix(lab) == reachability_matrix(whatif_lab)

    def test_node_down_removes_machine_until_restored(self, si_render):
        lab = EmulatedLab.boot(si_render.lab_dir)
        schedule = FaultSchedule.parse("at 1 node_down as1r1\n")
        apply_schedule(lab, schedule)
        assert "as1r1" not in lab.network.machines
        assert "as1r1" not in lab.bgp_result.selected
        restore = FaultSchedule.parse("at 9 node_up as1r1\n")
        apply_schedule(lab, restore)
        assert "as1r1" in lab.network.machines
        assert lab.converged

    def test_no_config_reparse_during_schedule(self, si_render, monkeypatch):
        """The whole point of live schedules: no re-parse, no reboot."""
        import repro.emulation.lab as lab_module

        lab = EmulatedLab.boot(si_render.lab_dir)
        def _explode(*_args, **_kwargs):
            raise AssertionError("config re-parse during live schedule")
        monkeypatch.setitem(
            lab_module.LAB_PARSERS, "netkit", _explode
        )
        schedule = FaultSchedule.parse(
            "at 2 link_down as100r1 as100r2\nat 4 link_up as100r1 as100r2\n"
        )
        report = apply_schedule(lab, schedule)
        assert report.settled

    def test_telemetry_records_fault_events(self, si_render):
        lab = EmulatedLab.boot(si_render.lab_dir)
        telemetry = Telemetry()
        with telemetry.activate():
            apply_schedule(
                lab,
                FaultSchedule.parse("at 2 link_down as100r1 as100r2\n"),
            )
        counters = telemetry.metrics.snapshot()["counters"]
        assert counters["fault.injected"] == 1
        assert counters["fault.link_down"] == 1
        stages = {event.stage for event in telemetry.events.events}
        assert "fault.link_down" in stages
        assert "fault.reconverge" in stages

    def test_schedule_against_unknown_target_raises_before_mutation(self, si_render):
        lab = EmulatedLab.boot(si_render.lab_dir)
        before = _rib_view(lab)
        with pytest.raises(FaultScheduleError):
            apply_schedule(lab, FaultSchedule.parse("at 1 node_down ghost\n"))
        assert _rib_view(lab) == before
