"""Measurement fan-out under faults: retries recover, failures isolate."""

from repro.emulation import EmulatedLab
from repro.measurement import MeasurementClient
from repro.observability import Telemetry
from repro.resilience import RetryPolicy, inject_flaky_vm

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.0)


def _lab(si_render):
    # a private boot: these tests swap VM handles in place
    return EmulatedLab.boot(si_render.lab_dir)


def test_flaky_vm_recovers_under_retry(si_render, si_nidb):
    lab = _lab(si_render)
    flaky = inject_flaky_vm(lab, "as100r1", failures=1)
    client = MeasurementClient(lab, si_nidb, retry_policy=FAST_RETRY)
    telemetry = Telemetry()
    with telemetry.activate():
        run = client.send("hostname", ["as100r1"])
    assert run.ok
    assert run.results[0].output
    assert flaky.calls == ["hostname", "hostname"]
    counters = telemetry.metrics.snapshot()["counters"]
    assert counters["retry.recoveries"] == 1


def test_exhausted_vm_is_isolated_not_fatal(si_render, si_nidb):
    lab = _lab(si_render)
    inject_flaky_vm(lab, "as100r1", failures=10)
    client = MeasurementClient(lab, si_nidb, retry_policy=FAST_RETRY)
    telemetry = Telemetry()
    with telemetry.activate():
        run = client.send("hostname", ["as100r1", "as100r2"])
    assert len(run.results) == 2
    failed = run.by_machine()["as100r1"]
    assert not failed.ok and "injected transient" in failed.error
    assert run.by_machine()["as100r2"].ok
    counters = telemetry.metrics.snapshot()["counters"]
    assert counters["measure.failures"] == 1
    assert counters["retry.exhausted"] == 1
    stages = {event.stage for event in telemetry.events.events}
    assert "fault.measure" in stages


def test_no_retry_default_fails_on_first_transient(si_render, si_nidb):
    lab = _lab(si_render)
    flaky = inject_flaky_vm(lab, "as100r1", failures=1)
    client = MeasurementClient(lab, si_nidb)  # NO_RETRY default
    run = client.send("hostname", ["as100r1"])
    assert not run.ok
    assert flaky.calls == ["hostname"]
