"""Deterministic retry policies: backoff, deadlines, telemetry."""

import pytest

from repro.exceptions import RetryExhaustedError, TransientError
from repro.observability import Telemetry
from repro.resilience import (
    DEFAULT_RETRY,
    NO_RETRY,
    RetryPolicy,
    retry_call,
)


class TestPolicy:
    def test_backoff_sequence_is_deterministic(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.1, multiplier=2.0,
                             max_delay=1.0)
        assert list(policy.delays()) == [0.1, 0.2, 0.4]
        assert list(policy.delays()) == list(policy.delays())

    def test_max_delay_caps_backoff(self):
        policy = RetryPolicy(max_attempts=5, base_delay=1.0, multiplier=10.0,
                             max_delay=2.0)
        assert list(policy.delays()) == [1.0, 2.0, 2.0, 2.0]

    def test_no_retry_is_single_attempt(self):
        assert NO_RETRY.max_attempts == 1
        assert list(NO_RETRY.delays()) == []

    def test_with_retries(self):
        assert DEFAULT_RETRY.with_retries(5).max_attempts == 6
        # the original is frozen and unchanged
        assert DEFAULT_RETRY.max_attempts == 3

    def test_invalid_policies_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1)

    def test_should_retry_matches_retry_on(self):
        policy = RetryPolicy()
        assert policy.should_retry(TransientError("x"))
        assert policy.should_retry(OSError("x"))
        assert not policy.should_retry(ValueError("x"))


class TestRetryCall:
    def _flaky(self, failures, exc=TransientError):
        state = {"calls": 0}

        def fn():
            state["calls"] += 1
            if state["calls"] <= failures:
                raise exc("boom %d" % state["calls"])
            return "ok"

        return fn, state

    def test_recovers_within_budget(self):
        fn, state = self._flaky(2)
        slept = []
        result = retry_call(
            fn,
            policy=RetryPolicy(max_attempts=3, base_delay=0.5),
            sleep=slept.append,
        )
        assert result == "ok"
        assert state["calls"] == 3
        assert slept == [0.5, 1.0]

    def test_exhaustion_raises_with_context(self):
        fn, _ = self._flaky(10)
        with pytest.raises(RetryExhaustedError) as err:
            retry_call(
                fn,
                policy=RetryPolicy(max_attempts=2, base_delay=0),
                operation="deploy.transfer",
                sleep=lambda _s: None,
            )
        assert err.value.operation == "deploy.transfer"
        assert err.value.attempts == 2
        assert isinstance(err.value.last_error, TransientError)

    def test_permanent_error_propagates_immediately(self):
        fn, state = self._flaky(10, exc=ValueError)
        with pytest.raises(ValueError):
            retry_call(fn, policy=RetryPolicy(max_attempts=5, base_delay=0),
                       sleep=lambda _s: None)
        assert state["calls"] == 1

    def test_deadline_stops_before_sleeping_past_budget(self):
        fn, state = self._flaky(10)
        clock = {"now": 0.0}

        def fake_sleep(seconds):
            clock["now"] += seconds

        with pytest.raises(RetryExhaustedError):
            retry_call(
                fn,
                policy=RetryPolicy(max_attempts=10, base_delay=1.0,
                                   multiplier=1.0, deadline=2.5),
                sleep=fake_sleep,
                clock=lambda: clock["now"],
            )
        # attempts at t=0, 1, 2; the next sleep would cross 2.5
        assert state["calls"] == 3

    def test_attempts_log_records_each_try(self):
        fn, _ = self._flaky(1)
        log = []
        retry_call(fn, policy=RetryPolicy(max_attempts=3, base_delay=0),
                   sleep=lambda _s: None, attempts_log=log)
        assert [a.number for a in log] == [1, 2]
        assert [a.succeeded for a in log] == [False, True]
        assert isinstance(log[0].error, TransientError)

    def test_metrics_and_events_recorded(self):
        telemetry = Telemetry()
        with telemetry.activate():
            fn, _ = self._flaky(1)
            retry_call(fn, policy=RetryPolicy(max_attempts=3, base_delay=0),
                       operation="unit.op", sleep=lambda _s: None)
        metrics = telemetry.metrics.snapshot()
        assert metrics["counters"]["retry.attempts"] == 2
        assert metrics["counters"]["retry.recoveries"] == 1
        assert metrics["counters"]["fault.transient_errors"] == 1
        events = [e for e in telemetry.events.events if e.stage == "fault.unit.op"]
        assert events, "expected fault.* events for the failed attempt"
