"""Boot quarantine: corrupted device configs degrade, not destroy."""

import os
import shutil

import pytest

from repro.emulation import EmulatedLab
from repro.exceptions import EmulationError
from repro.observability import Telemetry
from repro.resilience import CONVERGED, BootDiagnostic


def _corrupted_lab_dir(si_render, tmp_path, machine="as100r1",
                       filename="zebra.conf", content="frobnicate the wombat\n"):
    lab_dir = str(tmp_path / "lab")
    shutil.copytree(si_render.lab_dir, lab_dir)
    target = os.path.join(lab_dir, machine, "etc", "quagga", filename)
    assert os.path.exists(target), "fixture layout changed: %s" % target
    with open(target, "a") as handle:
        handle.write(content)
    return lab_dir


class TestNonStrictBoot:
    def test_corrupt_zebra_quarantines_the_device(self, si_render, tmp_path):
        lab_dir = _corrupted_lab_dir(si_render, tmp_path)
        telemetry = Telemetry()
        with telemetry.activate():
            lab = EmulatedLab.boot(lab_dir, strict=False)
        assert lab.degraded
        assert set(lab.quarantined) == {"as100r1"}
        diagnostic = lab.quarantined["as100r1"]
        assert isinstance(diagnostic, BootDiagnostic)
        # the diagnostic names the offending file and line
        assert "zebra.conf" in diagnostic.file
        assert diagnostic.line is not None
        assert "frobnicate" in diagnostic.cause
        counters = telemetry.metrics.snapshot()["counters"]
        assert counters["emulation.quarantined"] == 1

    def test_rest_of_lab_converges(self, si_render, tmp_path):
        lab_dir = _corrupted_lab_dir(si_render, tmp_path)
        lab = EmulatedLab.boot(lab_dir, strict=False)
        assert lab.converged
        assert "as100r1" not in lab.network.machines
        assert len(lab.network) == 13  # 14 machines minus the quarantined one
        report = lab.convergence_report
        assert report.status == CONVERGED
        assert report.degraded
        assert report.quarantined == ["as100r1"]

    def test_quarantined_vm_is_not_addressable(self, si_render, tmp_path):
        lab_dir = _corrupted_lab_dir(si_render, tmp_path)
        lab = EmulatedLab.boot(lab_dir, strict=False)
        with pytest.raises(EmulationError, match="quarantined"):
            lab.vm("as100r1")
        assert lab.vm("as100r2").run("hostname")

    def test_corrupt_ospfd_quarantines_too(self, si_render, tmp_path):
        lab_dir = _corrupted_lab_dir(
            si_render, tmp_path, filename="ospfd.conf",
            content="router ospf\n network not-a-prefix area 0\n",
        )
        lab = EmulatedLab.boot(lab_dir, strict=False)
        assert set(lab.quarantined) == {"as100r1"}
        assert "ospfd.conf" in lab.quarantined["as100r1"].file

    def test_quarantined_node_cannot_be_restored(self, si_render, tmp_path):
        lab_dir = _corrupted_lab_dir(si_render, tmp_path)
        lab = EmulatedLab.boot(lab_dir, strict=False)
        with pytest.raises(EmulationError, match="quarantined"):
            lab.node_up("as100r1")


class TestStrictBoot:
    def test_strict_raises_emulation_error(self, si_render, tmp_path):
        lab_dir = _corrupted_lab_dir(si_render, tmp_path)
        with pytest.raises(EmulationError, match="zebra"):
            EmulatedLab.boot(lab_dir)  # strict is the default

    def test_clean_lab_boots_identically_either_way(self, si_render):
        strict = EmulatedLab.boot(si_render.lab_dir)
        lenient = EmulatedLab.boot(si_render.lab_dir, strict=False)
        assert not lenient.degraded
        assert strict.converged and lenient.converged
        assert set(strict.network.machines) == set(lenient.network.machines)
        assert (
            strict.bgp_result.selected.keys()
            == lenient.bgp_result.selected.keys()
        )
