"""The canonical device codec is the equivalence contract of the
differ: two devices are "the same" iff their canonical dicts are equal,
and decoding must reproduce the dataclasses exactly.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.liveupdate import (
    device_from_dict,
    device_to_dict,
    lab_devices_from_dicts,
    lab_devices_to_dicts,
)


@pytest.fixture(scope="module")
def intent(si_lab):
    return si_lab.intent


class TestRoundTrip:
    def test_every_device_round_trips(self, intent):
        for name, device in intent.devices.items():
            data = device_to_dict(device)
            rebuilt = device_from_dict(data)
            assert device_to_dict(rebuilt) == data, name

    def test_round_trip_is_idempotent(self, intent):
        first = lab_devices_to_dicts(intent)
        rebuilt = lab_devices_from_dicts(first)
        again = {
            name: device_to_dict(device) for name, device in rebuilt.items()
        }
        assert again == first

    def test_decoded_addresses_are_typed(self, intent):
        """Decoding restores real address objects, not strings."""
        rebuilt = lab_devices_from_dicts(lab_devices_to_dicts(intent))
        for name, device in intent.devices.items():
            for original, decoded in zip(
                device.interfaces, rebuilt[name].interfaces
            ):
                assert type(decoded.ip_address) is type(original.ip_address)
                assert decoded.ip_address == original.ip_address


class TestCanonicalForm:
    def test_dicts_are_json_clean(self, intent):
        devices = lab_devices_to_dicts(intent)
        text = json.dumps(devices, sort_keys=True)
        assert json.loads(text) == devices

    def test_encoding_is_deterministic(self, intent):
        assert lab_devices_to_dicts(intent) == lab_devices_to_dicts(intent)

    def test_equality_tracks_content(self, intent):
        """Changing one field changes the canonical dict — the codec
        cannot silently drop the fields the differ compares."""
        name = sorted(intent.devices)[0]
        data = device_to_dict(intent.devices[name])
        mutated = copy.deepcopy(data)
        mutated["hostname"] = "other"
        assert mutated != data

    def test_interface_order_is_preserved(self, intent):
        """Lists stay in parser order — the engines consume intent
        lists positionally, so the codec must not sort them."""
        for name, device in intent.devices.items():
            data = device_to_dict(device)
            assert [entry["name"] for entry in data["interfaces"]] == [
                interface.name for interface in device.interfaces
            ]
