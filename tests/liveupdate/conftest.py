"""Shared fixtures for the live-update layer.

The differential suite boots real labs, so the rendered design pairs
(old design, edited design) are session-scoped — every test sees the
same ``diff_designs`` output for a given edit.
"""

from __future__ import annotations

import pytest

from repro.liveupdate import apply_edits, diff_designs
from repro.loader import small_internet

#: The canonical edits the golden snapshots and differential tests use.
COST_EDIT = [{"kind": "cost", "link": ["as20r1", "as20r2"], "value": 17}]
LINK_ADD_EDIT = [
    {"kind": "add_link", "link": ["as20r1", "as100r1"], "cost": 5}
]
NODE_REMOVE_EDIT = [{"kind": "remove_node", "node": "as300r3"}]
NODE_ADD_EDIT = [
    {
        "kind": "add_node",
        "node": "as100r4",
        "like": "as100r3",
        "attach_to": ["as100r1", "as100r2"],
        "cost": 3,
    }
]

EDITS = {
    "cost_change": COST_EDIT,
    "link_add": LINK_ADD_EDIT,
    "node_remove": NODE_REMOVE_EDIT,
    "node_add": NODE_ADD_EDIT,
}


def make_delta(edits, work_dir, platform="netkit"):
    """DesignDelta for ``edits`` against the Small Internet."""
    old = small_internet()
    new = apply_edits(old, edits)
    return diff_designs(old, new, platform, work_dir=str(work_dir))


@pytest.fixture(scope="session")
def cost_delta(tmp_path_factory):
    return make_delta(COST_EDIT, tmp_path_factory.mktemp("cost_delta"))
