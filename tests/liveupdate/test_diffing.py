"""The differ: minimal plans that round-trip exactly, by construction.

Everything here is render + parse only — no lab boot.  The invariant
under test is the differ's core contract: ``simulate_plan(old,
diff(old, new)) == new`` and ``simulate_plan(new, inverse) == old``,
bit-exact at the canonical-dict level, for every edit kind.
"""

from __future__ import annotations

import pytest

from repro.emulation.lab import detect_platform
from repro.emulation.parsing import LAB_PARSERS
from repro.exceptions import LiveUpdateError
from repro.liveupdate import (
    diff_intents,
    diff_rendered,
    lab_devices_to_dicts,
    simulate_plan,
)

from .conftest import EDITS, make_delta


def _parse_dir(lab_dir):
    return LAB_PARSERS[detect_platform(lab_dir)](lab_dir)


def parse_devices(lab_dir):
    return lab_devices_to_dicts(_parse_dir(lab_dir))


class TestDiffDesigns:
    @pytest.mark.parametrize("name", sorted(EDITS))
    def test_plan_round_trips_forward_and_back(self, name, tmp_path):
        delta = make_delta(EDITS[name], tmp_path)
        old = parse_devices(delta.old_dir)
        new = parse_devices(delta.new_dir)
        assert not delta.plan.is_empty

        forward, skipped = simulate_plan(old, delta.plan.operations)
        assert not skipped
        assert forward == new

        backward, skipped = simulate_plan(new, delta.plan.inverse().operations)
        assert not skipped
        assert backward == old

    def test_identical_designs_diff_to_empty_plan(self, tmp_path):
        delta = make_delta([], tmp_path)
        assert delta.plan.is_empty
        assert delta.plan.summary() == "no changes"

    def test_cost_edit_produces_minimal_ops(self, cost_delta):
        plan = cost_delta.plan
        by_kind = plan.count_by_kind()
        # two endpoints: each gets its interface cost set plus the OSPF
        # interface-cost map refresh — and nothing else
        assert by_kind == {"set_cost": 2, "update_igp": 2}
        assert plan.devices() == ["as20r1", "as20r2"]

    def test_link_add_touches_bgp(self, tmp_path):
        delta = make_delta(EDITS["link_add"], tmp_path)
        kinds = delta.plan.count_by_kind()
        # the new link crosses AS20 <-> AS100, so both ends gain an
        # interface and an eBGP session
        assert kinds.get("add_interface", 0) >= 2
        assert kinds.get("add_bgp_neighbor", 0) >= 2

    def test_node_remove_emits_remove_device(self, tmp_path):
        delta = make_delta(EDITS["node_remove"], tmp_path)
        kinds = delta.plan.count_by_kind()
        assert kinds.get("remove_device") == 1
        assert "as300r3" in delta.plan.devices()

    def test_file_changes_carry_provenance(self, cost_delta):
        assert cost_delta.plan.file_changes
        for change in cost_delta.plan.file_changes:
            assert change["status"] in ("added", "removed", "modified")
            assert change["path"]


class TestDiffRendered:
    def test_same_tree_is_empty(self, cost_delta):
        plan = diff_rendered(cost_delta.old_dir, cost_delta.old_dir)
        assert plan.is_empty

    def test_platform_mismatch_rejected(self, cost_delta, tmp_path):
        other = make_delta(EDITS["cost_change"], tmp_path, platform="cbgp")
        with pytest.raises(LiveUpdateError, match="platform"):
            diff_rendered(cost_delta.old_dir, other.new_dir)


class TestDiffIntents:
    def test_platform_mismatch_rejected(self, cost_delta, tmp_path):
        old = _parse_dir(cost_delta.old_dir)
        other = make_delta(EDITS["cost_change"], tmp_path, platform="cbgp")
        with pytest.raises(LiveUpdateError, match="platform"):
            diff_intents(old, _parse_dir(other.new_dir))
