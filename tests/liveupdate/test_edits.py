"""Design-level edits: parsing, validation, graph application."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import LiveUpdateError
from repro.liveupdate import DesignEdit, apply_edits, canonical_edits, parse_edits
from repro.loader import small_internet


class TestParsing:
    def test_inline_json(self):
        edits = parse_edits('[{"kind": "cost", "link": ["a", "b"], "value": 9}]')
        assert edits == [DesignEdit(kind="cost", link=("a", "b"), value=9)]

    def test_file_path(self, tmp_path):
        path = tmp_path / "delta.json"
        path.write_text('[{"kind": "remove_node", "node": "r1"}]')
        assert parse_edits(str(path)) == [
            DesignEdit(kind="remove_node", node="r1")
        ]

    def test_malformed_json_rejected(self):
        with pytest.raises(LiveUpdateError, match="malformed"):
            parse_edits("[{not json")

    def test_non_list_rejected(self):
        with pytest.raises(LiveUpdateError, match="list"):
            parse_edits('{"kind": "cost"}')

    def test_unknown_kind_rejected(self):
        with pytest.raises(LiveUpdateError, match="unknown design edit"):
            parse_edits('[{"kind": "explode"}]')

    def test_dict_round_trip(self):
        edit = DesignEdit(
            kind="add_node", node="rX", like="r1",
            attach_to=("r2", "r3"), cost=4,
        )
        assert DesignEdit.from_dict(edit.to_dict()) == edit


class TestApplication:
    def test_cost_edit_sets_ospf_cost(self):
        edited = apply_edits(
            small_internet(),
            [{"kind": "cost", "link": ["as20r1", "as20r2"], "value": 17}],
        )
        assert edited.edges["as20r1", "as20r2"]["ospf_cost"] == 17

    def test_original_graph_untouched(self):
        graph = small_internet()
        apply_edits(graph, [{"kind": "remove_node", "node": "as300r3"}])
        assert "as300r3" in graph

    def test_add_node_clones_template(self):
        edited = apply_edits(
            small_internet(),
            [{
                "kind": "add_node", "node": "as100r4", "like": "as100r3",
                "attach_to": ["as100r1"], "cost": 3,
            }],
        )
        assert edited.nodes["as100r4"]["asn"] == edited.nodes["as100r3"]["asn"]
        assert edited.edges["as100r4", "as100r1"]["ospf_cost"] == 3

    def test_unknown_link_rejected(self):
        with pytest.raises(LiveUpdateError, match="not in the topology"):
            apply_edits(
                small_internet(),
                [{"kind": "cost", "link": ["as20r1", "as300r1"], "value": 2}],
            )

    def test_duplicate_link_rejected(self):
        with pytest.raises(LiveUpdateError, match="already exists"):
            apply_edits(
                small_internet(),
                [{"kind": "add_link", "link": ["as20r1", "as20r2"]}],
            )

    def test_add_node_requires_attachment(self):
        with pytest.raises(LiveUpdateError, match="attach_to"):
            apply_edits(
                small_internet(),
                [{"kind": "add_node", "node": "x", "like": "as20r1"}],
            )


class TestCanonicalForm:
    def test_canonical_is_stable_and_compact(self):
        text = canonical_edits(
            '[{"value": 9, "kind": "cost", "link": ["a", "b"]}]'
        )
        assert text == canonical_edits(
            '[{"kind": "cost", "link": ["a", "b"], "value": 9}]'
        )
        assert json.loads(text) == [
            {"kind": "cost", "link": ["a", "b"], "value": 9}
        ]
