"""ChangeOp / DiffPlan mechanics: inversion, preconditions, atomic
simulation.  These are pure-dict tests — no lab, no boot.
"""

from __future__ import annotations

import copy

import pytest

from repro.exceptions import LiveUpdateError
from repro.liveupdate import ChangeOp, DiffPlan, apply_op, simulate_plan
from repro.liveupdate.plan import OP_KINDS


def cost_op(device="r1", key="eth0", old=1, new=9):
    return ChangeOp(
        kind="set_cost",
        device=device,
        key=key,
        before={"name": key, "ospf_cost": old},
        after={"name": key, "ospf_cost": new},
    )


def make_device(name="r1", cost=1):
    return {
        "name": name,
        "hostname": name,
        "interfaces": [
            {"name": "eth0", "ospf_cost": cost},
            {"name": "eth1", "ospf_cost": 5},
        ],
        "ospf": {"process_id": 1, "router_id": "10.0.0.1", "networks": []},
        "bgp": None,
    }


class TestChangeOp:
    def test_unknown_kind_rejected(self):
        with pytest.raises(LiveUpdateError):
            ChangeOp(kind="reboot", device="r1")

    @pytest.mark.parametrize("kind", OP_KINDS)
    def test_inverse_is_an_involution(self, kind):
        op = ChangeOp(
            kind=kind, device="r1", key="k",
            before={"a": 1}, after={"a": 2}, index=3,
        )
        assert op.inverse().inverse() == op

    def test_inverse_swaps_before_and_after(self):
        op = cost_op()
        back = op.inverse()
        assert back.before == op.after
        assert back.after == op.before
        assert back.kind == "set_cost"

    def test_inverse_copies_payloads(self):
        """Mutating the inverse must not corrupt the forward op."""
        op = ChangeOp(kind="set_attr", device="r1", key="hostname",
                      before={"v": ["x"]}, after={"v": ["y"]})
        op.inverse().before["v"].append("mutated")
        assert op.after == {"v": ["y"]}

    def test_op_id_and_hash_are_stable(self):
        op = cost_op()
        assert op.op_id(4) == "op004-set_cost-r1-eth0"
        assert op.op_hash() == cost_op().op_hash()
        assert op.op_hash() != cost_op(new=10).op_hash()

    def test_dict_round_trip(self):
        op = cost_op()
        assert ChangeOp.from_dict(op.to_dict()) == op


class TestApplyOp:
    def test_set_cost_applies(self):
        device = make_device(cost=1)
        assert apply_op(device, cost_op(old=1, new=9))
        assert device["interfaces"][0]["ospf_cost"] == 9

    def test_stale_precondition_raises_in_strict_mode(self):
        device = make_device(cost=99)  # does not match op.before
        with pytest.raises(LiveUpdateError, match="stale plan"):
            apply_op(device, cost_op(old=1, new=9), strict=True)

    def test_stale_precondition_skips_in_lenient_mode(self):
        device = make_device(cost=99)
        assert not apply_op(device, cost_op(old=1, new=9), strict=False)
        assert device["interfaces"][0]["ospf_cost"] == 99

    def test_apply_then_inverse_restores(self):
        device = make_device(cost=1)
        original = copy.deepcopy(device)
        op = cost_op(old=1, new=9)
        apply_op(device, op)
        apply_op(device, op.inverse())
        assert device == original


class TestSimulatePlan:
    def test_simulation_is_pure(self):
        devices = {"r1": make_device()}
        snapshot = copy.deepcopy(devices)
        new, skipped = simulate_plan(devices, [cost_op(old=1, new=9)])
        assert devices == snapshot
        assert not skipped
        assert new["r1"]["interfaces"][0]["ospf_cost"] == 9

    def test_strict_simulation_raises_before_any_effect(self):
        devices = {"r1": make_device(cost=1)}
        plan = [cost_op(old=1, new=9), cost_op(key="eth9", old=1, new=2)]
        with pytest.raises(LiveUpdateError):
            simulate_plan(devices, plan, strict=True)
        assert devices["r1"]["interfaces"][0]["ospf_cost"] == 1

    def test_lenient_simulation_reports_skips(self):
        devices = {"r1": make_device(cost=1)}
        stale = cost_op(old=42, new=2)
        new, skipped = simulate_plan(
            devices, [cost_op(old=1, new=9), stale], strict=False
        )
        assert skipped == [stale]
        assert new["r1"]["interfaces"][0]["ospf_cost"] == 9


class TestDiffPlan:
    def plan(self):
        return DiffPlan(
            platform="netkit",
            operations=[cost_op(), cost_op(device="r2")],
            file_changes=[{
                "path": "r1/quagga/ospfd.conf", "status": "modified",
                "before_hash": "aaa", "after_hash": "bbb",
            }],
            old_label="old", new_label="new",
        )

    def test_inverse_reverses_order_and_labels(self):
        plan = self.plan()
        back = plan.inverse()
        assert [op.device for op in back.operations] == ["r2", "r1"]
        assert (back.old_label, back.new_label) == ("new", "old")
        assert back.file_changes[0]["before_hash"] == "bbb"
        assert back.inverse().to_dict() == plan.to_dict()

    def test_json_round_trip(self, tmp_path):
        plan = self.plan()
        path = str(tmp_path / "plan.json")
        plan.save(path)
        assert DiffPlan.load(path).to_dict() == plan.to_dict()

    def test_plan_hash_ignores_labels(self):
        plan = self.plan()
        relabelled = DiffPlan(
            platform="netkit", operations=list(plan.operations),
            file_changes=[], old_label="x", new_label="y",
        )
        assert relabelled.plan_hash() == plan.plan_hash()

    def test_summary_counts_kinds(self):
        assert "set_cost x2" in self.plan().summary()
        assert DiffPlan(platform="netkit").summary() == "no changes"
