"""The differential suite: live apply ≡ fresh boot, with zero reboots.

For every edit class the plan is applied to a *running* lab and the
resulting routing state is compared bit-for-bit (IGP RIBs, BGP selected
routes, reachability, convergence verdict) against a cold boot of the
edited design.  Telemetry spans prove the live path never re-parses or
re-deploys anything — one incremental reconvergence is the whole cost.
"""

from __future__ import annotations

import json

import pytest

from repro.emulation import EmulatedLab
from repro.exceptions import LiveUpdateError
from repro.liveupdate import aggregate_state, apply_plan, verify_equivalence
from repro.observability import Telemetry

from .conftest import EDITS, make_delta

#: Spans that only a reboot path emits — the live path must emit none.
REBOOT_SPANS = ("emulation.parse", "emulation.vms", "deployment.deploy")


@pytest.fixture(scope="module", params=sorted(EDITS))
def delta(request, tmp_path_factory):
    return make_delta(
        EDITS[request.param], tmp_path_factory.mktemp("delta_%s" % request.param)
    )


@pytest.fixture(scope="module")
def labs(delta):
    """(live lab booted from the OLD design, oracle booted from NEW)."""
    return EmulatedLab.boot(delta.old_dir), EmulatedLab.boot(delta.new_dir)


def span_names(telemetry):
    return [span.name for span in telemetry.tracer.all_spans()]


class TestDifferential:
    def test_live_apply_equals_fresh_boot(self, delta, labs):
        live, oracle = labs
        lab = live.fork()
        telemetry = Telemetry()
        with telemetry.activate():
            report = apply_plan(lab, delta.plan)

        equivalence = verify_equivalence(lab, oracle)
        assert equivalence.ok, equivalence.summary()
        assert report.applied == len(delta.plan)
        assert not report.skipped

        names = span_names(telemetry)
        # zero reboots: no parse, no VM boot, no deploy — exactly one
        # incremental reconvergence for the whole plan
        for forbidden in REBOOT_SPANS:
            assert forbidden not in names, names
        assert names.count("emulation.reconverge") == 1

    def test_inverse_plan_rolls_back(self, delta, labs):
        live, _oracle = labs
        lab = live.fork()
        before = aggregate_state(lab)
        apply_plan(lab, delta.plan)
        apply_plan(lab, delta.plan.inverse())
        assert aggregate_state(lab) == before

    def test_aggregate_state_is_json_clean(self, labs):
        state = aggregate_state(labs[0])
        assert json.loads(json.dumps(state, sort_keys=True)) == state


class TestApplyContract:
    def test_stale_plan_rejected_before_mutation(self, cost_delta, si_lab):
        lab = si_lab.fork()
        apply_plan(lab, cost_delta.plan)
        before = aggregate_state(lab)
        # the plan's preconditions no longer hold — strict mode aborts
        # with the lab untouched (intent-level atomicity)
        with pytest.raises(LiveUpdateError, match="stale plan"):
            apply_plan(lab, cost_delta.plan)
        assert aggregate_state(lab) == before

    def test_lenient_mode_skips_stale_ops(self, cost_delta, si_lab):
        lab = si_lab.fork()
        apply_plan(lab, cost_delta.plan)
        report = apply_plan(lab, cost_delta.plan, strict=False)
        assert report.applied == 0
        assert len(report.skipped) == len(cost_delta.plan)

    def test_platform_mismatch_rejected(self, cost_delta, si_lab):
        plan = cost_delta.plan
        wrong = type(plan).from_dict(dict(plan.to_dict(), platform="cbgp"))
        with pytest.raises(LiveUpdateError, match="platform"):
            apply_plan(si_lab.fork(), wrong)

    def test_journal_records_every_op(self, cost_delta, si_lab, tmp_path):
        lab = si_lab.fork()
        journal_dir = str(tmp_path / "journal")
        report = apply_plan(lab, cost_delta.plan, journal_dir=journal_dir)
        assert report.journal_path
        entries = [
            json.loads(line)
            for line in open(report.journal_path)
            if line.strip()
        ]
        started = [e for e in entries if e.get("op") == "start"]
        finished = [e for e in entries if e.get("op") == "finish"]
        assert len(started) == len(cost_delta.plan)
        assert len(finished) == len(cost_delta.plan)
        assert all(e.get("status") == "applied" for e in finished)

    def test_isolation_shields_parent_intent(self, cost_delta, si_lab):
        lab = si_lab.fork()
        shared_intent = lab.intent
        apply_plan(lab, cost_delta.plan)
        # fork() shares intent; the applier must swap in a fresh one
        # instead of mutating the shared object under the parent
        assert lab.intent is not shared_intent
        assert si_lab.intent is shared_intent
