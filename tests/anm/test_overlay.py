"""Unit tests for the overlay graph API (§5.2)."""

import pytest

from repro.anm import AbstractNetworkModel
from repro.exceptions import NodeNotFoundError


@pytest.fixture
def anm():
    model = AbstractNetworkModel()
    g_in = model.add_overlay("input")
    for name, asn, dtype in [
        ("r1", 1, "router"),
        ("r2", 1, "router"),
        ("r3", 2, "router"),
        ("sw1", 1, "switch"),
        ("s1", 2, "server"),
    ]:
        g_in.add_node(name, asn=asn, device_type=dtype)
    g_in.add_edge("r1", "r2", type="physical", ospf_cost=5)
    g_in.add_edge("r2", "r3", type="physical")
    g_in.add_edge("r1", "sw1", type="physical")
    g_in.add_edge("r3", "s1", type="service")
    return model


def test_nodes_filtering_by_attribute(anm):
    g_in = anm["input"]
    assert {n.node_id for n in g_in.nodes(asn=1)} == {"r1", "r2", "sw1"}
    assert {n.node_id for n in g_in.nodes(asn=1, device_type="router")} == {"r1", "r2"}


def test_device_type_shortcuts(anm):
    g_in = anm["input"]
    assert {n.node_id for n in g_in.routers()} == {"r1", "r2", "r3"}
    assert [n.node_id for n in g_in.switches()] == ["sw1"]
    assert [n.node_id for n in g_in.servers()] == ["s1"]


def test_routers_shortcut_composes_with_filters(anm):
    assert {n.node_id for n in anm["input"].routers(asn=1)} == {"r1", "r2"}


def test_edges_filtering_by_attribute(anm):
    g_in = anm["input"]
    physical = g_in.edges(type="physical")
    assert len(physical) == 3
    service = g_in.edges(type="service")
    assert len(service) == 1


def test_edges_restricted_to_node(anm):
    g_in = anm["input"]
    edges = g_in.edges(node="r2")
    ends = {tuple(sorted((e.src_id, e.dst_id))) for e in edges}
    assert ends == {("r1", "r2"), ("r2", "r3")}


def test_edge_filter_and_node_combined(anm):
    edges = anm["input"].edges(node="r3", type="service")
    assert len(edges) == 1


def test_len_iter_contains(anm):
    g_in = anm["input"]
    assert len(g_in) == 5
    assert {n.node_id for n in g_in} == {"r1", "r2", "r3", "sw1", "s1"}
    assert "r1" in g_in
    assert g_in.node("r1") in g_in
    assert "nope" not in g_in


def test_add_nodes_from_accessors_retains_attributes(anm):
    g_in = anm["input"]
    g_phy = anm["phy"]
    g_phy.add_nodes_from(g_in, retain=["device_type", "asn"])
    assert g_phy.node("r1").asn == 1
    assert g_phy.node("s1").device_type == "server"


def test_add_nodes_from_with_extra_attrs(anm):
    overlay = anm.add_overlay("x")
    overlay.add_nodes_from(["a", "b"], role="test")
    assert overlay.node("a").role == "test"


def test_add_edges_from_edge_accessors(anm):
    g_in = anm["input"]
    overlay = anm.add_overlay("ospf", g_in.routers(), retain=["asn"])
    overlay.add_edges_from(
        (e for e in g_in.edges(type="physical") if g_in.has_node(e.src) and g_in.has_node(e.dst)),
        retain=["ospf_cost"],
    )
    assert overlay.has_edge("r1", "r2")
    assert overlay.edge("r1", "r2").ospf_cost == 5


def test_add_edges_from_tuples_and_dicts(anm):
    overlay = anm.add_overlay("t")
    overlay.add_edges_from([("a", "b"), ("b", "c", {"weight": 2})])
    assert overlay.edge("b", "c").weight == 2


def test_add_edges_bidirected_on_directed_overlay(anm):
    overlay = anm.add_overlay("sessions", directed=True)
    overlay.add_edges_from([("a", "b")], bidirected=True, session_type="peer")
    assert overlay.has_edge("a", "b") and overlay.has_edge("b", "a")
    assert overlay.edge("b", "a").session_type == "peer"


def test_add_edges_creates_missing_endpoints(anm):
    overlay = anm.add_overlay("y")
    overlay.add_edges_from([("p", "q")])
    assert overlay.has_node("p") and overlay.has_node("q")


def test_remove_edges_from_generator(anm):
    """The §5.2.3 idiom: prune inter-AS edges from a copied overlay."""
    g_in = anm["input"]
    overlay = anm.add_overlay("igp", g_in.routers(), retain=["asn"])
    overlay.add_edges_from(
        e for e in g_in.edges(type="physical")
        if overlay.has_node(e.src) and overlay.has_node(e.dst)
    )
    overlay.remove_edges_from(
        e for e in overlay.edges() if e.src.asn != e.dst.asn
    )
    assert overlay.has_edge("r1", "r2")
    assert not overlay.has_edge("r2", "r3")


def test_remove_node_and_missing_node_raises(anm):
    overlay = anm.add_overlay("z", ["a", "b"])
    overlay.remove_node("a")
    assert not overlay.has_node("a")
    with pytest.raises(NodeNotFoundError):
        overlay.remove_node("a")


def test_node_lookup_missing_raises(anm):
    with pytest.raises(NodeNotFoundError):
        anm["input"].node("missing")


def test_overlay_data_namespace(anm):
    g_in = anm["input"]
    g_in.data.infra_blocks = {1: "10.0.0.0/16"}
    assert g_in.data.infra_blocks == {1: "10.0.0.0/16"}
    assert g_in.data.get("missing") is None
    assert "infra_blocks" in g_in.data
    assert anm["input"].data.infra_blocks is not None  # persisted on the graph


def test_directed_node_edges_include_both_directions(anm):
    overlay = anm.add_overlay("d", directed=True)
    overlay.add_edge("a", "b")
    overlay.add_edge("c", "a")
    assert len(overlay.edges(node="a")) == 2


def test_degree_and_number_of_edges(anm):
    g_in = anm["input"]
    assert g_in.degree("r2") == 2
    assert g_in.number_of_edges() == 4


def test_subgraph_is_unwrapped_copy(anm):
    sub = anm["input"].subgraph(["r1", "r2", "sw1"])
    assert set(sub.nodes) == {"r1", "r2", "sw1"}
    assert sub.number_of_edges() == 2


def test_set_operations_on_node_sequences(anm):
    """Python set operators work on accessor sequences (§5.2.2)."""
    g_in = anm["input"]
    as1 = set(g_in.nodes(asn=1))
    routers = set(g_in.routers())
    assert {n.node_id for n in as1 & routers} == {"r1", "r2"}
    assert {n.node_id for n in as1 | routers} == {"r1", "r2", "r3", "sw1"}


def test_list_comprehension_selection(anm):
    """The paper's design pattern: [n for n in G_in if n.asn == 200]."""
    selected = [n for n in anm["input"] if n.asn == 2]
    assert {n.node_id for n in selected} == {"r3", "s1"}
