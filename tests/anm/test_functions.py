"""Unit tests for split/aggregate/explode/groupby/copy_attr_from (§5.2.4)."""

import networkx as nx
import pytest

from repro.anm import (
    AbstractNetworkModel,
    aggregate_nodes,
    copy_attr_from,
    explode_node,
    groupby,
    neighbors_within,
    split,
    unwrap_graph,
    unwrap_nodes,
    wrap_nodes,
)


@pytest.fixture
def anm():
    return AbstractNetworkModel()


def _chain(overlay, names):
    overlay.add_nodes_from(names)
    overlay.add_edges_from(zip(names, names[1:]))


def test_split_inserts_intermediate_node(anm):
    overlay = anm.add_overlay("ip")
    overlay.add_edge("r1", "r2", ospf_cost=3)
    new_nodes = split(overlay, overlay.edges(), retain=["ospf_cost"])
    assert len(new_nodes) == 1
    mid = new_nodes[0]
    assert not overlay.has_edge("r1", "r2")
    assert overlay.has_edge("r1", mid) and overlay.has_edge(mid, "r2")
    assert overlay.edge("r1", mid).ospf_cost == 3


def test_split_name_prefix(anm):
    overlay = anm.add_overlay("ip")
    overlay.add_edge("a", "b")
    (mid,) = split(overlay, overlay.edges(), id_prefix="cd")
    assert str(mid.node_id).startswith("cd_")


def test_split_many_edges_preserves_node_count_arithmetic(anm):
    overlay = anm.add_overlay("ip")
    _chain(overlay, ["a", "b", "c", "d"])
    before_nodes, before_edges = len(overlay), overlay.number_of_edges()
    split(overlay, overlay.edges())
    assert len(overlay) == before_nodes + before_edges
    assert overlay.number_of_edges() == 2 * before_edges


def test_split_avoids_id_collision(anm):
    overlay = anm.add_overlay("ip")
    overlay.add_node("cd_a_b")  # pre-existing clash
    overlay.add_edge("a", "b")
    (mid,) = split(overlay, overlay.edges(node="a"))
    assert mid.node_id != "cd_a_b"


def test_aggregate_collapses_group(anm):
    overlay = anm.add_overlay("ip")
    _chain(overlay, ["r1", "sw1", "sw2", "r2"])
    survivor = aggregate_nodes(overlay, ["sw1", "sw2"])
    assert survivor.node_id == "sw1"
    assert not overlay.has_node("sw2")
    assert overlay.has_edge("r1", "sw1")
    assert overlay.has_edge("sw1", "r2")


def test_aggregate_keeps_external_edge_attributes(anm):
    overlay = anm.add_overlay("ip")
    overlay.add_edge("r1", "sw1")
    overlay.add_edge("sw2", "r2", speed=100)
    overlay.add_edge("sw1", "sw2")
    aggregate_nodes(overlay, ["sw1", "sw2"])
    assert overlay.edge("sw1", "r2").speed == 100


def test_aggregate_empty_group_returns_none(anm):
    overlay = anm.add_overlay("ip")
    assert aggregate_nodes(overlay, []) is None


def test_aggregate_single_node_is_noop(anm):
    overlay = anm.add_overlay("ip")
    overlay.add_edge("a", "b")
    survivor = aggregate_nodes(overlay, ["a"])
    assert survivor.node_id == "a"
    assert overlay.has_edge("a", "b")


def test_explode_forms_clique_of_neighbors(anm):
    overlay = anm.add_overlay("ospf")
    for leaf in ["r1", "r2", "r3"]:
        overlay.add_edge(leaf, "sw")
    new_edges = explode_node(overlay, "sw")
    assert not overlay.has_node("sw")
    assert len(new_edges) == 3  # triangle
    assert overlay.has_edge("r1", "r2")
    assert overlay.has_edge("r1", "r3")
    assert overlay.has_edge("r2", "r3")


def test_explode_does_not_duplicate_existing_edges(anm):
    overlay = anm.add_overlay("ospf")
    overlay.add_edge("r1", "r2")
    overlay.add_edge("r1", "sw")
    overlay.add_edge("r2", "sw")
    new_edges = explode_node(overlay, "sw")
    assert new_edges == []
    assert overlay.number_of_edges() == 1


def test_explode_retains_attribute_from_incident_edge(anm):
    overlay = anm.add_overlay("ospf")
    overlay.add_edge("r1", "sw", ospf_cost=4)
    overlay.add_edge("r2", "sw", ospf_cost=9)
    explode_node(overlay, "sw", retain=["ospf_cost"])
    assert overlay.edge("r1", "r2").ospf_cost in (4, 9)


def test_groupby_preserves_value_grouping(anm):
    overlay = anm.add_overlay("g")
    overlay.add_node("a", asn=1)
    overlay.add_node("b", asn=2)
    overlay.add_node("c", asn=1)
    groups = groupby("asn", overlay.nodes())
    assert {n.node_id for n in groups[1]} == {"a", "c"}
    assert [n.node_id for n in groups[2]] == ["b"]


def test_groupby_missing_attribute_groups_under_none(anm):
    overlay = anm.add_overlay("g")
    overlay.add_node("a")
    groups = groupby("asn", overlay.nodes())
    assert [n.node_id for n in groups[None]] == ["a"]


def test_copy_attr_from_basic_and_rename(anm):
    src = anm.add_overlay("src")
    src.add_node("r1", ospf_area=3)
    dst = anm.add_overlay("dst", ["r1"])
    copy_attr_from(src, dst, "ospf_area", dst_attr="area")
    assert dst.node("r1").area == 3


def test_copy_attr_from_default_for_missing_nodes(anm):
    src = anm.add_overlay("src")
    src.add_node("r1", x=1)
    dst = anm.add_overlay("dst", ["r1", "r2"])
    copy_attr_from(src, dst, "x", default=0)
    assert dst.node("r1").x == 1
    assert dst.node("r2").x == 0


def test_copy_attr_without_default_leaves_unset(anm):
    src = anm.add_overlay("src")
    src.add_node("r1")
    dst = anm.add_overlay("dst", ["r1"])
    copy_attr_from(src, dst, "missing_attr")
    assert dst.node("r1").missing_attr is None


def test_unwrap_and_wrap_roundtrip(anm):
    overlay = anm.add_overlay("w", ["a", "b"])
    raw = unwrap_graph(overlay)
    assert isinstance(raw, nx.Graph)
    ids = unwrap_nodes(overlay.nodes())
    assert set(ids) == {"a", "b"}
    wrapped = wrap_nodes(overlay, ids)
    assert all(hasattr(node, "node_id") for node in wrapped)


def test_unwrap_graph_enables_networkx_algorithms(anm):
    """The §7.1 pattern: centrality over the unwrapped graph."""
    overlay = anm.add_overlay("c")
    _chain(overlay, ["a", "b", "c"])
    centrality = nx.degree_centrality(unwrap_graph(overlay))
    assert centrality["b"] > centrality["a"]


def test_neighbors_within_attribute(anm):
    overlay = anm.add_overlay("n")
    overlay.add_node("a", asn=1)
    overlay.add_node("b", asn=1)
    overlay.add_node("c", asn=2)
    overlay.add_edge("a", "b")
    overlay.add_edge("a", "c")
    within = neighbors_within(overlay, "a", "asn")
    assert [n.node_id for n in within] == ["b"]
