"""Unit tests for node and edge accessor objects."""

import pytest

from repro.anm import AbstractNetworkModel
from repro.exceptions import NodeNotFoundError


@pytest.fixture
def overlay():
    anm = AbstractNetworkModel()
    g = anm.add_overlay("test")
    g.add_node("r1", asn=1, device_type="router")
    g.add_node("r2", asn=1, device_type="switch")
    g.add_node("r3", asn=2, device_type="server")
    g.add_edge("r1", "r2", ospf_cost=7)
    g.add_edge("r2", "r3")
    return g


def test_attribute_read_write(overlay):
    node = overlay.node("r1")
    assert node.asn == 1
    node.backbone = True
    assert overlay.node("r1").backbone is True


def test_missing_attribute_reads_none(overlay):
    assert overlay.node("r1").never_set is None


def test_get_with_default(overlay):
    assert overlay.node("r1").get("never_set", 42) == 42


def test_set_and_update(overlay):
    node = overlay.node("r1")
    node.set("computed", "value")
    node.update(a=1, b=2)
    assert node.computed == "value"
    assert node.a == 1 and node.b == 2


def test_attributes_returns_copy(overlay):
    node = overlay.node("r1")
    attrs = node.attributes()
    attrs["asn"] = 999
    assert overlay.node("r1").asn == 1


def test_two_accessors_same_node_share_state(overlay):
    first = overlay.node("r1")
    second = overlay.node("r1")
    first.flag = "set"
    assert second.flag == "set"


def test_equality_and_hash_by_node_id(overlay):
    assert overlay.node("r1") == overlay.node("r1")
    assert overlay.node("r1") == "r1"
    assert overlay.node("r1") != overlay.node("r2")
    assert len({overlay.node("r1"), overlay.node("r1")}) == 1


def test_cross_overlay_lookup_by_accessor(overlay):
    anm = overlay.anm
    other = anm.add_overlay("other", ["r1"])
    node = other.node(overlay.node("r1"))
    assert node.node_id == "r1"
    assert node.overlay.overlay_id == "other"


def test_ordering_is_by_string_id(overlay):
    nodes = sorted([overlay.node("r2"), overlay.node("r1")])
    assert [n.node_id for n in nodes] == ["r1", "r2"]


def test_device_type_predicates(overlay):
    assert overlay.node("r1").is_router()
    assert overlay.node("r2").is_switch()
    assert overlay.node("r3").is_server()
    assert overlay.node("r3").is_device("server")


def test_label_falls_back_to_id(overlay):
    assert overlay.node("r1").label == "r1"
    overlay.node("r1").set("label", "Router One")
    assert overlay.node("r1").label == "Router One"


def test_degree_and_neighbors(overlay):
    assert overlay.node("r2").degree == 2
    neighbor_ids = {n.node_id for n in overlay.node("r2").neighbors()}
    assert neighbor_ids == {"r1", "r3"}


def test_neighbors_with_filter(overlay):
    routers = overlay.node("r2").neighbors(device_type="router")
    assert [n.node_id for n in routers] == ["r1"]


def test_accessor_for_removed_node_raises(overlay):
    node = overlay.node("r3")
    overlay.remove_node("r3")
    with pytest.raises(NodeNotFoundError):
        _ = node.asn


def test_edge_attribute_access(overlay):
    edge = overlay.edge("r1", "r2")
    assert edge.ospf_cost == 7
    edge.area = 0
    assert overlay.edge("r1", "r2").area == 0


def test_edge_endpoints(overlay):
    edge = overlay.edge("r1", "r2")
    assert edge.src.node_id == "r1"
    assert edge.dst.node_id == "r2"
    assert tuple(n.node_id for n in edge) == ("r1", "r2")


def test_edge_other_end(overlay):
    edge = overlay.edge("r1", "r2")
    assert edge.other_end("r1").node_id == "r2"
    assert edge.other_end(overlay.node("r2")).node_id == "r1"
    with pytest.raises(NodeNotFoundError):
        edge.other_end("r3")


def test_undirected_edge_equality_ignores_orientation(overlay):
    forward = overlay.edge("r1", "r2")
    backward = overlay.edge("r2", "r1")
    assert forward == backward
    assert hash(forward) == hash(backward)


def test_directed_edges_distinct():
    anm = AbstractNetworkModel()
    g = anm.add_overlay("sessions", directed=True)
    g.add_edge("a", "b", bidirected=True)
    assert g.edge("a", "b") != g.edge("b", "a")


def test_edge_get_and_attributes(overlay):
    edge = overlay.edge("r1", "r2")
    assert edge.get("ospf_cost") == 7
    assert edge.get("missing", "dflt") == "dflt"
    assert edge.attributes()["ospf_cost"] == 7


def test_repr_forms(overlay):
    assert "r1" in repr(overlay.node("r1"))
    assert "--" in repr(overlay.edge("r1", "r2"))
