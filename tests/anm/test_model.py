"""Unit tests for the Abstract Network Model container."""

import networkx as nx
import pytest

from repro.anm import AbstractNetworkModel
from repro.exceptions import OverlayNotFoundError


def test_default_overlays_present():
    anm = AbstractNetworkModel()
    assert anm.has_overlay("input")
    assert anm.has_overlay("phy")
    assert set(anm.overlays()) == {"input", "phy"}


def test_getitem_returns_overlay_wrapper():
    anm = AbstractNetworkModel()
    overlay = anm["phy"]
    assert overlay.overlay_id == "phy"
    assert len(overlay) == 0


def test_add_overlay_registers_and_returns():
    anm = AbstractNetworkModel()
    g_ospf = anm.add_overlay("ospf")
    assert anm.has_overlay("ospf")
    assert g_ospf.overlay_id == "ospf"
    assert "ospf" in anm


def test_add_overlay_directed():
    anm = AbstractNetworkModel()
    g_ibgp = anm.add_overlay("ibgp", directed=True)
    assert g_ibgp.is_directed()


def test_add_overlay_multi_edge():
    anm = AbstractNetworkModel()
    overlay = anm.add_overlay("multi", multi_edge=True)
    assert overlay.is_multigraph()


def test_add_overlay_directed_multigraph():
    anm = AbstractNetworkModel()
    overlay = anm.add_overlay("dm", directed=True, multi_edge=True)
    assert overlay.is_directed() and overlay.is_multigraph()


def test_add_overlay_from_existing_graph_copies():
    source = nx.Graph()
    source.add_edge("a", "b", weight=3)
    anm = AbstractNetworkModel()
    overlay = anm.add_overlay("input", graph=source)
    source.add_edge("b", "c")  # must not leak into the overlay
    assert len(overlay) == 2
    assert overlay.edge("a", "b").weight == 3


def test_add_overlay_from_graph_with_directed_promotion():
    source = nx.Graph()
    source.add_edge("a", "b")
    anm = AbstractNetworkModel()
    overlay = anm.add_overlay("sessions", graph=source, directed=True)
    assert overlay.is_directed()
    # The undirected edge becomes two directed edges.
    assert overlay.number_of_edges() == 2


def test_add_overlay_with_seed_nodes_and_retain():
    anm = AbstractNetworkModel()
    g_in = anm.add_overlay("input")
    g_in.add_node("r1", asn=5, device_type="router", extra="x")
    overlay = anm.add_overlay("ospf", g_in.nodes(), retain=["asn"])
    node = overlay.node("r1")
    assert node.asn == 5
    assert node.extra is None  # not retained


def test_remove_overlay():
    anm = AbstractNetworkModel()
    anm.add_overlay("tmp")
    anm.remove_overlay("tmp")
    assert not anm.has_overlay("tmp")


def test_remove_missing_overlay_raises():
    anm = AbstractNetworkModel()
    with pytest.raises(OverlayNotFoundError):
        anm.remove_overlay("nope")


def test_getitem_missing_overlay_raises():
    anm = AbstractNetworkModel()
    with pytest.raises(OverlayNotFoundError):
        anm["nope"]


def test_replacing_overlay_discards_old_content():
    anm = AbstractNetworkModel()
    first = anm.add_overlay("ospf")
    first.add_node("r1")
    second = anm.add_overlay("ospf")
    assert len(second) == 0


def test_iteration_yields_all_overlays():
    anm = AbstractNetworkModel()
    anm.add_overlay("a")
    ids = [overlay.overlay_id for overlay in anm]
    assert ids == ["input", "phy", "a"]


def test_raw_graph_access():
    anm = AbstractNetworkModel()
    raw = anm.raw_graph("phy")
    assert isinstance(raw, nx.Graph)
    with pytest.raises(OverlayNotFoundError):
        anm.raw_graph("missing")


def test_overlay_wrappers_share_underlying_graph():
    anm = AbstractNetworkModel()
    anm["phy"].add_node("r1", asn=1)
    # A fresh wrapper over the same overlay sees the node.
    assert anm["phy"].node("r1").asn == 1
