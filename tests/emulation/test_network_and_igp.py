"""Unit tests for the emulated fabric and the IGP engine."""

import ipaddress

import pytest

from repro.emulation import EmulatedNetwork, IgpState
from repro.emulation.intent import (
    DeviceIntent,
    InterfaceIntent,
    LabIntent,
    OspfIntent,
)
from repro.exceptions import EmulationError


def _router(name, interfaces, ospf_networks=None, costs=None):
    device = DeviceIntent(name=name, vendor="quagga", hostname=name)
    device.interfaces = interfaces
    if ospf_networks is not None:
        device.ospf = OspfIntent(
            networks=[(ipaddress.ip_network(net), 0) for net in ospf_networks],
            interface_costs=costs or {},
        )
        for interface in interfaces:
            if interface.name in (costs or {}):
                interface.ospf_cost = costs[interface.name]
    return device


def _iface(name, ip, prefixlen, loopback=False):
    return InterfaceIntent(
        name=name,
        ip_address=ipaddress.ip_address(ip),
        prefixlen=prefixlen,
        is_loopback=loopback,
    )


def _line_lab(costs=(1, 1)):
    """r1 -- r2 -- r3 with per-hop OSPF costs."""
    lab = LabIntent(platform="netkit")
    lab.devices["r1"] = _router(
        "r1",
        [_iface("lo", "192.168.0.1", 32, loopback=True), _iface("eth0", "10.0.0.1", 30)],
        ospf_networks=["10.0.0.0/30", "192.168.0.1/32"],
        costs={"eth0": costs[0]},
    )
    lab.devices["r2"] = _router(
        "r2",
        [
            _iface("lo", "192.168.0.2", 32, loopback=True),
            _iface("eth0", "10.0.0.2", 30),
            _iface("eth1", "10.0.0.5", 30),
        ],
        ospf_networks=["10.0.0.0/30", "10.0.0.4/30", "192.168.0.2/32"],
        costs={"eth0": costs[0], "eth1": costs[1]},
    )
    lab.devices["r3"] = _router(
        "r3",
        [_iface("lo", "192.168.0.3", 32, loopback=True), _iface("eth0", "10.0.0.6", 30)],
        ospf_networks=["10.0.0.4/30", "192.168.0.3/32"],
        costs={"eth0": costs[1]},
    )
    return lab


class TestEmulatedNetwork:
    def test_segments_by_subnet(self):
        network = EmulatedNetwork(_line_lab())
        assert len(network.segments) == 2
        assert sorted(network.neighbors_of("r2")) == ["r1", "r3"]

    def test_address_ownership(self):
        network = EmulatedNetwork(_line_lab())
        assert network.owner_of("10.0.0.1") == "r1"
        assert network.owner_of("192.168.0.3") == "r3"
        assert network.owner_of("172.31.0.1") is None

    def test_duplicate_address_rejected(self):
        lab = _line_lab()
        lab.devices["r3"].interfaces[1].ip_address = ipaddress.ip_address("10.0.0.1")
        with pytest.raises(EmulationError, match="duplicate"):
            EmulatedNetwork(lab)

    def test_empty_lab_rejected(self):
        with pytest.raises(EmulationError, match="no machines"):
            EmulatedNetwork(LabIntent(platform="netkit"))

    def test_shared_segments_and_addresses(self):
        network = EmulatedNetwork(_line_lab())
        segments = network.shared_segments("r1", "r2")
        assert len(segments) == 1
        assert str(network.address_on_segment_with("r2", "r1")) == "10.0.0.2"

    def test_connected_networks(self):
        network = EmulatedNetwork(_line_lab())
        nets = {str(n) for n in network.connected_networks("r2")}
        assert nets == {"10.0.0.0/30", "10.0.0.4/30", "192.168.0.2/32"}

    def test_management_interfaces_excluded(self):
        lab = _line_lab()
        lab.devices["r1"].interfaces.append(
            InterfaceIntent(
                name="eth9",
                ip_address=ipaddress.ip_address("172.16.0.2"),
                prefixlen=16,
                is_management=True,
            )
        )
        network = EmulatedNetwork(lab)
        assert network.owner_of("172.16.0.2") is None

    def test_unknown_machine_raises(self):
        network = EmulatedNetwork(_line_lab())
        with pytest.raises(EmulationError):
            network.device("ghost")


class TestIgpEngine:
    def test_adjacency_requires_mutual_advertisement(self):
        lab = _line_lab()
        # r3 stops advertising the shared subnet: no adjacency with r2.
        lab.devices["r3"].ospf.networks = [
            (ipaddress.ip_network("192.168.0.3/32"), 0)
        ]
        igp = IgpState(EmulatedNetwork(lab))
        assert igp.neighbors("r3") == []
        assert [n for n, _ in igp.neighbors("r2")] == ["r1"]

    def test_costs_directional(self):
        lab = _line_lab(costs=(5, 7))
        igp = IgpState(EmulatedNetwork(lab))
        assert dict(igp.neighbors("r1"))["r2"] == 5
        assert dict(igp.neighbors("r2"))["r3"] == 7

    def test_spf_distances(self):
        igp = IgpState(EmulatedNetwork(_line_lab(costs=(5, 7))))
        assert igp.distance("r1", "r3") == 12
        assert igp.distance("r3", "r1") == 12
        assert igp.distance("r1", "r1") == 0

    def test_routes_to_loopbacks(self):
        igp = IgpState(EmulatedNetwork(_line_lab(costs=(5, 7))))
        routes = igp.routes("r1")
        r3_loopback = ipaddress.ip_network("192.168.0.3/32")
        assert routes[r3_loopback].next_hop == "r2"
        assert routes[r3_loopback].metric == 12

    def test_routes_exclude_connected(self):
        igp = IgpState(EmulatedNetwork(_line_lab()))
        routes = igp.routes("r1")
        assert ipaddress.ip_network("10.0.0.0/30") not in routes
        assert ipaddress.ip_network("10.0.0.4/30") in routes

    def test_cost_to_address(self):
        igp = IgpState(EmulatedNetwork(_line_lab(costs=(5, 7))))
        assert igp.cost_to_address("r1", "10.0.0.2") == 0  # connected
        assert igp.cost_to_address("r1", "192.168.0.1") == 0  # own
        assert igp.cost_to_address("r1", "192.168.0.3") == 12
        assert igp.cost_to_address("r1", "203.0.113.1") is None

    def test_equal_cost_tie_breaks_deterministically(self):
        """A square: two equal paths; the tie must break identically."""
        lab = LabIntent(platform="netkit")
        # square a-b-d and a-c-d, all cost 1
        links = {
            ("a", "b"): "10.0.0.0/30",
            ("a", "c"): "10.0.0.4/30",
            ("b", "d"): "10.0.0.8/30",
            ("c", "d"): "10.0.0.12/30",
        }
        interfaces: dict[str, list] = {name: [] for name in "abcd"}
        hosts = {name: "192.168.0.%d" % (i + 1) for i, name in enumerate("abcd")}
        counter = {name: 0 for name in "abcd"}
        for (left, right), net in links.items():
            network_obj = ipaddress.ip_network(net)
            addresses = list(network_obj.hosts())
            for index, name in enumerate((left, right)):
                interfaces[name].append(
                    _iface("eth%d" % counter[name], str(addresses[index]), 30)
                )
                counter[name] += 1
        for name in "abcd":
            interfaces[name].append(_iface("lo", hosts[name], 32, loopback=True))
            advertised = [
                net for (l, r), net in links.items() if name in (l, r)
            ] + ["%s/32" % hosts[name]]
            lab.devices[name] = _router(name, interfaces[name], ospf_networks=advertised)
        igp_one = IgpState(EmulatedNetwork(lab))
        igp_two = IgpState(EmulatedNetwork(lab))
        route_one = igp_one.routes("a")[ipaddress.ip_network("192.168.0.4/32")]
        route_two = igp_two.routes("a")[ipaddress.ip_network("192.168.0.4/32")]
        assert route_one.next_hop == route_two.next_hop
        assert igp_one.distance("a", "d") == 2
