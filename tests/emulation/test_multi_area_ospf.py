"""Multi-area OSPF: ABRs, backbone transit, and area isolation.

Topology (one AS, three areas)::

    r1a ── abr1 ══ abr2 ── r2a        area1  |  area0  |  area2
     │                      │
    r1b                    r2b

r1a/r1b are internal to area 1, r2a/r2b to area 2; abr1/abr2 are the
border routers, connected by a backbone link.  Inter-area traffic must
transit the backbone; the metrics follow the summary arithmetic.
"""

import ipaddress

import networkx as nx
import pytest

from repro.compilers import platform_compiler
from repro.design import design_network
from repro.emulation import EmulatedLab
from repro.loader import normalise
from repro.render import render_nidb


def _three_area_topology():
    graph = nx.Graph()
    nodes = {
        "abr1": 0,
        "abr2": 0,
        "r1a": 1,
        "r1b": 1,
        "r2a": 2,
        "r2b": 2,
    }
    for name, area in nodes.items():
        graph.add_node(name, asn=1, device_type="router", ospf_area=area)
    graph.add_edge("abr1", "abr2", ospf_cost=5)   # backbone (area 0)
    graph.add_edge("r1a", "abr1", ospf_cost=2)    # area 1
    graph.add_edge("r1a", "r1b", ospf_cost=3)     # area 1
    graph.add_edge("r2a", "abr2", ospf_cost=2)    # area 2
    graph.add_edge("r2a", "r2b", ospf_cost=3)     # area 2
    return normalise(graph)


@pytest.fixture(scope="module")
def lab(tmp_path_factory):
    anm = design_network(_three_area_topology())
    nidb = platform_compiler("netkit", anm).compile()
    rendered = render_nidb(nidb, tmp_path_factory.mktemp("areas"))
    return EmulatedLab.boot(rendered.lab_dir)


def test_design_assigns_link_areas(tmp_path):
    anm = design_network(_three_area_topology())
    g_ospf = anm["ospf"]
    assert g_ospf.edge("abr1", "abr2").area == 0
    assert g_ospf.edge("r1a", "abr1").area == 1
    assert g_ospf.edge("r2a", "abr2").area == 2


def test_explicit_edge_area_override():
    graph = _three_area_topology()
    graph.edges["r1a", "r1b"]["ospf_area"] = 7
    anm = design_network(graph)
    assert anm["ospf"].edge("r1a", "r1b").area == 7


def test_rendered_configs_carry_areas(lab, tmp_path_factory):
    device = lab.network.device("abr1")
    areas = {area for _, area in device.ospf.networks}
    assert 0 in areas and 1 in areas  # backbone link + area-1 link


def test_engine_area_partition(lab):
    igp = lab.igp
    assert igp.areas() == [0, 1, 2]
    assert igp.neighbors("abr1", area=0) == [("abr2", 5)]
    assert igp.neighbors("abr1", area=1) == [("r1a", 2)]
    assert igp.neighbors("r1b", area=1) == [("r1a", 3)]
    assert igp.neighbors("r1b", area=0) == []


def test_abr_identification(lab):
    # Only the directly attached border router belongs to each area.
    assert lab.igp.area_border_routers(1) == ["abr1"]
    assert lab.igp.area_border_routers(2) == ["abr2"]
    assert set(lab.igp.area_border_routers(0)) == {"abr1", "abr2"}


def test_intra_area_metric(lab):
    assert lab.igp.distance("r1b", "r1a") == 3
    assert lab.igp.distance("r1a", "abr1") == 2


def test_inter_area_metric_composes_through_backbone(lab):
    # r1b -> r2b: 3 (to r1a) + 2 (to abr1) + 5 (backbone) + 2 + 3 = 15
    assert lab.igp.distance("r1b", "r2b") == 15
    assert lab.igp.distance("r1a", "r2a") == 9


def test_inter_area_routes_marked(lab):
    routes = lab.igp.routes("r1b")
    r2b_loopback = ipaddress.ip_network(
        "%s/32" % lab.network.device("r2b").loopback
    )
    route = routes[r2b_loopback]
    assert route.route_type == "inter"
    assert route.metric == 15
    assert route.next_hop == "r1a"


def test_intra_area_routes_marked(lab):
    routes = lab.igp.routes("r1b")
    r1a_loopback = ipaddress.ip_network(
        "%s/32" % lab.network.device("r1a").loopback
    )
    assert routes[r1a_loopback].route_type == "intra"


def test_forwarding_transits_backbone(lab):
    destination = lab.network.device("r2b").loopback
    trace = lab.dataplane.trace("r1b", destination)
    assert trace.reached
    assert trace.machines() == ["r1a", "abr1", "abr2", "r2a", "r2b"]


def test_area_mismatch_means_no_adjacency():
    """Two routers advertising the same subnet in different areas do
    not become adjacent — the real OSPF behaviour."""
    graph = nx.Graph()
    graph.add_node("a", asn=1, device_type="router", ospf_area=1)
    graph.add_node("b", asn=1, device_type="router", ospf_area=2)
    graph.add_edge("a", "b")
    anm = design_network(normalise(graph))
    nidb = platform_compiler("netkit", anm).compile()
    # Force the two sides into different areas at the interface level.
    a_links = nidb.node("a").ospf.ospf_links
    for link in a_links:
        if link.interface != "lo":
            link.area = 1
    import tempfile

    from repro.render import render_nidb as render

    rendered = render(nidb, tempfile.mkdtemp())
    lab = EmulatedLab.boot(rendered.lab_dir)
    assert lab.igp.neighbors("a") == []


def test_backbone_required_for_inter_area():
    """Areas 1 and 2 with no backbone link between the ABRs: isolated."""
    graph = _three_area_topology()
    graph.remove_edge("abr1", "abr2")
    anm = design_network(graph)
    nidb = platform_compiler("netkit", anm).compile()
    import tempfile

    rendered = render_nidb(nidb, tempfile.mkdtemp())
    lab = EmulatedLab.boot(rendered.lab_dir)
    assert lab.igp.distance("r1a", "r2a") is None
    assert not lab.dataplane.ping(
        "r1a", lab.network.device("r2a").loopback
    )


def test_single_area_labs_unchanged(si_lab):
    """The common all-area-0 case keeps its behaviour (regression)."""
    assert si_lab.igp.areas() == [0]
    assert si_lab.igp.distance("as100r1", "as100r2") == 1


def test_junosphere_multi_area_pipeline(tmp_path):
    """The JunOS template groups OSPF interfaces by area; the parsed
    lab reproduces the same multi-area routing as the Quagga one."""
    anm = design_network(_three_area_topology())
    nidb = platform_compiler("junosphere", anm).compile()
    rendered = render_nidb(nidb, tmp_path)
    import os

    text = open(os.path.join(rendered.lab_dir, "configs", "abr1.conf")).read()
    assert "area 0 {" in text and "area 1 {" in text
    lab = EmulatedLab.boot(rendered.lab_dir)
    assert lab.igp.areas() == [0, 1, 2]
    assert lab.igp.distance("r1b", "r2b") == 15
    trace = lab.dataplane.trace("r1b", lab.network.device("r2b").loopback)
    assert trace.machines() == ["r1a", "abr1", "abr2", "r2a", "r2b"]


def test_dynagen_multi_area_pipeline(tmp_path):
    anm = design_network(_three_area_topology())
    nidb = platform_compiler("dynagen", anm).compile()
    rendered = render_nidb(nidb, tmp_path)
    lab = EmulatedLab.boot(rendered.lab_dir)
    assert lab.igp.areas() == [0, 1, 2]
    assert lab.igp.distance("r1a", "r2a") == 9


def test_partitioned_area_heals_through_backbone(tmp_path):
    """Two fragments of area 1, each behind its own ABR: traffic between
    them transits area 0, as real OSPF inter-area routing does."""
    graph = nx.Graph()
    for name, area in {
        "abr1": 0, "abr2": 0, "f1": 1, "f2": 1,
    }.items():
        graph.add_node(name, asn=1, device_type="router", ospf_area=area)
    graph.add_edge("abr1", "abr2", ospf_cost=5)  # backbone
    graph.add_edge("f1", "abr1", ospf_cost=2)    # fragment one
    graph.add_edge("f2", "abr2", ospf_cost=2)    # fragment two
    anm = design_network(normalise(graph))
    nidb = platform_compiler("netkit", anm).compile()
    rendered = render_nidb(nidb, tmp_path)
    lab = EmulatedLab.boot(rendered.lab_dir)
    # f1 and f2 share area 1 but have no intra-area path.
    assert lab.igp.neighbors("f1", area=1) == [("abr1", 2)]
    assert lab.igp.distance("f1", "f2") == 9  # 2 + 5 + 2
    trace = lab.dataplane.trace("f1", lab.network.device("f2").loopback)
    assert trace.reached
    assert trace.machines() == ["abr1", "abr2", "f2"]
