"""Unit tests for what-if failure injection (§8)."""

import pytest

from repro.emulation import (
    EmulatedLab,
    compare_reachability,
    fail_links,
    fail_node,
    reachability_matrix,
)
from repro.exceptions import EmulationError


@pytest.fixture(scope="module")
def lab(tmp_path_factory):
    from repro.compilers import platform_compiler
    from repro.design import design_network
    from repro.loader import small_internet
    from repro.render import render_nidb

    anm = design_network(small_internet())
    nidb = platform_compiler("netkit", anm).compile()
    rendered = render_nidb(nidb, tmp_path_factory.mktemp("whatif"))
    return EmulatedLab.boot(rendered.lab_dir)


def test_baseline_full_reachability(lab):
    matrix = reachability_matrix(lab)
    assert matrix and all(matrix.values())


def test_fail_intra_as_link_reroutes(lab):
    """AS100 is a triangle: one internal link down, traffic reroutes."""
    degraded = fail_links(lab, [("as100r1", "as100r2")])
    assert degraded.converged
    loopback = degraded.network.device("as100r2").loopback
    trace = degraded.dataplane.trace("as100r1", loopback)
    assert trace.reached
    assert trace.machines() == ["as100r3", "as100r2"]  # around the triangle


def test_fail_link_does_not_mutate_original(lab):
    fail_links(lab, [("as100r1", "as100r2")])
    assert lab.network.shared_segments("as100r1", "as100r2")
    loopback = lab.network.device("as100r2").loopback
    assert lab.dataplane.trace("as100r1", loopback).machines() == ["as100r2"]


def test_fail_cut_link_partitions(lab):
    """as100r3 -- as200r1 is AS200's only non-transit southern path;
    cutting both of AS200's links isolates it."""
    degraded = fail_links(lab, [("as100r3", "as200r1"), ("as200r1", "as300r4")])
    loopback = degraded.network.device("as200r1").loopback
    assert not degraded.dataplane.ping("as1r1", loopback)


def test_fail_missing_link_raises(lab):
    with pytest.raises(EmulationError, match="no link"):
        fail_links(lab, [("as100r1", "as300r1")])


def test_fail_node_removes_machine(lab):
    degraded = fail_node(lab, "as1r1")
    assert "as1r1" not in degraded.network.machines
    assert len(degraded.network) == 13


def test_fail_transit_node_network_survives(lab):
    """The lab is dual-homed everywhere: losing the transit hub as1r1
    leaves every remaining pair reachable via the southern paths."""
    degraded = fail_node(lab, "as1r1")
    matrix = reachability_matrix(degraded)
    assert all(matrix.values())
    # And routes really did move: as20r1 now reaches AS30 around the
    # southern ring instead of through as1r1.
    loopback = degraded.network.device("as30r1").loopback
    trace = degraded.dataplane.trace("as20r1", loopback)
    assert trace.reached
    assert "as300r1" in trace.machines()


def test_fail_unknown_node_raises(lab):
    with pytest.raises(EmulationError, match="no machine"):
        fail_node(lab, "ghost")


def test_compare_reachability_partitions(lab):
    """Cut both of AS30's uplinks: it drops out of the matrix deltas."""
    before = reachability_matrix(lab, ["as20r1", "as30r1", "as100r1"])
    degraded = fail_links(lab, [("as1r1", "as30r1"), ("as30r1", "as300r1")])
    after = reachability_matrix(degraded, ["as20r1", "as30r1", "as100r1"])
    delta = compare_reachability(before, after)
    assert ("as20r1", "as30r1") in delta["lost"]
    assert ("as30r1", "as100r1") in delta["lost"]
    assert ("as20r1", "as100r1") in delta["kept"]
    assert delta["gained"] == set()
