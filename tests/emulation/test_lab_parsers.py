"""Unit tests for the four platform lab parsers boot path."""

import ipaddress
import os

import pytest

from repro.compilers import platform_compiler
from repro.design import design_network
from repro.emulation.parsing import (
    parse_bind_zone,
    parse_cbgp_lab,
    parse_dynagen_lab,
    parse_junos_config,
    parse_junosphere_lab,
    parse_lab_conf,
    parse_netkit_lab,
    parse_rpki_conf,
    parse_startup,
)
from repro.exceptions import ConfigParseError
from repro.loader import small_internet
from repro.render import render_nidb


class TestLabConf:
    def test_wiring_parse(self):
        wiring = parse_lab_conf("r1[0]=cd_a\nr1[1]=cd_b\nr2[0]=cd_a\n")
        assert wiring == {"r1": {0: "cd_a", 1: "cd_b"}, "r2": {0: "cd_a"}}

    def test_metadata_lines_skipped(self):
        wiring = parse_lab_conf('LAB_DESCRIPTION="x"\nLAB_VERSION=1.0\nr1[0]=cd\n')
        assert wiring == {"r1": {0: "cd"}}

    def test_bad_line_raises(self):
        with pytest.raises(ConfigParseError):
            parse_lab_conf("r1[zero]=cd\n")


class TestStartup:
    def test_interfaces_and_loopback(self):
        text = (
            "/sbin/ifconfig lo 127.0.0.1 up\n"
            "/sbin/ifconfig lo:1 192.168.0.1 netmask 255.255.255.255 up\n"
            "/sbin/ifconfig eth0 10.0.0.1 netmask 255.255.255.252 up\n"
            "/sbin/ifconfig eth1 172.16.0.5 netmask 255.255.0.0 up\n"
        )
        interfaces = parse_startup(text, "r1")
        by_name = {i.name: i for i in interfaces}
        assert by_name["lo"].is_loopback
        assert str(by_name["lo"].ip_address) == "192.168.0.1"
        assert by_name["eth0"].prefixlen == 30
        assert by_name["eth1"].is_management  # TAP block

    def test_non_ifconfig_lines_ignored(self):
        assert parse_startup("/etc/init.d/zebra start\n", "r1") == []


class TestBindZone:
    def test_forward_records(self):
        zone = parse_bind_zone(
            "$TTL 3600\n@ IN SOA ns.as1.lab. admin.as1.lab. ( 1 3600 900 604800 86400 )\n"
            "@ IN NS ns.as1.lab.\nns IN A 192.168.0.1\nr1 IN A 192.168.0.1\n"
        )
        assert zone.origin == "as1.lab"
        assert zone.records["r1"] == "192.168.0.1"

    def test_ptr_records(self):
        zone = parse_bind_zone(
            "@ IN SOA ns.as1.lab. admin. ( 1 1 1 1 1 )\n"
            "1.0.168.192.in-addr.arpa. IN PTR r1.as1.lab.\n"
        )
        assert zone.ptr_records == {"1.0.168.192.in-addr.arpa": "r1.as1.lab"}


def test_parse_rpki_conf_accumulates_lists():
    config = parse_rpki_conf(
        "role = ca\nresource = 10.0.0.0/8\nresource = 192.168.0.0/16\n"
        "roa = 10.0.0.0/8 asn 1 max-length 24\n"
    )
    assert config["role"] == "ca"
    assert len(config["resources"]) == 2
    assert len(config["roas"]) == 1


@pytest.fixture(scope="module")
def rendered(tmp_path_factory):
    out = {}
    for platform in ("netkit", "dynagen", "junosphere", "cbgp"):
        anm = design_network(small_internet())
        nidb = platform_compiler(platform, anm).compile()
        out[platform] = render_nidb(nidb, tmp_path_factory.mktemp("p_%s" % platform))
    return out


class TestNetkitLabParse:
    def test_all_machines_found(self, rendered):
        lab = parse_netkit_lab(rendered["netkit"].lab_dir)
        assert len(lab.devices) == 14
        assert lab.platform == "netkit"

    def test_device_intent_complete(self, rendered):
        lab = parse_netkit_lab(rendered["netkit"].lab_dir)
        device = lab.devices["as100r1"]
        assert device.hostname == "as100r1"
        assert device.loopback is not None
        assert device.ospf is not None and device.bgp is not None
        assert device.bgp.asn == 100
        physical = [i for i in device.interfaces if not i.is_loopback and not i.is_management]
        assert len(physical) == 3
        assert all(i.collision_domain for i in physical)

    def test_dns_intent_loaded(self, rendered):
        lab = parse_netkit_lab(rendered["netkit"].lab_dir)
        server = lab.devices["as100r1"]
        assert server.dns.is_server
        assert server.dns.resolver is not None
        client = lab.devices["as100r2"]
        assert client.dns.resolver is not None
        assert not client.dns.is_server

    def test_missing_lab_conf_raises(self, tmp_path):
        with pytest.raises(ConfigParseError, match="lab.conf"):
            parse_netkit_lab(tmp_path)


class TestDynagenLabParse:
    def test_all_routers_found(self, rendered):
        lab = parse_dynagen_lab(rendered["dynagen"].lab_dir)
        assert len(lab.devices) == 14
        device = lab.devices["as100r1"]
        assert device.vendor == "ios"
        assert device.loopback is not None
        assert device.bgp.asn == 100

    def test_wildcard_networks_parsed(self, rendered):
        lab = parse_dynagen_lab(rendered["dynagen"].lab_dir)
        device = lab.devices["as100r1"]
        prefixes = {net.prefixlen for net, _ in device.ospf.networks}
        assert 30 in prefixes and 32 in prefixes

    def test_missing_configs_raises(self, tmp_path):
        with pytest.raises(ConfigParseError):
            parse_dynagen_lab(tmp_path)


class TestJunosphereLabParse:
    def test_all_routers_found(self, rendered):
        lab = parse_junosphere_lab(rendered["junosphere"].lab_dir)
        assert len(lab.devices) == 14
        device = lab.devices["as100r1"]
        assert device.vendor == "junos"
        assert device.bgp.asn == 100
        assert device.ospf.interface_costs

    def test_vmm_wiring_applied(self, rendered):
        lab = parse_junosphere_lab(rendered["junosphere"].lab_dir)
        device = lab.devices["as100r1"]
        physical = [i for i in device.interfaces if not i.is_loopback]
        assert all(i.collision_domain for i in physical)

    def test_brace_parser_handles_comments(self):
        device = parse_junos_config(
            "/* header */\nsystem {\n    host-name r9;\n}\n", "r9"
        )
        assert device.hostname == "r9"


class TestCbgpLabParse:
    def test_nodes_links_sessions(self, rendered):
        lab = parse_cbgp_lab(rendered["cbgp"].lab_dir)
        assert len(lab.devices) == 14
        sample = next(iter(lab.devices.values()))
        assert sample.vendor == "cbgp"
        assert sample.igp_domain is not None
        assert sample.bgp is not None

    def test_loopback_is_node_id(self, rendered):
        lab = parse_cbgp_lab(rendered["cbgp"].lab_dir)
        for name, device in lab.devices.items():
            assert str(device.loopback) == name

    def test_missing_script_raises(self, tmp_path):
        with pytest.raises(ConfigParseError):
            parse_cbgp_lab(tmp_path)
