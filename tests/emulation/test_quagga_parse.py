"""Unit tests for parsing Quagga daemon configurations back into intent."""

import ipaddress

import pytest

from repro.emulation.parsing import parse_bgpd, parse_hostname, parse_isisd, parse_ospfd
from repro.exceptions import ConfigParseError

OSPFD = """\
hostname r1
password 1234
!
interface eth0
 ip ospf cost 5
!
interface eth1
 ip ospf cost 20
!
router ospf
 ospf router-id 192.168.0.1
 network 10.0.0.0/30 area 0
 network 10.0.0.4/30 area 1
 network 192.168.0.1/32 area 0
!
"""

BGPD = """\
hostname r1
password 1234
!
router bgp 100
 bgp router-id 192.168.0.1
 network 10.0.0.0/16
 neighbor 10.1.0.2 remote-as 20
 neighbor 10.1.0.2 description eBGP to r9 (AS 20)
 neighbor 10.1.0.2 route-map rm-in-r9 in
 neighbor 192.168.0.2 remote-as 100
 neighbor 192.168.0.2 update-source lo
 neighbor 192.168.0.2 next-hop-self
 neighbor 192.168.0.3 remote-as 100
 neighbor 192.168.0.3 route-reflector-client
!
route-map rm-in-r9 permit 10
 set local-preference 200
!
"""


class TestOspfd:
    def test_interface_costs(self):
        intent = parse_ospfd(OSPFD)
        assert intent.interface_costs == {"eth0": 5, "eth1": 20}

    def test_router_id(self):
        assert parse_ospfd(OSPFD).router_id == "192.168.0.1"

    def test_networks_with_areas(self):
        intent = parse_ospfd(OSPFD)
        nets = {(str(net), area) for net, area in intent.networks}
        assert nets == {
            ("10.0.0.0/30", 0),
            ("10.0.0.4/30", 1),
            ("192.168.0.1/32", 0),
        }

    def test_advertises(self):
        intent = parse_ospfd(OSPFD)
        assert intent.advertises(ipaddress.ip_network("10.0.0.0/30"))
        assert not intent.advertises(ipaddress.ip_network("10.9.0.0/30"))

    def test_cost_outside_interface_raises(self):
        with pytest.raises(ConfigParseError):
            parse_ospfd("ip ospf cost 5\n")

    def test_bad_network_statement_raises(self):
        with pytest.raises(ConfigParseError):
            parse_ospfd("router ospf\n network banana area x\n")


class TestBgpd:
    def test_asn_and_router_id(self):
        intent = parse_bgpd(BGPD)
        assert intent.asn == 100
        assert intent.router_id == "192.168.0.1"

    def test_networks(self):
        intent = parse_bgpd(BGPD)
        assert [str(n) for n in intent.networks] == ["10.0.0.0/16"]

    def test_neighbor_attributes(self):
        intent = parse_bgpd(BGPD)
        ebgp = intent.neighbor_for("10.1.0.2")
        assert ebgp.remote_asn == 20
        assert ebgp.local_pref_in == 200
        assert "eBGP to r9" in ebgp.description
        ibgp = intent.neighbor_for("192.168.0.2")
        assert ibgp.update_source == "lo"
        assert ibgp.next_hop_self is True
        client = intent.neighbor_for("192.168.0.3")
        assert client.rr_client is True

    def test_route_map_not_applied_without_reference(self):
        intent = parse_bgpd(BGPD)
        assert intent.neighbor_for("192.168.0.2").local_pref_in is None

    def test_missing_router_bgp_raises(self):
        with pytest.raises(ConfigParseError, match="router bgp"):
            parse_bgpd("hostname r1\n")

    def test_neighbor_option_before_remote_as_raises(self):
        with pytest.raises(ConfigParseError, match="before remote-as"):
            parse_bgpd("router bgp 1\n neighbor 1.2.3.4 next-hop-self\n")


class TestOthers:
    def test_hostname(self):
        assert parse_hostname("hostname core1\n") == "core1"
        assert parse_hostname("") is None

    def test_isisd(self):
        text = (
            "hostname r1\n!\ninterface eth0\n ip router isis 1\n isis metric 33\n!\n"
            "router isis 1\n net 49.0001.0000.0000.0001.00\n"
        )
        intent = parse_isisd(text)
        assert intent.net == "49.0001.0000.0000.0001.00"
        assert intent.interface_metrics == {"eth0": 33}
