"""Unit tests for lab boot, platform detection, and the DNS engine."""

import os

import pytest

from repro.emulation import EmulatedLab, detect_platform
from repro.exceptions import EmulationError


class TestDetectPlatform:
    def test_netkit(self, si_render):
        assert detect_platform(si_render.lab_dir) == "netkit"

    def test_others(self, tmp_path):
        (tmp_path / "lab.net").write_text("")
        assert detect_platform(str(tmp_path)) == "dynagen"
        os.remove(tmp_path / "lab.net")
        (tmp_path / "topology.vmm").write_text("")
        assert detect_platform(str(tmp_path)) == "junosphere"
        os.remove(tmp_path / "topology.vmm")
        (tmp_path / "network.cli").write_text("")
        assert detect_platform(str(tmp_path)) == "cbgp"

    def test_unknown_raises(self, tmp_path):
        with pytest.raises(EmulationError, match="cannot detect"):
            detect_platform(str(tmp_path))


class TestEmulatedLab:
    def test_boot_reports_converged(self, si_lab):
        assert si_lab.converged
        assert not si_lab.oscillating
        assert "converged" in repr(si_lab)

    def test_vm_access(self, si_lab):
        assert si_lab.vm("as1r1").name == "as1r1"
        with pytest.raises(EmulationError):
            si_lab.vm("ghost")

    def test_vm_by_tap_address(self, si_lab):
        tap_ips = sorted(si_lab._tap_map)
        assert len(tap_ips) == 14
        vm = si_lab.vm_by_tap(tap_ips[0])
        assert vm.name in si_lab.network.machines

    def test_run_by_name_or_tap(self, si_lab):
        by_name = si_lab.run("as100r1", "hostname")
        tap = next(
            ip for ip, name in si_lab._tap_map.items() if name == "as100r1"
        )
        by_tap = si_lab.run(tap, "hostname")
        assert by_name == by_tap == "as100r1"

    def test_vms_sorted(self, si_lab):
        names = [vm.name for vm in si_lab.vms()]
        assert names == sorted(names)
        assert len(names) == 14

    def test_dataplane_at_round_requires_history(self, si_lab):
        dataplane = si_lab.dataplane_at_round(0)
        # Round 0 has only locally originated routes: no cross-AS path.
        assert not dataplane.ping(
            "as100r1", si_lab.network.device("as300r1").loopback
        )

    def test_boot_without_history(self, si_render):
        lab = EmulatedLab.boot(si_render.lab_dir, keep_history=False)
        assert lab.bgp_result.history == []
        with pytest.raises(EmulationError, match="history"):
            lab.dataplane_at_round(0)


class TestDnsEngine:
    def test_zone_and_record_counts(self, si_lab):
        assert si_lab.dns.zone_count() == 7
        # Every device except the 7 servers appears as a client record;
        # servers also record themselves: 14 forward records total.
        assert si_lab.dns.record_count() == 14

    def test_forward_resolution_qualified(self, si_lab):
        assert si_lab.dns.resolve("as100r2.as100.lab") == "192.168.128.2"

    def test_forward_resolution_with_client_domain(self, si_lab):
        assert si_lab.dns.resolve("as100r2", client="as100r1") == "192.168.128.2"

    def test_forward_resolution_cross_zone_fallback(self, si_lab):
        assert si_lab.dns.resolve("as300r4") is not None

    def test_reverse_resolution(self, si_lab):
        assert si_lab.dns.reverse("192.168.128.1") == "as100r1.as100.lab"

    def test_reverse_unknown_none(self, si_lab):
        assert si_lab.dns.reverse("8.8.8.8") is None

    def test_missing_name_none(self, si_lab):
        assert si_lab.dns.resolve("doesnotexist") is None
