"""Unit tests for the BGP decision process and simulation (§7.2)."""

import ipaddress

import pytest

from repro.emulation import VENDOR_PROFILES, BgpRoute, BgpSimulation, IgpState
from repro.emulation.bgp_engine import VendorProfile
from repro.emulation.network import EmulatedNetwork


def _route(**kwargs):
    base = dict(
        prefix=ipaddress.ip_network("203.0.113.0/24"),
        as_path=(20,),
        next_hop=ipaddress.ip_address("10.0.0.1"),
        local_pref=100,
        learned_via="ebgp",
        learned_from="peer1",
        peer_router_id="9.9.9.9",
        peer_address="9.9.9.9",
    )
    base.update(kwargs)
    return BgpRoute(**base)


@pytest.fixture
def sim(si_lab):
    return si_lab._simulation


class TestDecisionProcess:
    def test_local_pref_dominates(self, sim):
        low = _route(local_pref=100, as_path=())
        high = _route(local_pref=200, as_path=(1, 2, 3), peer_router_id="8.8.8.8")
        best = sim.decide("as100r1", [self._localise(sim, low), self._localise(sim, high)])
        assert best.local_pref == 200

    @staticmethod
    def _localise(sim, route):
        """Make the route valid at as100r1 by using a connected next hop."""
        from dataclasses import replace

        return replace(route, next_hop=ipaddress.ip_address("10.1.0.10"))

    def test_shorter_as_path_wins(self, sim):
        short = self._localise(sim, _route(as_path=(20,)))
        long = self._localise(sim, _route(as_path=(30, 40), peer_router_id="8.8.8.8"))
        assert sim.decide("as100r1", [short, long]).as_path == (20,)

    def test_local_routes_beat_learned(self, sim):
        local = _route(as_path=(), next_hop=None, learned_via="local", learned_from=None)
        learned = self._localise(sim, _route(as_path=()))
        assert sim.decide("as100r1", [local, learned]).learned_via == "local"

    def test_ebgp_beats_ibgp(self, sim):
        ebgp = self._localise(sim, _route(learned_via="ebgp"))
        ibgp = self._localise(
            sim, _route(learned_via="ibgp", peer_router_id="8.8.8.8")
        )
        assert sim.decide("as100r1", [ebgp, ibgp]).learned_via == "ebgp"

    def test_router_id_final_tiebreak(self, sim):
        a = self._localise(sim, _route(peer_router_id="2.2.2.2"))
        b = self._localise(sim, _route(peer_router_id="1.1.1.1"))
        assert sim.decide("as100r1", [a, b]).peer_router_id == "1.1.1.1"

    def test_unresolvable_next_hop_invalid(self, sim):
        bad = _route(next_hop=ipaddress.ip_address("198.51.100.1"))
        assert sim.decide("as100r1", [bad]) is None

    def test_med_elimination_same_neighbor_as(self):
        low = _route(med=10)
        high = _route(med=50, peer_router_id="8.8.8.8")
        survivors = BgpSimulation._med_elimination(
            [low, high], VENDOR_PROFILES["quagga"]
        )
        assert survivors == [low]

    def test_med_ignored_across_different_as(self):
        a = _route(med=50, as_path=(20,))
        b = _route(med=10, as_path=(30,))
        survivors = BgpSimulation._med_elimination(
            [a, b], VENDOR_PROFILES["quagga"]
        )
        assert len(survivors) == 2

    def test_always_compare_med_vendor(self):
        a = _route(med=50, as_path=(20,))
        b = _route(med=10, as_path=(30,))
        profile = VendorProfile("x", igp_tiebreak=True, always_compare_med=True)
        survivors = BgpSimulation._med_elimination([a, b], profile)
        assert survivors == [b]


class TestVendorProfiles:
    def test_documented_defaults(self):
        assert VENDOR_PROFILES["quagga"].igp_tiebreak is False
        for vendor in ("ios", "junos", "cbgp"):
            assert VENDOR_PROFILES[vendor].igp_tiebreak is True

    def test_unknown_vendor_falls_back_to_quagga(self, si_lab):
        sim = BgpSimulation(
            si_lab.network, si_lab.igp, vendor_overrides={"as1r1": "mystery"}
        )
        assert sim.vendors["as1r1"].name == "quagga"


class TestSimulation:
    def test_small_internet_converges(self, si_lab):
        assert si_lab.bgp_result.converged
        assert not si_lab.bgp_result.oscillating

    def test_full_reachability_of_loopback_blocks(self, si_lab):
        """Every router ends with a route for every AS's loopback block."""
        selected = si_lab.bgp_result.selected
        all_prefixes = set()
        for table in selected.values():
            all_prefixes.update(table)
        loopback_prefixes = {
            p for p in all_prefixes if p.subnet_of(ipaddress.ip_network("192.168.0.0/16"))
        }
        assert len(loopback_prefixes) == 7
        for machine, table in selected.items():
            assert loopback_prefixes <= set(table), machine

    def test_as_path_loop_prevention(self, si_lab):
        for table in si_lab.bgp_result.selected.values():
            for route in table.values():
                assert len(route.as_path) == len(set(route.as_path))

    def test_ibgp_routes_not_reflected_without_rr(self, si_lab):
        """In a full mesh, iBGP-learned routes come straight from the border."""
        for machine, table in si_lab.bgp_result.selected.items():
            for route in table.values():
                if route.learned_via == "ibgp":
                    peer_table = si_lab.bgp_result.selected[route.learned_from]
                    origin_route = peer_table[route.prefix]
                    assert origin_route.learned_via in ("ebgp", "local")

    def test_next_hop_self_applied(self, si_lab):
        """iBGP-learned external routes carry the border's loopback."""
        network = si_lab.network
        for machine, table in si_lab.bgp_result.selected.items():
            for route in table.values():
                if route.learned_via == "ibgp":
                    owner = network.owner_of(route.next_hop)
                    assert owner == route.learned_from

    def test_messages_counted(self, si_lab):
        assert si_lab.bgp_result.messages > 0

    def test_session_requires_reciprocal_config(self, si_render):
        """Deleting one side's neighbor statement downs the session."""
        import os
        import shutil
        import tempfile

        from repro.emulation import EmulatedLab

        clone = tempfile.mkdtemp()
        shutil.copytree(si_render.lab_dir, clone, dirs_exist_ok=True)
        bgpd = os.path.join(clone, "as30r1", "etc", "quagga", "bgpd.conf")
        text = open(bgpd).read()
        open(bgpd, "w").write(
            "\n".join(
                line for line in text.splitlines() if "neighbor" not in line
            )
        )
        lab = EmulatedLab.boot(clone)
        assert any("as30r1" in warning for warning in lab.bgp_result.session_warnings)

    def test_max_rounds_exhaustion_reports_undetermined(self, si_render):
        from repro.emulation import EmulatedLab

        lab = EmulatedLab.boot(si_render.lab_dir, max_rounds=1)
        assert not lab.bgp_result.converged
        assert not lab.bgp_result.oscillating
