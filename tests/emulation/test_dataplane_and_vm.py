"""Unit tests for forwarding, traceroute, and VM command output."""

import ipaddress

import pytest

from repro.exceptions import MeasurementError


class TestDataplane:
    def test_deliver_to_self(self, si_lab):
        decision = si_lab.dataplane.lookup("as100r1", "192.168.128.1")
        assert decision.action == "deliver"

    def test_connected_forwarding(self, si_lab):
        # as100r1's neighbour on a shared /30.
        neighbor_ip = si_lab.network.address_on_segment_with("as100r2", "as100r1")
        decision = si_lab.dataplane.lookup("as100r1", neighbor_ip)
        assert decision.action == "forward"
        assert decision.next_machine == "as100r2"
        assert decision.source == "connected"

    def test_igp_forwarding_longest_prefix_beats_bgp_aggregate(self, si_lab):
        # Loopback of a same-AS router: /32 OSPF route wins over the /19.
        decision = si_lab.dataplane.lookup(
            "as100r1", si_lab.network.device("as100r2").loopback
        )
        assert decision.source in ("igp", "connected")

    def test_bgp_forwarding_cross_as(self, si_lab):
        decision = si_lab.dataplane.lookup(
            "as100r1", si_lab.network.device("as300r3").loopback
        )
        assert decision.action == "forward"
        assert decision.source == "bgp"

    def test_no_route_drop(self, si_lab):
        decision = si_lab.dataplane.lookup("as100r1", "198.51.100.77")
        assert decision.action == "drop"
        assert "no route" in decision.reason

    def test_blackhole_aggregate(self, si_lab):
        """An address inside the local aggregate but not assigned: dropped."""
        decision = si_lab.dataplane.lookup("as100r1", "10.4.255.254")
        assert decision.action == "drop"

    def test_trace_reaches_every_remote_loopback(self, si_lab):
        machines = sorted(si_lab.network.machines)
        source = "as1r1"
        for target in machines:
            if target == source:
                continue
            loopback = si_lab.network.device(target).loopback
            trace = si_lab.dataplane.trace(source, loopback)
            assert trace.reached, (target, trace.reason)
            assert trace.hops[-1][1] == str(loopback)

    def test_trace_hop_machines_form_connected_walk(self, si_lab):
        trace = si_lab.dataplane.trace(
            "as300r2", si_lab.network.device("as100r2").loopback
        )
        walk = ["as300r2"] + trace.machines()
        for left, right in zip(walk, walk[1:]):
            assert right in si_lab.network.neighbors_of(left), (left, right)

    def test_forward_and_reverse_paths_consistent(self, si_lab):
        forward = si_lab.dataplane.trace(
            "as20r1", si_lab.network.device("as300r3").loopback
        )
        backward = si_lab.dataplane.trace(
            "as300r3", si_lab.network.device("as20r1").loopback
        )
        assert forward.reached and backward.reached

    def test_ping_true_false(self, si_lab):
        assert si_lab.dataplane.ping("as1r1", si_lab.network.device("as200r1").loopback)
        assert not si_lab.dataplane.ping("as1r1", "198.51.100.1")


class TestVirtualMachine:
    def test_traceroute_numeric_output_shape(self, si_lab):
        out = si_lab.vm("as300r2").run("traceroute -naU 192.168.128.2")
        lines = out.splitlines()
        assert lines[0].startswith("traceroute to 192.168.128.2")
        assert lines[-1].strip().endswith("ms")
        assert "192.168.128.2" in lines[-1]

    def test_traceroute_rtts_deterministic(self, si_lab):
        first = si_lab.vm("as300r2").run("traceroute -naU 192.168.128.2")
        second = si_lab.vm("as300r2").run("traceroute -naU 192.168.128.2")
        assert first == second

    def test_traceroute_by_hostname_via_dns(self, si_lab):
        out = si_lab.vm("as100r2").run("traceroute -naU as100r3")
        assert "traceroute to as100r3" in out

    def test_traceroute_with_reverse_dns(self, si_lab):
        out = si_lab.vm("as100r2").run("traceroute -aU 192.168.128.3")
        assert "as100r3.as100.lab" in out

    def test_traceroute_unreachable_stars(self, si_lab):
        out = si_lab.vm("as100r1").run("traceroute -naU 198.51.100.9")
        assert "* * *" in out

    def test_ping_output(self, si_lab):
        out = si_lab.vm("as100r1").run("ping -c 1 192.168.128.2")
        assert "1 packets transmitted, 1 received, 0% packet loss" in out

    def test_ping_loss(self, si_lab):
        out = si_lab.vm("as100r1").run("ping -c 1 198.51.100.9")
        assert "0 received, 100% packet loss" in out

    def test_show_ip_ospf_neighbor(self, si_lab):
        out = si_lab.vm("as100r1").run("show ip ospf neighbor")
        assert out.splitlines()[0].startswith("Neighbor ID")
        assert len(out.splitlines()) == 3  # two OSPF neighbours

    def test_show_ip_bgp_summary(self, si_lab):
        out = si_lab.vm("as100r1").run("show ip bgp summary")
        assert "local AS number 100" in out
        assert "10.1.0.10" in out  # the eBGP peer

    def test_show_ip_bgp_table(self, si_lab):
        out = si_lab.vm("as100r1").run("show ip bgp")
        assert "Network" in out
        assert "*>" in out

    def test_show_ip_route_protocols(self, si_lab):
        out = si_lab.vm("as100r1").run("show ip route")
        assert any(line.startswith("C>*") for line in out.splitlines())
        assert any(line.startswith("O>*") for line in out.splitlines())
        assert any(line.startswith("B>*") for line in out.splitlines())

    def test_hostname_command(self, si_lab):
        assert si_lab.vm("as100r1").run("hostname") == "as100r1"

    def test_nslookup_forward_and_reverse(self, si_lab):
        forward = si_lab.vm("as100r2").run("nslookup as100r1")
        assert "192.168.128.1" in forward
        reverse = si_lab.vm("as100r2").run("nslookup 192.168.128.1")
        assert "as100r1.as100.lab" in reverse

    def test_nslookup_missing_name(self, si_lab):
        assert "NXDOMAIN" in si_lab.vm("as100r2").run("nslookup nosuchhost")

    def test_unknown_command_raises(self, si_lab):
        with pytest.raises(MeasurementError):
            si_lab.vm("as100r1").run("reboot now")

    def test_unresolvable_target_raises(self, si_lab):
        with pytest.raises(MeasurementError, match="cannot resolve"):
            si_lab.vm("as100r1").run("traceroute -naU not.a.real.name.example")


class TestAdditionalShowCommands:
    def test_show_ip_interface_brief(self, si_lab):
        out = si_lab.vm("as100r1").run("show ip interface brief")
        lines = out.splitlines()
        assert lines[0].startswith("Interface")
        assert any(line.startswith("lo ") for line in lines)
        assert any("unassigned" not in line for line in lines[1:])

    def test_show_version_per_vendor(self, si_lab, gadget_lab_ios):
        assert "Quagga" in si_lab.vm("as100r1").run("show version")
        assert "Cisco IOS" in gadget_lab_ios.vm("rr1").run("show version")

    def test_show_running_config_reads_rendered_files(self, si_lab):
        out = si_lab.vm("as100r1").run("show running-config")
        assert "! file: bgpd.conf" in out
        assert "router bgp 100" in out
        assert "! file: ospfd.conf" in out

    def test_show_run_alias(self, si_lab):
        assert si_lab.vm("as30r1").run("show run") == si_lab.vm("as30r1").run(
            "show running-config"
        )

    def test_show_running_config_ios(self, gadget_lab_ios):
        out = gadget_lab_ios.vm("rr1").run("show running-config")
        assert "! file: rr1.cfg" in out
        assert "router bgp 100" in out

    def test_running_config_unavailable_for_intent_labs(self, si_lab):
        from repro.emulation import EmulatedLab

        rebuilt = EmulatedLab(si_lab.intent)
        out = rebuilt.vm("as100r1").run("show running-config")
        assert "unavailable" in out
