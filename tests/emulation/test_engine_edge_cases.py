"""Edge-case coverage for the emulation engines and parsers."""

import ipaddress

import pytest

from repro.emulation import BgpRoute, EmulatedLab
from repro.emulation.parsing import (
    parse_bgpd,
    parse_cbgp_script,
    parse_ios_config,
    parse_junos_config,
)
from repro.exceptions import ConfigParseError


class TestQuaggaPolicyParsing:
    BGPD = (
        "hostname r1\n!\nrouter bgp 1\n"
        " neighbor 10.0.0.2 remote-as 2\n"
        " neighbor 10.0.0.2 route-map rm-out-x out\n!\n"
        "route-map rm-out-x permit 10\n"
        " set metric 30\n"
        " set as-path prepend 1 1 1\n!\n"
    )

    def test_med_and_prepend_parsed(self):
        intent = parse_bgpd(self.BGPD)
        neighbor = intent.neighbor_for("10.0.0.2")
        assert neighbor.med_out == 30
        assert neighbor.prepend_out == 3

    def test_out_map_without_actions(self):
        text = self.BGPD.replace(" set metric 30\n", "").replace(
            " set as-path prepend 1 1 1\n", ""
        )
        neighbor = parse_bgpd(text).neighbor_for("10.0.0.2")
        assert neighbor.med_out is None
        assert neighbor.prepend_out == 0


class TestIosParsing:
    def test_policy_roundtrip(self):
        text = (
            "hostname r1\n!\ninterface f0/0\n ip address 10.0.0.1 255.255.255.252\n"
            " no shutdown\n!\nrouter bgp 1\n"
            " neighbor 10.0.0.2 remote-as 2\n"
            " neighbor 10.0.0.2 route-map rm-out-p out\n!\n"
            "route-map rm-out-p permit 10\n set metric 7\n!\nend\n"
        )
        device = parse_ios_config(text, "r1")
        assert device.bgp.neighbor_for("10.0.0.2").med_out == 7

    def test_ipv6_lines_ignored_gracefully(self):
        text = (
            "hostname r1\n!\ninterface f0/0\n ip address 10.0.0.1 255.255.255.252\n"
            " ipv6 address 2001:db8::1/64\n no shutdown\n!\nend\n"
        )
        device = parse_ios_config(text, "r1")
        assert str(device.interface("f0/0").ip_address) == "10.0.0.1"


class TestJunosParsing:
    def test_export_policy_roundtrip(self):
        text = """
system { host-name r1; }
interfaces { ge-0/0/0 { unit 0 { family inet { address 10.0.0.1/30; } } } }
routing-options { router-id 10.0.0.1; autonomous-system 1; }
protocols {
    bgp {
        group ebgp-p {
            type external;
            peer-as 2;
            neighbor 10.0.0.2;
            export out-p;
        }
    }
}
policy-options {
    policy-statement out-p {
        then {
            metric 9;
            as-path-prepend "1 1";
        }
    }
}
"""
        device = parse_junos_config(text, "r1")
        neighbor = device.bgp.neighbor_for("10.0.0.2")
        assert neighbor.med_out == 9
        assert neighbor.prepend_out == 2

    def test_unbalanced_braces_tolerated(self):
        device = parse_junos_config("system { host-name r9;", "r9")
        assert device.hostname == "r9"


class TestCbgpParsing:
    def test_bad_line_raises(self):
        with pytest.raises(ConfigParseError):
            parse_cbgp_script("bgp router 1.2.3.4 add network\n")

    def test_peer_option_before_add_raises(self):
        script = (
            "net add node 1.1.1.1\nbgp add router 1 1.1.1.1\n"
            "bgp router 1.1.1.1 peer 2.2.2.2 rr-client\n"
        )
        with pytest.raises(ConfigParseError, match="before add"):
            parse_cbgp_script(script)

    def test_comments_and_sim_run_ignored(self):
        lab = parse_cbgp_script("# header\nnet add node 1.1.1.1\nsim run\n")
        assert "1.1.1.1" in lab.devices


class TestBgpRouteDataclass:
    def test_selection_key_fields(self):
        route = BgpRoute(
            prefix=ipaddress.ip_network("10.0.0.0/8"),
            as_path=(1, 2),
            next_hop=ipaddress.ip_address("10.0.0.1"),
            local_pref=100,
            learned_via="ebgp",
            learned_from="p",
        )
        key = route.selection_key()
        assert key == ("10.0.0.0/8", "10.0.0.1", "p", (1, 2))

    def test_frozen(self):
        route = BgpRoute(
            prefix=ipaddress.ip_network("10.0.0.0/8"),
            as_path=(),
            next_hop=None,
            local_pref=100,
        )
        with pytest.raises(Exception):
            route.local_pref = 50


class TestDataplaneEdgeCases:
    def test_forwarding_loop_detected(self, si_lab):
        """Craft a two-node next-hop loop in a snapshot dataplane."""
        import copy

        from repro.emulation import Dataplane

        selected = copy.deepcopy(si_lab.bgp_result.selected)
        prefix = ipaddress.ip_network("198.51.100.0/24")
        a_loop = BgpRoute(
            prefix=prefix,
            as_path=(9,),
            next_hop=si_lab.network.device("as100r2").loopback,
            local_pref=100,
            learned_via="ibgp",
            learned_from="as100r2",
        )
        b_loop = BgpRoute(
            prefix=prefix,
            as_path=(9,),
            next_hop=si_lab.network.device("as100r1").loopback,
            local_pref=100,
            learned_via="ibgp",
            learned_from="as100r1",
        )
        selected["as100r1"][prefix] = a_loop
        selected["as100r2"][prefix] = b_loop
        dataplane = si_lab.dataplane.with_bgp_snapshot(selected)
        trace = dataplane.trace("as100r1", "198.51.100.1")
        assert not trace.reached
        assert trace.reason in ("forwarding loop", "max hops exceeded")

    def test_path_machines_includes_source(self, si_lab):
        path = si_lab.dataplane.path_machines(
            "as100r1", si_lab.network.device("as100r2").loopback
        )
        assert path[0] == "as100r1"
        assert path[-1] == "as100r2"
