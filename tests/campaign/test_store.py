"""The resumable result store: JSONL index, run dirs, status."""

import json
import os

import pytest

from repro.campaign import CampaignSpec, ResultStore, TrialRecord, load_records
from repro.exceptions import CampaignError


def record(hash_suffix: str, status: str = "ok", **extra) -> TrialRecord:
    return TrialRecord(
        trial_id="fig5@netkit-%s" % hash_suffix,
        spec_hash="hash-%s" % hash_suffix,
        status=status,
        topology="fig5",
        platform="netkit",
        **extra,
    )


def test_append_and_read_round_trip(tmp_path):
    store = ResultStore(tmp_path / "campaign")
    store.append(record("a", convergence={"status": "converged", "rounds": 3}))
    store.append(record("b", status="failed", error="boom"))
    got = ResultStore(tmp_path / "campaign").records()
    assert [r.spec_hash for r in got] == ["hash-a", "hash-b"]
    assert got[0].convergence["rounds"] == 3
    assert got[1].error == "boom"


def test_last_record_per_hash_wins(tmp_path):
    store = ResultStore(tmp_path)
    store.append(record("a", status="failed", error="first try"))
    store.append(record("a", status="ok"))
    assert store.latest()["hash-a"].ok
    assert store.completed_hashes() == {"hash-a"}
    assert store.completed_hashes(include_failed=False) == {"hash-a"}


def test_failed_counts_as_completed_unless_excluded(tmp_path):
    store = ResultStore(tmp_path)
    store.append(record("a", status="failed", error="x"))
    assert store.completed_hashes() == {"hash-a"}
    assert store.completed_hashes(include_failed=False) == set()


def test_torn_final_line_is_tolerated(tmp_path):
    store = ResultStore(tmp_path)
    store.append(record("a"))
    with open(store.index_path, "a") as handle:
        handle.write('{"trial_id": "torn", "spec_')  # interrupted write
    assert [r.spec_hash for r in store.records()] == ["hash-a"]


def test_trial_result_written_into_run_dir(tmp_path):
    store = ResultStore(tmp_path)
    path = store.write_trial_result(record("a"))
    assert os.path.exists(path)
    assert json.load(open(path))["spec_hash"] == "hash-a"


def test_status_against_a_spec(tmp_path):
    spec = CampaignSpec.from_dict(
        {"name": "s", "topologies": ["fig5"], "platforms": ["netkit", "cbgp"]}
    )
    store = ResultStore(tmp_path)
    store.append(
        TrialRecord(
            trial_id=spec.trials[0].trial_id,
            spec_hash=spec.trials[0].spec_hash,
            status="failed",
            error="x",
        )
    )
    status = store.status(spec)
    assert status["total"] == 2
    assert status["completed"] == 1
    assert status["failed"] == 1
    assert status["pending"] == 1
    assert status["pending_trials"] == [spec.trials[1].trial_id]


def test_load_records_from_dir_index_or_list(tmp_path):
    store = ResultStore(tmp_path)
    store.append(record("a", status="failed", error="x"))
    store.append(record("a"))
    store.append(record("b"))
    for source in (tmp_path, store.index_path, store.records()):
        got = load_records(source)
        assert [r.spec_hash for r in got] == ["hash-a", "hash-b"]
        assert got[0].ok  # the later record replaced the failure


def test_load_records_missing_index_raises(tmp_path):
    with pytest.raises(CampaignError):
        load_records(tmp_path / "nowhere")
