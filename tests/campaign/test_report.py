"""Cross-trial reports: outcome tables, rendering, baseline diffs."""

import json

from repro.campaign import (
    TrialRecord,
    compare_campaigns,
    outcome_table,
    render_csv,
    render_markdown,
    render_report,
)


def record(platform, status="ok", convergence=None, **extra) -> TrialRecord:
    return TrialRecord(
        trial_id="bad_gadget@%s-0000" % platform,
        spec_hash="hash-%s" % platform,
        status=status,
        topology="bad_gadget",
        platform=platform,
        convergence=convergence or {},
        **extra,
    )


GADGET = [
    record("netkit", convergence={"status": "converged", "rounds": 3}),
    record("dynagen", convergence={"status": "oscillating", "period": 2, "rounds": 40}),
    record("cbgp", convergence={"status": "oscillating", "period": 2, "rounds": 40}),
    record("junosphere", status="failed", error="boom"),
]


def test_outcome_table_one_row_per_platform():
    rows = outcome_table(GADGET)
    assert len(rows) == 4
    by_platform = {row["platform"]: row for row in rows}
    assert by_platform["netkit"]["outcome"] == "converged in 3 rounds"
    assert by_platform["dynagen"]["outcome"] == "oscillating (period 2)"
    assert by_platform["junosphere"]["outcome"] == "FAILED: boom"
    assert by_platform["junosphere"]["failed"] == 1


def test_markdown_has_the_section_7_2_table():
    text = render_markdown(GADGET, title="bad gadget")
    assert "# bad gadget" in text
    assert "| topology | platform | outcome | trials | time (s) |" in text
    assert "| bad_gadget | dynagen | oscillating (period 2) |" in text
    assert "4 trials: 3 ok, 1 failed" in text


def test_csv_one_row_per_trial():
    lines = render_csv(GADGET).strip().splitlines()
    assert lines[0].startswith("trial_id,topology,platform,status")
    assert len(lines) == 1 + 4


def test_render_report_formats():
    assert "| topology |" in render_report(GADGET, fmt="markdown")
    assert render_report(GADGET, fmt="csv").startswith("trial_id,")
    data = json.loads(render_report(GADGET, fmt="json"))
    assert data["summary"]["trials"] == 4
    assert data["summary"]["verdicts"]["oscillating"] == 2


def test_compare_identical_campaigns_is_clean():
    comparison = compare_campaigns(GADGET, GADGET)
    assert comparison.ok
    assert comparison.unchanged == 4
    assert "0 regression(s)" in comparison.summary()


def test_compare_flags_new_failures_and_verdict_changes():
    current = [
        record("netkit", status="failed", error="now broken"),
        record("dynagen", convergence={"status": "converged", "rounds": 5}),
        record("cbgp", convergence={"status": "oscillating", "period": 2, "rounds": 40}),
        record("junosphere", convergence={"status": "converged", "rounds": 4}),
    ]
    comparison = compare_campaigns(GADGET, current)
    assert not comparison.ok
    reasons = {entry["trial_id"]: entry["reason"] for entry in comparison.regressions}
    assert "now fails" in reasons["bad_gadget@netkit-0000"]
    # a verdict change in either direction breaks reproducibility
    assert "convergence changed" in reasons["bad_gadget@dynagen-0000"]
    # a baseline failure that now passes is an improvement
    assert any(
        entry["trial_id"] == "bad_gadget@junosphere-0000"
        for entry in comparison.improvements
    )


def test_compare_tracks_added_and_removed_trials():
    comparison = compare_campaigns(GADGET[:3], GADGET[1:])
    assert comparison.added == ["bad_gadget@junosphere-0000"]
    assert comparison.removed == ["bad_gadget@netkit-0000"]
