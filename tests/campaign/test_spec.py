"""Campaign specs: matrix expansion, hashing, sharding, validation."""

import json

import pytest

from repro.campaign import CampaignSpec
from repro.exceptions import CampaignError

MATRIX = {
    "name": "matrix",
    "topologies": ["fig5", "bad_gadget"],
    "platforms": ["netkit", "cbgp"],
    "fault_schedules": [None, {"inline": "at 2 link_down r1 r2"}],
}


def test_axes_expand_as_cartesian_product():
    spec = CampaignSpec.from_dict(MATRIX)
    assert len(spec) == 2 * 2 * 2
    assert {trial.platform for trial in spec} == {"netkit", "cbgp"}
    assert {trial.topology for trial in spec} == {"fig5", "bad_gadget"}


def test_expansion_is_deterministic():
    first = CampaignSpec.from_dict(MATRIX)
    second = CampaignSpec.from_dict(json.loads(json.dumps(MATRIX)))
    assert [t.spec_hash for t in first] == [t.spec_hash for t in second]
    assert [t.sequence for t in first] == list(range(len(first)))


def test_hash_tracks_content_not_position():
    spec = CampaignSpec.from_dict(MATRIX)
    hashes = {trial.spec_hash for trial in spec}
    assert len(hashes) == len(spec)  # every cell distinct
    # the same cell recreated in a different matrix keeps its hash
    single = CampaignSpec.from_dict(
        {"name": "one", "topologies": ["fig5"], "platforms": ["netkit"]}
    )
    assert single.trials[0].spec_hash in hashes


def test_overrides_change_the_hash():
    base = {"name": "o", "topologies": ["fig5"], "platforms": ["netkit"]}
    plain = CampaignSpec.from_dict(base).trials[0]
    bounded = CampaignSpec.from_dict({**base, "max_rounds": 9}).trials[0]
    assert plain.spec_hash != bounded.spec_hash
    assert bounded.override("max_rounds") == 9


def test_schedule_canonicalised_from_file_or_inline(tmp_path):
    schedule_file = tmp_path / "inc.fault"
    schedule_file.write_text("at 2 link_down r1 r2\n")
    inline = CampaignSpec.from_dict(
        {
            "name": "s",
            "topologies": ["fig5"],
            "platforms": ["netkit"],
            "fault_schedules": [{"inline": "at 2 link_down r1 r2"}],
        }
    )
    from_file = CampaignSpec.from_dict(
        {
            "name": "s",
            "topologies": ["fig5"],
            "platforms": ["netkit"],
            "fault_schedules": ["inc.fault"],
        },
        base_dir=str(tmp_path),
    )
    assert inline.trials[0].spec_hash == from_file.trials[0].spec_hash


def test_explicit_trials_append_after_the_product():
    spec = CampaignSpec.from_dict(
        {
            "name": "x",
            "topologies": ["fig5"],
            "platforms": ["netkit"],
            "trials": [
                {
                    "topology": "fig5",
                    "platform": "netkit",
                    "overrides": {"inject_fault": "build"},
                }
            ],
        }
    )
    assert len(spec) == 2
    assert spec.trials[-1].override("inject_fault") == "build"


def test_shards_partition_the_matrix():
    spec = CampaignSpec.from_dict(MATRIX)
    shards = [spec.shard(index, 3) for index in range(3)]
    ids = [trial.spec_hash for shard in shards for trial in shard]
    assert sorted(ids) == sorted(trial.spec_hash for trial in spec)
    assert len(ids) == len(set(ids))


def test_load_resolves_relative_paths_beside_the_file(tmp_path):
    (tmp_path / "spec.json").write_text(
        json.dumps(
            {
                "name": "filed",
                "directory": "results",
                "topologies": ["fig5"],
                "platforms": ["netkit"],
            }
        )
    )
    spec = CampaignSpec.load(tmp_path / "spec.json")
    assert spec.base_dir == str(tmp_path)
    assert spec.resolve_path("results") == str(tmp_path / "results")


@pytest.mark.parametrize(
    "data",
    [
        {"topologies": ["fig5"], "platforms": ["netkit"]},  # no name
        {"name": "n", "platforms": ["netkit"]},  # no topologies
        {"name": "n", "topologies": ["fig5"], "platforms": []},  # empty axis
        {
            "name": "n",
            "topologies": ["fig5"],
            "platforms": ["netkit"],
            "overrides": [{"typo": 1}],
        },
        {
            "name": "n",
            "topologies": ["fig5"],
            "platforms": ["netkit"],
            "overrides": [{"inject_fault": "teardown"}],  # unknown stage
        },
        {
            "name": "n",
            "topologies": ["fig5", "fig5"],  # duplicate cells
            "platforms": ["netkit"],
        },
    ],
)
def test_invalid_specs_are_rejected(data):
    with pytest.raises(CampaignError):
        CampaignSpec.from_dict(data)


def test_bad_shard_bounds():
    spec = CampaignSpec.from_dict(MATRIX)
    with pytest.raises(CampaignError):
        spec.shard(3, 3)
    with pytest.raises(CampaignError):
        spec.shard(0, 0)
