"""Crash-safety end to end: SIGKILL recovery, deadlines, SIGTERM, fallback.

The headline contract under test: a campaign killed with ``kill -9``
mid-trial loses nothing and duplicates nothing — the next run recovers
the open journal intent as an explicit ``interrupted`` record,
re-executes exactly that delta, and the final outcomes are identical to
a run that was never killed.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.campaign import (
    STATUS_INTERRUPTED,
    STATUS_TIMED_OUT,
    CampaignRunner,
    CampaignSpec,
    ResultStore,
    run_campaign,
)
from repro.supervision import TrialJournal

SRC = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def crash_spec() -> dict:
    """Two healthy build-only trials, then one wired for chaos."""
    return {
        "name": "crash",
        "topologies": ["fig5"],
        "platforms": ["netkit", "cbgp"],
        "deploy": False,
        "trials": [
            {
                "topology": "fig5",
                "platform": "netkit",
                "overrides": {
                    "deploy": False,
                    "inject_hang": "build",
                    "hang_seconds": 0.01,
                },
            }
        ],
    }


def outcome_view(directory) -> dict:
    """The report-facing projection of a campaign's authoritative state."""
    return {
        record.trial_id: (
            record.status,
            record.outcome(),
            record.convergence,
            record.reachability,
        )
        for record in ResultStore(directory).latest().values()
    }


KILLER_DRIVER = """
import os, signal, sys

sys.path.insert(0, %(src)r)
import repro.campaign.runner as runner

def kill9(overrides, stage):
    # stand in for the hang hook: the moment the wired trial reaches its
    # chaos stage, die the way a power loss would — no cleanup, no flush
    if overrides.get("inject_hang") == stage:
        os.kill(os.getpid(), signal.SIGKILL)

runner._maybe_hang = kill9
import json
from repro.campaign import run_campaign
run_campaign(json.loads(%(spec)r), directory=%(directory)r)
"""


def test_sigkill_mid_trial_resumes_exactly_the_delta(tmp_path):
    crashed_dir = str(tmp_path / "crashed")
    healthy_dir = str(tmp_path / "healthy")
    spec = crash_spec()
    trials = list(CampaignSpec.from_dict(spec))
    hang_trial = trials[-1]  # explicit trials expand after the matrix

    driver = KILLER_DRIVER % {
        "src": SRC,
        "spec": json.dumps(spec),
        "directory": crashed_dir,
    }
    process = subprocess.run(
        [sys.executable, "-c", driver], capture_output=True, timeout=300
    )
    assert process.returncode == -signal.SIGKILL, process.stderr.decode()

    # kill-time state: the healthy trials landed durably, the in-flight
    # one left an open start intent and nothing in the index
    store = ResultStore(crashed_dir)
    latest = store.latest()
    assert len(latest) == 2
    assert all(record.ok for record in latest.values())
    open_intents = TrialJournal(crashed_dir).open_intents()
    assert set(open_intents) == {hang_trial.spec_hash}

    # resume: the crash surfaces as an interrupted record, and exactly
    # the interrupted delta re-executes (this time the hang is a 10ms nap)
    resumed = run_campaign(spec, directory=crashed_dir)
    assert resumed.recovered == [hang_trial.trial_id]
    assert resumed.executed == 1
    assert resumed.records[0].trial_id == hang_trial.trial_id
    assert resumed.records[0].ok
    assert len(resumed.skipped) == 2
    assert TrialJournal(crashed_dir).open_intents() == {}

    # the append-only history shows the crash; the authoritative view
    # has one record per trial, none interrupted — zero lost, zero duped
    history = store.records()
    assert [r.status for r in history].count(STATUS_INTERRUPTED) == 1
    latest = store.latest()
    assert len(latest) == 3
    assert all(record.ok for record in latest.values())

    # and the final report is identical to a run that was never killed
    healthy = run_campaign(spec, directory=healthy_dir)
    assert healthy.executed == 3
    assert outcome_view(crashed_dir) == outcome_view(healthy_dir)

    # idempotence: a third invocation finds nothing to do
    assert run_campaign(spec, directory=crashed_dir).executed == 0


def test_interrupted_trials_count_as_pending_in_status(tmp_path):
    spec = CampaignSpec.from_dict(crash_spec())
    store = ResultStore(tmp_path)
    journal = TrialJournal(tmp_path)
    victim = list(spec)[0]
    journal.start(victim.trial_id, victim.spec_hash)

    runner = CampaignRunner(spec, directory=tmp_path, limit=0)
    recovered = runner.recover()
    assert [record.trial_id for record in recovered] == [victim.trial_id]

    status = store.status(spec)
    assert status["interrupted"] == 1
    assert victim.trial_id in status["pending_trials"]
    assert status["pending"] == 3  # the interrupted one still needs running
    assert status["completed"] == 0


def test_recover_closes_intents_whose_record_already_landed(tmp_path):
    """A crash in the append→finish gap must not re-execute the trial."""
    spec = CampaignSpec.from_dict(crash_spec())
    victim = list(spec)[0]
    first = run_campaign(crash_spec(), directory=tmp_path)
    assert first.executed == 3
    # reopen the finished trial's intent, as a crash in the gap would
    journal = TrialJournal(tmp_path)
    journal.start(victim.trial_id, victim.spec_hash)

    resumed = run_campaign(crash_spec(), directory=tmp_path)
    assert resumed.recovered == []       # the landed record is authoritative
    assert resumed.executed == 0
    assert journal.open_intents() == {}


def test_deadline_overrun_becomes_a_timed_out_record(tmp_path):
    spec = {
        "name": "slow",
        "topologies": ["fig5"],
        "platforms": ["cbgp"],
        "deploy": False,
        "trials": [
            {
                "topology": "fig5",
                "platform": "netkit",
                "overrides": {
                    "deploy": False,
                    "inject_hang": "build",
                    "hang_seconds": 20.0,
                },
            }
        ],
    }
    started = time.perf_counter()
    result = run_campaign(spec, directory=tmp_path, trial_deadline_s=0.5)
    elapsed = time.perf_counter() - started
    assert elapsed < 15.0  # the 20s hang was abandoned, not awaited

    assert result.executed == 2
    assert len(result.timed_out) == 1
    record = result.timed_out[0]
    assert record.status == STATUS_TIMED_OUT
    assert "deadline exceeded" in record.error
    # the overrun is the recorded outcome: resume skips it...
    assert run_campaign(spec, directory=tmp_path).executed == 0
    # ...and it is visible in the store's status
    status = ResultStore(tmp_path).status(CampaignSpec.from_dict(spec))
    assert status["timed_out"] == 1
    assert status["pending"] == 0


def test_per_trial_deadline_override_wins(tmp_path):
    spec = {
        "name": "override",
        "topologies": ["fig5"],
        "platforms": ["cbgp"],
        "deploy": False,
        "trial_deadline_s": 0.5,
        "trials": [
            {
                "topology": "fig5",
                "platform": "netkit",
                "overrides": {
                    "deploy": False,
                    "inject_hang": "build",
                    "hang_seconds": 1.0,
                    "trial_deadline_s": 30.0,
                },
            }
        ],
    }
    result = run_campaign(spec, directory=tmp_path)
    # the wired trial hangs 1s but carries its own 30s budget: it finishes
    assert result.executed == 2
    assert not result.timed_out
    assert result.ok


def test_executor_fallback_produces_identical_results(tmp_path, monkeypatch):
    """A dying thread pool degrades to serial with bit-identical outcomes."""
    from repro.engine import executors as executors_mod

    spec = {
        "name": "fallback",
        "topologies": ["fig5"],
        "platforms": ["netkit", "cbgp", "dynagen"],
        "deploy": False,
    }
    healthy_dir = str(tmp_path / "healthy")
    degraded_dir = str(tmp_path / "degraded")

    healthy = run_campaign(spec, directory=healthy_dir, jobs=2)
    assert healthy.executed == 3
    assert healthy.degraded_to is None

    real_iter_calls = executors_mod.iter_calls

    def dying_iter_calls(executor, calls):
        if executor.kind == "thread":
            # every completion reports infrastructure death, as a pool
            # whose workers were all killed would
            return iter(
                (index, None, RuntimeError("worker killed"))
                for index in range(len(calls))
            )
        return real_iter_calls(executor, calls)

    monkeypatch.setattr(executors_mod, "iter_calls", dying_iter_calls)
    degraded = run_campaign(spec, directory=degraded_dir, jobs=2)
    assert degraded.executed == 3
    assert degraded.degraded_to == "serial"
    assert degraded.ok
    assert outcome_view(degraded_dir) == outcome_view(healthy_dir)


def test_open_breaker_defers_trials_for_the_platform(tmp_path):
    spec = {
        "name": "breaker",
        "topologies": ["fig5"],
        "platforms": ["netkit"],
        "deploy": False,
        "trials": [
            {
                "topology": "fig5",
                "platform": "netkit",
                "overrides": {
                    "deploy": False,
                    "inject_fault": "build",
                    "max_rounds": rounds,
                },
            }
            for rounds in (11, 12, 13, 14)
        ],
    }
    parsed = CampaignSpec.from_dict(spec)
    runner = CampaignRunner(
        parsed,
        directory=tmp_path,
        breaker_threshold=3,
        breaker_cooldown_s=3600.0,
    )
    result = runner.run()
    # the matrix trial succeeds; three wired failures trip the breaker,
    # and whatever follows in a later chunk is deferred, not executed
    assert result.deferred, "expected the open breaker to defer trials"
    assert len(result.records) + len(result.deferred) == 5
    assert runner.breakers.open_breakers() == ["netkit"]
    # deferred trials were never recorded: they are still pending
    status = ResultStore(tmp_path).status(parsed)
    assert status["pending"] == len(result.deferred)


SIGTERM_DRIVER = """
import sys
sys.path.insert(0, %(src)r)
from repro.cli import main
raise SystemExit(main([
    "campaign", "run", %(spec_path)r, "-o", %(directory)r,
]))
"""


def test_sigterm_checkpoints_the_journal_and_exits_143(tmp_path):
    spec = crash_spec()
    spec["trials"][0]["overrides"]["hang_seconds"] = 60.0
    spec_path = str(tmp_path / "spec.json")
    with open(spec_path, "w") as handle:
        json.dump(spec, handle)
    directory = str(tmp_path / "results")
    hang_trial = list(CampaignSpec.from_dict(spec))[-1]

    driver = SIGTERM_DRIVER % {
        "src": SRC,
        "spec_path": spec_path,
        "directory": directory,
    }
    process = subprocess.Popen(
        [sys.executable, "-c", driver],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    try:
        # wait until the wired trial is inside its 60s hang...
        hang_run_dir = os.path.join(directory, "trials", hang_trial.trial_id)
        deadline = time.time() + 120
        while not os.path.isdir(hang_run_dir):
            if time.time() > deadline:
                pytest.fail("campaign never reached the hanging trial")
            if process.poll() is not None:
                pytest.fail(
                    "driver exited early: %s"
                    % process.stderr.read().decode()
                )
            time.sleep(0.05)
        time.sleep(0.5)
        # ...then ask it to stop the way an orchestrator would
        process.send_signal(signal.SIGTERM)
        _, stderr = process.communicate(timeout=60)
    finally:
        if process.poll() is None:
            process.kill()
    assert process.returncode == 143, stderr.decode()
    assert b"terminated" in stderr

    # the orderly stop checkpointed the journal and flushed the index
    journal = TrialJournal(directory)
    checkpoint = journal.last_checkpoint()
    assert checkpoint is not None
    assert checkpoint.reason == "sigterm"
    assert set(journal.open_intents()) == {hang_trial.spec_hash}
    latest = ResultStore(directory).latest()
    assert len(latest) == 2  # the healthy trials landed before the stop
    assert all(record.ok for record in latest.values())
