"""CLI round trips for `repro campaign run|status|report`."""

import json

import pytest

from repro.campaign import ResultStore
from repro.cli import main

SPEC = {
    "name": "cli_matrix",
    "topologies": ["fig5"],
    "platforms": ["netkit", "cbgp"],
    "deploy": False,
    "trials": [
        {
            "topology": "fig5",
            "platform": "netkit",
            "overrides": {"deploy": False, "inject_fault": "build"},
        },
        # differs from the matrix's netkit cell only in overrides, so its
        # rendering must come entirely from the shared artifact cache
        {
            "topology": "fig5",
            "platform": "netkit",
            "overrides": {"deploy": False, "max_rounds": 10},
        },
    ],
}


@pytest.fixture()
def spec_file(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(SPEC))
    return str(path)


@pytest.fixture()
def campaign_dir(tmp_path):
    return str(tmp_path / "results")


def test_run_survives_a_failed_trial(spec_file, campaign_dir, capsys):
    assert main(["campaign", "run", spec_file, "-o", campaign_dir, "-j", "2"]) == 0
    out = capsys.readouterr().out
    assert "4 executed (1 failed)" in out
    assert "fault injected at build stage" in out
    # the quarantined failure is in the index alongside the successes
    records = ResultStore(campaign_dir).records()
    assert sorted(record.status for record in records) == ["failed", "ok", "ok", "ok"]


def test_run_with_profile_captures_per_trial_profiles(spec_file, campaign_dir):
    import os

    assert main(["campaign", "run", spec_file, "-o", campaign_dir,
                 "--profile", "--quiet"]) == 0
    store = ResultStore(campaign_dir)
    ok_records = [record for record in store.records() if record.ok]
    assert ok_records
    for record in ok_records:
        assert record.profile, "trial record carries no profile summary"
        assert os.path.exists(record.profile["collapsed"])
        assert os.path.exists(record.profile["table"])
        table = open(record.profile["table"]).read()
        assert "hot functions" in table or "function" in table


def test_strict_run_exits_nonzero_on_failures(spec_file, campaign_dir):
    assert main(["campaign", "run", spec_file, "-o", campaign_dir, "--strict"]) == 1


def test_rerun_resumes_with_zero_executed(spec_file, campaign_dir, capsys):
    assert main(["campaign", "run", spec_file, "-o", campaign_dir, "--quiet"]) == 0
    assert main(["campaign", "run", spec_file, "-o", campaign_dir, "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["executed"] == 0
    assert len(data["resumed"]) == 4
    assert data["exit_code"] == 0


def test_resume_after_interrupt(spec_file, campaign_dir, capsys):
    # --limit models an interrupted campaign: only part of the matrix ran
    assert main(["campaign", "run", spec_file, "-o", campaign_dir, "--limit", "1", "--quiet"]) == 0
    assert main(["campaign", "status", spec_file, "-o", campaign_dir, "--quiet"]) == 3
    assert main(["campaign", "run", spec_file, "-o", campaign_dir, "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["executed"] == 3  # only the delta
    assert main(["campaign", "status", spec_file, "-o", campaign_dir, "--quiet"]) == 0


def test_trials_share_the_artifact_cache(spec_file, campaign_dir, capsys):
    # serial run: the explicit max_rounds trial executes after the plain
    # netkit cell and must render nothing at all
    assert main(["campaign", "run", spec_file, "-o", campaign_dir, "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    warm = [
        t["engine"]
        for t in data["trials"]
        if t["platform"] == "netkit"
        and t["status"] == "ok"
        and t["engine"].get("rendered_devices") == 0
    ]
    assert len(warm) == 1
    assert warm[0]["cache_hits"] > 0
    assert warm[0]["cached_devices"] > 0
    assert data["cache_hits"] > 0


def test_status_before_any_run_is_pending(spec_file, campaign_dir, capsys):
    assert main(["campaign", "status", spec_file, "-o", campaign_dir]) == 3
    assert "4 pending" in capsys.readouterr().out


def test_report_renders_the_outcome_table(spec_file, campaign_dir, capsys):
    main(["campaign", "run", spec_file, "-o", campaign_dir, "--quiet"])
    assert main(["campaign", "report", spec_file, "-o", campaign_dir]) == 0
    out = capsys.readouterr().out
    assert "| topology | platform | outcome | trials | time (s) |" in out
    assert "FAILED" in out
    # report also accepts the campaign directory directly, and csv
    assert main(["campaign", "report", campaign_dir, "--format", "csv"]) == 0
    assert "trial_id,topology,platform" in capsys.readouterr().out


def test_report_missing_index_is_an_error(spec_file, campaign_dir, capsys):
    assert main(["campaign", "report", spec_file, "-o", campaign_dir]) == 2
    assert "no campaign index" in capsys.readouterr().err


def test_report_baseline_comparison(spec_file, campaign_dir, capsys):
    main(["campaign", "run", spec_file, "-o", campaign_dir, "--quiet"])
    assert (
        main(
            [
                "campaign", "report", spec_file,
                "-o", campaign_dir, "--baseline", campaign_dir,
            ]
        )
        == 0
    )
    assert "0 regression(s)" in capsys.readouterr().out


def test_sharded_runs_cover_the_matrix(spec_file, campaign_dir):
    assert main(["campaign", "run", spec_file, "-o", campaign_dir, "--shard", "0/2", "--quiet"]) == 0
    assert main(["campaign", "status", spec_file, "-o", campaign_dir, "--quiet"]) == 3
    assert main(["campaign", "run", spec_file, "-o", campaign_dir, "--shard", "1/2", "--quiet"]) == 0
    assert main(["campaign", "status", spec_file, "-o", campaign_dir, "--quiet"]) == 0


def test_bad_shard_and_bad_spec_exit_2(spec_file, campaign_dir, tmp_path, capsys):
    assert main(["campaign", "run", spec_file, "-o", campaign_dir, "--shard", "9"]) == 2
    broken = tmp_path / "broken.json"
    broken.write_text("{not json")
    assert main(["campaign", "run", str(broken)]) == 2
    assert main(["campaign", "run", str(tmp_path / "absent.json")]) == 2


def test_keyboard_interrupt_exits_130(monkeypatch, spec_file, capsys):
    from repro import cli

    def interrupted(args, out):
        raise KeyboardInterrupt

    monkeypatch.setitem(
        cli.__dict__, "_cmd_campaign", interrupted
    )
    assert main(["campaign", "run", spec_file]) == 130
    assert "interrupted" in capsys.readouterr().err


def test_status_accepts_a_results_directory(spec_file, campaign_dir, capsys):
    """The spec is recoverable from the stored index: `repro campaign
    status <dir>` needs no spec file at all."""
    assert main(["campaign", "run", spec_file, "-o", campaign_dir,
                 "--limit", "1", "--quiet"]) == 0
    capsys.readouterr()
    assert main(["campaign", "status", campaign_dir]) == 3
    out = capsys.readouterr().out
    assert "campaign cli_matrix" in out
    assert "3 pending" in out
    # finish the matrix: the directory view flips to complete/exit 0
    assert main(["campaign", "run", spec_file, "-o", campaign_dir, "--quiet"]) == 0
    assert main(["campaign", "status", campaign_dir, "--quiet"]) == 0


def test_status_on_a_directory_without_spec_json_explains(tmp_path, capsys):
    empty = tmp_path / "not_a_campaign"
    empty.mkdir()
    assert main(["campaign", "status", str(empty)]) == 2
    assert "spec" in capsys.readouterr().err


def test_run_on_a_directory_is_rejected(spec_file, campaign_dir, capsys):
    assert main(["campaign", "run", spec_file, "-o", campaign_dir,
                 "--quiet"]) == 0
    assert main(["campaign", "run", campaign_dir]) == 2
    assert "directory" in capsys.readouterr().err
