"""Concurrent access to the result store and its incremental read path.

The service reads stores while campaign workers append to them; these
tests pin the contracts that makes that safe: polls never observe torn
records, polling cost tracks the appended delta (not the history), and
the SQLite index never duplicates rows however many threads feed it.
"""

import json
import threading

from repro.campaign import ResultStore, TrialRecord
from repro.service import ResultIndex


def record(suffix, status="ok", **extra) -> TrialRecord:
    return TrialRecord(
        trial_id="fig5@netkit-%s" % suffix,
        spec_hash="hash-%s" % suffix,
        status=status,
        topology="fig5",
        platform="netkit",
        **extra,
    )


def test_incremental_poll_returns_only_the_delta(tmp_path):
    store = ResultStore(tmp_path)
    store.append(record("a"))
    store.append(record("b"))
    assert [r.spec_hash for r in store.poll_records()] == ["hash-a", "hash-b"]
    assert store.poll_records() == []
    store.append(record("c"))
    assert [r.spec_hash for r in store.poll_records()] == ["hash-c"]
    assert set(store.latest_view()) == {"hash-a", "hash-b", "hash-c"}


def test_polling_cost_does_not_grow_with_history(tmp_path):
    """The satellite contract: after N completed trials, polling for
    one new record reads bytes proportional to that record alone."""
    store = ResultStore(tmp_path)
    for number in range(100):
        store.append(record("bulk-%03d" % number))
    store.poll_records()
    baseline = store.last_poll_bytes
    assert baseline > 10_000          # the backlog really was read once
    store.append(record("fresh"))
    fresh = store.poll_records()
    assert [r.spec_hash for r in fresh] == ["hash-fresh"]
    one_line = len(json.dumps(record("fresh").to_dict())) + 200
    assert store.last_poll_bytes < one_line   # delta-sized, not history-sized
    store.poll_records()
    assert store.last_poll_bytes == 0


def test_unterminated_tail_is_not_consumed_until_completed(tmp_path):
    store = ResultStore(tmp_path)
    store.append(record("a"))
    reader = ResultStore(tmp_path)
    with open(store.index_path, "a") as handle:
        handle.write('{"trial_id": "partial"')     # writer mid-record
    assert [r.spec_hash for r in reader.poll_records()] == ["hash-a"]
    with open(store.index_path, "a") as handle:    # writer finishes the line
        handle.write(', "spec_hash": "hash-late", "status": "ok"}\n')
    assert [r.spec_hash for r in reader.poll_records()] == ["hash-late"]
    assert reader.torn_lines == 0


def test_append_self_heals_a_torn_tail(tmp_path):
    """A crash can leave a half-written final line; the next append must
    not splice its record onto the fragment."""
    store = ResultStore(tmp_path)
    store.append(record("a"))
    with open(store.index_path, "a") as handle:
        handle.write('{"trial_id": "cut off')
    recovered = ResultStore(tmp_path)
    recovered.append(record("b"))
    records = recovered.records()
    assert [r.spec_hash for r in records] == ["hash-a", "hash-b"]
    assert recovered.torn_lines == 1              # the fragment, counted once


def test_readers_poll_while_a_writer_appends(tmp_path):
    """No torn reads: every record a reader observes is complete and
    parseable, and the union over polls is exactly what was written."""
    store = ResultStore(tmp_path)
    total = 200
    seen: list[set] = [set(), set(), set()]
    failures: list = []

    def write():
        for number in range(total):
            store.append(record("w-%03d" % number))

    def read(slot: int):
        reader = ResultStore(tmp_path)
        while len(seen[slot]) < total:
            try:
                for rec in reader.poll_records():
                    assert rec.spec_hash.startswith("hash-w-")
                    assert rec.status == "ok"
                    seen[slot].add(rec.spec_hash)
            except Exception as error:            # noqa: BLE001 - collected
                failures.append(error)
                return
        assert reader.torn_lines == 0

    threads = [threading.Thread(target=write)] + [
        threading.Thread(target=read, args=(slot,)) for slot in range(3)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(60)
    assert not failures
    expected = {"hash-w-%03d" % n for n in range(total)}
    assert all(observed == expected for observed in seen)


def test_concurrent_indexing_yields_no_duplicate_rows(tmp_path):
    """N threads appending + an indexer polling mid-stream, then a
    crash-recovery style replay: the SQLite index converges to exactly
    one row per spec_hash."""
    store = ResultStore(tmp_path / "campaign")
    index = ResultIndex(tmp_path / "svc.db")
    per_thread, writers = 40, 4

    def write(slot: int):
        for number in range(per_thread):
            store.append(record("t%d-%03d" % (slot, number)))

    threads = [
        threading.Thread(target=write, args=(slot,)) for slot in range(writers)
    ]
    for thread in threads:
        thread.start()
    while any(thread.is_alive() for thread in threads):
        index.index_store("job", store.directory)   # racing the writers
    for thread in threads:
        thread.join()
    index.index_store("job", store.directory)
    rows = index.trials("job")
    assert len(rows) == per_thread * writers

    # crash-recovery replay: superseding records re-appended, plus a
    # from-scratch reindex -- still one row per hash, latest state wins
    for slot in range(writers):
        store.append(record("t%d-000" % slot, status="failed", error="retry"))
    index.index_store("job", store.directory)
    index.reset_offsets()
    index.index_store("job", store.directory)
    rows = index.trials("job")
    assert len(rows) == per_thread * writers
    retried = [row for row in rows if row["status"] == "failed"]
    assert len(retried) == writers
