"""The sharded campaign runner: resume, quarantine, shared cache."""

import pytest

from repro.campaign import CampaignRunner, CampaignSpec, ResultStore, run_campaign
from repro.exceptions import CampaignError


def build_only_spec(**extra) -> dict:
    """A fast campaign: render only, no emulated boot."""
    return {
        "name": "fast",
        "topologies": ["fig5"],
        "platforms": ["netkit", "cbgp"],
        "deploy": False,
        **extra,
    }


def test_run_campaign_accepts_a_dict(tmp_path):
    result = run_campaign(build_only_spec(), directory=tmp_path)
    assert result.executed == 2
    assert result.ok
    statuses = {record.trial_id: record.status for record in result.records}
    assert set(statuses.values()) == {"ok"}
    assert len(ResultStore(tmp_path).records()) == 2


def test_rerun_executes_only_the_delta(tmp_path):
    spec = build_only_spec()
    first = run_campaign(spec, directory=tmp_path)
    second = run_campaign(spec, directory=tmp_path)
    assert first.executed == 2
    assert second.executed == 0
    assert len(second.skipped) == 2
    # extending the matrix re-runs just the new cells
    third = run_campaign(
        build_only_spec(platforms=["netkit", "cbgp", "dynagen"]),
        directory=tmp_path,
    )
    assert third.executed == 1
    assert third.records[0].platform == "dynagen"


def test_trials_share_one_artifact_cache(tmp_path):
    # two trials identical up to the fault schedule: the second must
    # reuse every rendered artifact from the first
    spec = {
        "name": "shared",
        "topologies": ["fig5"],
        "platforms": ["netkit"],
        "deploy": False,
        "fault_schedules": [None, {"inline": "at 2 link_down r1 r2"}],
    }
    result = run_campaign(spec, directory=tmp_path)
    assert result.executed == 2
    warm = result.records[1].engine
    assert warm["cache_hits"] > 0
    assert warm["rendered_devices"] == 0
    assert warm["cached_devices"] > 0
    assert result.cache_hits > 0


def test_failed_trial_is_quarantined_not_fatal(tmp_path):
    spec = build_only_spec(
        trials=[
            {
                "topology": "fig5",
                "platform": "netkit",
                "overrides": {"deploy": False, "inject_fault": "build"},
            }
        ]
    )
    result = run_campaign(spec, directory=tmp_path)
    assert result.executed == 3
    assert len(result.failed) == 1
    assert "fault injected at build stage" in result.failed[0].error
    # the failure is in the index and counts as completed on resume
    assert run_campaign(spec, directory=tmp_path).executed == 0


def test_retry_failed_reexecutes_only_failures(tmp_path):
    spec = build_only_spec(
        trials=[
            {
                "topology": "fig5",
                "platform": "netkit",
                "overrides": {"deploy": False, "inject_fault": "build"},
            }
        ]
    )
    run_campaign(spec, directory=tmp_path)
    retried = run_campaign(spec, directory=tmp_path, retry_failed=True)
    assert retried.executed == 1
    assert not retried.records[0].ok  # still injected, still quarantined


def test_shards_cover_the_matrix_without_overlap(tmp_path):
    spec = build_only_spec(platforms=["netkit", "cbgp", "dynagen", "junosphere"])
    left = run_campaign(spec, directory=tmp_path, shard=(0, 2))
    right = run_campaign(spec, directory=tmp_path, shard=(1, 2))
    assert left.executed == 2
    assert right.executed == 2
    assert len(ResultStore(tmp_path).latest()) == 4


def test_limit_bounds_one_invocation(tmp_path):
    spec = build_only_spec()
    assert run_campaign(spec, directory=tmp_path, limit=1).executed == 1
    assert run_campaign(spec, directory=tmp_path).executed == 1  # the rest


def test_deployed_trial_records_convergence_and_reachability(tmp_path):
    result = run_campaign(
        {"name": "boot", "topologies": ["fig5"], "platforms": ["netkit"]},
        directory=tmp_path,
    )
    record = result.records[0]
    assert record.convergence["status"] == "converged"
    assert record.reachability["fraction"] == 1.0
    assert "deploy" in record.timings


def test_runner_requires_a_directory_somewhere():
    spec = CampaignSpec.from_dict(build_only_spec())
    with pytest.raises(CampaignError):
        CampaignRunner(spec)


def test_parallel_jobs_produce_the_same_index(tmp_path):
    spec = build_only_spec(platforms=["netkit", "cbgp", "dynagen"])
    result = run_campaign(spec, directory=tmp_path, jobs=2)
    assert result.executed == 3
    assert result.ok
    hashes = {record.spec_hash for record in ResultStore(tmp_path).records()}
    assert hashes == {t.spec_hash for t in CampaignSpec.from_dict(spec)}
