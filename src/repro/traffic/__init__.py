"""Flow-level traffic engine over the emulated dataplane.

Turns "does it route" experiments into "does it perform under load"
experiments: a deterministic, seedable discrete-event simulator offers
HTTP-style request/response mixes, bulk transfers and locust-style
ramped user loads (a :class:`TrafficProfile`) to a booted lab, models
per-link capacity and tail-drop queueing, and reports per-class latency
percentiles, loss and per-link utilization (a :class:`TrafficReport`).
"""

from repro.traffic.engine import TrafficEngine, run_traffic
from repro.traffic.links import LinkModel, link_overrides_from_anm
from repro.traffic.profile import (
    CLASS_KINDS,
    LinkOverride,
    TrafficClass,
    TrafficProfile,
    coerce_profile,
)
from repro.traffic.report import ClassReport, TrafficReport

__all__ = [
    "CLASS_KINDS",
    "ClassReport",
    "LinkModel",
    "LinkOverride",
    "TrafficClass",
    "TrafficEngine",
    "TrafficProfile",
    "TrafficReport",
    "coerce_profile",
    "link_overrides_from_anm",
    "run_traffic",
]
