"""The ``TrafficReport``: what a traffic run measured.

Per-class latency percentiles come from the same deterministic
decimated reservoir the observability layer uses
(:class:`repro.observability.metrics.Histogram`), so two runs with the
same seed and profile produce *bit-identical* reports — the property
the determinism tests pin.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.observability.metrics import Histogram


def _ms(value):
    return None if value is None else value * 1e3


@dataclass
class ClassReport:
    """One traffic class's delivered experience."""

    name: str
    kind: str = ""
    offered_flows: int = 0
    delivered_flows: int = 0
    dropped_flows: int = 0
    unroutable_flows: int = 0
    offered_bytes: int = 0
    delivered_bytes: int = 0
    #: RFC3550-style mean absolute consecutive latency difference (ms).
    jitter_ms: float = 0.0
    latency: Histogram = field(default_factory=Histogram)

    @property
    def loss_rate(self) -> float:
        if not self.offered_flows:
            return 0.0
        return (self.offered_flows - self.delivered_flows) / self.offered_flows

    def latency_ms(self) -> dict:
        """The latency distribution in milliseconds."""
        raw = self.latency.to_dict()
        return {
            "count": raw["count"],
            "mean": _ms(raw["mean"]),
            "min": _ms(raw["min"]),
            "max": _ms(raw["max"]),
            "p50": _ms(raw["p50"]),
            "p95": _ms(raw["p95"]),
            "p99": _ms(raw["p99"]),
        }

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "offered_flows": self.offered_flows,
            "delivered_flows": self.delivered_flows,
            "dropped_flows": self.dropped_flows,
            "unroutable_flows": self.unroutable_flows,
            "offered_bytes": self.offered_bytes,
            "delivered_bytes": self.delivered_bytes,
            "loss_rate": self.loss_rate,
            "jitter_ms": self.jitter_ms,
            "latency_ms": self.latency_ms(),
        }


@dataclass
class TrafficReport:
    """Everything one traffic run measured, serialisable and comparable."""

    profile: str = ""
    seed: int = 0
    duration: float = 0.0
    classes: list = field(default_factory=list)        # [ClassReport]
    links: list = field(default_factory=list)          # utilization rows
    #: per-bucket time series: [{"start", "offered", "delivered",
    #:  "dropped", "p99_ms"}], bucket width = profile.round_seconds
    timeline: list = field(default_factory=list)
    faults: list = field(default_factory=list)         # applied fault events
    elapsed_seconds: float = 0.0

    @property
    def offered_flows(self) -> int:
        return sum(entry.offered_flows for entry in self.classes)

    @property
    def delivered_flows(self) -> int:
        return sum(entry.delivered_flows for entry in self.classes)

    @property
    def dropped_flows(self) -> int:
        return sum(entry.dropped_flows for entry in self.classes)

    @property
    def offered_bytes(self) -> int:
        return sum(entry.offered_bytes for entry in self.classes)

    @property
    def delivered_bytes(self) -> int:
        return sum(entry.delivered_bytes for entry in self.classes)

    @property
    def loss_rate(self) -> float:
        offered = self.offered_flows
        if not offered:
            return 0.0
        return (offered - self.delivered_flows) / offered

    def class_report(self, name: str) -> ClassReport:
        for entry in self.classes:
            if entry.name == name:
                return entry
        raise KeyError(name)

    def totals(self) -> dict:
        duration = self.duration or 1.0
        return {
            "offered_flows": self.offered_flows,
            "delivered_flows": self.delivered_flows,
            "dropped_flows": self.dropped_flows,
            "offered_bytes": self.offered_bytes,
            "delivered_bytes": self.delivered_bytes,
            "offered_load_mbps": self.offered_bytes * 8.0 / 1e6 / duration,
            "delivered_load_mbps": self.delivered_bytes * 8.0 / 1e6 / duration,
            "loss_rate": self.loss_rate,
        }

    def to_dict(self, max_links: int | None = None) -> dict:
        links = self.links if max_links is None else self.links[:max_links]
        return {
            "profile": self.profile,
            "seed": self.seed,
            "duration": self.duration,
            "totals": self.totals(),
            "classes": {entry.name: entry.to_dict() for entry in self.classes},
            "links": links,
            "timeline": self.timeline,
            "faults": self.faults,
        }

    def to_json(self, max_links: int | None = None) -> str:
        return json.dumps(self.to_dict(max_links=max_links), sort_keys=True)

    def summary(self, max_links: int = 8) -> dict:
        """The compact form campaign trial records embed.

        Carries the busiest ``max_links`` utilization rows so downstream
        consumers (the service dashboard's topology heat-map) can colour
        links without re-running the engine.
        """
        return {
            "profile": self.profile,
            "seed": self.seed,
            "totals": self.totals(),
            "classes": {
                entry.name: {
                    "loss_rate": entry.loss_rate,
                    "jitter_ms": entry.jitter_ms,
                    "latency_ms": entry.latency_ms(),
                }
                for entry in self.classes
            },
            "links": [
                row for row in self.links if row["utilization"] > 0
            ][:max_links],
        }

    def format_lines(self, max_links: int = 10) -> list:
        """Human-readable table lines for the CLI."""
        lines = []
        totals = self.totals()
        lines.append(
            "traffic %r: %d flows offered, %d delivered, %d dropped "
            "(loss %.3f%%) over %.1fs"
            % (
                self.profile,
                totals["offered_flows"],
                totals["delivered_flows"],
                totals["dropped_flows"],
                totals["loss_rate"] * 100.0,
                self.duration,
            )
        )
        lines.append(
            "offered %.1f Mbps, delivered %.1f Mbps"
            % (totals["offered_load_mbps"], totals["delivered_load_mbps"])
        )
        header = "%-14s %10s %10s %8s %9s %9s %9s %9s" % (
            "class", "offered", "delivered", "loss%", "p50 ms", "p95 ms",
            "p99 ms", "jitter",
        )
        lines.append(header)
        for entry in self.classes:
            latency = entry.latency_ms()
            lines.append(
                "%-14s %10d %10d %8.3f %9s %9s %9s %9.3f"
                % (
                    entry.name,
                    entry.offered_flows,
                    entry.delivered_flows,
                    entry.loss_rate * 100.0,
                    _fmt(latency["p50"]),
                    _fmt(latency["p95"]),
                    _fmt(latency["p99"]),
                    entry.jitter_ms,
                )
            )
        busy = [row for row in self.links if row["utilization"] > 0][:max_links]
        if busy:
            lines.append("busiest links:")
            for row in busy:
                lines.append(
                    "  %-24s util %6.1f%% %10d flows %8d drops"
                    % (
                        row["link"],
                        row["utilization"] * 100.0,
                        row["flows"],
                        row["drops"],
                    )
                )
        for event in self.faults:
            lines.append(
                "fault @%.1fs: %s %s" % (
                    event.get("time", 0.0), event.get("kind", "?"),
                    event.get("target", "?"),
                )
            )
        return lines


def _fmt(value) -> str:
    return "-" if value is None else "%.3f" % value
