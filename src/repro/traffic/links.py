"""The link model: per-hop capacity, propagation delay, queue depth.

The emulated dataplane answers *where* a flow goes; this module answers
*how fast* each hop carries it.  Capacity and delay resolve, in
precedence order: per-pair overrides in the profile, then
``capacity_mbps`` / ``delay_ms`` / ``link_capacity`` attributes carried
through the design layer's physical overlay, then the profile defaults.

Each *directed* machine pair gets its own mutable transmission state
(``busy_until`` plus counters) so congestion on a→b does not slow b→a —
full-duplex links, half-duplex queues.
"""

from __future__ import annotations

from repro.traffic.profile import TrafficProfile

# Indices into the per-directed-link state list the simulator mutates.
# A plain list beats a dataclass here: the 1M-flow inner loop touches
# these slots several times per hop.
BUSY_UNTIL = 0
CAPACITY_BPS = 1   # bytes/second
DELAY_S = 2
QUEUE_BYTES = 3
BYTES = 4
FLOWS = 5
DROPS = 6
BUSY_SECONDS = 7


def _as_float(value):
    try:
        return None if value is None else float(value)
    except (TypeError, ValueError):
        return None


def link_overrides_from_anm(anm) -> dict:
    """Capacity/delay attributes from the physical overlay, per pair.

    Returns ``{(a, b) sorted: {"capacity_mbps": ..., "delay_ms": ...}}``
    for every phy edge that declares either attribute (``link_capacity``
    is accepted as a legacy spelling of ``capacity_mbps``).
    """
    overrides: dict = {}
    try:
        phy = anm["phy"]
    except Exception:
        return overrides
    for edge in phy.edges():
        capacity = _as_float(edge.get("capacity_mbps"))
        if capacity is None:
            capacity = _as_float(edge.get("link_capacity"))
        delay = _as_float(edge.get("delay_ms"))
        if capacity is None and delay is None:
            continue
        key = tuple(sorted((str(edge.src_id), str(edge.dst_id))))
        entry = overrides.setdefault(key, {})
        if capacity is not None:
            entry["capacity_mbps"] = float(capacity)
        if delay is not None:
            entry["delay_ms"] = float(delay)
    return overrides


class LinkModel:
    """Resolves and holds the mutable per-directed-link state."""

    def __init__(self, profile: TrafficProfile, overrides: dict | None = None):
        self.default_capacity = profile.default_capacity_mbps * 1e6 / 8.0
        self.default_delay = profile.default_delay_ms / 1e3
        self.default_queue = profile.resolved_queue_bytes()
        # unordered pair -> (capacity_Bps, delay_s, queue_bytes)
        self._params: dict = {}
        merged: dict = {}
        for key, entry in (overrides or {}).items():
            merged[tuple(sorted(key))] = dict(entry)
        for link in profile.links:
            entry = merged.setdefault(link.key(), {})
            # profile overrides win over design-layer attributes
            if link.capacity_mbps is not None:
                entry["capacity_mbps"] = link.capacity_mbps
            if link.delay_ms is not None:
                entry["delay_ms"] = link.delay_ms
        for key, entry in merged.items():
            capacity = entry.get("capacity_mbps")
            delay = entry.get("delay_ms")
            capacity_bps = (
                self.default_capacity if capacity is None else float(capacity) * 1e6 / 8.0
            )
            delay_s = self.default_delay if delay is None else float(delay) / 1e3
            queue = max(int(capacity_bps * 2.0 * delay_s), 1) if capacity is not None \
                else self.default_queue
            self._params[key] = (capacity_bps, delay_s, queue)
        # directed (a, b) -> mutable state list
        self.state: dict = {}

    def params_for(self, a: str, b: str) -> tuple:
        return self._params.get(
            (a, b) if a <= b else (b, a),
            (self.default_capacity, self.default_delay, self.default_queue),
        )

    def link_state(self, a: str, b: str) -> list:
        """The mutable state for directed hop a→b (created on first use)."""
        state = self.state.get((a, b))
        if state is None:
            capacity, delay, queue = self.params_for(a, b)
            state = [0.0, capacity, delay, queue, 0, 0, 0, 0.0]
            self.state[(a, b)] = state
        return state

    def utilization_rows(self, duration: float) -> list:
        """Per-directed-link counters, sorted by utilization descending."""
        rows = []
        for (a, b), state in self.state.items():
            utilization = (
                state[BUSY_SECONDS] / duration if duration > 0 else 0.0
            )
            rows.append(
                {
                    "link": "%s->%s" % (a, b),
                    "capacity_mbps": state[CAPACITY_BPS] * 8.0 / 1e6,
                    "delay_ms": state[DELAY_S] * 1e3,
                    "bytes": state[BYTES],
                    "flows": state[FLOWS],
                    "drops": state[DROPS],
                    "utilization": utilization,
                }
            )
        rows.sort(key=lambda row: (-row["utilization"], row["link"]))
        return rows
