"""The ``TrafficProfile`` spec: a small JSON workload description.

A profile names the traffic *classes* to offer to an emulated lab —
HTTP-style request/response mixes, bulk transfers, and locust-style
ramped user loads — plus the link model defaults (capacity, one-way
delay, queue depth) the engine uses for every segment that carries the
flows.  Like :class:`repro.resilience.FaultSchedule` the spec is plain
JSON, canonically serialisable, and content-hashable, so campaigns can
put profiles on an axis and resume by hash.

Example::

    {
      "name": "ramp",
      "duration": 10.0,
      "classes": [
        {"name": "web", "kind": "request_response", "qps": 400,
         "request_bytes": 400, "response_bytes": 12000},
        {"name": "bulk", "kind": "bulk", "flows": 50, "bytes": 5000000},
        {"name": "users", "kind": "ramp", "users": 200, "qps": 2.0,
         "ramp_seconds": 5.0}
      ]
    }
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, replace

from repro.exceptions import TrafficError

#: Workload generator kinds a class may declare.
CLASS_KINDS = ("request_response", "bulk", "ramp")

#: Link-model defaults applied to every segment without an override.
DEFAULT_CAPACITY_MBPS = 1000.0
DEFAULT_DELAY_MS = 1.0

#: Floor for the tail-drop queue, whatever the bandwidth-delay product.
MIN_QUEUE_BYTES = 16384


@dataclass(frozen=True)
class TrafficClass:
    """One named workload inside a profile."""

    name: str
    kind: str = "request_response"
    #: request_response: mean arrivals/second (Poisson);
    #: ramp: per-user request rate once a user is active.
    qps: float = 10.0
    #: ramp: target concurrent users after the ramp.
    users: int = 1
    #: ramp: seconds of linear ramp-up from 0 to ``users``.
    ramp_seconds: float = 0.0
    #: bulk: how many transfers to start (spread uniformly over the window).
    flows: int = 10
    request_bytes: int = 400
    response_bytes: int = 16000
    #: bulk: transfer size per flow.
    bytes: int = 1_000_000
    #: Window inside the profile duration this class is active.
    start: float = 0.0
    duration: float | None = None
    #: Candidate endpoints; empty means every machine in the lab.
    sources: tuple = ()
    destinations: tuple = ()
    #: Size of the deterministic (src, dst) pair pool flows draw from.
    pair_count: int = 64

    def flow_bytes(self) -> int:
        """Bytes one flow of this class pushes through the path."""
        if self.kind == "bulk":
            return int(self.bytes)
        return int(self.request_bytes) + int(self.response_bytes)

    def validate(self) -> None:
        if not self.name:
            raise TrafficError("traffic class needs a name")
        if self.kind not in CLASS_KINDS:
            raise TrafficError(
                "unknown traffic class kind %r (choose from %s)"
                % (self.kind, ", ".join(CLASS_KINDS))
            )
        if self.qps < 0 or self.users < 0 or self.flows < 0:
            raise TrafficError("traffic class %r: rates must be >= 0" % self.name)
        if self.flow_bytes() <= 0:
            raise TrafficError("traffic class %r: flow size must be > 0" % self.name)
        if self.pair_count < 1:
            raise TrafficError("traffic class %r: pair_count must be >= 1" % self.name)
        if self.start < 0:
            raise TrafficError("traffic class %r: start must be >= 0" % self.name)

    def to_dict(self) -> dict:
        data = {
            "name": self.name,
            "kind": self.kind,
            "qps": self.qps,
            "users": self.users,
            "ramp_seconds": self.ramp_seconds,
            "flows": self.flows,
            "request_bytes": self.request_bytes,
            "response_bytes": self.response_bytes,
            "bytes": self.bytes,
            "start": self.start,
            "duration": self.duration,
            "sources": list(self.sources),
            "destinations": list(self.destinations),
            "pair_count": self.pair_count,
        }
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "TrafficClass":
        if not isinstance(data, dict):
            raise TrafficError("traffic class entry must be an object")
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        unknown = sorted(set(data) - known)
        if unknown:
            raise TrafficError(
                "traffic class %r: unknown field(s) %s"
                % (data.get("name", "?"), ", ".join(unknown))
            )
        entry = cls(
            name=str(data.get("name", "")),
            kind=str(data.get("kind", "request_response")),
            qps=float(data.get("qps", 10.0)),
            users=int(data.get("users", 1)),
            ramp_seconds=float(data.get("ramp_seconds", 0.0)),
            flows=int(data.get("flows", 10)),
            request_bytes=int(data.get("request_bytes", 400)),
            response_bytes=int(data.get("response_bytes", 16000)),
            bytes=int(data.get("bytes", 1_000_000)),
            start=float(data.get("start", 0.0)),
            duration=(
                None if data.get("duration") is None else float(data["duration"])
            ),
            sources=tuple(str(s) for s in data.get("sources") or ()),
            destinations=tuple(str(s) for s in data.get("destinations") or ()),
            pair_count=int(data.get("pair_count", 64)),
        )
        entry.validate()
        return entry


@dataclass(frozen=True)
class LinkOverride:
    """Capacity/delay override for one (unordered) machine pair."""

    a: str
    b: str
    capacity_mbps: float | None = None
    delay_ms: float | None = None

    def key(self) -> tuple:
        return tuple(sorted((self.a, self.b)))

    def to_dict(self) -> dict:
        return {
            "a": self.a,
            "b": self.b,
            "capacity_mbps": self.capacity_mbps,
            "delay_ms": self.delay_ms,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LinkOverride":
        if not isinstance(data, dict) or "a" not in data or "b" not in data:
            raise TrafficError("link override needs 'a' and 'b' machine names")
        return cls(
            a=str(data["a"]),
            b=str(data["b"]),
            capacity_mbps=(
                None
                if data.get("capacity_mbps") is None
                else float(data["capacity_mbps"])
            ),
            delay_ms=(
                None if data.get("delay_ms") is None else float(data["delay_ms"])
            ),
        )


@dataclass(frozen=True)
class TrafficProfile:
    """A complete workload: classes plus the link-model defaults."""

    name: str = "traffic"
    duration: float = 10.0
    classes: tuple = ()
    default_capacity_mbps: float = DEFAULT_CAPACITY_MBPS
    default_delay_ms: float = DEFAULT_DELAY_MS
    #: Tail-drop queue depth per link; None derives it from the
    #: bandwidth-delay product (2 * delay * capacity, floored).
    queue_bytes: int | None = None
    #: Seconds of simulated time one FaultSchedule round spans.
    round_seconds: float = 1.0
    #: How long flows keep using the stale forwarding state after a
    #: mid-run fault before the reconverged paths take over.
    reconvergence_seconds: float = 0.25
    links: tuple = field(default_factory=tuple)

    def validate(self) -> None:
        if self.duration <= 0:
            raise TrafficError("profile duration must be > 0")
        if self.round_seconds <= 0:
            raise TrafficError("profile round_seconds must be > 0")
        if self.reconvergence_seconds < 0:
            raise TrafficError("profile reconvergence_seconds must be >= 0")
        if not self.classes:
            raise TrafficError("profile %r declares no traffic classes" % self.name)
        names = [entry.name for entry in self.classes]
        if len(names) != len(set(names)):
            raise TrafficError("profile %r has duplicate class names" % self.name)
        for entry in self.classes:
            entry.validate()

    def resolved_queue_bytes(self) -> int:
        if self.queue_bytes is not None:
            return max(int(self.queue_bytes), 1)
        bdp = (
            self.default_capacity_mbps * 1e6 / 8.0
        ) * (2.0 * self.default_delay_ms / 1e3)
        return max(int(bdp), MIN_QUEUE_BYTES)

    def class_window(self, entry: TrafficClass) -> tuple:
        """The (start, end) simulated-time window a class is active in."""
        start = min(entry.start, self.duration)
        if entry.duration is None:
            return start, self.duration
        return start, min(start + entry.duration, self.duration)

    def scaled(self, factor: float) -> "TrafficProfile":
        """A copy with every offered rate multiplied by ``factor``.

        Used by benchmarks and load sweeps: the flow *pattern* (pairs,
        windows, sizes) is preserved while offered load scales.
        """
        scaled_classes = tuple(
            replace(
                entry,
                qps=entry.qps * factor,
                users=max(1, int(round(entry.users * factor))) if entry.users else 0,
                flows=int(round(entry.flows * factor)),
            )
            for entry in self.classes
        )
        return replace(self, classes=scaled_classes)

    # -- serialisation ------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "duration": self.duration,
            "classes": [entry.to_dict() for entry in self.classes],
            "default_capacity_mbps": self.default_capacity_mbps,
            "default_delay_ms": self.default_delay_ms,
            "queue_bytes": self.queue_bytes,
            "round_seconds": self.round_seconds,
            "reconvergence_seconds": self.reconvergence_seconds,
            "links": [link.to_dict() for link in self.links],
        }

    def to_json(self) -> str:
        """Canonical JSON: key-sorted, so equal profiles hash equal."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "TrafficProfile":
        if not isinstance(data, dict):
            raise TrafficError("traffic profile must be a JSON object")
        profile = cls(
            name=str(data.get("name", "traffic")),
            duration=float(data.get("duration", 10.0)),
            classes=tuple(
                TrafficClass.from_dict(entry) for entry in data.get("classes") or ()
            ),
            default_capacity_mbps=float(
                data.get("default_capacity_mbps", DEFAULT_CAPACITY_MBPS)
            ),
            default_delay_ms=float(data.get("default_delay_ms", DEFAULT_DELAY_MS)),
            queue_bytes=(
                None if data.get("queue_bytes") is None else int(data["queue_bytes"])
            ),
            round_seconds=float(data.get("round_seconds", 1.0)),
            reconvergence_seconds=float(data.get("reconvergence_seconds", 0.25)),
            links=tuple(
                LinkOverride.from_dict(entry) for entry in data.get("links") or ()
            ),
        )
        profile.validate()
        return profile

    @classmethod
    def from_json(cls, text: str) -> "TrafficProfile":
        try:
            data = json.loads(text)
        except ValueError as error:
            raise TrafficError("invalid traffic profile JSON: %s" % error)
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: str) -> "TrafficProfile":
        if not os.path.exists(path):
            raise TrafficError("traffic profile not found: %s" % path)
        with open(path) as handle:
            return cls.from_json(handle.read())


def coerce_profile(source) -> TrafficProfile:
    """Accept a TrafficProfile, a dict, JSON text, or a file path."""
    if isinstance(source, TrafficProfile):
        return source
    if isinstance(source, dict):
        return TrafficProfile.from_dict(source)
    if isinstance(source, str):
        stripped = source.lstrip()
        if stripped.startswith("{"):
            return TrafficProfile.from_json(source)
        return TrafficProfile.load(source)
    raise TrafficError(
        "cannot build a traffic profile from %r" % type(source).__name__
    )
