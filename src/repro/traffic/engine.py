"""The flow-level traffic simulator.

A :class:`TrafficEngine` offers the flows a :class:`TrafficProfile`
describes to a booted :class:`~repro.emulation.lab.EmulatedLab` and
measures what the network delivers.  Forwarding comes from the lab's
converged dataplane (so BGP policy, IGP costs and fault state all shape
the paths); performance comes from a per-link transmission model:

* every directed hop has a capacity, a propagation delay, and a bounded
  FIFO queue (tail-drop at the bandwidth-delay product by default);
* a flow arriving at a busy link waits for the residual backlog —
  ``wait = busy_until - now`` on a transmission-only clock — and the
  queued bytes that wait implies (``wait * capacity``) decide drops, so
  latency, jitter and loss *emerge* from offered load instead of being
  scripted; propagation delay is added to the delivered latency but
  never to the contention clock;
* processing flows in global start order keeps the model O(hops) per
  flow and fully deterministic: same seed + profile ⇒ bit-identical
  :class:`~repro.traffic.report.TrafficReport`.

Mid-run :class:`~repro.resilience.FaultSchedule` events map onto the
simulated clock (``at_round * profile.round_seconds``).  When a link or
node goes down the lab reconverges, but flows launched inside the
reconvergence window still follow the *stale* forwarding state: those
that cross the dead hop stall until reconvergence completes and then
retry over the new path — the latency spike and queue burst the §7
disruption experiments look for.

Mid-run **live updates** ride the same clock: ``live_plans`` is a list
of ``(at_seconds, DiffPlan)`` entries, each applied to the running lab
with :func:`repro.liveupdate.apply.apply_plan` (one incremental
reconvergence, no reboot).  A live update has no dead hops — a pure
cost change leaves the old paths physically alive — so instead every
device the plan touches is *disturbed* for the reconvergence window:
stale-path flows crossing a disturbed router stall until the window
closes and then retry over the new forwarding state, yielding the same
bounded p99 blip shape as a fault, minus the packet loss.
"""

from __future__ import annotations

import hashlib
import heapq
import time
from random import Random

from repro.exceptions import TrafficError
from repro.liveupdate.apply import apply_plan
from repro.liveupdate.plan import DiffPlan
from repro.observability import (
    INFO,
    gauge_set,
    log_event,
    metric_inc,
    metric_observe,
    span,
)
from repro.observability.metrics import Histogram
from repro.resilience.faults import (
    LINK_DOWN,
    LINK_UP,
    NODE_DOWN,
    NODE_UP,
    FaultSchedule,
)
from repro.traffic.links import (
    BUSY_SECONDS,
    BUSY_UNTIL,
    BYTES,
    CAPACITY_BPS,
    DELAY_S,
    DROPS,
    FLOWS,
    QUEUE_BYTES,
    LinkModel,
)
from repro.supervision.context import checkpoint
from repro.traffic.profile import TrafficProfile, coerce_profile
from repro.traffic.report import ClassReport, TrafficReport

#: Supervision checkpoint cadence inside the flow loop — frequent enough
#: that a cancelled/overdue run unwinds promptly, rare enough to stay
#: invisible in the per-flow cost profile.
_CHECKPOINT_EVERY = 1024


def _class_seed(seed: int, profile_name: str, class_name: str, index: int) -> int:
    """A per-class RNG seed stable across processes and interpreters.

    ``hash()`` of strings is randomised per process (PYTHONHASHSEED), so
    the derivation goes through sha256 instead.
    """
    text = "%d|%s|%s|%d" % (seed, profile_name, class_name, index)
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:8], "big")


class _PairPool:
    """The deterministic (source, destination) pool one class draws from."""

    __slots__ = ("pairs",)

    def __init__(self, entry, machines, rng: Random):
        sources = list(entry.sources) or machines
        destinations = list(entry.destinations) or machines
        missing = [
            name
            for name in set(sources) | set(destinations)
            if name not in set(machines)
        ]
        if missing:
            raise TrafficError(
                "traffic class %r names unknown machine(s): %s"
                % (entry.name, ", ".join(sorted(missing)))
            )
        pairs = []
        seen = set()
        # Rejection-sample distinct pairs; bounded attempts keep tiny
        # source/destination sets from spinning forever.
        attempts = 0
        limit = entry.pair_count
        max_attempts = max(64, limit * 16)
        while len(pairs) < limit and attempts < max_attempts:
            attempts += 1
            src = sources[rng.randrange(len(sources))]
            dst = destinations[rng.randrange(len(destinations))]
            if src == dst or (src, dst) in seen:
                continue
            seen.add((src, dst))
            pairs.append((src, dst))
        if not pairs:
            raise TrafficError(
                "traffic class %r has no usable (source, destination) pairs"
                % entry.name
            )
        self.pairs = pairs


def _arrivals(entry, window, rng: Random, class_index: int):
    """Yield (start_time, class_index, pair_slot) in time order."""
    start, end = window
    if end <= start:
        return
    if entry.kind == "bulk":
        count = int(entry.flows)
        if count <= 0:
            return
        width = end - start
        offsets = sorted(rng.random() for _ in range(count))
        for offset in offsets:
            yield (start + offset * width, class_index, rng.getrandbits(30))
        return

    now = start
    if entry.kind == "request_response":
        rate = float(entry.qps)
        if rate <= 0:
            return
        while True:
            now += rng.expovariate(rate)
            if now >= end:
                return
            yield (now, class_index, rng.getrandbits(30))
        return

    # locust-style ramp: arrival rate users(t) * qps, users(t) linear
    # over ramp_seconds then flat.  Thinning keeps arrivals Poisson.
    peak_rate = float(entry.users) * float(entry.qps)
    if peak_rate <= 0:
        return
    ramp = max(float(entry.ramp_seconds), 0.0)
    while True:
        now += rng.expovariate(peak_rate)
        if now >= end:
            return
        elapsed = now - start
        active_fraction = 1.0 if elapsed >= ramp or ramp <= 0 else elapsed / ramp
        if rng.random() < active_fraction:
            yield (now, class_index, rng.getrandbits(30))


class TrafficEngine:
    """Runs one profile against one lab and produces the report."""

    def __init__(
        self,
        lab,
        profile,
        seed: int = 0,
        schedule: FaultSchedule | None = None,
        link_overrides: dict | None = None,
        live_plans: list | None = None,
    ):
        self.lab = lab
        self.profile: TrafficProfile = coerce_profile(profile)
        self.profile.validate()
        self.seed = int(seed)
        self.schedule = schedule
        if schedule is not None:
            schedule.validate(lab)
        self.live_plans: list[tuple[float, DiffPlan]] = []
        for at_seconds, plan in live_plans or []:
            if isinstance(plan, dict):
                plan = DiffPlan.from_dict(plan)
            if plan.platform and plan.platform != lab.intent.platform:
                raise TrafficError(
                    "live plan targets platform %r but the lab is %r"
                    % (plan.platform, lab.intent.platform)
                )
            at_time = float(at_seconds)
            if at_time < 0:
                raise TrafficError(
                    "live update time must be >= 0, got %r" % (at_seconds,)
                )
            self.live_plans.append((at_time, plan))
        self.links = LinkModel(self.profile, link_overrides)
        self._machines = sorted(lab.network.all_machines)
        # pair pool index -> (hop_state_lists, hop_pair_names) | None
        self._paths: dict = {}
        self._stale_paths: dict | None = None
        self._stale_until = 0.0
        self._dead_hops: set = set()
        self._down_nodes: set = set()
        self._disturbed_nodes: set = set()

    # -- path resolution ----------------------------------------------------
    def _destination_address(self, machine: str):
        device = self.lab.network.all_machines[machine]
        address = device.loopback
        if address is not None:
            return address
        for interface in device.interfaces:
            if interface.ip_address is not None and not interface.is_management:
                return interface.ip_address
        return None

    def _compute_path(self, src: str, dst: str):
        """(hop_states, hop_pairs) for src→dst, or None when unroutable."""
        address = self._destination_address(dst)
        if address is None:
            return None
        trace = self.lab.dataplane.trace(src, address)
        if not trace.reached:
            return None
        machines = [src] + trace.machines()
        hop_pairs = [
            (a, b) for a, b in zip(machines, machines[1:]) if a != b
        ]
        if not hop_pairs:
            return None
        hop_states = [self.links.link_state(a, b) for a, b in hop_pairs]
        return hop_states, hop_pairs

    def _path_for(self, key, src: str, dst: str):
        path = self._paths.get(key, _MISSING)
        if path is _MISSING:
            path = self._compute_path(src, dst)
            self._paths[key] = path
        return path

    # -- fault handling -----------------------------------------------------
    def _fault_times(self):
        if self.schedule is None:
            return []
        return [
            (at_round * self.profile.round_seconds, at_round, list(events))
            for at_round, events in self.schedule.grouped()
        ]

    def _change_times(self):
        """Every mid-run change — faults and live updates — on one clock.

        Sorted by (time, kind) so simultaneous events apply in a
        deterministic order (faults before live updates).
        """
        entries = [
            (at_time, "fault", events)
            for at_time, _at_round, events in self._fault_times()
        ]
        entries.extend(
            (at_time, "live_update", plan) for at_time, plan in self.live_plans
        )
        entries.sort(key=lambda entry: (entry[0], entry[1]))
        return entries

    def _apply_change(self, at_time: float, kind: str, payload, report):
        if kind == "fault":
            self._apply_fault_round(at_time, payload, report)
        else:
            self._apply_live_plan(at_time, payload, report)

    def _apply_fault_round(self, at_time: float, events, report: TrafficReport):
        for event in events:
            if event.kind == LINK_DOWN:
                self.lab.link_down(*event.target, reconverge=False)
                left, right = event.target
                self._dead_hops.add((left, right))
                self._dead_hops.add((right, left))
            elif event.kind == LINK_UP:
                self.lab.link_up(*event.target, reconverge=False)
                left, right = event.target
                self._dead_hops.discard((left, right))
                self._dead_hops.discard((right, left))
            elif event.kind == NODE_DOWN:
                self.lab.node_down(event.target[0], reconverge=False)
                self._down_nodes.add(event.target[0])
            elif event.kind == NODE_UP:
                self.lab.node_up(event.target[0], reconverge=False)
                self._down_nodes.discard(event.target[0])
            metric_inc("traffic.faults_applied")
            report.faults.append(
                {"time": at_time, "kind": event.kind,
                 "target": " ".join(event.target)}
            )
            log_event(
                INFO, "traffic.fault",
                "traffic fault at t=%.2fs: %s %s"
                % (at_time, event.kind, " ".join(event.target)),
            )
        with span("traffic.reconverge", at_time=at_time):
            self.lab.reconverge()
        # flows inside the reconvergence window still see the old paths
        self._stale_paths = self._paths
        self._paths = {}
        self._stale_until = at_time + self.profile.reconvergence_seconds

    def _apply_live_plan(self, at_time: float, plan: DiffPlan, report):
        """Apply one DiffPlan to the running lab mid-run, no reboot.

        ``apply_plan`` validates, commits, and reconverges incrementally;
        stale-path bookkeeping then mirrors a fault round.  The devices
        the plan touched are *disturbed* until the reconvergence window
        closes — routers being reprogrammed forward on stale state, so
        in-flight flows crossing them stall and retry like flows over a
        dead hop, producing the live-change latency blip.
        """
        apply_report = apply_plan(self.lab, plan, strict=False, isolate=True)
        metric_inc("traffic.live_updates_applied")
        report.faults.append(
            {"time": at_time, "kind": "live_update",
             "target": " ".join(plan.devices())}
        )
        log_event(
            INFO, "traffic.fault",
            "live update at t=%.2fs: %s" % (at_time, apply_report.summary()),
        )
        self._disturbed_nodes = set(plan.devices())
        self._stale_paths = self._paths
        self._paths = {}
        self._stale_until = at_time + self.profile.reconvergence_seconds

    def _hop_is_dead(self, pair) -> bool:
        return (
            pair in self._dead_hops
            or pair[0] in self._down_nodes
            or pair[1] in self._down_nodes
            or pair[0] in self._disturbed_nodes
            or pair[1] in self._disturbed_nodes
        )

    # -- the simulation -----------------------------------------------------
    def run(self) -> TrafficReport:
        profile = self.profile
        started = time.perf_counter()
        report = TrafficReport(
            profile=profile.name, seed=self.seed, duration=profile.duration
        )

        class_entries = list(profile.classes)
        pools = []
        streams = []
        for index, entry in enumerate(class_entries):
            rng = Random(_class_seed(self.seed, profile.name, entry.name, index))
            pools.append(_PairPool(entry, self._machines, rng))
            window = profile.class_window(entry)
            streams.append(_arrivals(entry, window, rng, index))
            report.classes.append(ClassReport(name=entry.name, kind=entry.kind))

        flow_bytes = [entry.flow_bytes() for entry in class_entries]
        pair_lists = [pool.pairs for pool in pools]
        class_reports = report.classes

        bucket_width = profile.round_seconds
        buckets: dict = {}

        change_queue = self._change_times()
        change_cursor = 0
        prev_latency = [None] * len(class_entries)
        jitter_sum = [0.0] * len(class_entries)
        jitter_n = [0] * len(class_entries)

        flows_seen = 0
        with span(
            "traffic.run", profile=profile.name, seed=self.seed,
            classes=len(class_entries),
        ):
            for start, class_index, slot in heapq.merge(*streams):
                flows_seen += 1
                if not flows_seen % _CHECKPOINT_EVERY:
                    checkpoint("traffic.run")
                while (
                    change_cursor < len(change_queue)
                    and change_queue[change_cursor][0] <= start
                ):
                    at_time, kind, payload = change_queue[change_cursor]
                    self._apply_change(at_time, kind, payload, report)
                    change_cursor += 1

                stats = class_reports[class_index]
                size = flow_bytes[class_index]
                pairs = pair_lists[class_index]
                src, dst = pairs[slot % len(pairs)]
                stats.offered_flows += 1
                stats.offered_bytes += size

                bucket_key = int(start / bucket_width)
                bucket = buckets.get(bucket_key)
                if bucket is None:
                    bucket = buckets[bucket_key] = _Bucket(bucket_key * bucket_width)
                bucket.offered += 1

                key = (class_index, src, dst)
                launch = start
                path = None
                if self._stale_paths is not None:
                    if start >= self._stale_until:
                        self._stale_paths = None
                        self._disturbed_nodes = set()
                    else:
                        stale = self._stale_paths.get(key)
                        if stale is not None:
                            dead = any(
                                self._hop_is_dead(pair) for pair in stale[1]
                            )
                            if dead:
                                # disrupted: stall until reconvergence
                                # completes, then retry over the new path
                                launch = self._stale_until
                                path = self._path_for(key, src, dst)
                            else:
                                path = stale
                if path is None:
                    path = self._path_for(key, src, dst)

                if path is None:
                    stats.unroutable_flows += 1
                    bucket.dropped += 1
                    continue

                # The busy_until cascade: wait, queue-check, transmit.
                # Contention runs on a transmission-only clock — the
                # backlog a flow sees (``wait * capacity`` bytes) is real
                # queued data, and propagation delay is added to latency
                # afterwards so a reservation on a far hop never makes
                # the link look busy to an earlier arrival.
                t = launch
                propagation = 0.0
                delivered = True
                for state in path[0]:
                    busy = state[BUSY_UNTIL]
                    if busy > t:
                        wait = busy - t
                        if wait * state[CAPACITY_BPS] > state[QUEUE_BYTES]:
                            state[DROPS] += 1
                            delivered = False
                            break
                    else:
                        wait = 0.0
                    service = size / state[CAPACITY_BPS]
                    departure = t + wait + service
                    state[BUSY_UNTIL] = departure
                    state[BUSY_SECONDS] += service
                    state[BYTES] += size
                    state[FLOWS] += 1
                    t = departure
                    propagation += state[DELAY_S]

                if not delivered:
                    stats.dropped_flows += 1
                    bucket.dropped += 1
                    continue

                latency = t + propagation - start
                stats.delivered_flows += 1
                stats.delivered_bytes += size
                stats.latency.observe(latency)
                bucket.delivered += 1
                bucket.latency.observe(latency)
                previous = prev_latency[class_index]
                if previous is not None:
                    jitter_sum[class_index] += abs(latency - previous)
                    jitter_n[class_index] += 1
                prev_latency[class_index] = latency

            # changes scheduled after the last arrival still apply, so a
            # rerun that extends the profile stays consistent
            while change_cursor < len(change_queue):
                at_time, kind, payload = change_queue[change_cursor]
                if at_time > profile.duration:
                    break
                self._apply_change(at_time, kind, payload, report)
                change_cursor += 1

        for index, stats in enumerate(class_reports):
            if jitter_n[index]:
                stats.jitter_ms = jitter_sum[index] / jitter_n[index] * 1e3

        report.links = self.links.utilization_rows(profile.duration)
        report.timeline = [
            buckets[key].to_dict() for key in sorted(buckets)
        ]
        report.elapsed_seconds = time.perf_counter() - started
        self._export_metrics(report)
        return report

    def _export_metrics(self, report: TrafficReport) -> None:
        """Feed the run's aggregates into the ambient metrics registry."""
        totals = report.totals()
        metric_inc("traffic.flows_offered", totals["offered_flows"])
        metric_inc("traffic.flows_delivered", totals["delivered_flows"])
        metric_inc("traffic.flows_dropped", totals["dropped_flows"])
        metric_inc("traffic.bytes_delivered", totals["delivered_bytes"])
        gauge_set("traffic.loss_rate", totals["loss_rate"])
        gauge_set("traffic.offered_load_mbps", totals["offered_load_mbps"])
        gauge_set("traffic.delivered_load_mbps", totals["delivered_load_mbps"])
        for entry in report.classes:
            # replay the bounded reservoir (≤512 samples/class) so the
            # registry histograms carry the same percentile estimates
            name = "traffic.latency_ms.%s" % entry.name
            for sample in entry.latency.samples:
                metric_observe(name, sample * 1e3)


class _Bucket:
    """One timeline bucket: offered/delivered/dropped + p99."""

    __slots__ = ("start", "offered", "delivered", "dropped", "latency")

    def __init__(self, start: float):
        self.start = start
        self.offered = 0
        self.delivered = 0
        self.dropped = 0
        self.latency = Histogram()

    def to_dict(self) -> dict:
        p99 = self.latency.percentile(99)
        p50 = self.latency.percentile(50)
        return {
            "start": self.start,
            "offered": self.offered,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "p50_ms": None if p50 is None else p50 * 1e3,
            "p99_ms": None if p99 is None else p99 * 1e3,
        }


_MISSING = object()


def run_traffic(
    lab,
    profile,
    seed: int = 0,
    schedule: FaultSchedule | None = None,
    link_overrides: dict | None = None,
    live_plans: list | None = None,
) -> TrafficReport:
    """Offer ``profile``'s flows to ``lab`` and return the report.

    ``live_plans`` is an optional list of ``(at_seconds, DiffPlan)``
    entries applied to the running lab mid-run — see
    :meth:`TrafficEngine._apply_live_plan`.
    """
    engine = TrafficEngine(
        lab, profile, seed=seed, schedule=schedule,
        link_overrides=link_overrides, live_plans=live_plans,
    )
    return engine.run()
