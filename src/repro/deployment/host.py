"""Emulation hosts: where rendered labs are shipped and started.

The paper deploys over SSH/expect to a remote emulation server and runs
Netkit's ``lstart``.  :class:`LocalEmulationHost` is the substituted
equivalent: it exposes the same staged surface (receive an archive,
extract it, start the lab, report status) against the local filesystem
and the in-process emulation substrate, preserving the workflow and its
failure modes (a missing lab.conf aborts the start, exactly as lstart
would).
"""

from __future__ import annotations

import os
import shutil
import tarfile
import tempfile

from repro.emulation import EmulatedLab
from repro.exceptions import DeploymentError


class LocalEmulationHost:
    """An emulation host rooted at a working directory on this machine."""

    def __init__(self, work_dir: str | None = None, name: str = "localhost"):
        self.name = name
        self.work_dir = work_dir or tempfile.mkdtemp(prefix="emulation_host_")
        os.makedirs(self.work_dir, exist_ok=True)
        self._labs: dict[str, EmulatedLab] = {}

    # -- the deployment surface ----------------------------------------------
    def receive(self, archive_path: str, lab_name: str) -> str:
        """'Transfer' an archive onto the host; returns the remote path."""
        if not os.path.exists(archive_path):
            raise DeploymentError("archive %s does not exist" % archive_path)
        destination = os.path.join(self.work_dir, "%s.tar.gz" % lab_name)
        shutil.copyfile(archive_path, destination)
        return destination

    def extract(self, archive_path: str, lab_name: str) -> str:
        """Extract a received archive; returns the lab directory."""
        lab_dir = os.path.join(self.work_dir, lab_name)
        if os.path.exists(lab_dir):
            shutil.rmtree(lab_dir)
        os.makedirs(lab_dir)
        try:
            with tarfile.open(archive_path) as archive:
                archive.extractall(lab_dir, filter="data")
        except tarfile.TarError as exc:
            raise DeploymentError("could not extract %s: %s" % (archive_path, exc)) from exc
        return lab_dir

    def lstart(self, lab_dir: str, lab_name: str, **boot_options) -> EmulatedLab:
        """Start the lab (the in-process equivalent of Netkit lstart)."""
        if not os.path.isdir(lab_dir):
            raise DeploymentError("lab directory %s does not exist" % lab_dir)
        try:
            lab = EmulatedLab.boot(lab_dir, **boot_options)
        except Exception as exc:
            raise DeploymentError("lab %s failed to start: %s" % (lab_name, exc)) from exc
        self._labs[lab_name] = lab
        return lab

    def lhalt(self, lab_name: str) -> None:
        """Stop a running lab."""
        if lab_name not in self._labs:
            raise DeploymentError("no running lab named %r" % lab_name)
        del self._labs[lab_name]

    # -- inspection ---------------------------------------------------------
    def running_labs(self) -> list[str]:
        return sorted(self._labs)

    def lab(self, lab_name: str) -> EmulatedLab:
        try:
            return self._labs[lab_name]
        except KeyError:
            raise DeploymentError("no running lab named %r" % lab_name) from None

    def vm_count(self, lab_name: str) -> int:
        return len(self.lab(lab_name).network)

    def __repr__(self) -> str:
        return "LocalEmulationHost(%s, %d labs running)" % (self.name, len(self._labs))
