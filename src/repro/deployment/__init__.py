"""Automated deployment of rendered labs onto emulation hosts (§5.7)."""

from repro.deployment.deploy import DeploymentRecord, archive_lab, deploy
from repro.deployment.host import LocalEmulationHost
from repro.deployment.monitor import ProgressEvent, ProgressMonitor

__all__ = [
    "DeploymentRecord",
    "LocalEmulationHost",
    "ProgressEvent",
    "ProgressMonitor",
    "archive_lab",
    "deploy",
]
