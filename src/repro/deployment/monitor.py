"""Deployment progress monitoring (§5.7, §6.1).

"The progress is monitored with updates provided to the user through
logs and the visualisation."  The monitor collects structured events
per deployment stage — stage, message, wall-clock stamp, a *monotonic*
stamp, elapsed offset, and free-form fields — and forwards them to
optional callbacks (the CLI logger, the visualisation push channel, a
test harness...).  Formatting happens in ``__str__`` at display time,
not at creation, and every event is also routed into the structured
event log of the active telemetry (or an explicit ``event_log``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.observability import INFO, EventLog, current_telemetry

ProgressCallback = Callable[["ProgressEvent"], None]


@dataclass
class ProgressEvent:
    """One step of a deployment, as structured fields.

    ``monotonic`` (a ``perf_counter`` stamp) orders events reliably
    even across wall-clock adjustments; ``timestamp`` is wall time for
    correlation; ``elapsed`` is the offset from the monitor's start.
    """

    stage: str
    message: str
    timestamp: float = 0.0
    elapsed: float = 0.0
    monotonic: float = 0.0
    fields: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "stage": self.stage,
            "message": self.message,
            "timestamp": self.timestamp,
            "elapsed": self.elapsed,
            "fields": dict(self.fields),
        }

    def __str__(self) -> str:
        return "[%7.3fs] %-10s %s" % (self.elapsed, self.stage, self.message)


@dataclass
class ProgressMonitor:
    """Collects events and fans them out to callbacks and the event log."""

    callbacks: list[ProgressCallback] = field(default_factory=list)
    events: list[ProgressEvent] = field(default_factory=list)
    started: Optional[float] = None
    event_log: Optional[EventLog] = None

    def start(self) -> None:
        self.started = time.perf_counter()
        self.events.clear()

    def update(self, stage: str, message: str, **fields) -> ProgressEvent:
        now = time.perf_counter()
        if self.started is None:
            self.started = now
        event = ProgressEvent(
            stage=stage,
            message=message,
            timestamp=time.time(),
            elapsed=now - self.started,
            monotonic=now,
            fields=fields,
        )
        self.events.append(event)
        for callback in self.callbacks:
            callback(event)
        event_log = self.event_log
        if event_log is None:
            telemetry = current_telemetry()
            event_log = telemetry.events if telemetry is not None else None
        if event_log is not None:
            event_log.emit(INFO, "deploy.%s" % stage, message, **fields)
        return event

    def stages(self) -> list[str]:
        ordered = []
        for event in self.events:
            if event.stage not in ordered:
                ordered.append(event.stage)
        return ordered

    def log(self) -> str:
        return "\n".join(str(event) for event in self.events)
