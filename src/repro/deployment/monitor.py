"""Deployment progress monitoring (§5.7, §6.1).

"The progress is monitored with updates provided to the user through
logs and the visualisation."  The monitor collects timestamped events
per deployment stage and forwards them to optional callbacks (the CLI
logger, the visualisation push channel, a test harness...).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

ProgressCallback = Callable[["ProgressEvent"], None]


@dataclass
class ProgressEvent:
    """One step of a deployment: stage name, message, wall-clock stamp."""

    stage: str
    message: str
    timestamp: float
    elapsed: float

    def __str__(self) -> str:
        return "[%7.3fs] %-10s %s" % (self.elapsed, self.stage, self.message)


@dataclass
class ProgressMonitor:
    """Collects events and fans them out to callbacks."""

    callbacks: list[ProgressCallback] = field(default_factory=list)
    events: list[ProgressEvent] = field(default_factory=list)
    started: Optional[float] = None

    def start(self) -> None:
        self.started = time.perf_counter()
        self.events.clear()

    def update(self, stage: str, message: str) -> ProgressEvent:
        now = time.perf_counter()
        if self.started is None:
            self.started = now
        event = ProgressEvent(
            stage=stage,
            message=message,
            timestamp=time.time(),
            elapsed=now - self.started,
        )
        self.events.append(event)
        for callback in self.callbacks:
            callback(event)
        return event

    def stages(self) -> list[str]:
        ordered = []
        for event in self.events:
            if event.stage not in ordered:
                ordered.append(event.stage)
        return ordered

    def log(self) -> str:
        return "\n".join(str(event) for event in self.events)
