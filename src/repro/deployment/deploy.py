"""Automated deployment: archive, transfer, extract, start, monitor (§6.1).

"The Netkit deployment script archives the generated configuration
files, transfers them to the emulation host, extracts them, and runs
the Netkit lstart command."  This module is that script — the paper
notes the whole flow is under a hundred lines of high-level code, a
property this implementation preserves.

Each stage runs under a :class:`~repro.resilience.RetryPolicy` (default
:data:`~repro.resilience.NO_RETRY`, preserving fail-fast behaviour):
transient host errors are retried with deterministic backoff and every
attempt lands in telemetry as ``retry.*`` metrics and ``fault.*``
events.  The archive staging directory is temporary and cleaned up when
the deployment finishes unless ``keep_archive=True``.
"""

from __future__ import annotations

import logging
import os
import shutil
import tarfile
import tempfile
from dataclasses import dataclass, field

from repro.deployment.host import LocalEmulationHost
from repro.deployment.monitor import ProgressMonitor
from repro.emulation import EmulatedLab
from repro.exceptions import DeploymentError
from repro.observability import gauge_set, metric_inc, span
from repro.resilience import NO_RETRY, RetryPolicy, retry_call
from repro.supervision import checkpoint

logger = logging.getLogger("repro.deployment")


@dataclass
class DeploymentRecord:
    """Everything a finished deployment produced."""

    lab_name: str
    host: LocalEmulationHost
    lab: EmulatedLab
    archive_path: str
    lab_dir: str
    timings: dict = field(default_factory=dict)
    monitor: ProgressMonitor = field(default_factory=ProgressMonitor)


def archive_lab(source_dir: str, lab_name: str, archive_dir: str | None = None) -> str:
    """Tar up a rendered lab directory for transfer.

    Without ``archive_dir`` a fresh temporary directory is created; the
    caller owns its lifetime (:func:`deploy` removes it when done).
    """
    if not os.path.isdir(source_dir):
        raise DeploymentError("rendered lab directory %s does not exist" % source_dir)
    archive_dir = archive_dir or tempfile.mkdtemp(prefix="lab_archive_")
    archive_path = os.path.join(archive_dir, "%s.tar.gz" % lab_name)
    with tarfile.open(archive_path, "w:gz") as archive:
        for entry in sorted(os.listdir(source_dir)):
            archive.add(os.path.join(source_dir, entry), arcname=entry)
    return archive_path


def deploy(
    source_dir: str,
    host: LocalEmulationHost | None = None,
    lab_name: str = "lab",
    username: str = "emulation",
    monitor: ProgressMonitor | None = None,
    retry_policy: RetryPolicy = NO_RETRY,
    keep_archive: bool = False,
    **boot_options,
) -> DeploymentRecord:
    """Run the full deployment flow and return the running lab.

    The three parameters of §6.1 — emulation host, username, and the
    source directory of configurations — map directly onto the
    arguments; the username is kept for interface fidelity (a local
    host does not authenticate).

    ``retry_policy`` governs every stage that touches the host; the
    default single attempt preserves fail-fast semantics.  The staged
    archive is deleted on return unless ``keep_archive=True`` (it has
    already been transferred to the host either way).
    """
    host = host or LocalEmulationHost()
    monitor = monitor or ProgressMonitor()
    monitor.start()
    timings: dict[str, float] = {}
    archive_staging: str | None = None

    try:
        with span("deploy.archive", lab_name=lab_name) as stage:
            checkpoint("deploy.archive")
            monitor.update("archive", "archiving %s" % source_dir, source_dir=source_dir)
            archive_path = retry_call(
                lambda: archive_lab(source_dir, lab_name),
                policy=retry_policy,
                operation="deploy.archive",
            )
            archive_staging = os.path.dirname(archive_path)
        timings["archive"] = stage.duration

        with span("deploy.transfer", host=host.name) as stage:
            checkpoint("deploy.transfer")
            monitor.update(
                "transfer",
                "transferring to %s as %s" % (host.name, username),
                host=host.name,
                username=username,
            )
            remote_archive = retry_call(
                lambda: host.receive(archive_path, lab_name),
                policy=retry_policy,
                operation="deploy.transfer",
            )
        timings["transfer"] = stage.duration

        with span("deploy.extract") as stage:
            checkpoint("deploy.extract")
            monitor.update("extract", "extracting %s" % remote_archive)
            lab_dir = retry_call(
                lambda: host.extract(remote_archive, lab_name),
                policy=retry_policy,
                operation="deploy.extract",
            )
        timings["extract"] = stage.duration

        with span("deploy.lstart", lab_name=lab_name) as stage:
            checkpoint("deploy.lstart")
            monitor.update("lstart", "starting lab %s" % lab_name, lab_name=lab_name)
            lab = retry_call(
                lambda: host.lstart(lab_dir, lab_name, **boot_options),
                policy=retry_policy,
                operation="deploy.lstart",
            )
        timings["start"] = stage.duration
        metric_inc("deploy.labs_started")
    finally:
        if not keep_archive and archive_staging is not None:
            shutil.rmtree(archive_staging, ignore_errors=True)

    quarantined = getattr(lab, "quarantined", {})
    gauge_set("deploy.quarantined_vms", len(quarantined))
    if quarantined:
        logger.warning(
            "lab %s booted degraded: %d VM(s) quarantined (%s)",
            lab_name,
            len(quarantined),
            ", ".join(sorted(quarantined)),
        )

    logger.info(
        "lab %s deployed to %s in %.2fs",
        lab_name,
        host.name,
        sum(timings.values()),
    )
    monitor.update(
        "ready",
        "%d virtual machines up%s, BGP %s"
        % (
            len(lab.network),
            " (%d quarantined)" % len(quarantined) if quarantined else "",
            "converged" if lab.converged else ("oscillating" if lab.oscillating else "running"),
        ),
    )
    return DeploymentRecord(
        lab_name=lab_name,
        host=host,
        lab=lab,
        archive_path=archive_path,
        lab_dir=lab_dir,
        timings=timings,
        monitor=monitor,
    )
