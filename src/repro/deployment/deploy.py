"""Automated deployment: archive, transfer, extract, start, monitor (§6.1).

"The Netkit deployment script archives the generated configuration
files, transfers them to the emulation host, extracts them, and runs
the Netkit lstart command."  This module is that script — the paper
notes the whole flow is under a hundred lines of high-level code, a
property this implementation preserves.
"""

from __future__ import annotations

import logging
import os
import tarfile
import tempfile
from dataclasses import dataclass, field

from repro.deployment.host import LocalEmulationHost
from repro.deployment.monitor import ProgressMonitor
from repro.emulation import EmulatedLab
from repro.exceptions import DeploymentError
from repro.observability import metric_inc, span

logger = logging.getLogger("repro.deployment")


@dataclass
class DeploymentRecord:
    """Everything a finished deployment produced."""

    lab_name: str
    host: LocalEmulationHost
    lab: EmulatedLab
    archive_path: str
    lab_dir: str
    timings: dict = field(default_factory=dict)
    monitor: ProgressMonitor = field(default_factory=ProgressMonitor)


def archive_lab(source_dir: str, lab_name: str, archive_dir: str | None = None) -> str:
    """Tar up a rendered lab directory for transfer."""
    if not os.path.isdir(source_dir):
        raise DeploymentError("rendered lab directory %s does not exist" % source_dir)
    archive_dir = archive_dir or tempfile.mkdtemp(prefix="lab_archive_")
    archive_path = os.path.join(archive_dir, "%s.tar.gz" % lab_name)
    with tarfile.open(archive_path, "w:gz") as archive:
        for entry in sorted(os.listdir(source_dir)):
            archive.add(os.path.join(source_dir, entry), arcname=entry)
    return archive_path


def deploy(
    source_dir: str,
    host: LocalEmulationHost | None = None,
    lab_name: str = "lab",
    username: str = "emulation",
    monitor: ProgressMonitor | None = None,
    **boot_options,
) -> DeploymentRecord:
    """Run the full deployment flow and return the running lab.

    The three parameters of §6.1 — emulation host, username, and the
    source directory of configurations — map directly onto the
    arguments; the username is kept for interface fidelity (a local
    host does not authenticate).
    """
    host = host or LocalEmulationHost()
    monitor = monitor or ProgressMonitor()
    monitor.start()
    timings: dict[str, float] = {}

    with span("deploy.archive", lab_name=lab_name) as stage:
        monitor.update("archive", "archiving %s" % source_dir, source_dir=source_dir)
        archive_path = archive_lab(source_dir, lab_name)
    timings["archive"] = stage.duration

    with span("deploy.transfer", host=host.name) as stage:
        monitor.update(
            "transfer",
            "transferring to %s as %s" % (host.name, username),
            host=host.name,
            username=username,
        )
        remote_archive = host.receive(archive_path, lab_name)
    timings["transfer"] = stage.duration

    with span("deploy.extract") as stage:
        monitor.update("extract", "extracting %s" % remote_archive)
        lab_dir = host.extract(remote_archive, lab_name)
    timings["extract"] = stage.duration

    with span("deploy.lstart", lab_name=lab_name) as stage:
        monitor.update("lstart", "starting lab %s" % lab_name, lab_name=lab_name)
        lab = host.lstart(lab_dir, lab_name, **boot_options)
    timings["start"] = stage.duration
    metric_inc("deploy.labs_started")

    logger.info(
        "lab %s deployed to %s in %.2fs",
        lab_name,
        host.name,
        sum(timings.values()),
    )
    monitor.update(
        "ready",
        "%d virtual machines up, BGP %s"
        % (
            len(lab.network),
            "converged" if lab.converged else ("oscillating" if lab.oscillating else "running"),
        ),
    )
    return DeploymentRecord(
        lab_name=lab_name,
        host=host,
        lab=lab,
        archive_path=archive_path,
        lab_dir=lab_dir,
        timings=timings,
        monitor=monitor,
    )
