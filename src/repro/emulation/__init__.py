"""Emulated network substrate: boots rendered configs into a running lab.

This package is the substitution for the real emulation platforms the
paper deploys onto (Netkit/Dynagen/Junosphere/C-BGP): it parses the
*generated configuration files*, builds the layer-2 fabric, converges
OSPF and BGP (with per-vendor decision-process semantics), and offers
virtual machines that execute measurement commands.  See DESIGN.md.
"""

from repro.emulation.bgp_engine import (
    VENDOR_PROFILES,
    BgpResult,
    BgpRoute,
    BgpSimulation,
    VendorProfile,
)
from repro.emulation.dataplane import Dataplane, ForwardingDecision, TraceResult
from repro.emulation.dns_engine import DnsEngine
from repro.emulation.intent import (
    BgpIntent,
    BgpNeighborIntent,
    DeviceIntent,
    DnsIntent,
    DnsZoneIntent,
    InterfaceIntent,
    IsisIntent,
    LabIntent,
    OspfIntent,
)
from repro.emulation.lab import EmulatedLab, detect_platform
from repro.emulation.network import EmulatedNetwork, Segment
from repro.emulation.ospf_engine import IgpRoute, IgpState
from repro.emulation.vm import VirtualMachine
from repro.emulation.whatif import (
    compare_reachability,
    fail_links,
    fail_node,
    reachability_matrix,
    reachability_summary,
)

__all__ = [
    "BgpIntent",
    "BgpNeighborIntent",
    "BgpResult",
    "BgpRoute",
    "BgpSimulation",
    "Dataplane",
    "DeviceIntent",
    "DnsEngine",
    "DnsIntent",
    "DnsZoneIntent",
    "EmulatedLab",
    "EmulatedNetwork",
    "ForwardingDecision",
    "IgpRoute",
    "IgpState",
    "InterfaceIntent",
    "IsisIntent",
    "LabIntent",
    "OspfIntent",
    "Segment",
    "TraceResult",
    "VENDOR_PROFILES",
    "VendorProfile",
    "VirtualMachine",
    "compare_reachability",
    "detect_platform",
    "fail_links",
    "fail_node",
    "reachability_matrix",
    "reachability_summary",
]
