"""Virtual machines: realistic command execution on emulated devices.

Each machine of a booted lab is wrapped in a :class:`VirtualMachine`
whose :meth:`run` accepts the same command strings a measurement client
would send over the management network — ``traceroute -naU``, ``ping``,
``show ip ospf neighbor``, ``show ip bgp summary`` — and returns
realistic text output.  The measurement layer then parses that text
with textfsm-lite, closing the same loop as the paper (§5.7): results
come back as *text*, not API objects.
"""

from __future__ import annotations

import ipaddress
from typing import Optional

from repro.emulation.intent import DeviceIntent
from repro.exceptions import MeasurementError


def _rtt(seed: str, sample: int) -> str:
    """Deterministic pseudo-RTT so output is stable across runs."""
    value = (hash_str(seed) + sample * 37) % 900 + 50
    return "%.3f" % (value / 1000.0)


def hash_str(text: str) -> int:
    value = 0
    for char in text:
        value = (value * 131 + ord(char)) % 1000003
    return value


class VirtualMachine:
    """One booted machine, addressable by name."""

    def __init__(self, lab, name: str):
        self.lab = lab
        self.name = name

    @property
    def intent(self) -> DeviceIntent:
        return self.lab.network.device(self.name)

    # -- command dispatch ------------------------------------------------------
    def run(self, command: str) -> str:
        """Execute a command string and return its text output."""
        parts = command.split()
        if not parts:
            raise MeasurementError("empty command")
        if parts[0] == "traceroute":
            target = parts[-1]
            numeric = any(flag.startswith("-") and "n" in flag for flag in parts[1:-1])
            return self.traceroute(target, numeric=numeric)
        if parts[0] == "ping":
            return self.ping(parts[-1])
        if parts[0] == "hostname":
            return self.intent.hostname or self.name
        if parts[:4] == ["show", "ip", "ospf", "neighbor"]:
            return self.show_ip_ospf_neighbor()
        if parts[:4] == ["show", "ip", "bgp", "summary"]:
            return self.show_ip_bgp_summary()
        if parts[:3] == ["show", "ip", "bgp"]:
            return self.show_ip_bgp()
        if parts[:3] == ["show", "ip", "route"]:
            return self.show_ip_route()
        if parts[:4] == ["show", "ip", "interface", "brief"]:
            return self.show_ip_interface_brief()
        if parts[:2] == ["show", "version"]:
            return self.show_version()
        if parts[:2] == ["show", "running-config"] or parts[:2] == ["show", "run"]:
            return self.show_running_config()
        if parts[0] in ("nslookup", "host"):
            return self.nslookup(parts[-1])
        raise MeasurementError("unsupported command %r" % command)

    # -- name/address helpers ----------------------------------------------------
    def _target_address(self, target: str) -> ipaddress.IPv4Address:
        try:
            return ipaddress.ip_address(target)
        except ValueError:
            resolved = self.lab.dns.resolve(target, client=self.name)
            if resolved is None:
                raise MeasurementError(
                    "%s: cannot resolve %r" % (self.name, target)
                ) from None
            return ipaddress.ip_address(resolved)

    def _display(self, address: str, numeric: bool) -> str:
        if numeric:
            return address
        name = self.lab.dns.reverse(address)
        return "%s (%s)" % (name, address) if name else address

    # -- probes -------------------------------------------------------------------
    def traceroute(self, target: str, numeric: bool = True) -> str:
        destination = self._target_address(target)
        trace = self.lab.dataplane.trace(self.name, destination)
        lines = [
            "traceroute to %s (%s), 30 hops max, 60 byte packets"
            % (target, destination)
        ]
        for index, (machine, address) in enumerate(trace.hops, start=1):
            rtts = "  ".join(
                "%s ms" % _rtt("%s%s%d" % (machine, address, index), sample)
                for sample in range(3)
            )
            lines.append(
                "%2d  %s  %s" % (index, self._display(address, numeric), rtts)
            )
        if not trace.reached:
            lines.append("%2d  * * *" % (len(trace.hops) + 1))
        return "\n".join(lines)

    def ping(self, target: str) -> str:
        destination = self._target_address(target)
        reached = self.lab.dataplane.ping(self.name, destination)
        received = 1 if reached else 0
        lines = ["PING %s (%s) 56(84) bytes of data." % (target, destination)]
        if reached:
            lines.append(
                "64 bytes from %s: icmp_seq=1 ttl=64 time=%s ms"
                % (destination, _rtt(str(destination), 1))
            )
        lines.append("")
        lines.append("--- %s ping statistics ---" % destination)
        lines.append(
            "1 packets transmitted, %d received, %d%% packet loss"
            % (received, (1 - received) * 100)
        )
        return "\n".join(lines)

    # -- show commands -----------------------------------------------------------
    def show_ip_ospf_neighbor(self) -> str:
        lines = [
            "Neighbor ID     Pri State           Dead Time Address         Interface"
        ]
        for neighbor_name, _ in self.lab.igp.neighbors(self.name):
            neighbor = self.lab.network.device(neighbor_name)
            router_id = (
                neighbor.ospf.router_id
                if neighbor.ospf and neighbor.ospf.router_id
                else str(neighbor.loopback or "0.0.0.0")
            )
            address = self.lab.network.address_on_segment_with(neighbor_name, self.name)
            interface = self._interface_towards(neighbor_name)
            lines.append(
                "%-15s %3d Full/DR         00:00:35  %-15s %s"
                % (router_id, 1, address, interface or "?")
            )
        return "\n".join(lines)

    def _interface_towards(self, neighbor_name: str) -> Optional[str]:
        for segment in self.lab.network.shared_segments(self.name, neighbor_name):
            interface = segment.interface_of(self.name)
            if interface is not None:
                return interface.name
        return None

    def show_ip_bgp_summary(self) -> str:
        device = self.intent
        if device.bgp is None:
            return "% BGP not active"
        lines = [
            "BGP router identifier %s, local AS number %d"
            % (device.bgp.router_id or device.loopback, device.bgp.asn),
            "Neighbor        V    AS MsgRcvd MsgSent   TblVer  InQ OutQ Up/Down  State/PfxRcd",
        ]
        selected = self.lab.bgp_result.selected.get(self.name, {})
        for neighbor in device.bgp.neighbors:
            peer_machine = self.lab.network.owner_of(neighbor.peer_ip)
            received = sum(
                1 for route in selected.values() if route.learned_from == peer_machine
            )
            lines.append(
                "%-15s 4 %5d %7d %7d %8d %4d %4d %s %8d"
                % (
                    neighbor.peer_ip,
                    neighbor.remote_asn,
                    self.lab.bgp_result.rounds,
                    self.lab.bgp_result.rounds,
                    0,
                    0,
                    0,
                    "00:01:00",
                    received,
                )
            )
        return "\n".join(lines)

    def show_ip_bgp(self) -> str:
        device = self.intent
        if device.bgp is None:
            return "% BGP not active"
        lines = [
            "BGP table version is 1, local router ID is %s"
            % (device.bgp.router_id or device.loopback),
            "   Network          Next Hop            Metric LocPrf Weight Path",
        ]
        selected = self.lab.bgp_result.selected.get(self.name, {})
        for prefix in sorted(selected, key=lambda p: (p.network_address, p.prefixlen)):
            route = selected[prefix]
            path = " ".join(str(asn) for asn in route.as_path)
            next_hop = str(route.next_hop) if route.next_hop else "0.0.0.0"
            weight = 32768 if route.learned_via == "local" else 0
            lines.append(
                "*> %-16s %-18s %6d %6d %6d %s i"
                % (prefix, next_hop, route.med or 0, route.local_pref, weight, path)
            )
        return "\n".join(lines)

    def show_ip_route(self) -> str:
        lines = []
        for network_ in sorted(
            self.lab.network.connected_networks(self.name),
            key=lambda n: (n.network_address, n.prefixlen),
        ):
            lines.append("C>* %s is directly connected" % network_)
        igp_routes = self.lab.igp.routes(self.name)
        for prefix in sorted(igp_routes, key=lambda p: (p.network_address, p.prefixlen)):
            route = igp_routes[prefix]
            via = self.lab.network.address_on_segment_with(route.next_hop, self.name)
            lines.append("O>* %s [110/%d] via %s" % (prefix, route.metric, via))
        selected = self.lab.bgp_result.selected.get(self.name, {})
        for prefix in sorted(selected, key=lambda p: (p.network_address, p.prefixlen)):
            route = selected[prefix]
            if route.learned_via == "local":
                continue
            distance = 20 if route.learned_via == "ebgp" else 200
            lines.append(
                "B>* %s [%d/0] via %s" % (prefix, distance, route.next_hop)
            )
        return "\n".join(lines)

    def show_ip_interface_brief(self) -> str:
        lines = ["Interface       IP-Address      OK? Method Status                Protocol"]
        for interface in self.intent.interfaces:
            address = str(interface.ip_address) if interface.ip_address else "unassigned"
            lines.append(
                "%-15s %-15s YES manual up                    up"
                % (interface.name, address)
            )
        return "\n".join(lines)

    def show_version(self) -> str:
        vendor = self.intent.vendor
        banner = {
            "quagga": "Quagga 0.99.22 (zebra/ospfd/bgpd/isisd)",
            "ios": "Cisco IOS Software, 7200 Software (C7200-ADVENTERPRISEK9-M)",
            "junos": "JUNOS Base OS boot [12.1R1.9]",
            "cbgp": "C-BGP routing solver 2.3.2",
        }.get(vendor, vendor)
        return "%s\n%s uptime is 1 minute" % (banner, self.intent.hostname or self.name)

    def show_running_config(self) -> str:
        """The device's actual configuration files, read back from disk."""
        import glob
        import os

        lab_dir = self.lab.lab_dir
        if lab_dir is None:
            return "%% configuration archive unavailable (lab built from intent)"
        platform = self.lab.intent.platform
        if platform == "netkit":
            paths = sorted(
                glob.glob(os.path.join(lab_dir, self.name, "etc", "quagga", "*.conf"))
            )
        elif platform == "dynagen":
            paths = [os.path.join(lab_dir, "configs", "%s.cfg" % self.name)]
        elif platform == "junosphere":
            paths = [os.path.join(lab_dir, "configs", "%s.conf" % self.name)]
        else:
            paths = [os.path.join(lab_dir, "network.cli")]
        sections = []
        for path in paths:
            if os.path.exists(path):
                with open(path) as handle:
                    sections.append(
                        "! file: %s\n%s" % (os.path.basename(path), handle.read())
                    )
        if not sections:
            return "%% no configuration files found"
        return "\n".join(sections)

    def nslookup(self, target: str) -> str:
        try:
            address = ipaddress.ip_address(target)
        except ValueError:
            resolved = self.lab.dns.resolve(target, client=self.name)
            if resolved is None:
                return "** server can't find %s: NXDOMAIN" % target
            return "Name:\t%s\nAddress: %s" % (target, resolved)
        name = self.lab.dns.reverse(address)
        if name is None:
            return "** server can't find %s: NXDOMAIN" % target
        return "%s.in-addr.arpa\tname = %s." % (
            ".".join(reversed(str(address).split("."))),
            name,
        )

    def __repr__(self) -> str:
        return "VirtualMachine(%s)" % self.name
