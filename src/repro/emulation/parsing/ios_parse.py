"""IOS configuration parser and Dynagen lab loader.

Parses the generated monolithic IOS configurations (interface stanzas
with dotted-mask addresses, wildcard-mask OSPF network statements,
``mask``-style BGP network statements, and route-map policy).
"""

from __future__ import annotations

import ipaddress
import os
import re

from repro.emulation.intent import (
    BgpIntent,
    BgpNeighborIntent,
    DeviceIntent,
    InterfaceIntent,
    IsisIntent,
    LabIntent,
    OspfIntent,
)
from repro.emulation.parsing.parallel import parse_machines
from repro.exceptions import ConfigParseError


def parse_ios_config(text: str, machine: str) -> DeviceIntent:
    """Parse one IOS router configuration into device intent."""
    device = DeviceIntent(name=machine, vendor="ios")
    hostname = re.search(r"^hostname\s+(\S+)", text, re.MULTILINE)
    device.hostname = hostname.group(1) if hostname else machine

    section = None
    current_interface: InterfaceIntent | None = None
    route_maps = _route_map_actions(text)
    prefix_lists = _prefix_list_denies(text)

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        stripped = line.strip()
        if not stripped or stripped.startswith("!"):
            continue
        if stripped.startswith("interface "):
            name = stripped.split(None, 1)[1]
            current_interface = InterfaceIntent(
                name=name, is_loopback=name.lower().startswith("loopback")
            )
            device.interfaces.append(current_interface)
            section = "interface"
            continue
        if stripped.startswith("router ospf"):
            device.ospf = OspfIntent(process_id=int(stripped.split()[-1]))
            section = "ospf"
            continue
        if stripped.startswith("router isis"):
            parts = stripped.split()
            device.isis = IsisIntent(process_id=int(parts[2]) if len(parts) > 2 else 1)
            section = "isis"
            continue
        if stripped.startswith("router bgp"):
            device.bgp = BgpIntent(asn=int(stripped.split()[-1]))
            section = "bgp"
            continue
        if (
            stripped.startswith("route-map")
            or stripped.startswith("ip prefix-list")
            or stripped == "end"
        ):
            section = None
            continue

        if section == "interface" and current_interface is not None:
            if stripped.startswith("ip address "):
                parts = stripped.split()
                current_interface.ip_address = ipaddress.ip_address(parts[2])
                current_interface.prefixlen = ipaddress.ip_network(
                    "0.0.0.0/%s" % parts[3]
                ).prefixlen
            elif stripped.startswith("ip ospf cost "):
                current_interface.ospf_cost = int(stripped.split()[-1])
        elif section == "ospf" and device.ospf is not None:
            if stripped.startswith("router-id "):
                device.ospf.router_id = stripped.split()[-1]
            elif stripped.startswith("network "):
                parts = stripped.split()
                try:
                    # Wildcard (host) mask: invert to a netmask, since
                    # ipaddress treats all-zero masks ambiguously.
                    wildcard = int(ipaddress.ip_address(parts[2]))
                    netmask = ipaddress.ip_address(wildcard ^ 0xFFFFFFFF)
                    network = ipaddress.ip_network("%s/%s" % (parts[1], netmask))
                    area = int(parts[4])
                except (ValueError, IndexError) as exc:
                    raise ConfigParseError(
                        "bad OSPF network statement %r" % stripped, machine, lineno
                    ) from exc
                device.ospf.networks.append((network, area))
        elif section == "isis" and device.isis is not None:
            if stripped.startswith("net "):
                device.isis.net = stripped.split()[1]
        elif section == "bgp" and device.bgp is not None:
            _parse_bgp_line(
                device.bgp, stripped, route_maps, prefix_lists, machine, lineno
            )

    if device.ospf is not None:
        for interface in device.interfaces:
            device.ospf.interface_costs[interface.name] = interface.ospf_cost
    return device


def _parse_bgp_line(
    bgp: BgpIntent, line: str, route_maps, prefix_lists, machine, lineno
) -> None:
    if line.startswith("bgp router-id "):
        bgp.router_id = line.split()[-1]
        return
    if line.startswith("network "):
        parts = line.split()
        if len(parts) >= 4 and parts[2] == "mask":
            bgp.networks.append(ipaddress.ip_network("%s/%s" % (parts[1], parts[3])))
        else:
            bgp.networks.append(ipaddress.ip_network(parts[1], strict=False))
        return
    if not line.startswith("neighbor "):
        return
    parts = line.split()
    peer = parts[1]
    existing = bgp.neighbor_for(peer)
    if parts[2] == "remote-as":
        bgp.neighbors.append(
            BgpNeighborIntent(
                peer_ip=ipaddress.ip_address(peer), remote_asn=int(parts[3])
            )
        )
    elif existing is None:
        raise ConfigParseError(
            "neighbor %s configured before remote-as" % peer, machine, lineno
        )
    elif parts[2] == "description":
        existing.description = " ".join(parts[3:])
    elif parts[2] == "update-source":
        existing.update_source = parts[3]
    elif parts[2] == "next-hop-self":
        existing.next_hop_self = True
    elif parts[2] == "route-reflector-client":
        existing.rr_client = True
    elif parts[2] == "route-map" and parts[-1] == "in":
        existing.local_pref_in = route_maps.get(parts[3], {}).get("local_pref")
    elif parts[2] == "route-map" and parts[-1] == "out":
        actions = route_maps.get(parts[3], {})
        if actions.get("metric") is not None:
            existing.med_out = actions["metric"]
        existing.prepend_out = actions.get("prepend", 0)
        existing.communities_out = actions.get("communities", ())
    elif parts[2] == "prefix-list" and parts[-1] == "out":
        existing.deny_out = prefix_lists.get(parts[3], ())
    elif parts[2] == "prefix-list" and parts[-1] == "in":
        existing.deny_in = prefix_lists.get(parts[3], ())


def _route_map_actions(text: str) -> dict[str, dict]:
    """Route-map set actions: local_pref, metric (MED), prepend count."""
    actions: dict[str, dict] = {}
    current = None
    for raw in text.splitlines():
        line = raw.strip()
        if line.startswith("route-map ") and " permit " in line:
            current = line.split()[1]
            actions[current] = {}
        elif current is None:
            continue
        elif line.startswith("set local-preference "):
            actions[current]["local_pref"] = int(line.split()[-1])
        elif line.startswith("set metric "):
            actions[current]["metric"] = int(line.split()[-1])
        elif line.startswith("set as-path prepend "):
            actions[current]["prepend"] = len(line.split()[3:])
        elif line.startswith("set community "):
            actions[current]["communities"] = tuple(
                token for token in line.split()[2:] if token != "additive"
            )
    return actions


def parse_dynagen_lab(lab_dir: str | os.PathLike, jobs: int = 1) -> LabIntent:
    """Parse a rendered Dynagen lab: lab.net plus configs/*.cfg.

    Per-router configs are independent; ``jobs > 1`` fans the parses
    out over the engine executors with results assembled in sorted
    order, identical to a serial parse.
    """
    lab_dir = str(lab_dir)
    configs_dir = os.path.join(lab_dir, "configs")
    if not os.path.isdir(configs_dir):
        raise ConfigParseError("no configs/ directory in %s" % lab_dir, configs_dir)
    lab = LabIntent(platform="dynagen")
    machines = sorted(
        entry[: -len(".cfg")]
        for entry in os.listdir(configs_dir)
        if entry.endswith(".cfg")
    )

    def parse_one(machine: str) -> DeviceIntent:
        with open(os.path.join(configs_dir, machine + ".cfg")) as handle:
            try:
                return parse_ios_config(handle.read(), machine)
            except ConfigParseError as exc:
                # One broken router does not abort the lab parse: the
                # boot layer raises (strict) or quarantines (non-strict).
                device = DeviceIntent(name=machine, vendor="ios")
                device.boot_errors.append(exc)
                return device

    for machine, device in parse_machines(machines, parse_one, jobs=jobs):
        lab.devices[machine] = device
    return lab


def _prefix_list_denies(text: str) -> dict[str, tuple]:
    """Prefix-list deny entries: {list name: (denied networks, ...)}."""
    denies: dict[str, list] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line.startswith("ip prefix-list "):
            continue
        parts = line.split()
        if len(parts) >= 6 and parts[5] == "deny":
            denies.setdefault(parts[2], []).append(
                ipaddress.ip_network(parts[6], strict=False)
            )
        else:
            denies.setdefault(parts[2], [])
    return {name: tuple(entries) for name, entries in denies.items()}
