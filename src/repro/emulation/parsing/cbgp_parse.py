"""C-BGP script parser.

C-BGP describes the whole network in one script: nodes are identified
by their loopback address, links connect node pairs with IGP weights,
and BGP routers/sessions are declared per node.  The parser builds one
:class:`DeviceIntent` per node; links become synthetic point-to-point
collision domains carrying the IGP weight.
"""

from __future__ import annotations

import ipaddress
import os

from repro.emulation.intent import (
    BgpIntent,
    BgpNeighborIntent,
    DeviceIntent,
    InterfaceIntent,
    LabIntent,
    OspfIntent,
)
from repro.exceptions import ConfigParseError


def parse_cbgp_script(text: str) -> LabIntent:
    """Parse a network.cli script into a lab intent."""
    lab = LabIntent(platform="cbgp")
    domains: dict[str, int] = {}
    link_weights: dict[tuple[str, str], int] = {}

    def device(node_ip: str) -> DeviceIntent:
        if node_ip not in lab.devices:
            intent = DeviceIntent(name=node_ip, vendor="cbgp", hostname=node_ip)
            intent.interfaces.append(
                InterfaceIntent(
                    name="lo0",
                    ip_address=ipaddress.ip_address(node_ip),
                    prefixlen=32,
                    is_loopback=True,
                )
            )
            lab.devices[node_ip] = intent
        return lab.devices[node_ip]

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        try:
            if parts[:3] == ["net", "add", "node"]:
                device(parts[3])
            elif parts[:3] == ["net", "add", "link"]:
                src, dst = parts[3], parts[4]
                device(src)
                device(dst)
                link_weights.setdefault(_link_key(src, dst), 1)
            elif parts[:2] == ["net", "link"] and "igp-weight" in parts:
                src, dst = parts[2], parts[3]
                link_weights[_link_key(src, dst)] = int(parts[-1])
            elif parts[:2] == ["net", "node"] and parts[3] == "domain":
                domains[parts[2]] = int(parts[4])
            elif parts[:3] == ["bgp", "add", "router"]:
                asn, node_ip = int(parts[3]), parts[4]
                device(node_ip).bgp = BgpIntent(asn=asn, router_id=node_ip)
            elif parts[:2] == ["bgp", "router"] and parts[3:5] == ["add", "network"]:
                device(parts[2]).bgp.networks.append(
                    ipaddress.ip_network(parts[5], strict=False)
                )
            elif parts[:2] == ["bgp", "router"] and parts[3:5] == ["add", "peer"]:
                node_ip, remote_asn, peer_ip = parts[2], int(parts[5]), parts[6]
                bgp = device(node_ip).bgp
                bgp.neighbors.append(
                    BgpNeighborIntent(
                        peer_ip=ipaddress.ip_address(peer_ip),
                        remote_asn=remote_asn,
                        update_source="lo0" if remote_asn == bgp.asn else None,
                    )
                )
            elif parts[:2] == ["bgp", "router"] and parts[3] == "peer":
                bgp = device(parts[2]).bgp
                neighbor = bgp.neighbor_for(parts[4])
                if neighbor is None:
                    raise ConfigParseError(
                        "peer %s option before add peer" % parts[4], "network.cli", lineno
                    )
                option = parts[5]
                if option == "rr-client":
                    neighbor.rr_client = True
                elif option == "next-hop-self":
                    neighbor.next_hop_self = True
        except (IndexError, ValueError, AttributeError) as exc:
            raise ConfigParseError(
                "bad C-BGP line %r: %s" % (line, exc), "network.cli", lineno
            ) from exc

    _build_links(lab, link_weights)
    _apply_domains(lab, domains)
    return lab


def _link_key(src: str, dst: str) -> tuple[str, str]:
    return (src, dst) if src <= dst else (dst, src)


def _build_links(lab: LabIntent, link_weights: dict) -> None:
    for index, ((src, dst), weight) in enumerate(sorted(link_weights.items())):
        domain = "link_%d" % index
        for node_ip in (src, dst):
            lab.devices[node_ip].interfaces.append(
                InterfaceIntent(
                    name="if_%d" % index,
                    collision_domain=domain,
                    ospf_cost=weight,
                )
            )


def _apply_domains(lab: LabIntent, domains: dict[str, int]) -> None:
    # Every node in an IGP domain advertises its loopback; this mirrors
    # C-BGP's "net domain <asn> compute" full-domain SPF.
    for node_ip, domain in domains.items():
        intent = lab.devices.get(node_ip)
        if intent is None:
            continue
        intent.igp_domain = domain
        if intent.ospf is None:
            intent.ospf = OspfIntent(router_id=node_ip)
        intent.ospf.networks.append(
            (ipaddress.ip_network("%s/32" % node_ip), 0)
        )
        for interface in intent.interfaces:
            intent.ospf.interface_costs[interface.name] = interface.ospf_cost


def parse_cbgp_lab(lab_dir: str | os.PathLike, jobs: int = 1) -> LabIntent:
    """Parse a rendered C-BGP lab directory (network.cli).

    A C-BGP lab is one monolithic script, so there is no per-machine
    work to fan out; ``jobs`` is accepted for interface parity with
    the other platform parsers and ignored.
    """
    del jobs
    path = os.path.join(str(lab_dir), "network.cli")
    if not os.path.exists(path):
        raise ConfigParseError("no network.cli in %s" % lab_dir, path)
    with open(path) as handle:
        return parse_cbgp_script(handle.read())
