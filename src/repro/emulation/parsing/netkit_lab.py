"""Netkit lab parser: lab.conf + startup files + /etc trees (§5.7).

Boots a lab *from the rendered files on disk*, the same artefacts
Netkit's ``lstart`` consumes: ``lab.conf`` gives the wiring,
``<machine>.startup`` the interface addressing, and each machine's
``etc/quagga``, ``etc/bind`` and ``etc/rpki`` trees the daemon
configurations.
"""

from __future__ import annotations

import ipaddress
import os
import re

from repro.emulation.intent import (
    DeviceIntent,
    DnsIntent,
    DnsZoneIntent,
    InterfaceIntent,
    LabIntent,
)
from repro.emulation.parsing.parallel import parse_machines
from repro.emulation.parsing.quagga_parse import (
    parse_bgpd,
    parse_isisd,
    parse_ospfd,
    parse_zebra,
)
from repro.exceptions import ConfigParseError
from repro.observability import metric_inc

#: The management (TAP) block: interfaces in it never carry lab traffic.
MANAGEMENT_BLOCK = ipaddress.ip_network("172.16.0.0/16")

_LAB_LINE = re.compile(r"^(?P<machine>[\w.-]+)\[(?P<index>\d+)\]=(?P<domain>\S+)$")
_IFCONFIG = re.compile(
    r"^/sbin/ifconfig\s+(?P<iface>\S+)\s+(?P<ip>\d+\.\d+\.\d+\.\d+)"
    r"\s+netmask\s+(?P<mask>\d+\.\d+\.\d+\.\d+)\s+up$"
)
_IFCONFIG_V6 = re.compile(
    r"^/sbin/ifconfig\s+(?P<iface>\S+)\s+add\s+(?P<ip>[0-9A-Fa-f:]+)/(?P<plen>\d+)\s+up$"
)


def parse_lab_conf(text: str) -> dict[str, dict[int, str]]:
    """Parse lab.conf into {machine: {interface index: collision domain}}."""
    wiring: dict[str, dict[int, str]] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#") or "=" not in line:
            continue
        if line.startswith("LAB_"):
            continue
        match = _LAB_LINE.match(line)
        if match is None:
            raise ConfigParseError("bad lab.conf line %r" % line, "lab.conf", lineno)
        wiring.setdefault(match.group("machine"), {})[int(match.group("index"))] = (
            match.group("domain")
        )
    return wiring


def parse_startup(text: str, machine: str) -> list[InterfaceIntent]:
    """Parse a .startup file's ifconfig lines into interface intents."""
    interfaces: list[InterfaceIntent] = []

    def find(iface_name):
        for intent in interfaces:
            if intent.name == iface_name:
                return intent
        return None

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        v6_match = _IFCONFIG_V6.match(line)
        if v6_match is not None:
            iface_name = v6_match.group("iface")
            target = find("lo" if iface_name.startswith("lo") else iface_name)
            if target is not None:
                target.ipv6_address = ipaddress.ip_address(v6_match.group("ip"))
                target.ipv6_prefixlen = int(v6_match.group("plen"))
            continue
        match = _IFCONFIG.match(line)
        if match is None:
            continue
        iface = match.group("iface")
        if iface == "lo":
            continue
        address = ipaddress.ip_address(match.group("ip"))
        prefixlen = ipaddress.ip_network(
            "0.0.0.0/%s" % match.group("mask")
        ).prefixlen
        if iface.startswith("lo:"):
            interfaces.append(
                InterfaceIntent(
                    name="lo",
                    ip_address=address,
                    prefixlen=prefixlen,
                    is_loopback=True,
                )
            )
        else:
            interfaces.append(
                InterfaceIntent(
                    name=iface,
                    ip_address=address,
                    prefixlen=prefixlen,
                    is_management=address in MANAGEMENT_BLOCK,
                )
            )
    return interfaces


def parse_bind_zone(text: str) -> DnsZoneIntent:
    """Parse a rendered bind zone file: A and PTR records."""
    origin = ""
    records: dict[str, str] = {}
    ptr_records: dict[str, str] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith((";", "$")):
            continue
        parts = line.split()
        if "SOA" in parts:
            origin = parts[parts.index("SOA") + 1].split(".", 1)[1].rstrip(".")
            continue
        if len(parts) >= 4 and parts[1] == "IN" and parts[2] == "A":
            records[parts[0]] = parts[3]
        elif len(parts) >= 4 and parts[1] == "IN" and parts[2] == "PTR":
            ptr_records[parts[0].rstrip(".")] = parts[3].rstrip(".")
    return DnsZoneIntent(origin=origin, records=records, ptr_records=ptr_records)


def parse_rpki_conf(text: str) -> dict:
    """Parse a rendered RPKI daemon config (key = value, repeatable)."""
    config: dict = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#") or "=" not in line:
            continue
        key, _, value = line.partition("=")
        key, value = key.strip(), value.strip()
        if key in ("resource", "roa", "publisher", "rtr_client"):
            config.setdefault(key + "s", []).append(value)
        else:
            config[key] = value
    return config


def parse_netkit_lab(lab_dir: str | os.PathLike, jobs: int = 1) -> LabIntent:
    """Parse a rendered Netkit lab directory into a :class:`LabIntent`.

    Each machine's files (startup + quagga + service trees) are
    independent, so with ``jobs > 1`` the per-machine parses fan out
    over the engine's executors; the devices dict is assembled in
    sorted machine order either way, so the resulting intent is
    identical to a serial parse.
    """
    lab_dir = str(lab_dir)
    lab_conf_path = os.path.join(lab_dir, "lab.conf")
    if not os.path.exists(lab_conf_path):
        raise ConfigParseError("no lab.conf in %s" % lab_dir, lab_conf_path)
    with open(lab_conf_path) as handle:
        wiring = parse_lab_conf(handle.read())

    lab = LabIntent(platform="netkit")
    machines = sorted(
        set(wiring)
        | {
            entry[: -len(".startup")]
            for entry in os.listdir(lab_dir)
            if entry.endswith(".startup")
        }
    )
    for machine, device in parse_machines(
        machines,
        lambda machine: _parse_machine(lab_dir, machine, wiring),
        jobs=jobs,
    ):
        lab.devices[machine] = device
    return lab


def _parse_machine(lab_dir: str, machine: str, wiring: dict) -> DeviceIntent:
    """Parse one machine's files — the independent unit of boot work."""
    device = DeviceIntent(name=machine, vendor="quagga")
    startup_path = os.path.join(lab_dir, "%s.startup" % machine)
    if os.path.exists(startup_path):
        with open(startup_path) as handle:
            device.interfaces = parse_startup(handle.read(), machine)
    for interface in device.interfaces:
        index = _interface_index(interface.name)
        if index is not None:
            interface.collision_domain = wiring.get(machine, {}).get(index)
    _load_quagga(lab_dir, machine, device)
    _load_services(lab_dir, machine, device)
    metric_inc("deploy.configs_parsed")
    return device


def _interface_index(name: str) -> int | None:
    match = re.match(r"^eth(\d+)$", name)
    return int(match.group(1)) if match else None


def _load_quagga(lab_dir: str, machine: str, device: DeviceIntent) -> None:
    """Parse one machine's quagga tree, collecting errors per device.

    A daemon config that fails to parse does not abort the whole lab
    parse: the error is recorded in ``device.boot_errors`` and the boot
    layer decides (strict mode raises it, non-strict quarantines the
    machine).  This mirrors a real host, where one broken VM leaves the
    rest of the lab starting normally.
    """
    quagga_dir = os.path.join(lab_dir, machine, "etc", "quagga")
    if not os.path.isdir(quagga_dir):
        return
    zebra_path = os.path.join(quagga_dir, "zebra.conf")
    if os.path.exists(zebra_path):
        with open(zebra_path) as handle:
            try:
                device.hostname = parse_zebra(handle.read(), zebra_path)
            except ConfigParseError as exc:
                device.boot_errors.append(exc)
    ospfd_path = os.path.join(quagga_dir, "ospfd.conf")
    if os.path.exists(ospfd_path):
        with open(ospfd_path) as handle:
            try:
                device.ospf = parse_ospfd(handle.read(), ospfd_path)
            except ConfigParseError as exc:
                device.boot_errors.append(exc)
        if device.ospf is not None:
            for interface in device.interfaces:
                if interface.name in device.ospf.interface_costs:
                    interface.ospf_cost = device.ospf.interface_costs[interface.name]
    bgpd_path = os.path.join(quagga_dir, "bgpd.conf")
    if os.path.exists(bgpd_path):
        with open(bgpd_path) as handle:
            try:
                device.bgp = parse_bgpd(handle.read(), bgpd_path)
            except ConfigParseError as exc:
                device.boot_errors.append(exc)
    isisd_path = os.path.join(quagga_dir, "isisd.conf")
    if os.path.exists(isisd_path):
        with open(isisd_path) as handle:
            try:
                device.isis = parse_isisd(handle.read(), isisd_path)
            except ConfigParseError as exc:
                device.boot_errors.append(exc)
        if device.isis is not None:
            for interface in device.interfaces:
                if interface.name in device.isis.interface_metrics:
                    interface.ospf_cost = device.isis.interface_metrics[interface.name]


def _load_services(lab_dir: str, machine: str, device: DeviceIntent) -> None:
    etc_dir = os.path.join(lab_dir, machine, "etc")
    bind_dir = os.path.join(etc_dir, "bind")
    dns = DnsIntent()
    have_dns = False
    if os.path.isdir(bind_dir):
        for entry in sorted(os.listdir(bind_dir)):
            if entry.startswith("db."):
                with open(os.path.join(bind_dir, entry)) as handle:
                    dns.zones.append(parse_bind_zone(handle.read()))
                dns.is_server = True
                have_dns = True
    resolv_path = os.path.join(etc_dir, "resolv.conf")
    if os.path.exists(resolv_path):
        with open(resolv_path) as handle:
            for raw in handle:
                parts = raw.split()
                if len(parts) >= 2 and parts[0] == "nameserver":
                    dns.resolver = parts[1]
                    have_dns = True
                elif len(parts) >= 2 and parts[0] == "domain":
                    dns.domain = parts[1]
    if have_dns:
        device.dns = dns

    rpki_dir = os.path.join(etc_dir, "rpki")
    if os.path.isdir(rpki_dir):
        for entry in sorted(os.listdir(rpki_dir)):
            if entry.endswith(".conf"):
                with open(os.path.join(rpki_dir, entry)) as handle:
                    config = parse_rpki_conf(handle.read())
                device.rpki_role = config.get("role")
                device.rpki_config = config
