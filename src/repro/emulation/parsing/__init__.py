"""Parsers that boot labs from rendered configuration files."""

from repro.emulation.parsing.cbgp_parse import parse_cbgp_lab, parse_cbgp_script
from repro.emulation.parsing.ios_parse import parse_dynagen_lab, parse_ios_config
from repro.emulation.parsing.junos_parse import (
    parse_braces,
    parse_junos_config,
    parse_junosphere_lab,
)
from repro.emulation.parsing.netkit_lab import (
    parse_bind_zone,
    parse_lab_conf,
    parse_netkit_lab,
    parse_rpki_conf,
    parse_startup,
)
from repro.emulation.parsing.quagga_parse import (
    parse_bgpd,
    parse_hostname,
    parse_isisd,
    parse_ospfd,
)

#: Platform name to lab parser.
LAB_PARSERS = {
    "netkit": parse_netkit_lab,
    "dynagen": parse_dynagen_lab,
    "junosphere": parse_junosphere_lab,
    "cbgp": parse_cbgp_lab,
}

__all__ = [
    "LAB_PARSERS",
    "parse_bgpd",
    "parse_bind_zone",
    "parse_braces",
    "parse_cbgp_lab",
    "parse_cbgp_script",
    "parse_dynagen_lab",
    "parse_hostname",
    "parse_ios_config",
    "parse_isisd",
    "parse_junos_config",
    "parse_junosphere_lab",
    "parse_lab_conf",
    "parse_netkit_lab",
    "parse_ospfd",
    "parse_rpki_conf",
    "parse_startup",
]
