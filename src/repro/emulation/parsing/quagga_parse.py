"""Parsers for Quagga daemon configuration files.

These parse the *generated* configuration text back into device intent,
which is how the emulation substrate validates the whole pipeline: a
template bug produces configs that fail to parse or boot, exactly as on
a real Netkit host.
"""

from __future__ import annotations

import ipaddress
import re

from repro.emulation.intent import (
    BgpIntent,
    BgpNeighborIntent,
    IsisIntent,
    OspfIntent,
)
from repro.exceptions import ConfigParseError


def parse_hostname(text: str) -> str | None:
    match = re.search(r"^hostname\s+(\S+)", text, re.MULTILINE)
    return match.group(1) if match else None


#: Directives zebra accepts at the top level; anything else means the
#: file is corrupt and the daemon would refuse to start.
_ZEBRA_KEYWORDS = frozenset(
    {
        "hostname", "password", "enable", "interface", "description",
        "log", "ip", "ipv6", "line", "service", "banner", "debug",
        "access-list", "route-map", "no", "table", "multicast",
        "shutdown", "link-detect", "bandwidth", "exit", "end",
    }
)


def parse_zebra(text: str, filename: str = "zebra.conf") -> str | None:
    """Validate a zebra.conf and return its hostname.

    Zebra itself exits on an unrecognised directive, so an invalid file
    means the VM never boots — this parser reproduces that by raising
    :class:`ConfigParseError` naming the file and line.
    """
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith(("!", "#")):
            continue
        keyword = line.split()[0]
        if keyword not in _ZEBRA_KEYWORDS:
            raise ConfigParseError(
                "unrecognised zebra directive %r" % keyword, filename, lineno
            )
    return parse_hostname(text)


def parse_ospfd(text: str, filename: str = "ospfd.conf") -> OspfIntent:
    """Parse an ospfd.conf: interface costs plus network statements."""
    intent = OspfIntent()
    current_interface = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("!"):
            continue
        if line.startswith("interface "):
            current_interface = line.split()[1]
        elif line.startswith("ip ospf cost "):
            if current_interface is None:
                raise ConfigParseError(
                    "ip ospf cost outside interface stanza", filename, lineno
                )
            intent.interface_costs[current_interface] = int(line.split()[-1])
        elif line.startswith("router ospf"):
            current_interface = None
        elif line.startswith("ospf router-id "):
            intent.router_id = line.split()[-1]
        elif line.startswith("network "):
            parts = line.split()
            try:
                network = ipaddress.ip_network(parts[1], strict=False)
                area = int(parts[3])
            except (ValueError, IndexError) as exc:
                raise ConfigParseError(
                    "bad network statement %r" % line, filename, lineno
                ) from exc
            intent.networks.append((network, area))
    return intent


def parse_isisd(text: str, filename: str = "isisd.conf") -> IsisIntent:
    intent = IsisIntent()
    current_interface = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("!"):
            continue
        if line.startswith("interface "):
            current_interface = line.split()[1]
        elif line.startswith("isis metric "):
            if current_interface is None:
                raise ConfigParseError("isis metric outside interface", filename, lineno)
            intent.interface_metrics[current_interface] = int(line.split()[-1])
        elif line.startswith("router isis"):
            current_interface = None
            parts = line.split()
            if len(parts) > 2:
                intent.process_id = int(parts[2])
        elif line.startswith("net "):
            intent.net = line.split()[1]
    return intent


def parse_bgpd(text: str, filename: str = "bgpd.conf") -> BgpIntent:
    """Parse a bgpd.conf: sessions, origination, and route-map policy."""
    route_maps = _route_map_actions(text)
    prefix_lists = _prefix_list_denies(text)
    local_prefs = {name: actions["local_pref"] for name, actions in route_maps.items()
                   if actions.get("local_pref") is not None}
    asn_match = re.search(r"^router bgp\s+(\d+)", text, re.MULTILINE)
    if asn_match is None:
        raise ConfigParseError("no 'router bgp' stanza", filename)
    intent = BgpIntent(asn=int(asn_match.group(1)))
    in_router = False
    neighbors: dict[str, BgpNeighborIntent] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("!"):
            continue
        if line.startswith("router bgp"):
            in_router = True
            continue
        if line.startswith("route-map"):
            in_router = False
        if not in_router:
            continue
        if line.startswith("bgp router-id "):
            intent.router_id = line.split()[-1]
        elif line.startswith("network "):
            intent.networks.append(ipaddress.ip_network(line.split()[1], strict=False))
        elif line.startswith("neighbor "):
            parts = line.split()
            peer = parts[1]
            if parts[2] == "remote-as":
                neighbors[peer] = BgpNeighborIntent(
                    peer_ip=ipaddress.ip_address(peer),
                    remote_asn=int(parts[3]),
                )
            elif peer not in neighbors:
                raise ConfigParseError(
                    "neighbor %s configured before remote-as" % peer, filename, lineno
                )
            elif parts[2] == "description":
                neighbors[peer].description = " ".join(parts[3:])
            elif parts[2] == "update-source":
                neighbors[peer].update_source = parts[3]
            elif parts[2] == "next-hop-self":
                neighbors[peer].next_hop_self = True
            elif parts[2] == "route-reflector-client":
                neighbors[peer].rr_client = True
            elif parts[2] == "route-map" and parts[-1] == "in":
                neighbors[peer].local_pref_in = local_prefs.get(parts[3])
            elif parts[2] == "route-map" and parts[-1] == "out":
                actions = route_maps.get(parts[3], {})
                if actions.get("metric") is not None:
                    neighbors[peer].med_out = actions["metric"]
                neighbors[peer].prepend_out = actions.get("prepend", 0)
                neighbors[peer].communities_out = actions.get("communities", ())
            elif parts[2] == "prefix-list" and parts[-1] == "out":
                neighbors[peer].deny_out = prefix_lists.get(parts[3], ())
            elif parts[2] == "prefix-list" and parts[-1] == "in":
                neighbors[peer].deny_in = prefix_lists.get(parts[3], ())
    intent.neighbors = list(neighbors.values())
    return intent


def _route_map_actions(text: str) -> dict[str, dict]:
    """Mapping of route-map name to its set actions.

    Collected actions: ``local_pref``, ``metric`` (MED), and
    ``prepend`` (number of ASNs in a ``set as-path prepend``).
    """
    actions: dict[str, dict] = {}
    current = None
    for raw in text.splitlines():
        line = raw.strip()
        if line.startswith("route-map ") and " permit " in line:
            current = line.split()[1]
            actions[current] = {}
        elif current is None:
            continue
        elif line.startswith("set local-preference "):
            actions[current]["local_pref"] = int(line.split()[-1])
        elif line.startswith("set metric "):
            actions[current]["metric"] = int(line.split()[-1])
        elif line.startswith("set as-path prepend "):
            actions[current]["prepend"] = len(line.split()[3:])
        elif line.startswith("set community "):
            members = [
                token
                for token in line.split()[2:]
                if token != "additive"
            ]
            actions[current]["communities"] = tuple(members)
    return actions


def _route_map_local_prefs(text: str) -> dict[str, int]:
    """Mapping of route-map name to the local-preference it sets."""
    return {
        name: acts["local_pref"]
        for name, acts in _route_map_actions(text).items()
        if acts.get("local_pref") is not None
    }


def _prefix_list_denies(text: str) -> dict[str, tuple]:
    """Prefix-list deny entries: {list name: (denied networks, ...)}."""
    denies: dict[str, list] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line.startswith("ip prefix-list "):
            continue
        parts = line.split()
        # ip prefix-list NAME seq N (deny|permit) CIDR [le N]
        if len(parts) >= 6 and parts[5] == "deny":
            denies.setdefault(parts[2], []).append(
                ipaddress.ip_network(parts[6], strict=False)
            )
        else:
            denies.setdefault(parts[2], [])
    return {name: tuple(entries) for name, entries in denies.items()}
