"""Shared fan-out helper for per-machine lab parsing.

Every platform parser has the same shape: a cheap global pass (the
wiring file) followed by fully independent per-machine work (reading
and parsing that machine's configuration files).  The per-machine part
is what ``jobs`` parallelises, reusing the engine's executors so the
same ``--jobs`` knob governs builds and boots alike.

Determinism: results are returned in the caller's machine order
regardless of completion order, so a parallel parse produces an intent
byte-identical to a serial one — the parallel-boot determinism tests
pin this down.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.engine.executors import make_executor, run_calls
from repro.observability import metric_inc


def parse_machines(
    machines: Sequence[str],
    parse_one: Callable[[str], object],
    jobs: int = 1,
) -> Iterable[tuple[str, object]]:
    """Run ``parse_one`` per machine, serially or fanned out.

    Returns ``(machine, result)`` pairs in the order of ``machines``.
    Worker exceptions propagate to the caller exactly as in the serial
    path — parsers already convert per-device errors into
    ``boot_errors``, so anything escaping here is a genuine bug.
    """
    if jobs <= 1 or len(machines) <= 1:
        return [(machine, parse_one(machine)) for machine in machines]
    executor = make_executor(jobs)
    try:
        metric_inc("deploy.parallel_parses")
        results = run_calls(
            executor,
            [("parse:%s" % machine, parse_one, machine) for machine in machines],
        )
    finally:
        executor.shutdown()
    return list(zip(machines, results))
