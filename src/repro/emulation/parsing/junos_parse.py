"""JunOS configuration parser and Junosphere lab loader.

JunOS configurations are hierarchical brace blocks.  A small recursive
tokenizer turns them into nested dictionaries, from which the standard
device intent is extracted (interfaces, per-interface OSPF metrics,
BGP groups with reflection/next-hop-self/policy, static origination).
"""

from __future__ import annotations

import ipaddress
import os
import re

from repro.emulation.intent import (
    BgpIntent,
    BgpNeighborIntent,
    DeviceIntent,
    InterfaceIntent,
    LabIntent,
    OspfIntent,
)
from repro.emulation.parsing.parallel import parse_machines
from repro.exceptions import ConfigParseError


def tokenize(text: str) -> list[str]:
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.DOTALL)
    return re.findall(r"[{};]|[^\s{};]+", text)


def parse_braces(text: str) -> dict:
    """Parse JunOS curly syntax into nested dicts.

    Leaf statements ``a b;`` become ``{"a b": True}``; blocks nest.
    Repeated block names merge; repeated leaves accumulate.
    """
    tokens = tokenize(text)
    position = 0

    def parse_block() -> dict:
        nonlocal position
        block: dict = {}
        words: list[str] = []
        while position < len(tokens):
            token = tokens[position]
            position += 1
            if token == "{":
                key = " ".join(words)
                words = []
                inner = parse_block()
                if key in block and isinstance(block[key], dict):
                    _merge(block[key], inner)
                else:
                    block[key] = inner
            elif token == ";":
                if words:
                    block.setdefault("__leaves__", []).append(" ".join(words))
                    words = []
            elif token == "}":
                if words:
                    block.setdefault("__leaves__", []).append(" ".join(words))
                return block
            else:
                words.append(token)
        if words:
            block.setdefault("__leaves__", []).append(" ".join(words))
        return block

    return parse_block()


def _merge(target: dict, extra: dict) -> None:
    for key, value in extra.items():
        if key == "__leaves__":
            target.setdefault("__leaves__", []).extend(value)
        elif key in target and isinstance(target[key], dict) and isinstance(value, dict):
            _merge(target[key], value)
        else:
            target[key] = value


def _leaves(block: dict | None) -> list[str]:
    if not isinstance(block, dict):
        return []
    return block.get("__leaves__", [])


def parse_junos_config(text: str, machine: str) -> DeviceIntent:
    """Parse one JunOS router configuration into device intent."""
    tree = parse_braces(text)
    device = DeviceIntent(name=machine, vendor="junos")

    for leaf in _leaves(tree.get("system")):
        if leaf.startswith("host-name "):
            device.hostname = leaf.split()[-1]

    interfaces_block = tree.get("interfaces", {})
    for name, block in interfaces_block.items():
        if name == "__leaves__":
            continue
        interface = InterfaceIntent(name=name, is_loopback=name.startswith("lo"))
        unit = block.get("unit 0", {})
        family = unit.get("family inet", {})
        for leaf in _leaves(family):
            if leaf.startswith("address "):
                address = leaf.split()[1]
                packed = ipaddress.ip_interface(address)
                interface.ip_address = packed.ip
                interface.prefixlen = packed.network.prefixlen
        device.interfaces.append(interface)

    routing_options = tree.get("routing-options", {})
    asn = None
    for leaf in _leaves(routing_options):
        if leaf.startswith("autonomous-system "):
            asn = int(leaf.split()[-1])
    static_networks = [
        ipaddress.ip_network(leaf.split()[1], strict=False)
        for leaf in _leaves(routing_options.get("static"))
        if leaf.startswith("route ")
    ]

    local_prefs = _policy_local_prefs(tree.get("policy-options", {}))
    export_policies = _policy_exports(tree.get("policy-options", {}))
    community_members = _community_members(tree.get("policy-options", {}))
    prefix_filters = _policy_route_filters(tree.get("policy-options", {}))
    protocols = tree.get("protocols", {})
    ospf_block = protocols.get("ospf")
    if ospf_block:
        device.ospf = OspfIntent()
        for area_key, area_block in ospf_block.items():
            if not area_key.startswith("area "):
                continue
            area_id = _parse_area(area_key.split()[1])
            for key, inner in area_block.items():
                if not key.startswith("interface "):
                    continue
                iface_name = key.split()[1]
                metric = 1
                for leaf in _leaves(inner):
                    if leaf.startswith("metric "):
                        metric = int(leaf.split()[-1])
                device.ospf.interface_costs[iface_name] = metric
                interface = device.interface(iface_name)
                if interface is not None:
                    interface.ospf_cost = metric
                    if interface.network is not None:
                        device.ospf.networks.append((interface.network, area_id))
        for leaf in _leaves(routing_options):
            if leaf.startswith("router-id "):
                device.ospf.router_id = leaf.split()[-1]

    bgp_block = protocols.get("bgp")
    if bgp_block:
        if asn is None:
            raise ConfigParseError("BGP configured without autonomous-system", machine)
        device.bgp = BgpIntent(asn=asn, networks=static_networks)
        for leaf in _leaves(routing_options):
            if leaf.startswith("router-id "):
                device.bgp.router_id = leaf.split()[-1]
        for key, group in bgp_block.items():
            if not key.startswith("group "):
                continue
            group_type = None
            peer_as = None
            neighbor_ip = None
            local_pref = None
            med_out = None
            prepend_out = 0
            communities_out = ()
            deny_out = ()
            deny_in = ()
            rr_client = False
            next_hop_self = False
            for leaf in _leaves(group):
                if leaf.startswith("type "):
                    group_type = leaf.split()[-1]
                elif leaf.startswith("peer-as "):
                    peer_as = int(leaf.split()[-1])
                elif leaf.startswith("neighbor "):
                    neighbor_ip = leaf.split()[-1]
                elif leaf.startswith("import lp-"):
                    local_pref = local_prefs.get(leaf.split()[-1])
                elif leaf.startswith("export out-"):
                    policy = export_policies.get(leaf.split()[-1], {})
                    med_out = policy.get("metric")
                    prepend_out = policy.get("prepend", 0)
                    communities_out = tuple(
                        member
                        for name in policy.get("communities", ())
                        for member in community_members.get(name, ())
                    )
                elif leaf.startswith("export pf-out-"):
                    deny_out = prefix_filters.get(leaf.split()[-1], ())
                elif leaf.startswith("import pf-in-"):
                    deny_in = prefix_filters.get(leaf.split()[-1], ())
                elif leaf.startswith("cluster "):
                    rr_client = True
                elif leaf == "export next-hop-self":
                    next_hop_self = True
            if neighbor_ip is None:
                continue
            if group_type == "internal" or peer_as is None:
                peer_as = asn
            device.bgp.neighbors.append(
                BgpNeighborIntent(
                    peer_ip=ipaddress.ip_address(neighbor_ip),
                    remote_asn=peer_as,
                    update_source="lo0" if group_type == "internal" else None,
                    next_hop_self=next_hop_self,
                    rr_client=rr_client,
                    local_pref_in=local_pref,
                    med_out=med_out,
                    prepend_out=prepend_out,
                    communities_out=communities_out,
                    deny_out=deny_out,
                    deny_in=deny_in,
                )
            )
    return device


def _parse_area(token: str) -> int:
    """JunOS area ids: plain integers or dotted quads (0.0.0.1 -> 1)."""
    if "." in token:
        octets = [int(part) for part in token.split(".")]
        value = 0
        for octet in octets:
            value = (value << 8) | octet
        return value
    return int(token)


def _policy_exports(policy_options: dict) -> dict[str, dict]:
    """Export policies (out-*): metric and as-path-prepend actions."""
    policies: dict[str, dict] = {}
    for key, block in policy_options.items():
        if not key.startswith("policy-statement out-"):
            continue
        name = key.split()[1]
        actions: dict = {}
        for leaf in _leaves(block.get("then", {})):
            if leaf.startswith("metric "):
                actions["metric"] = int(leaf.split()[-1])
            elif leaf.startswith("as-path-prepend "):
                quoted = leaf.split(None, 1)[1].strip().strip('"')
                actions["prepend"] = len(quoted.split())
            elif leaf.startswith("community add "):
                actions.setdefault("communities", []).append(leaf.split()[-1])
        policies[name] = actions
    return policies


def _policy_route_filters(policy_options: dict) -> dict[str, tuple]:
    """Reject-term route filters of pf-* policy statements."""
    filters: dict[str, tuple] = {}
    for key, block in policy_options.items():
        if not key.startswith("policy-statement pf-"):
            continue
        name = key.split()[1]
        denied = []
        for term_key, term in block.items():
            if not isinstance(term, dict):
                continue
            from_block = term.get("from", {})
            for leaf in _leaves(from_block):
                if leaf.startswith("route-filter "):
                    denied.append(
                        ipaddress.ip_network(leaf.split()[1], strict=False)
                    )
        filters[name] = tuple(denied)
    return filters


def _community_members(policy_options: dict) -> dict[str, tuple]:
    """Named community definitions: cm-* -> member strings."""
    members: dict[str, tuple] = {}
    for leaf in _leaves(policy_options):
        if leaf.startswith("community ") and " members " in leaf:
            parts = leaf.split()
            members[parts[1]] = tuple(parts[3:])
    return members


def _policy_local_prefs(policy_options: dict) -> dict[str, int]:
    prefs: dict[str, int] = {}
    for key, block in policy_options.items():
        if not key.startswith("policy-statement lp-"):
            continue
        name = key.split()[1]
        then = block.get("then", {})
        for leaf in _leaves(then):
            if leaf.startswith("local-preference "):
                prefs[name] = int(leaf.split()[-1])
    return prefs


def parse_junosphere_lab(lab_dir: str | os.PathLike, jobs: int = 1) -> LabIntent:
    """Parse a rendered Junosphere lab: topology.vmm plus configs/.

    Per-router configs are independent; ``jobs > 1`` fans the parses
    out over the engine executors with results assembled in sorted
    order, identical to a serial parse.  The VMM wiring pass stays
    serial — it is one small file applied after all devices exist.
    """
    lab_dir = str(lab_dir)
    configs_dir = os.path.join(lab_dir, "configs")
    if not os.path.isdir(configs_dir):
        raise ConfigParseError("no configs/ directory in %s" % lab_dir, configs_dir)
    lab = LabIntent(platform="junosphere")
    machines = sorted(
        entry[: -len(".conf")]
        for entry in os.listdir(configs_dir)
        if entry.endswith(".conf")
    )

    def parse_one(machine: str) -> DeviceIntent:
        with open(os.path.join(configs_dir, machine + ".conf")) as handle:
            try:
                return parse_junos_config(handle.read(), machine)
            except ConfigParseError as exc:
                # One broken router does not abort the lab parse: the
                # boot layer raises (strict) or quarantines (non-strict).
                device = DeviceIntent(name=machine, vendor="junos")
                device.boot_errors.append(exc)
                return device

    for machine, device in parse_machines(machines, parse_one, jobs=jobs):
        lab.devices[machine] = device
    _apply_vmm_wiring(lab, os.path.join(lab_dir, "topology.vmm"))
    return lab


def _apply_vmm_wiring(lab: LabIntent, vmm_path: str) -> None:
    if not os.path.exists(vmm_path):
        return
    with open(vmm_path) as handle:
        text = handle.read()
    current_vm = None
    for raw in text.splitlines():
        line = raw.strip()
        vm_match = re.match(r'vm "([^"]+)"', line)
        if vm_match:
            current_vm = vm_match.group(1)
            continue
        iface_match = re.match(r'interface "([^"]+)" bridge "([^"]+)";', line)
        if iface_match and current_vm in lab.devices:
            interface = lab.devices[current_vm].interface(iface_match.group(1))
            if interface is not None:
                interface.collision_domain = iface_match.group(2)
