"""Link-state IGP engine: multi-area SPF over the emulated fabric.

OSPF adjacency follows the protocol's actual activation rules:

* two machines on a shared segment become adjacent when *both*
  advertise that segment's subnet in their OSPF configuration
  (``network ... area ...`` statements), **and the area numbers
  match** — a mismatched area is a real-world non-adjacency;
* inter-AS links are excluded automatically (nobody advertises them)
  without the engine ever knowing about ASes;
* C-BGP-style labs, which have weightless abstract links, instead
  declare an explicit ``igp_domain`` per node (treated as area 0).

Routing follows the OSPF area model: intra-area routes come from the
per-area shortest-path tree; inter-area destinations are reached
through area border routers (ABRs), always transiting the backbone
(area 0) — route metric = cost to the ABR plus the ABR's cost onward,
exactly the summary-LSA arithmetic.

Routes are computed lazily per source machine (Dijkstra on demand,
cached), which keeps thousand-router labs workable: the NREN-scale
experiment only ever asks for a handful of sources.

Two recomputation modes govern what happens when the fabric changes
under a running lab (:meth:`IgpState.rebuild`):

* ``spf_mode="incremental"`` (the default) diffs the old and new
  adjacency, and drops only the cached SPF runs whose shortest-path
  DAG could be affected — a changed edge endpoint the source could
  previously reach — plus the route tables that *consulted* one of the
  dropped runs (tracked as explicit dependencies while each table is
  computed).  A link event between two leaf routers leaves every other
  router's SPF and routing table untouched.
* ``spf_mode="full"`` is the reference oracle: every cache is dropped
  on every rebuild, exactly the naive semantics.  The differential
  test layer asserts both modes produce identical RIBs under random
  fault schedules.
* ``spf_mode="auto"`` resolves to one of the above by fabric size: below
  :data:`SPF_AUTO_THRESHOLD` machines the incremental bookkeeping costs
  more than the Dijkstras it saves (the BENCH fault-cycle regression),
  so small labs run "full" and large labs "incremental".
"""

from __future__ import annotations

import heapq
import ipaddress
from dataclasses import dataclass
from typing import Optional

from repro.emulation.network import EmulatedNetwork
from repro.exceptions import EmulationError
from repro.observability import metric_inc

BACKBONE = 0

#: Recognised :class:`IgpState` recomputation modes.
SPF_MODES = ("incremental", "full", "auto")

#: Labs below this machine count resolve ``spf_mode="auto"`` to "full":
#: at small scale the incremental mode's invalidation bookkeeping costs
#: more than just re-running Dijkstra (the BENCH_pipeline fault-cycle
#: numbers), while large fabrics win big from incremental invalidation.
SPF_AUTO_THRESHOLD = 48


def resolve_spf_mode(spf_mode: str, network: EmulatedNetwork) -> str:
    """Map ``"auto"`` to the mode that wins at this topology's size."""
    if spf_mode != "auto":
        return spf_mode
    if len(network.all_machines) < SPF_AUTO_THRESHOLD:
        return "full"
    return "incremental"


@dataclass(frozen=True)
class IgpRoute:
    """One IGP route entry: prefix via next hop with a metric."""

    prefix: ipaddress.IPv4Network
    next_hop: str  # machine name
    metric: int
    advertiser: str  # machine that advertised the prefix
    route_type: str = "intra"  # intra | inter


class IgpState:
    """Per-lab IGP view: adjacency, distances, and routes."""

    def __init__(self, network: EmulatedNetwork, spf_mode: str = "incremental"):
        if spf_mode not in SPF_MODES:
            raise EmulationError(
                "unknown spf_mode %r (choose from %s)"
                % (spf_mode, ", ".join(SPF_MODES))
            )
        self.network = network
        self.requested_spf_mode = spf_mode
        self.spf_mode = resolve_spf_mode(spf_mode, network)
        #: per-area adjacency: area -> machine -> [(neighbor, cost out)]
        self.area_adjacency: dict[int, dict[str, list[tuple[str, int]]]] = {}
        #: areas each machine participates in
        self.machine_areas: dict[str, set[int]] = {}
        #: (source, area) -> (distance, first_hop); the cached SPF runs.
        self._spf_cache: dict[tuple[str, int], tuple[dict, dict]] = {}
        #: source -> cached routing table.
        self._routes_cache: dict[str, dict] = {}
        #: source -> the SPF keys its routing table consulted.
        self._route_deps: dict[str, frozenset] = {}
        #: source -> connected-network fingerprint at compute time.
        self._route_connected: dict[str, tuple] = {}
        #: source -> {address: cost} memo for cost_to_address; lives
        #: and dies with the source's entry in the routes cache.
        self._cost_memo: dict[str, dict] = {}
        #: source -> [(version, shift, netint, metric)] — the source's
        #: route table as integer masks; same lifetime as the memo.
        self._route_match: dict[str, list] = {}
        self._dep_collector: Optional[set] = None
        #: Machines whose IGP view may differ from the last time the
        #: BGP layer consumed this set (see consume_dirty_sources).
        self._bgp_dirty_sources: set[str] = set(network.machines)
        self._build_adjacency()

    def rebuild(self, network: Optional[EmulatedNetwork] = None) -> None:
        """Accept a topology delta: recompute adjacency, refresh caches.

        In ``full`` mode every cache is dropped (the reference
        behaviour).  In ``incremental`` mode the adjacency delta is
        computed first and only the affected SPF runs and dependent
        route tables are invalidated — what lets a fault schedule
        reconverge a large lab without re-running Dijkstra everywhere.
        """
        old_adjacency = self.area_adjacency
        old_areas = self.machine_areas
        old_prefixes = self._advertised_fingerprint()
        if network is not None:
            self.network = network
        self.area_adjacency = {}
        self.machine_areas = {}
        self._build_adjacency()
        metric_inc("ospf.rebuilds")
        if self.spf_mode == "full":
            self._invalidate_all()
            return
        self._invalidate_incremental(old_adjacency, old_areas, old_prefixes)

    def _invalidate_all(self) -> None:
        metric_inc("ospf.spf_invalidated", len(self._spf_cache))
        metric_inc("ospf.routes_invalidated", len(self._routes_cache))
        metric_inc(
            "ospf.invalidations", len(self._spf_cache) + len(self._routes_cache)
        )
        self._spf_cache.clear()
        self._routes_cache.clear()
        self._route_deps.clear()
        self._route_connected.clear()
        self._cost_memo.clear()
        self._route_match.clear()
        self._bgp_dirty_sources |= set(self.network.machines)

    def _advertised_fingerprint(self) -> dict[str, tuple]:
        """Per-machine advertised prefixes — route tables depend on all."""
        return {
            name: tuple(self.advertised_prefixes(device))
            for name, device in self.network.machines.items()
        }

    def _invalidate_incremental(
        self, old_adjacency, old_areas, old_prefixes
    ) -> None:
        """Drop exactly the cached state the adjacency delta can touch.

        A cached SPF run ``(source, area)`` survives unless one of the
        changed endpoints in that area was reachable from the source —
        any path to newly connected territory must cross a changed edge
        whose nearer endpoint was previously reachable, so surviving
        runs are provably identical.  Route tables survive unless a run
        they consulted was dropped, the source's own connected networks
        changed, or the lab's structure (area membership / advertised
        prefixes) shifted, which reshapes ABR sets globally.
        """
        changed: dict[int, set[str]] = {}
        for area in set(old_adjacency) | set(self.area_adjacency):
            before = old_adjacency.get(area, {})
            after = self.area_adjacency.get(area, {})
            endpoints = {
                machine
                for machine in set(before) | set(after)
                if before.get(machine) != after.get(machine)
            }
            if endpoints:
                changed[area] = endpoints

        dropped: set[tuple[str, int]] = set()
        for key, (distance, _) in list(self._spf_cache.items()):
            source, area = key
            endpoints = changed.get(area)
            if endpoints is None:
                continue
            if source in endpoints or any(e in distance for e in endpoints):
                dropped.add(key)
                del self._spf_cache[key]
        metric_inc("ospf.spf_invalidated", len(dropped))
        metric_inc("ospf.spf_retained", len(self._spf_cache))

        structural = (
            old_areas != self.machine_areas
            or old_prefixes != self._advertised_fingerprint()
        )
        invalidated_routes = 0
        for source in list(self._routes_cache):
            if structural or source not in self.network.machines:
                stale = True
            elif self._route_deps.get(source, frozenset()) & dropped:
                stale = True
            else:
                stale = (
                    self._local_fingerprint(source)
                    != self._route_connected.get(source)
                )
            if stale:
                invalidated_routes += 1
                del self._routes_cache[source]
                self._route_deps.pop(source, None)
                self._route_connected.pop(source, None)
                self._cost_memo.pop(source, None)
                self._route_match.pop(source, None)
        metric_inc("ospf.routes_invalidated", invalidated_routes)
        metric_inc("ospf.routes_retained", len(self._routes_cache))
        # the single number the incremental-vs-full comparison needs:
        # total cache entries dropped by this topology event
        metric_inc("ospf.invalidations", len(dropped) + invalidated_routes)
        # Anything not in the routes cache after invalidation — dropped
        # just now or never computed — may see a different IGP; every
        # retained source's table is provably identical.
        self._bgp_dirty_sources |= (
            set(self.network.machines) - set(self._routes_cache)
        )

    def consume_dirty_sources(self) -> set[str]:
        """Machines whose IGP view may have changed since the last call.

        The BGP layer keys its incremental resume on this set: a
        machine listed here must re-run its decision process, while
        every other machine's next-hop costs and reachability are
        guaranteed unchanged.  Consuming clears the accumulator, so
        successive ``rebuild`` calls between two consumers add up
        rather than overwrite.
        """
        dirty = self._bgp_dirty_sources
        self._bgp_dirty_sources = set()
        return dirty

    # -- topology --------------------------------------------------------------
    def _build_adjacency(self) -> None:
        adjacency: dict[int, dict[str, dict[str, int]]] = {}
        for segment in self.network.segments.values():
            members = segment.members
            for device, interface in members:
                area = self._advertised_area(device, interface)
                if area is None:
                    continue
                for other_device, other_interface in members:
                    if other_device.name == device.name:
                        continue
                    other_area = self._advertised_area(other_device, other_interface)
                    if other_area is None or other_area != area:
                        continue
                    if not self._same_domain(device, other_device):
                        continue
                    cost = interface.ospf_cost or 1
                    current = adjacency.setdefault(area, {}).setdefault(
                        device.name, {}
                    )
                    if (
                        other_device.name not in current
                        or cost < current[other_device.name]
                    ):
                        current[other_device.name] = cost
        self.area_adjacency = {
            area: {
                name: sorted(neighbors.items())
                for name, neighbors in machines.items()
            }
            for area, machines in adjacency.items()
        }
        for name, device in self.network.machines.items():
            areas = {
                area
                for area, machines in self.area_adjacency.items()
                if name in machines
            }
            areas.update(area for _, area in self.advertised_prefixes(device))
            if areas:
                self.machine_areas[name] = areas

    @staticmethod
    def _advertised_area(device, interface) -> Optional[int]:
        """The area the device runs a link-state IGP in on this interface.

        OSPF activation follows the ``network ... area`` statements;
        IS-IS (when no OSPF is configured) activates on every interface
        with an ``isis metric``, treated as single-level (area 0).
        """
        if device.ospf is not None:
            network = interface.network
            if network is None:
                # C-BGP style unnumbered link: active when in a domain.
                return BACKBONE if device.igp_domain is not None else None
            for advertised, area in device.ospf.networks:
                if network == advertised or advertised.supernet_of(network):
                    return area
            return None
        if device.isis is not None:
            if interface.name in device.isis.interface_metrics:
                return BACKBONE
        return None

    @staticmethod
    def advertised_prefixes(device):
        """(prefix, area) pairs this device injects into the IGP."""
        if device.ospf is not None:
            return list(device.ospf.networks)
        if device.isis is not None:
            prefixes = []
            for interface in device.interfaces:
                if interface.is_management:
                    continue
                if interface.is_loopback or interface.name in device.isis.interface_metrics:
                    if interface.network is not None:
                        prefixes.append((interface.network, BACKBONE))
            return prefixes
        return []

    @staticmethod
    def _same_domain(device, other_device) -> bool:
        if device.igp_domain is not None or other_device.igp_domain is not None:
            return device.igp_domain == other_device.igp_domain
        return True

    def areas(self) -> list[int]:
        """All areas present in the lab, backbone first."""
        return sorted(self.area_adjacency)

    def neighbors(self, machine: str, area: Optional[int] = None) -> list[tuple[str, int]]:
        """OSPF-adjacent (neighbor, cost) pairs, across areas by default."""
        if area is not None:
            return list(self.area_adjacency.get(area, {}).get(machine, []))
        merged: dict[str, int] = {}
        for machines in self.area_adjacency.values():
            for neighbor, cost in machines.get(machine, []):
                if neighbor not in merged or cost < merged[neighbor]:
                    merged[neighbor] = cost
        return sorted(merged.items())

    def area_border_routers(self, area: int) -> list[str]:
        """Machines participating in both ``area`` and the backbone."""
        if area == BACKBONE:
            return sorted(
                name
                for name, areas in self.machine_areas.items()
                if BACKBONE in areas
            )
        return sorted(
            name
            for name, areas in self.machine_areas.items()
            if area in areas and BACKBONE in areas
        )

    # -- SPF ---------------------------------------------------------------------
    def spf(self, source: str, area: int = BACKBONE) -> tuple[dict, dict]:
        """Dijkstra within one area: (distance, first-hop) per machine.

        Counted as ``ospf.spf_runs`` — the body only runs on a cache
        miss, so the metric is the number of actual Dijkstra runs.
        While a routing table is being computed, every consulted key is
        recorded as that table's dependency for incremental
        invalidation.
        """
        key = (source, area)
        if self._dep_collector is not None:
            self._dep_collector.add(key)
        cached = self._spf_cache.get(key)
        if cached is not None:
            metric_inc("ospf.spf_cache_hits")
            return cached
        metric_inc("ospf.spf_runs")
        graph = self.area_adjacency.get(area, {})
        distance = {source: 0}
        first_hop: dict[str, str] = {}
        heap: list[tuple[int, str, Optional[str]]] = [(0, source, None)]
        visited: set[str] = set()
        while heap:
            dist, machine, via = heapq.heappop(heap)
            if machine in visited:
                continue
            visited.add(machine)
            if via is not None:
                first_hop[machine] = via
            for neighbor, cost in graph.get(machine, []):
                candidate = dist + cost
                if candidate < distance.get(neighbor, float("inf")):
                    distance[neighbor] = candidate
                    heapq.heappush(
                        heap,
                        (candidate, neighbor, via if via is not None else neighbor),
                    )
        self._spf_cache[key] = (distance, first_hop)
        return distance, first_hop

    def distance(self, source: str, target: str) -> Optional[int]:
        """Best IGP distance source -> target across the area model."""
        best: Optional[int] = None
        for _, metric, _ in self._machine_paths(source, target):
            if best is None or metric < best:
                best = metric
        return best

    def _machine_paths(self, source: str, target: str):
        """(area chain, metric, first hop) options from source to target.

        Intra-area when the two machines share an area; otherwise
        through the backbone via ABRs, per the OSPF area model.
        """
        source_areas = self.machine_areas.get(source, set())
        target_areas = self.machine_areas.get(target, set())
        options = []
        for area in source_areas & target_areas:
            distances, hops = self.spf(source, area)
            if target in distances and target != source:
                options.append(("intra", int(distances[target]), hops.get(target)))
            elif target == source:
                options.append(("intra", 0, None))
        if options or source == target:
            return options

        # Inter-area: source area -> backbone -> target area.
        for source_area in source_areas:
            for target_area in target_areas:
                option = self._inter_area(source, source_area, target, target_area)
                if option is not None:
                    options.append(option)
        return options

    def _inter_area(self, source, source_area, target, target_area):
        # Note: source_area may equal target_area — a *partitioned*
        # non-backbone area heals through the backbone, each fragment
        # reaching it via its own ABR.  (The intra-area option, when it
        # exists, short-circuits before this path is ever tried.)
        if source_area == target_area == BACKBONE:
            return None
        first_leg = [(source, 0, None)]
        if source_area != BACKBONE:
            distances, hops = self.spf(source, source_area)
            first_leg = [
                (abr, int(distances[abr]), hops.get(abr))
                for abr in self.area_border_routers(source_area)
                if abr in distances
            ]
        best = None
        backbone_cache = {}
        for abr, cost_to_abr, first_hop in first_leg:
            if abr not in backbone_cache:
                backbone_cache[abr] = self.spf(abr, BACKBONE)
            backbone_dist, backbone_hops = backbone_cache[abr]
            if target_area == BACKBONE:
                exits = [(target, None)]
            else:
                exits = [(exit_abr, exit_abr) for exit_abr in self.area_border_routers(target_area)]
            for backbone_target, exit_abr in exits:
                if backbone_target == abr:
                    middle = 0
                elif backbone_target in backbone_dist:
                    middle = int(backbone_dist[backbone_target])
                else:
                    continue
                if exit_abr is None:
                    tail = 0
                else:
                    exit_dist, _ = self.spf(exit_abr, target_area)
                    if target not in exit_dist and exit_abr != target:
                        continue
                    tail = int(exit_dist.get(target, 0))
                total = cost_to_abr + middle + tail
                hop = first_hop
                if hop is None:  # source itself is the entry ABR
                    hop = backbone_hops.get(backbone_target)
                if hop is None and exit_abr is not None and exit_abr != source:
                    exit_dist, exit_hops = self.spf(source, target_area)
                    hop = exit_hops.get(target)
                if best is None or total < best[1]:
                    best = ("inter", total, hop)
        return best

    def routes(self, source: str) -> dict[ipaddress.IPv4Network, IgpRoute]:
        """The IGP routing table of ``source``.

        Intra-area routes for every prefix advertised in an area the
        source participates in; inter-area routes (via ABRs and the
        backbone) for the rest.  For each prefix the lowest-metric
        entry wins, ties broken by advertiser name for determinism.
        """
        cached = self._routes_cache.get(source)
        if cached is not None:
            metric_inc("ospf.route_cache_hits")
            return cached
        metric_inc("ospf.route_tables_computed")
        deps: set[tuple[str, int]] = set()
        previous_collector = self._dep_collector
        self._dep_collector = deps
        try:
            table = self._compute_routes(source)
        finally:
            self._dep_collector = previous_collector
        if previous_collector is not None:
            previous_collector.update(deps)
        self._routes_cache[source] = table
        self._route_deps[source] = frozenset(deps)
        self._route_connected[source] = self._local_fingerprint(source)
        return table

    def _local_fingerprint(self, source: str) -> tuple:
        """Everything ``cost_to_address`` reads from the source itself:
        its connected networks and its owned addresses.  An address
        move that keeps the prefix intact must still invalidate the
        source's cached answers."""
        device = self.network.device(source)
        return (
            tuple(self.network.connected_networks(source)),
            tuple(sorted(str(a) for a in device.addresses())),
        )

    def _compute_routes(self, source: str) -> dict[ipaddress.IPv4Network, IgpRoute]:
        connected = set(self.network.connected_networks(source))
        table: dict[ipaddress.IPv4Network, IgpRoute] = {}
        for machine, device in self.network.machines.items():
            if machine == source or (device.ospf is None and device.isis is None):
                continue
            paths = self._machine_paths(source, machine)
            if not paths:
                continue
            route_type, metric, next_hop = min(
                paths, key=lambda option: (option[1], option[0])
            )
            if next_hop is None:
                continue
            for prefix, _ in self.advertised_prefixes(device):
                if prefix in connected:
                    continue
                route = IgpRoute(
                    prefix=prefix,
                    next_hop=next_hop,
                    metric=metric,
                    advertiser=machine,
                    route_type=route_type,
                )
                existing = table.get(prefix)
                if (
                    existing is None
                    or route.metric < existing.metric
                    or (
                        route.metric == existing.metric
                        and route.advertiser < existing.advertiser
                    )
                ):
                    table[prefix] = route
        return table

    def cost_to_address(self, source: str, address) -> Optional[int]:
        """IGP cost from ``source`` to an address, 0 when connected.

        The BGP decision process uses this as the "lowest IGP metric to
        the next hop" step; ``None`` means the next hop is unresolvable
        and the route is invalid.  Answers are memoised per source and
        dropped exactly when that source's route table is invalidated,
        so repeated resolutions across reconvergence cycles are O(1)
        for every machine the topology delta did not touch.
        """
        if not isinstance(
            address, (ipaddress.IPv4Address, ipaddress.IPv6Address)
        ):
            address = ipaddress.ip_address(str(address))
        memo = self._cost_memo.setdefault(source, {})
        try:
            return memo[address]
        except KeyError:
            pass
        source_device = self.network.device(source)
        best: Optional[int] = None
        if source_device.owns_address(address) or any(
            address in network_
            for network_ in self.network.connected_networks(source)
        ):
            best = 0
        else:
            # The route table rendered down to integer masks once,
            # then every lookup is shift-and-compare — the decision
            # process resolves thousands of next hops against the same
            # table during one reconvergence.
            match = self._route_match.get(source)
            if match is None:
                match = [
                    (
                        prefix.version,
                        prefix.max_prefixlen - prefix.prefixlen,
                        int(prefix.network_address)
                        >> (prefix.max_prefixlen - prefix.prefixlen),
                        route.metric,
                    )
                    for prefix, route in self.routes(source).items()
                ]
                self._route_match[source] = match
            addr_int = int(address)
            version = address.version
            for route_version, shift, net, metric in match:
                if route_version == version and (addr_int >> shift) == net:
                    if best is None or metric < best:
                        best = metric
        memo[address] = best
        return best
