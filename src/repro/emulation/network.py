"""The emulated network fabric: machines, segments, and address lookup.

An :class:`EmulatedNetwork` is built from a parsed :class:`LabIntent`.
It groups interfaces into layer-2 segments (by collision-domain label
when the platform declares one, by shared subnet otherwise), and builds
the address-to-machine map the dataplane and measurement layers use.
"""

from __future__ import annotations

import ipaddress
from typing import Iterator, Optional

from repro.emulation.intent import DeviceIntent, InterfaceIntent, LabIntent
from repro.exceptions import EmulationError


class Segment:
    """One layer-2 segment: the interfaces attached to it."""

    def __init__(self, key: str):
        self.key = key
        self.members: list[tuple[DeviceIntent, InterfaceIntent]] = []

    @property
    def network(self) -> Optional[ipaddress.IPv4Network]:
        for _, interface in self.members:
            if interface.network is not None:
                return interface.network
        return None

    def machines(self) -> list[str]:
        return [device.name for device, _ in self.members]

    def interface_of(self, machine: str) -> Optional[InterfaceIntent]:
        for device, interface in self.members:
            if device.name == machine:
                return interface
        return None

    def __repr__(self) -> str:
        return "Segment(%s: %s)" % (self.key, ", ".join(self.machines()))


class EmulatedNetwork:
    """Machines plus the segments and address map connecting them.

    ``disabled_machines`` and ``disabled_attachments`` model topology
    faults without touching the intent: a disabled machine is excluded
    from the fabric entirely (powered off or quarantined), a disabled
    ``(machine, segment key)`` attachment takes that machine's interface
    off one segment (a failed link end) while the segment survives for
    its other members.  The full parsed topology stays available as
    :attr:`all_machines` so faults can later be reverted.
    """

    def __init__(
        self,
        lab: LabIntent,
        disabled_machines=(),
        disabled_attachments=(),
    ):
        self.lab = lab
        self.all_machines: dict[str, DeviceIntent] = dict(lab.devices)
        if not self.all_machines:
            raise EmulationError("lab has no machines to boot")
        self.disabled_machines: set[str] = set(disabled_machines)
        self.disabled_attachments: set[tuple[str, str]] = set(disabled_attachments)
        self._rebuild()

    def _rebuild(self) -> None:
        self.machines: dict[str, DeviceIntent] = {
            name: device
            for name, device in self.all_machines.items()
            if name not in self.disabled_machines
        }
        if not self.machines:
            raise EmulationError("lab has no machines to boot")
        self.segments: dict[str, Segment] = {}
        self._address_map: dict[ipaddress.IPv4Address, tuple[str, InterfaceIntent]] = {}
        self._segments_of: dict[str, list[Segment]] = {name: [] for name in self.machines}
        self._build()

    @staticmethod
    def _interface_key(interface: InterfaceIntent) -> Optional[str]:
        """The layer-2 segment key an interface attaches to, if any."""
        if interface.collision_domain is not None:
            return interface.collision_domain
        if interface.network is not None:
            return "net_%s" % interface.network
        return None

    def _build(self) -> None:
        for name in sorted(self.machines):
            device = self.machines[name]
            for interface in device.interfaces:
                if interface.is_management:
                    continue
                key = None
                if not interface.is_loopback:
                    key = self._interface_key(interface)
                    if key is not None and (name, key) in self.disabled_attachments:
                        continue  # failed link end: interface is down
                if interface.ip_address is not None:
                    existing = self._address_map.get(interface.ip_address)
                    if existing is not None and not interface.is_loopback:
                        raise EmulationError(
                            "duplicate address %s on %s and %s"
                            % (interface.ip_address, existing[0], name)
                        )
                    self._address_map[interface.ip_address] = (name, interface)
                if interface.is_loopback or key is None:
                    continue
                segment = self.segments.setdefault(key, Segment(key))
                segment.members.append((device, interface))
                self._segments_of[name].append(segment)

    def segment_keys_between(self, left: str, right: str) -> list[str]:
        """Segment keys joining two machines in the *full* topology.

        Computed from ``all_machines`` so a downed link is still
        addressable (for restoration) even while its attachments are
        disabled.
        """

        def keys(machine: str) -> set[str]:
            device = self.all_machines.get(machine)
            if device is None:
                return set()
            return {
                key
                for key in (
                    self._interface_key(interface)
                    for interface in device.interfaces
                    if not interface.is_management and not interface.is_loopback
                )
                if key is not None
            }

        return sorted(keys(left) & keys(right))

    # -- lookups --------------------------------------------------------------
    def device(self, name: str) -> DeviceIntent:
        try:
            return self.machines[name]
        except KeyError:
            raise EmulationError("no machine named %r in the lab" % (name,)) from None

    def owner_of(self, address) -> Optional[str]:
        """Machine name owning an address, or None."""
        if not isinstance(
            address, (ipaddress.IPv4Address, ipaddress.IPv6Address)
        ):
            address = ipaddress.ip_address(str(address))
        entry = self._address_map.get(address)
        return entry[0] if entry else None

    def interface_owning(self, address) -> Optional[tuple[str, InterfaceIntent]]:
        if not isinstance(
            address, (ipaddress.IPv4Address, ipaddress.IPv6Address)
        ):
            address = ipaddress.ip_address(str(address))
        return self._address_map.get(address)

    def segments_of(self, machine: str) -> list[Segment]:
        return list(self._segments_of.get(machine, []))

    def neighbors_of(self, machine: str) -> list[str]:
        found = []
        for segment in self._segments_of.get(machine, []):
            for name in segment.machines():
                if name != machine and name not in found:
                    found.append(name)
        return found

    def shared_segments(self, left: str, right: str) -> list[Segment]:
        return [
            segment
            for segment in self._segments_of.get(left, [])
            if right in segment.machines()
        ]

    def connected_networks(self, machine: str) -> list[ipaddress.IPv4Network]:
        device = self.device(machine)
        return [
            interface.network
            for interface in device.interfaces
            if interface.network is not None and not interface.is_management
        ]

    def address_on_segment_with(self, machine: str, other: str) -> Optional[ipaddress.IPv4Address]:
        """The machine's address on a segment it shares with ``other``."""
        for segment in self.shared_segments(machine, other):
            interface = segment.interface_of(machine)
            if interface is not None and interface.ip_address is not None:
                return interface.ip_address
        device = self.device(machine)
        return device.loopback

    def __iter__(self) -> Iterator[DeviceIntent]:
        return iter(self.machines.values())

    def __len__(self) -> int:
        return len(self.machines)

    def __repr__(self) -> str:
        return "EmulatedNetwork(%d machines, %d segments)" % (
            len(self.machines),
            len(self.segments),
        )
