"""The emulated network fabric: machines, segments, and address lookup.

An :class:`EmulatedNetwork` is built from a parsed :class:`LabIntent`.
It groups interfaces into layer-2 segments (by collision-domain label
when the platform declares one, by shared subnet otherwise), and builds
the address-to-machine map the dataplane and measurement layers use.
"""

from __future__ import annotations

import ipaddress
from typing import Iterator, Optional

from repro.emulation.intent import DeviceIntent, InterfaceIntent, LabIntent
from repro.exceptions import EmulationError


class Segment:
    """One layer-2 segment: the interfaces attached to it."""

    def __init__(self, key: str):
        self.key = key
        self.members: list[tuple[DeviceIntent, InterfaceIntent]] = []

    @property
    def network(self) -> Optional[ipaddress.IPv4Network]:
        for _, interface in self.members:
            if interface.network is not None:
                return interface.network
        return None

    def machines(self) -> list[str]:
        return [device.name for device, _ in self.members]

    def interface_of(self, machine: str) -> Optional[InterfaceIntent]:
        for device, interface in self.members:
            if device.name == machine:
                return interface
        return None

    def __repr__(self) -> str:
        return "Segment(%s: %s)" % (self.key, ", ".join(self.machines()))


class EmulatedNetwork:
    """Machines plus the segments and address map connecting them."""

    def __init__(self, lab: LabIntent):
        self.lab = lab
        self.machines: dict[str, DeviceIntent] = dict(lab.devices)
        if not self.machines:
            raise EmulationError("lab has no machines to boot")
        self.segments: dict[str, Segment] = {}
        self._address_map: dict[ipaddress.IPv4Address, tuple[str, InterfaceIntent]] = {}
        self._segments_of: dict[str, list[Segment]] = {name: [] for name in self.machines}
        self._build()

    def _build(self) -> None:
        for name in sorted(self.machines):
            device = self.machines[name]
            for interface in device.interfaces:
                if interface.is_management:
                    continue
                if interface.ip_address is not None:
                    existing = self._address_map.get(interface.ip_address)
                    if existing is not None and not interface.is_loopback:
                        raise EmulationError(
                            "duplicate address %s on %s and %s"
                            % (interface.ip_address, existing[0], name)
                        )
                    self._address_map[interface.ip_address] = (name, interface)
                if interface.is_loopback:
                    continue
                key = interface.collision_domain
                if key is None and interface.network is not None:
                    key = "net_%s" % interface.network
                if key is None:
                    continue
                segment = self.segments.setdefault(key, Segment(key))
                segment.members.append((device, interface))
                self._segments_of[name].append(segment)

    # -- lookups --------------------------------------------------------------
    def device(self, name: str) -> DeviceIntent:
        try:
            return self.machines[name]
        except KeyError:
            raise EmulationError("no machine named %r in the lab" % (name,)) from None

    def owner_of(self, address) -> Optional[str]:
        """Machine name owning an address, or None."""
        address = ipaddress.ip_address(str(address))
        entry = self._address_map.get(address)
        return entry[0] if entry else None

    def interface_owning(self, address) -> Optional[tuple[str, InterfaceIntent]]:
        address = ipaddress.ip_address(str(address))
        return self._address_map.get(address)

    def segments_of(self, machine: str) -> list[Segment]:
        return list(self._segments_of.get(machine, []))

    def neighbors_of(self, machine: str) -> list[str]:
        found = []
        for segment in self._segments_of.get(machine, []):
            for name in segment.machines():
                if name != machine and name not in found:
                    found.append(name)
        return found

    def shared_segments(self, left: str, right: str) -> list[Segment]:
        return [
            segment
            for segment in self._segments_of.get(left, [])
            if right in segment.machines()
        ]

    def connected_networks(self, machine: str) -> list[ipaddress.IPv4Network]:
        device = self.device(machine)
        return [
            interface.network
            for interface in device.interfaces
            if interface.network is not None and not interface.is_management
        ]

    def address_on_segment_with(self, machine: str, other: str) -> Optional[ipaddress.IPv4Address]:
        """The machine's address on a segment it shares with ``other``."""
        for segment in self.shared_segments(machine, other):
            interface = segment.interface_of(machine)
            if interface is not None and interface.ip_address is not None:
                return interface.ip_address
        device = self.device(machine)
        return device.loopback

    def __iter__(self) -> Iterator[DeviceIntent]:
        return iter(self.machines.values())

    def __len__(self) -> int:
        return len(self.machines)

    def __repr__(self) -> str:
        return "EmulatedNetwork(%d machines, %d segments)" % (
            len(self.machines),
            len(self.segments),
        )
