"""Packet forwarding over the emulated network: FIB lookup, traceroute, ping.

Each machine's forwarding decision combines, in classic administrative
order, connected interfaces, IGP routes, and the BGP best paths from a
:class:`~repro.emulation.bgp_engine.BgpResult` — longest prefix first,
then route source.  BGP next hops resolve recursively through the IGP,
so an iBGP-learned route with a loopback next hop forwards along the
IGP shortest path, exactly the interaction the §7.2 experiment probes.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field
from typing import Optional

from repro.emulation.bgp_engine import BgpResult
from repro.emulation.network import EmulatedNetwork
from repro.emulation.ospf_engine import IgpState

MAX_HOPS = 30


@dataclass
class ForwardingDecision:
    """Outcome of one FIB lookup."""

    action: str  # deliver | forward | drop
    next_machine: Optional[str] = None
    source: str = ""  # connected | igp | bgp | local
    prefix: Optional[ipaddress.IPv4Network] = None
    reason: str = ""


@dataclass
class TraceResult:
    """A traceroute: the machines and addresses the probe visited."""

    source: str
    destination: ipaddress.IPv4Address
    hops: list[tuple[str, str]] = field(default_factory=list)  # (machine, address)
    reached: bool = False
    reason: str = ""

    def machines(self) -> list[str]:
        return [machine for machine, _ in self.hops]

    def addresses(self) -> list[str]:
        return [address for _, address in self.hops]


class Dataplane:
    """Forwarding over a converged (or snapshot) routing state."""

    def __init__(
        self,
        network: EmulatedNetwork,
        igp: IgpState,
        bgp_result: Optional[BgpResult] = None,
    ):
        self.network = network
        self.igp = igp
        self.bgp_selected = dict(bgp_result.selected) if bgp_result else {}

    def with_bgp_snapshot(self, selected: dict) -> "Dataplane":
        """A dataplane over a different BGP selection snapshot.

        Used to observe forwarding *during* oscillation: each round of
        an oscillating simulation yields a different snapshot, and
        repeated traceroutes across snapshots show the path flapping.
        """
        clone = Dataplane(self.network, self.igp)
        clone.bgp_selected = dict(selected)
        return clone

    # -- FIB ------------------------------------------------------------------
    def lookup(self, machine: str, destination) -> ForwardingDecision:
        destination = ipaddress.ip_address(str(destination))
        device = self.network.device(machine)
        if device.owns_address(destination):
            return ForwardingDecision(action="deliver", source="local")

        best: Optional[tuple] = None  # (prefixlen, -priority) max wins

        for segment in self.network.segments_of(machine):
            net = segment.network
            if net is not None and destination in net:
                candidate = (net.prefixlen, -0, ("connected", segment))
                if best is None or candidate[:2] > best[:2]:
                    best = candidate

        for prefix, route in self.igp.routes(machine).items():
            if destination in prefix:
                candidate = (prefix.prefixlen, -1, ("igp", route.next_hop))
                if best is None or candidate[:2] > best[:2]:
                    best = candidate

        for prefix, route in self.bgp_selected.get(machine, {}).items():
            if destination in prefix:
                candidate = (prefix.prefixlen, -2, ("bgp", route))
                if best is None or candidate[:2] > best[:2]:
                    best = candidate

        if best is None:
            return ForwardingDecision(action="drop", reason="no route")

        kind, payload = best[2]
        if kind == "connected":
            owner = self.network.owner_of(destination)
            if owner is not None and owner in payload.machines():
                return ForwardingDecision(
                    action="forward", next_machine=owner, source="connected"
                )
            return ForwardingDecision(action="drop", reason="no host on segment")
        if kind == "igp":
            return ForwardingDecision(action="forward", next_machine=payload, source="igp")

        route = payload
        if route.next_hop is None:
            return ForwardingDecision(action="drop", source="bgp", reason="blackhole aggregate")
        return self._resolve_bgp_next_hop(machine, route)

    def _resolve_bgp_next_hop(self, machine: str, route) -> ForwardingDecision:
        next_hop = route.next_hop
        owner = self.network.owner_of(next_hop)
        if owner == machine:
            return ForwardingDecision(action="drop", reason="next hop is self")
        for segment in self.network.segments_of(machine):
            net = segment.network
            if net is not None and next_hop in net and owner in segment.machines():
                return ForwardingDecision(
                    action="forward", next_machine=owner, source="bgp", prefix=route.prefix
                )
        for prefix, igp_route in self.igp.routes(machine).items():
            if next_hop in prefix:
                return ForwardingDecision(
                    action="forward",
                    next_machine=igp_route.next_hop,
                    source="bgp",
                    prefix=route.prefix,
                )
        # C-BGP-style abstract links: the next hop may be a direct
        # neighbour's loopback on an unnumbered segment.
        if owner is not None and owner in self.network.neighbors_of(machine):
            return ForwardingDecision(
                action="forward", next_machine=owner, source="bgp", prefix=route.prefix
            )
        return ForwardingDecision(action="drop", reason="unresolvable next hop %s" % next_hop)

    # -- probes ---------------------------------------------------------------
    def trace(self, source: str, destination) -> TraceResult:
        """Hop-by-hop forwarding walk, traceroute-style."""
        destination = ipaddress.ip_address(str(destination))
        result = TraceResult(source=source, destination=destination)
        current = source
        visited: set[str] = set()
        for _ in range(MAX_HOPS):
            decision = self.lookup(current, destination)
            if decision.action == "deliver":
                if result.hops and result.hops[-1][0] == current:
                    result.hops[-1] = (current, str(destination))
                else:
                    result.hops.append((current, str(destination)))
                result.reached = True
                return result
            if decision.action == "drop":
                result.reason = decision.reason
                return result
            next_machine = decision.next_machine
            ingress = self.network.address_on_segment_with(next_machine, current)
            result.hops.append((next_machine, str(ingress) if ingress else "?"))
            if next_machine in visited:
                result.reason = "forwarding loop"
                return result
            visited.add(current)
            current = next_machine
        result.reason = "max hops exceeded"
        return result

    def ping(self, source: str, destination) -> bool:
        """True when the forward path reaches the destination."""
        return self.trace(source, destination).reached

    def path_machines(self, source: str, destination) -> list[str]:
        trace = self.trace(source, destination)
        return [source] + trace.machines()
