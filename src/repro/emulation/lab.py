"""The emulated lab: boot rendered configurations into a running network.

:func:`EmulatedLab.boot` is the substrate's ``lstart``: it detects the
platform from the files present, parses every configuration back into
device intent, brings up the fabric, converges the IGP, runs the BGP
simulation, and exposes :class:`~repro.emulation.vm.VirtualMachine`
handles for measurement.
"""

from __future__ import annotations

import logging
import os
from typing import Optional

from repro.emulation.bgp_engine import BgpResult, BgpSimulation
from repro.emulation.dataplane import Dataplane
from repro.emulation.dns_engine import DnsEngine
from repro.emulation.intent import LabIntent
from repro.emulation.network import EmulatedNetwork
from repro.emulation.ospf_engine import IgpState
from repro.emulation.parsing import LAB_PARSERS
from repro.emulation.vm import VirtualMachine
from repro.exceptions import EmulationError
from repro.observability import gauge_set, span

logger = logging.getLogger("repro.emulation")

#: Keep full per-round BGP history only for labs smaller than this —
#: the history is what oscillation experiments inspect.
HISTORY_MACHINE_LIMIT = 64


def detect_platform(lab_dir: str) -> str:
    """Infer the emulation platform from the files in a lab directory."""
    if os.path.exists(os.path.join(lab_dir, "lab.conf")):
        return "netkit"
    if os.path.exists(os.path.join(lab_dir, "lab.net")):
        return "dynagen"
    if os.path.exists(os.path.join(lab_dir, "topology.vmm")):
        return "junosphere"
    if os.path.exists(os.path.join(lab_dir, "network.cli")):
        return "cbgp"
    raise EmulationError("cannot detect platform of lab directory %s" % lab_dir)


class EmulatedLab:
    """A booted lab: fabric + converged protocols + VM handles."""

    def __init__(
        self,
        intent: LabIntent,
        max_rounds: int = 64,
        vendor_overrides: Optional[dict[str, str]] = None,
        keep_history: Optional[bool] = None,
    ):
        self.intent = intent
        with span("emulation.fabric"):
            self.network = EmulatedNetwork(intent)
        with span("emulation.igp"):
            self.igp = IgpState(self.network)
        self._simulation = BgpSimulation(
            self.network,
            self.igp,
            vendor_overrides=vendor_overrides,
            keep_history=keep_history
            if keep_history is not None
            else len(self.network) <= HISTORY_MACHINE_LIMIT,
        )
        logger.info(
            "fabric up: %d machines, %d segments, %d IGP areas",
            len(self.network),
            len(self.network.segments),
            len(self.igp.areas()),
        )
        gauge_set("emulation.machines", len(self.network))
        gauge_set("emulation.segments", len(self.network.segments))
        with span("emulation.bgp", machines=len(self.network)) as bgp_span:
            self.bgp_result: BgpResult = self._simulation.run(max_rounds=max_rounds)
            bgp_span.set("rounds", self.bgp_result.rounds)
            bgp_span.set("converged", self.bgp_result.converged)
            bgp_span.set("oscillating", self.bgp_result.oscillating)
            bgp_span.set("period", self.bgp_result.period)
        if self.bgp_result.converged:
            logger.info("BGP converged in %d rounds", self.bgp_result.rounds)
        elif self.bgp_result.oscillating:
            logger.warning(
                "BGP oscillates with period %d", self.bgp_result.period
            )
        else:
            logger.warning(
                "BGP undetermined after %d rounds", self.bgp_result.rounds
            )
        for warning in self.bgp_result.session_warnings:
            logger.warning("session: %s", warning)
        self.dataplane = Dataplane(self.network, self.igp, self.bgp_result)
        self.dns = DnsEngine(self.network)
        self._vms = {name: VirtualMachine(self, name) for name in self.network.machines}
        self._tap_map = self._build_tap_map()
        #: Directory the lab was booted from (None for intent-built labs).
        self.lab_dir: Optional[str] = None

    @classmethod
    def boot(
        cls,
        lab_dir: str | os.PathLike,
        platform: Optional[str] = None,
        max_rounds: int = 64,
        vendor_overrides: Optional[dict[str, str]] = None,
        keep_history: Optional[bool] = None,
    ) -> "EmulatedLab":
        """Parse a rendered lab directory and bring the network up."""
        lab_dir = str(lab_dir)
        platform = platform or detect_platform(lab_dir)
        logger.info("booting %s lab from %s", platform, lab_dir)
        try:
            parser = LAB_PARSERS[platform]
        except KeyError:
            raise EmulationError("no parser for platform %r" % platform) from None
        with span("emulation.parse", platform=platform):
            intent = parser(lab_dir)
        lab = cls(
            intent,
            max_rounds=max_rounds,
            vendor_overrides=vendor_overrides,
            keep_history=keep_history,
        )
        lab.lab_dir = lab_dir
        return lab

    # -- state ----------------------------------------------------------------
    @property
    def converged(self) -> bool:
        return self.bgp_result.converged

    @property
    def oscillating(self) -> bool:
        return self.bgp_result.oscillating

    def _build_tap_map(self) -> dict[str, str]:
        tap_map = {}
        for name, device in self.network.machines.items():
            for interface in device.interfaces:
                if interface.is_management and interface.ip_address is not None:
                    tap_map[str(interface.ip_address)] = name
        return tap_map

    # -- access ---------------------------------------------------------------
    def vm(self, name: str) -> VirtualMachine:
        try:
            return self._vms[name]
        except KeyError:
            raise EmulationError("no VM named %r" % (name,)) from None

    def vm_by_tap(self, tap_ip: str) -> VirtualMachine:
        try:
            return self._vms[self._tap_map[str(tap_ip)]]
        except KeyError:
            raise EmulationError("no VM with management address %r" % (tap_ip,)) from None

    def vms(self) -> list[VirtualMachine]:
        return [self._vms[name] for name in sorted(self._vms)]

    def run(self, machine: str, command: str) -> str:
        """Execute a command on one machine (by name or management IP)."""
        if machine in self._vms:
            return self._vms[machine].run(command)
        return self.vm_by_tap(machine).run(command)

    def dataplane_at_round(self, round_index: int) -> Dataplane:
        """Forwarding over the BGP selection of an earlier round.

        Only available when per-round history was kept; this is how the
        Bad-Gadget experiment observes the path flapping between
        rounds of a persistent oscillation.
        """
        history = self.bgp_result.history
        if not history:
            raise EmulationError("lab was booted without BGP history")
        snapshot = history[round_index % len(history)]
        return self.dataplane.with_bgp_snapshot(snapshot)

    def __repr__(self) -> str:
        status = "converged" if self.converged else (
            "oscillating" if self.oscillating else "not converged"
        )
        return "EmulatedLab(%d machines, %s, %d BGP rounds)" % (
            len(self.network),
            status,
            self.bgp_result.rounds,
        )
