"""The emulated lab: boot rendered configurations into a running network.

:func:`EmulatedLab.boot` is the substrate's ``lstart``: it detects the
platform from the files present, parses every configuration back into
device intent, brings up the fabric, converges the IGP, runs the BGP
simulation, and exposes :class:`~repro.emulation.vm.VirtualMachine`
handles for measurement.

Failure is a first-class state of the boot.  In the default **strict**
mode a device whose configuration failed to parse aborts the boot with
the underlying :class:`~repro.exceptions.ConfigParseError`, exactly as
before.  With ``strict=False`` the device is **quarantined** instead: a
structured :class:`~repro.resilience.BootDiagnostic` (file, line,
cause) lands in :attr:`quarantined`, the machine is excluded from the
fabric, and the rest of the lab converges degraded
(:attr:`degraded` is then true).

A booted lab also accepts live topology faults — :meth:`link_down`,
:meth:`link_up`, :meth:`node_down`, :meth:`node_up` — which mutate the
fabric in place and :meth:`reconverge` the protocols incrementally,
resuming BGP from the previous selected state rather than re-parsing
or cold-starting anything.
"""

from __future__ import annotations

import logging
import os
from typing import Optional

from repro.emulation.bgp_engine import BgpResult, BgpSimulation
from repro.emulation.dataplane import Dataplane
from repro.emulation.dns_engine import DnsEngine
from repro.emulation.intent import LabIntent
from repro.emulation.network import EmulatedNetwork
from repro.emulation.ospf_engine import IgpState
from repro.emulation.parsing import LAB_PARSERS
from repro.emulation.vm import VirtualMachine
from repro.exceptions import EmulationError
from repro.observability import WARNING, gauge_set, log_event, metric_inc, span
from repro.resilience.diagnostics import (
    CONVERGED,
    OSCILLATING,
    PARTITIONED,
    UNDETERMINED,
    BootDiagnostic,
    ConvergenceReport,
)

logger = logging.getLogger("repro.emulation")

#: Keep full per-round BGP history only for labs smaller than this —
#: the history is what oscillation experiments inspect.
HISTORY_MACHINE_LIMIT = 64


def detect_platform(lab_dir: str) -> str:
    """Infer the emulation platform from the files in a lab directory."""
    if os.path.exists(os.path.join(lab_dir, "lab.conf")):
        return "netkit"
    if os.path.exists(os.path.join(lab_dir, "lab.net")):
        return "dynagen"
    if os.path.exists(os.path.join(lab_dir, "topology.vmm")):
        return "junosphere"
    if os.path.exists(os.path.join(lab_dir, "network.cli")):
        return "cbgp"
    raise EmulationError("cannot detect platform of lab directory %s" % lab_dir)


class EmulatedLab:
    """A booted lab: fabric + converged protocols + VM handles."""

    def __init__(
        self,
        intent: LabIntent,
        max_rounds: int = 64,
        vendor_overrides: Optional[dict[str, str]] = None,
        keep_history: Optional[bool] = None,
        strict: bool = True,
        jobs: int = 1,
        spf_mode: str = "auto",
        bgp_mode: str = "events",
    ):
        self.intent = intent
        self.max_rounds = max_rounds
        self.strict = strict
        #: Fan-out width for per-VM bring-up (and, via :meth:`boot`,
        #: config parsing); 1 is the serial reference path.
        self.jobs = jobs
        self.spf_mode = spf_mode
        self.bgp_mode = bgp_mode
        self._vendor_overrides = vendor_overrides
        self._keep_history = keep_history
        #: Directory the lab was booted from (None for intent-built labs).
        self.lab_dir: Optional[str] = None
        #: machine name -> BootDiagnostic for devices excluded at boot.
        self.quarantined: dict[str, BootDiagnostic] = {}
        #: live fault state, applied on top of the parsed topology.
        self.disabled_machines: set[str] = set()
        self.disabled_attachments: set[tuple[str, str]] = set()
        self.igp: Optional[IgpState] = None
        self._simulation: Optional[BgpSimulation] = None
        self._resume_seed: Optional[dict] = None
        self.bgp_result: Optional[BgpResult] = None
        self._quarantine_scan()
        self._build_fabric()
        logger.info(
            "fabric up: %d machines, %d segments, %d IGP areas",
            len(self.network),
            len(self.network.segments),
            len(self.igp.areas()),
        )
        gauge_set("emulation.machines", len(self.network))
        gauge_set("emulation.segments", len(self.network.segments))
        self._build_simulation()
        self._converge()

    @classmethod
    def boot(
        cls,
        lab_dir: str | os.PathLike,
        platform: Optional[str] = None,
        max_rounds: int = 64,
        vendor_overrides: Optional[dict[str, str]] = None,
        keep_history: Optional[bool] = None,
        strict: bool = True,
        jobs: int = 1,
        spf_mode: str = "auto",
        bgp_mode: str = "events",
    ) -> "EmulatedLab":
        """Parse a rendered lab directory and bring the network up.

        ``jobs`` fans per-machine config parsing and per-VM bring-up
        over the engine executors; ``spf_mode``/``bgp_mode`` select the
        protocol engines' fast paths (the defaults) or the naive
        reference oracles (``"full"``/``"rounds"``).  Every combination
        produces an identical lab — the parallel-boot determinism and
        differential tests pin that down.
        """
        lab_dir = str(lab_dir)
        platform = platform or detect_platform(lab_dir)
        logger.info("booting %s lab from %s", platform, lab_dir)
        try:
            parser = LAB_PARSERS[platform]
        except KeyError:
            raise EmulationError("no parser for platform %r" % platform) from None
        with span("emulation.parse", platform=platform, jobs=jobs):
            intent = parser(lab_dir, jobs=jobs)
        lab = cls(
            intent,
            max_rounds=max_rounds,
            vendor_overrides=vendor_overrides,
            keep_history=keep_history,
            strict=strict,
            jobs=jobs,
            spf_mode=spf_mode,
            bgp_mode=bgp_mode,
        )
        lab.lab_dir = lab_dir
        return lab

    # -- boot stages -----------------------------------------------------------
    def _quarantine_scan(self) -> None:
        """Handle devices whose configurations failed to parse.

        Strict: re-raise the first collected error (today's behaviour).
        Non-strict: quarantine the device with a structured diagnostic
        and keep booting the rest of the fabric.
        """
        for name in sorted(self.intent.devices):
            device = self.intent.devices[name]
            errors = getattr(device, "boot_errors", None) or []
            if not errors:
                continue
            error = errors[0]
            if self.strict:
                if isinstance(error, Exception):
                    raise error
                raise EmulationError(str(error))
            diagnostic = BootDiagnostic.from_error(name, error)
            self.quarantined[name] = diagnostic
            self.disabled_machines.add(name)
            metric_inc("emulation.quarantined")
            fields = {
                "boot_%s" % key: value
                for key, value in diagnostic.to_dict().items()
            }
            log_event(
                WARNING,
                "emulation.quarantine",
                str(diagnostic),
                **fields,
            )
            logger.warning("%s", diagnostic)
        gauge_set("emulation.quarantined", len(self.quarantined))

    def _build_fabric(self) -> None:
        with span("emulation.fabric"):
            self.network = EmulatedNetwork(
                self.intent,
                disabled_machines=self.disabled_machines,
                disabled_attachments=self.disabled_attachments,
            )
        with span("emulation.igp"):
            if self.igp is None:
                self.igp = IgpState(self.network, spf_mode=self.spf_mode)
            else:
                self.igp.rebuild(self.network)

    def _build_simulation(self) -> None:
        if self._simulation is None:
            self._simulation = BgpSimulation(
                self.network,
                self.igp,
                vendor_overrides=self._vendor_overrides,
                keep_history=self._keep_history
                if self._keep_history is not None
                else len(self.network) <= HISTORY_MACHINE_LIMIT,
                bgp_mode=self.bgp_mode,
            )
        else:
            self._simulation.rebuild(self.network)

    def _converge(self, resume_from: Optional[dict] = None) -> None:
        with span("emulation.bgp", machines=len(self.network)) as bgp_span:
            self.bgp_result = self._simulation.run(
                max_rounds=self.max_rounds, resume_from=resume_from
            )
            bgp_span.set("rounds", self.bgp_result.rounds)
            bgp_span.set("converged", self.bgp_result.converged)
            bgp_span.set("oscillating", self.bgp_result.oscillating)
            bgp_span.set("period", self.bgp_result.period)
        if self.bgp_result.converged:
            logger.info("BGP converged in %d rounds", self.bgp_result.rounds)
        elif self.bgp_result.oscillating:
            logger.warning(
                "BGP oscillates with period %d", self.bgp_result.period
            )
        else:
            logger.warning(
                "BGP undetermined after %d rounds", self.bgp_result.rounds
            )
        for warning in self.bgp_result.session_warnings:
            logger.warning("session: %s", warning)
        self.dataplane = Dataplane(self.network, self.igp, self.bgp_result)
        self.dns = DnsEngine(self.network)
        self._vms = self._bring_up_vms()
        self._tap_map = self._build_tap_map()

    def _bring_up_vms(self) -> dict[str, "VirtualMachine"]:
        """Build the per-machine VM handles, fanned out when jobs > 1.

        Handles are assembled in sorted machine order either way, so a
        parallel bring-up yields a lab indistinguishable from a serial
        one.
        """
        names = sorted(self.network.machines)
        if self.jobs > 1 and len(names) > 1:
            from repro.engine.executors import make_executor, run_calls

            executor = make_executor(self.jobs)
            try:
                with span("emulation.vms", jobs=self.jobs, machines=len(names)):
                    handles = run_calls(
                        executor,
                        [
                            ("vm:%s" % name, lambda n: VirtualMachine(self, n), name)
                            for name in names
                        ],
                    )
            finally:
                executor.shutdown()
            return dict(zip(names, handles))
        return {name: VirtualMachine(self, name) for name in names}

    # -- state ----------------------------------------------------------------
    @property
    def converged(self) -> bool:
        return self.bgp_result.converged

    @property
    def oscillating(self) -> bool:
        return self.bgp_result.oscillating

    @property
    def degraded(self) -> bool:
        """True when at least one device is quarantined."""
        return bool(self.quarantined)

    @property
    def convergence_report(self) -> ConvergenceReport:
        """Classify how the last convergence run ended."""
        result = self.bgp_result
        components = self._fabric_components()
        if result.converged:
            status = CONVERGED
        elif result.oscillating:
            status = OSCILLATING
        elif components > 1:
            status = PARTITIONED
        else:
            status = UNDETERMINED
        return ConvergenceReport(
            status=status,
            rounds=result.rounds,
            deadline=self.max_rounds,
            period=result.period,
            components=components,
            quarantined=sorted(self.quarantined),
        )

    def _fabric_components(self) -> int:
        """Connected components among the active machines."""
        remaining = set(self.network.machines)
        components = 0
        while remaining:
            components += 1
            stack = [remaining.pop()]
            while stack:
                machine = stack.pop()
                for neighbor in self.network.neighbors_of(machine):
                    if neighbor in remaining:
                        remaining.remove(neighbor)
                        stack.append(neighbor)
        return components

    def _build_tap_map(self) -> dict[str, str]:
        tap_map = {}
        for name, device in self.network.machines.items():
            for interface in device.interfaces:
                if interface.is_management and interface.ip_address is not None:
                    tap_map[str(interface.ip_address)] = name
        return tap_map

    # -- live faults -----------------------------------------------------------
    def _link_keys(self, left: str, right: str) -> list[str]:
        for name in (left, right):
            if name not in self.network.all_machines:
                raise EmulationError("no machine named %r in the lab" % (name,))
        keys = self.network.segment_keys_between(left, right)
        if not keys:
            raise EmulationError(
                "no link between %r and %r to fail" % (left, right)
            )
        return keys

    def link_down(self, left: str, right: str, reconverge: bool = True):
        """Fail every link between two machines on the running lab."""
        for key in self._link_keys(left, right):
            self.disabled_attachments.add((left, key))
            self.disabled_attachments.add((right, key))
        metric_inc("fault.link_down")
        return self.reconverge() if reconverge else None

    def link_up(self, left: str, right: str, reconverge: bool = True):
        """Restore previously failed links between two machines."""
        for key in self._link_keys(left, right):
            self.disabled_attachments.discard((left, key))
            self.disabled_attachments.discard((right, key))
        metric_inc("fault.link_up")
        return self.reconverge() if reconverge else None

    def node_down(self, machine: str, reconverge: bool = True):
        """Power off one machine on the running lab."""
        if machine not in self.network.all_machines:
            raise EmulationError("no machine named %r to fail" % (machine,))
        self.disabled_machines.add(machine)
        metric_inc("fault.node_down")
        return self.reconverge() if reconverge else None

    def node_up(self, machine: str, reconverge: bool = True):
        """Power a previously downed machine back on."""
        if machine not in self.network.all_machines:
            raise EmulationError("no machine named %r to restore" % (machine,))
        if machine in self.quarantined:
            raise EmulationError(
                "machine %r is quarantined (%s) and cannot be restored"
                % (machine, self.quarantined[machine].cause)
            )
        self.disabled_machines.discard(machine)
        metric_inc("fault.node_up")
        return self.reconverge() if reconverge else None

    def reconverge(self) -> ConvergenceReport:
        """Rebuild the fabric under the current fault state and resettle.

        BGP resumes from the previous selected state — an incremental
        reconvergence, not a cold reboot — and nothing is re-parsed.
        """
        seed = (
            self.bgp_result.selected
            if self.bgp_result is not None
            else self._resume_seed
        )
        with span("emulation.reconverge", machines=len(self.network.all_machines)):
            self._build_fabric()
            self._build_simulation()
            self._converge(resume_from=seed)
        return self.convergence_report

    def fork(self, converge: bool = True) -> "EmulatedLab":
        """A cheap clone of this lab for destructive experiments.

        The clone shares the parsed intent (no re-parse, no deep copy)
        but owns its fabric and fault state, and resumes BGP from this
        lab's selected routes.  With ``converge=False`` the clone is
        returned before its protocols settle — callers then apply
        faults and :meth:`reconverge` once, which is how the what-if
        helpers avoid converging twice.
        """
        clone = object.__new__(type(self))
        clone.intent = self.intent
        clone.max_rounds = self.max_rounds
        clone.strict = self.strict
        clone.jobs = self.jobs
        clone.spf_mode = self.spf_mode
        clone.bgp_mode = self.bgp_mode
        clone._vendor_overrides = self._vendor_overrides
        clone._keep_history = (
            self._keep_history if self._keep_history is not None else False
        )
        clone.lab_dir = self.lab_dir
        clone.quarantined = dict(self.quarantined)
        clone.disabled_machines = set(self.disabled_machines)
        clone.disabled_attachments = set(self.disabled_attachments)
        clone.igp = None
        clone._simulation = None
        clone._resume_seed = self.bgp_result.selected if self.bgp_result else None
        clone.bgp_result = None
        clone._build_fabric()
        clone._build_simulation()
        if converge:
            clone._converge(resume_from=clone._resume_seed)
        return clone

    # -- access ---------------------------------------------------------------
    def vm(self, name: str) -> VirtualMachine:
        try:
            return self._vms[name]
        except KeyError:
            if name in self.quarantined:
                raise EmulationError(
                    "machine %r is quarantined: %s"
                    % (name, self.quarantined[name].cause)
                ) from None
            raise EmulationError("no VM named %r" % (name,)) from None

    def vm_by_tap(self, tap_ip: str) -> VirtualMachine:
        try:
            return self._vms[self._tap_map[str(tap_ip)]]
        except KeyError:
            raise EmulationError("no VM with management address %r" % (tap_ip,)) from None

    def vms(self) -> list[VirtualMachine]:
        return [self._vms[name] for name in sorted(self._vms)]

    def run(self, machine: str, command: str) -> str:
        """Execute a command on one machine (by name or management IP)."""
        if machine in self._vms:
            return self._vms[machine].run(command)
        return self.vm_by_tap(machine).run(command)

    def dataplane_at_round(self, round_index: int) -> Dataplane:
        """Forwarding over the BGP selection of an earlier round.

        Only available when per-round history was kept; this is how the
        Bad-Gadget experiment observes the path flapping between
        rounds of a persistent oscillation.
        """
        history = self.bgp_result.history
        if not history:
            raise EmulationError("lab was booted without BGP history")
        snapshot = history[round_index % len(history)]
        return self.dataplane.with_bgp_snapshot(snapshot)

    def __repr__(self) -> str:
        status = "converged" if self.converged else (
            "oscillating" if self.oscillating else "not converged"
        )
        if self.quarantined:
            status += ", %d quarantined" % len(self.quarantined)
        return "EmulatedLab(%d machines, %s, %d BGP rounds)" % (
            len(self.network),
            status,
            self.bgp_result.rounds,
        )
