"""BGP decision-process engine with per-vendor semantics (§7.2).

The engine runs a deterministic synchronous-round simulation: each
round every router advertises its current best route over every
session (route-reflection export rules applied), then all routers
re-run the decision process on the freshly delivered Adj-RIB-In.
Withdrawals are implicit — the Adj-RIB-In is rebuilt every round.

Two scheduling modes implement those semantics
(:class:`BgpSimulation` ``bgp_mode``):

* ``"events"`` (the default) keeps a persistent Adj-RIB-In and a
  per-router pending-update queue: only routers whose selection
  changed last round re-export, and only (receiver, prefix) pairs
  whose incoming contributions changed re-run the decision process.
  Quiescent routers do no work, yet every per-round global selection
  state — and therefore every convergence/oscillation verdict, period,
  and history snapshot — is bit-identical to the reference schedule.
  Imported routes are interned, so identical paths are shared across
  RIBs and history snapshots instead of reallocated each round.
* ``"rounds"`` is the reference oracle: the Adj-RIB-In is rebuilt from
  scratch every round, every router re-decides everything.  The
  differential test layer asserts both modes agree on final state
  hashes under random topologies and fault schedules.

``bgp.messages`` reflects the schedule: in rounds mode it counts every
(session, prefix) advertisement every round; in events mode it counts
only actual update messages — re-advertisements of changed selections.

Convergence detection hashes the global selection state each round:

* state unchanged  → converged;
* state seen in an earlier round → **persistent oscillation** with that
  period (the Bad-Gadget behaviour of §7.2).

Vendor differences are captured in :class:`VendorProfile`.  The one the
paper's experiment hinges on: Quagga's decision process did not apply
the IGP-metric-to-next-hop tie-break by default, while IOS, JunOS and
C-BGP do.  Hence the same route-reflection gadget oscillates on three
platforms and converges on Quagga.

Decision process order (classic BGP best path):

1. highest LOCAL_PREF;
2. locally originated routes;
3. shortest AS_PATH;
4. lowest ORIGIN;
5. lowest MED (compared among routes from the same neighbouring AS,
   deterministically — group-wise elimination);
6. eBGP-learned over iBGP-learned;
7. lowest IGP metric to NEXT_HOP — *only when the vendor applies it*;
8. lowest router-id of the advertising peer;
9. lowest peer address (final deterministic tie-break).
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.emulation.intent import BgpNeighborIntent
from repro.emulation.network import EmulatedNetwork
from repro.emulation.ospf_engine import IgpState
from repro.exceptions import EmulationError
from repro.observability import (
    INFO,
    WARNING,
    gauge_set,
    log_event,
    metric_inc,
    metric_observe,
)

_ORIGIN_RANK = {"igp": 0, "egp": 1, "incomplete": 2}

#: Recognised :class:`BgpSimulation` scheduling modes.
BGP_MODES = ("events", "rounds")


@dataclass(frozen=True)
class VendorProfile:
    """The decision-process knobs that differ across router software."""

    name: str
    igp_tiebreak: bool
    always_compare_med: bool = False
    default_local_pref: int = 100


#: Documented defaults per vendor (§7.2): Quagga skips the IGP metric
#: tie-break; the other three apply it.
VENDOR_PROFILES = {
    "quagga": VendorProfile("quagga", igp_tiebreak=False),
    "ios": VendorProfile("ios", igp_tiebreak=True),
    "junos": VendorProfile("junos", igp_tiebreak=True),
    "cbgp": VendorProfile("cbgp", igp_tiebreak=True),
}


@dataclass(frozen=True)
class BgpRoute:
    """One BGP path as stored in a router's RIB."""

    prefix: ipaddress.IPv4Network
    as_path: tuple[int, ...]
    next_hop: Optional[ipaddress.IPv4Address]
    local_pref: int
    med: Optional[int] = None
    origin: str = "igp"
    learned_via: str = "local"  # local | ebgp | ibgp
    learned_from: Optional[str] = None  # peer machine name
    from_client: bool = False
    originator: Optional[str] = None
    peer_router_id: str = "0.0.0.0"
    peer_address: str = "0.0.0.0"
    communities: tuple[str, ...] = ()

    def selection_key(self) -> tuple:
        """What "the same selection" means for convergence detection."""
        return (
            str(self.prefix),
            str(self.next_hop),
            self.learned_from or "",
            self.as_path,
        )


@dataclass
class Session:
    """One directed session endpoint: local machine's view of a peer."""

    local: str
    peer: str
    intent: BgpNeighborIntent
    is_ebgp: bool


@dataclass
class BgpResult:
    """Outcome of a simulation run.

    ``period`` keeps the legacy convention (0 when converged, the
    cycle length when oscillating).  ``detected_period`` records what
    the state-hash detector actually measured: 1 for a converged
    fixpoint (the state mapped to itself), N > 1 for a persistent
    oscillation, and 0 only when the run hit ``max_rounds`` without a
    verdict — which is what the ``bgp.period`` gauge now reports, with
    ``bgp.converged`` disambiguating the converged case.
    """

    converged: bool
    oscillating: bool
    rounds: int
    period: int = 0
    detected_period: int = 0
    selected: dict = field(default_factory=dict)  # machine -> prefix -> BgpRoute
    history: list = field(default_factory=list)  # per-round selection snapshots
    session_warnings: list = field(default_factory=list)
    messages: int = 0

    def best_route(self, machine: str, prefix) -> Optional[BgpRoute]:
        prefix = ipaddress.ip_network(str(prefix))
        return self.selected.get(machine, {}).get(prefix)


class BgpSimulation:
    """Synchronous-round BGP over an emulated network."""

    def __init__(
        self,
        network: EmulatedNetwork,
        igp: IgpState,
        vendor_overrides: Optional[dict[str, str]] = None,
        keep_history: bool = True,
        bgp_mode: str = "events",
    ):
        if bgp_mode not in BGP_MODES:
            raise EmulationError(
                "unknown bgp_mode %r (choose from %s)"
                % (bgp_mode, ", ".join(BGP_MODES))
            )
        self.network = network
        self.igp = igp
        self.keep_history = keep_history
        self.bgp_mode = bgp_mode
        self._vendor_overrides = dict(vendor_overrides or {})
        #: Intern pool: identical routes are shared across RIBs,
        #: selections, and history snapshots instead of reallocated.
        self._route_pool: dict[BgpRoute, BgpRoute] = {}
        #: Memo for the export->import pipeline (event schedule only).
        #: Survives ``rebuild`` across fault cycles (faults change
        #: topology, never config), but entries touching a machine
        #: whose BGP-relevant config changed — a live update moving a
        #: loopback, router-id, or session policy — are evicted, since
        #: the pipeline reads those inputs without them being in the
        #: memo key.
        self._advert_cache: dict[tuple, Optional[BgpRoute]] = {}
        #: machine -> BGP-relevant config fingerprint at last rebuild.
        self._machine_config: dict[str, tuple] = {}
        #: Event-engine state (Adj-RIB-In + contributions) persisted
        #: from the last *converged* events run.  A later
        #: ``run(resume_from=...)`` whose seed matches the stored
        #: fixpoint reuses it and seeds the queues with only the dirty
        #: machines instead of re-advertising every table.
        self._event_state: Optional[dict] = None
        #: Machines whose BGP inputs (config, sessions, originations,
        #: IGP view) changed since that state was stored; ``None``
        #: means unbounded — the machine set itself changed — which
        #: forces the full-sweep resume.
        self._resume_dirty: Optional[set[str]] = set()
        self._prev_machines: Optional[frozenset[str]] = None
        self._prev_devices: dict[str, object] = {}
        #: machine -> session fingerprint at last rebuild.
        self._session_config: dict[str, tuple] = {}
        self.local_routes: dict[str, dict] = {}
        self.rebuild(network)

    def rebuild(self, network: Optional[EmulatedNetwork] = None) -> None:
        """Accept a topology delta: recompute sessions and origination.

        Called after the fabric changes under a running simulation (a
        fault schedule downing a link or machine); the previous selected
        state survives in the caller and is passed back through
        ``run(resume_from=...)`` so reconvergence is incremental.
        """
        if network is not None:
            self.network = network
        #: (machine, next hop) -> IGP cost memo; the decision process
        #: resolves the same next hops for every candidate every round,
        #: and the answer only changes when the fabric does.
        self._next_hop_costs: dict[tuple, Optional[int]] = {}
        self.warnings = []
        self.vendors = {}
        for name, device in self.network.machines.items():
            vendor_name = self._vendor_overrides.get(name, device.vendor)
            self.vendors[name] = VENDOR_PROFILES.get(
                vendor_name, VENDOR_PROFILES["quagga"]
            )
        self.sessions = {}
        #: (local machine, peer machine) -> the local side's neighbor intent.
        self._intent_of: dict[tuple[str, str], BgpNeighborIntent] = {}
        old_local = self.local_routes
        old_sessions = self._session_config
        self._build_sessions()
        self.local_routes = self._originate()
        config_changed = self._evict_stale_adverts()
        self._track_dirty(old_local, old_sessions, config_changed)

    def _machine_fingerprint(self, name: str, device) -> tuple:
        """Every config input the export->import pipeline reads for one
        machine that is *not* part of the advert-cache key: the vendor
        (default local-pref), the loopback (iBGP next-hop-self and
        fallback next hops), and the full BGP stanza (ASN for loop
        checks and prepending, router-id stamping, per-neighbor
        policy)."""
        bgp = device.bgp
        return (
            self._vendor_overrides.get(name, device.vendor),
            str(device.loopback),
            None
            if bgp is None
            else (
                bgp.asn,
                bgp.router_id,
                tuple(repr(neighbor) for neighbor in bgp.neighbors),
            ),
        )

    def _evict_stale_adverts(self) -> set[str]:
        """Drop memoised adverts that touch reconfigured machines.

        Fault cycles leave every fingerprint identical (topology
        changes, config does not), so the memo survives them intact;
        a live update evicts exactly the senders/receivers it rewrote.
        A machine that vanished keeps its entries — they can only be
        looked up again if it returns (node_up) with the same config,
        in which case they are still exact.  Returns the machines whose
        fingerprint changed, which also feeds the resume dirty set.
        """
        previous = self._machine_config
        config = {}
        for name, device in self.network.machines.items():
            # Same intent object as last rebuild -> same fingerprint;
            # only replaced devices pay the repr of their BGP stanza.
            if name in previous and self._prev_devices.get(name) is device:
                config[name] = previous[name]
            else:
                config[name] = self._machine_fingerprint(name, device)
        changed = {
            name
            for name, fingerprint in config.items()
            if name in previous and previous[name] != fingerprint
        }
        self._machine_config = dict(previous)
        self._machine_config.update(config)
        if changed and self._advert_cache:
            evicted = [
                key
                for key in self._advert_cache
                if key[0] in changed or key[1] in changed
            ]
            for key in evicted:
                del self._advert_cache[key]
            metric_inc("bgp.advert_cache_evicted", len(evicted))
        return changed

    def _track_dirty(
        self,
        old_local: dict[str, dict],
        old_sessions: dict[str, tuple],
        config_changed: set[str],
    ) -> None:
        """Accumulate the machines whose BGP inputs this rebuild moved.

        A machine is dirty when its config fingerprint, session set,
        local originations, or IGP view changed since the last
        completed run stored its event state — exactly the inputs the
        decision process and the export->import pipeline read.  A
        change to the machine set itself defeats the bookkeeping
        (``None``: the next resume falls back to the full sweep).
        """
        self._session_config = {
            name: tuple(
                (session.peer, str(session.intent.peer_ip), session.is_ebgp)
                for session in session_list
            )
            for name, session_list in self.sessions.items()
        }
        igp_dirty = self.igp.consume_dirty_sources()
        machines = frozenset(self.network.machines)
        if self._prev_machines is not None and machines != self._prev_machines:
            self._resume_dirty = None
        elif self._resume_dirty is not None:
            local_changed = {
                name
                for name in set(old_local) | set(self.local_routes)
                if old_local.get(name) != self.local_routes.get(name)
            }
            session_changed = {
                name
                for name in set(old_sessions) | set(self._session_config)
                if old_sessions.get(name) != self._session_config.get(name)
            }
            # A replaced intent object means *some* edit landed on the
            # machine; fault cycles rebuild the network around the same
            # objects, so this only fires for genuine config deltas —
            # including ones the fingerprints above are too coarse to
            # see (an interface address moving within its prefix).
            replaced = {
                name
                for name, device in self.network.machines.items()
                if self._prev_devices.get(name) is not device
            }
            self._resume_dirty |= (
                config_changed
                | session_changed
                | local_changed
                | replaced
                | (igp_dirty & machines)
            )
        self._prev_machines = machines
        self._prev_devices = dict(self.network.machines)

    # -- setup ------------------------------------------------------------------
    def _build_sessions(self) -> None:
        for name in sorted(self.network.machines):
            device = self.network.machines[name]
            if device.bgp is None:
                continue
            for intent in device.bgp.neighbors:
                peer = self.network.owner_of(intent.peer_ip)
                if peer is None:
                    self.warnings.append(
                        "%s: neighbor %s matches no machine" % (name, intent.peer_ip)
                    )
                    continue
                peer_device = self.network.machines[peer]
                if peer_device.bgp is None:
                    self.warnings.append(
                        "%s: peer %s runs no BGP" % (name, peer)
                    )
                    continue
                is_ebgp = intent.remote_asn != device.bgp.asn
                self.sessions.setdefault(name, []).append(
                    Session(local=name, peer=peer, intent=intent, is_ebgp=is_ebgp)
                )
                self._intent_of[(name, peer)] = intent
        # A session is up only when both sides configured it.
        for name, session_list in list(self.sessions.items()):
            alive = []
            for session in session_list:
                if (session.peer, name) in self._intent_of:
                    alive.append(session)
                else:
                    self.warnings.append(
                        "%s -> %s: no reciprocal neighbor statement"
                        % (name, session.peer)
                    )
            self.sessions[name] = alive

    def _originate(self) -> dict[str, dict]:
        local: dict[str, dict] = {}
        for name, device in self.network.machines.items():
            if device.bgp is None:
                continue
            vendor = self.vendors[name]
            table = {}
            for prefix in device.bgp.networks:
                table[prefix] = self._intern(
                    BgpRoute(
                        prefix=prefix,
                        as_path=(),
                        next_hop=None,
                        local_pref=vendor.default_local_pref,
                        learned_via="local",
                        originator=name,
                    )
                )
            local[name] = table
        return local

    def _intern(self, route: BgpRoute) -> BgpRoute:
        """Return the pooled instance equal to ``route``."""
        pooled = self._route_pool.setdefault(route, route)
        if pooled is route:
            metric_inc("bgp.routes_interned")
        else:
            metric_inc("bgp.route_pool_hits")
        return pooled

    # -- export / import ----------------------------------------------------
    def _can_export(self, route: BgpRoute, session: Session) -> bool:
        if route.learned_from == session.peer:
            return False
        if session.is_ebgp:
            denied = getattr(session.intent, "deny_out", ()) or ()
            if any(route.prefix == net or net.supernet_of(route.prefix) for net in denied):
                return False
            return True
        if route.learned_via in ("local", "ebgp"):
            return True
        # iBGP-learned: reflect everywhere when it came from a client,
        # only towards clients otherwise (RFC 4456 semantics).
        if route.from_client:
            return True
        return bool(session.intent.rr_client)

    def _export(self, sender: str, route: BgpRoute, session: Session) -> BgpRoute:
        device = self.network.machines[sender]
        if session.is_ebgp:
            next_hop = self._session_address(sender, session)
            prepend = 1 + (session.intent.prepend_out or 0)
            communities = route.communities
            added = getattr(session.intent, "communities_out", ()) or ()
            if added:
                communities = tuple(
                    sorted(set(communities) | set(added))
                )
            return replace(
                route,
                as_path=(device.bgp.asn,) * prepend + route.as_path,
                next_hop=next_hop,
                local_pref=0,  # receiver assigns
                med=session.intent.med_out,
                communities=communities,
                originator=None,
            )
        next_hop = route.next_hop
        if route.learned_via in ("local", "ebgp") and session.intent.next_hop_self:
            next_hop = device.loopback or next_hop
        if next_hop is None:
            next_hop = device.loopback
        return replace(
            route,
            next_hop=next_hop,
            originator=route.originator or sender,
        )

    def _session_address(self, sender: str, session: Session):
        peer_ip = session.intent.peer_ip
        device = self.network.machines[sender]
        for segment in self.network.segments_of(sender):
            net = segment.network
            if net is not None and peer_ip in net:
                interface = segment.interface_of(sender)
                if interface is not None and interface.ip_address is not None:
                    return interface.ip_address
        return device.loopback

    def _import(self, receiver: str, sender: str, route: BgpRoute, session: Session):
        """Apply receive-side checks and policy; None means rejected."""
        device = self.network.machines[receiver]
        vendor = self.vendors[receiver]
        receiving_intent = self._intent_of.get((receiver, sender))
        if receiving_intent is None:
            return None
        sender_device = self.network.machines[sender]
        peer_router_id = (
            sender_device.bgp.router_id
            or (str(sender_device.loopback) if sender_device.loopback else "0.0.0.0")
        )
        if session.is_ebgp:
            if device.bgp.asn in route.as_path:
                return None  # AS-path loop
            denied = getattr(receiving_intent, "deny_in", ()) or ()
            if any(
                route.prefix == net or net.supernet_of(route.prefix)
                for net in denied
            ):
                return None  # inbound prefix filter
            local_pref = receiving_intent.local_pref_in or vendor.default_local_pref
            return self._intern(
                replace(
                    route,
                    local_pref=local_pref,
                    learned_via="ebgp",
                    learned_from=sender,
                    from_client=False,
                    originator=None,
                    peer_router_id=peer_router_id,
                    peer_address=str(receiving_intent.peer_ip),
                )
            )
        if route.originator == receiver:
            return None  # reflection loop back to the originator
        return self._intern(
            replace(
                route,
                learned_via="ibgp",
                learned_from=sender,
                from_client=receiving_intent.rr_client,
                peer_router_id=peer_router_id,
                peer_address=str(receiving_intent.peer_ip),
            )
        )

    def _advertise(self, sender: str, route: BgpRoute, session: Session):
        """The export->import pipeline for one advert, memoised.

        Given the resolved session address (the only network-dependent
        input — everything else is config values that survive topology
        deltas), the outcome is a pure function of (sender, session,
        route), so a fault cycle that revisits earlier selections skips
        the policy evaluation and route construction entirely.  Only the
        event schedule calls this; the reference schedule stays naive.
        """
        anchor = self._session_address(sender, session) if session.is_ebgp else None
        key = (sender, session.peer, session.intent.peer_ip, route, anchor)
        try:
            imported = self._advert_cache[key]
            metric_inc("bgp.advert_cache_hits")
            return imported
        except KeyError:
            pass
        advert = self._export(sender, route, session)
        imported = self._import(session.peer, sender, advert, session)
        if len(self._advert_cache) > 200_000:
            self._advert_cache.clear()
        self._advert_cache[key] = imported
        return imported

    # -- decision process ----------------------------------------------------
    def _next_hop_cost(self, machine: str, next_hop) -> Optional[int]:
        key = (machine, next_hop)
        try:
            return self._next_hop_costs[key]
        except KeyError:
            pass
        cost = self.igp.cost_to_address(machine, next_hop)
        if cost is None:
            # Unnumbered (C-BGP style) links: a next hop owned by a
            # direct fabric neighbour is reachable at zero cost even
            # without an IGP route to it.
            owner = self.network.owner_of(next_hop)
            if owner is not None and owner in self.network.neighbors_of(machine):
                cost = 0
        self._next_hop_costs[key] = cost
        return cost

    def _valid(self, machine: str, route: BgpRoute) -> bool:
        if route.learned_via == "local":
            return True
        if route.next_hop is None:
            return False
        return self._next_hop_cost(machine, route.next_hop) is not None

    def _igp_cost(self, machine: str, route: BgpRoute) -> int:
        if route.learned_via == "local" or route.next_hop is None:
            return 0
        cost = self._next_hop_cost(machine, route.next_hop)
        return 0 if cost is None else cost

    def decide(self, machine: str, candidates: list[BgpRoute]) -> Optional[BgpRoute]:
        """Run the decision process over one prefix's candidates."""
        valid = [route for route in candidates if self._valid(machine, route)]
        if not valid:
            return None
        vendor = self.vendors[machine]
        survivors = self._med_elimination(valid, vendor)

        def key(route: BgpRoute) -> tuple:
            return (
                -route.local_pref,
                0 if route.learned_via == "local" else 1,
                len(route.as_path),
                _ORIGIN_RANK.get(route.origin, 2),
                0 if route.learned_via == "ebgp" else 1,
                self._igp_cost(machine, route) if vendor.igp_tiebreak else 0,
                route.peer_router_id,
                route.peer_address,
            )

        return min(survivors, key=key)

    @staticmethod
    def _med_elimination(routes: list[BgpRoute], vendor: VendorProfile) -> list[BgpRoute]:
        """Deterministic MED: per-neighbour-AS elimination of worse MEDs."""
        groups: dict = {}
        for route in routes:
            group_key = (
                "all" if vendor.always_compare_med
                else (route.as_path[0] if route.as_path else None)
            )
            groups.setdefault(group_key, []).append(route)
        survivors = []
        for members in groups.values():
            with_med = [route for route in members if route.med is not None]
            if len(with_med) < 2:
                survivors.extend(members)
                continue
            best_med = min(route.med for route in with_med)
            survivors.extend(
                route
                for route in members
                if route.med is None or route.med == best_med
            )
        return survivors

    # -- the simulation loop ----------------------------------------------------
    def run(self, max_rounds: int = 64, resume_from: Optional[dict] = None) -> BgpResult:
        """Run the simulation and record per-run telemetry.

        ``resume_from`` seeds the selection state with a previous run's
        ``selected`` tables (incremental reconvergence after a topology
        delta): routes through now-dead paths wash out on the first
        round because the Adj-RIB-In is rebuilt from live sessions, and
        the fixpoint is typically reached in far fewer rounds than a
        cold start.

        The metrics (``bgp.rounds``, ``bgp.messages``,
        ``bgp.state_hash_checks``) and the convergence/oscillation
        event make an E6-style oscillation diagnosable from the trace
        alone: a converged run shows ``bgp.converged`` = 1 with
        ``bgp.period`` = 1 (the detected fixpoint period), an
        oscillating run shows ``bgp.period`` > 1 plus a warning event
        carrying the period, and ``bgp.period`` = 0 means the run hit
        ``max_rounds`` undetermined.
        """
        if self.bgp_mode == "rounds":
            result = self._simulate_rounds(max_rounds, resume_from=resume_from)
        else:
            result = self._simulate_events(max_rounds, resume_from=resume_from)
        metric_inc("bgp.rounds", result.rounds)
        metric_inc("bgp.messages", result.messages)
        metric_inc("bgp.state_hash_checks", result.rounds + 1)
        gauge_set("bgp.period", result.detected_period)
        gauge_set("bgp.converged", 1 if result.converged else 0)
        if result.oscillating:
            log_event(
                WARNING,
                "emulation",
                "BGP oscillates with period %d" % result.period,
                rounds=result.rounds,
                period=result.period,
            )
        else:
            log_event(
                INFO,
                "emulation",
                "BGP %s after %d rounds"
                % ("converged" if result.converged else "undetermined", result.rounds),
                rounds=result.rounds,
                messages=result.messages,
            )
        return result

    def _seed_selected(self, resume_from: Optional[dict]) -> dict[str, dict]:
        selected: dict[str, dict] = {
            name: dict(table) for name, table in self.local_routes.items()
        }
        if resume_from:
            # Seed with the previous run's selections for machines still
            # in the fabric; local originations always come back (they
            # exist regardless of topology), learned routes re-validate
            # against the live sessions on the first round.
            for name, table in resume_from.items():
                if name not in selected:
                    continue
                merged = dict(selected[name])
                for prefix, route in table.items():
                    if route.learned_via != "local":
                        merged[prefix] = route
                selected[name] = merged
        return selected

    def _simulate_rounds(
        self, max_rounds: int, resume_from: Optional[dict] = None
    ) -> BgpResult:
        """The reference schedule: full Adj-RIB-In rebuild every round."""
        selected = self._seed_selected(resume_from)
        seen: dict[tuple, int] = {}
        history: list[dict] = []
        messages = 0

        for round_index in range(max_rounds + 1):
            state = self._state_key(selected)
            if self.keep_history:
                history.append(self._snapshot(selected))
            if state in seen:
                # A revisit after exactly one transition is a fixpoint
                # (the state mapped to itself); a longer period is a
                # persistent oscillation.
                period = round_index - seen[state]
                converged = period == 1
                return BgpResult(
                    converged=converged,
                    oscillating=not converged,
                    rounds=round_index,
                    period=0 if converged else period,
                    detected_period=period,
                    selected=selected,
                    history=history,
                    session_warnings=list(self.warnings),
                    messages=messages,
                )
            seen[state] = round_index

            rib_in: dict[str, dict] = {name: {} for name in self.network.machines}
            for name, session_list in self.sessions.items():
                for session in session_list:
                    for prefix, route in selected.get(name, {}).items():
                        if not self._can_export(route, session):
                            continue
                        advert = self._export(name, route, session)
                        imported = self._import(session.peer, name, advert, session)
                        messages += 1
                        if imported is not None:
                            rib_in[session.peer][(name, prefix)] = imported

            new_selected: dict[str, dict] = {}
            for name, device in self.network.machines.items():
                if device.bgp is None:
                    continue
                candidates_by_prefix: dict = {}
                for prefix, route in self.local_routes.get(name, {}).items():
                    candidates_by_prefix.setdefault(prefix, []).append(route)
                for (_, prefix), route in rib_in.get(name, {}).items():
                    candidates_by_prefix.setdefault(prefix, []).append(route)
                table = {}
                for prefix, candidates in candidates_by_prefix.items():
                    best = self.decide(name, candidates)
                    if best is not None:
                        table[prefix] = best
                new_selected[name] = table
            selected = new_selected

        return BgpResult(
            converged=False,
            oscillating=False,
            rounds=max_rounds,
            selected=selected,
            history=history,
            session_warnings=list(self.warnings),
            messages=messages,
        )

    def _simulate_events(
        self, max_rounds: int, resume_from: Optional[dict] = None
    ) -> BgpResult:
        """Event-driven schedule, bit-identical to the reference rounds.

        Invariant maintained every round: the persistent Adj-RIB-In
        equals what the reference schedule would rebuild from the
        current selections.  The contribution a sender makes to a
        peer's RIB for one prefix is a pure function of the sender's
        selected route (sessions and IGP are fixed within a run), so a
        contribution only needs recomputing when that selection changed
        — the pending-export queue.  A decision only needs re-running
        when one of its incoming contributions (or its validity inputs)
        changed — the pending-decide queue.  Everything else carries
        over, which is why per-round global states (and hence
        convergence verdicts, periods, and history) match the reference
        exactly while quiescent routers do no work.
        """
        selected = self._seed_selected(resume_from)
        seen: dict[tuple, int] = {}
        history: list[dict] = []
        messages = 0

        saved = self._event_state
        # A partially-run schedule's RIBs are useless to a later
        # resume; drop the stored state now and put back a fresh one
        # only when this run reaches a fixpoint.
        self._event_state = None
        dirty = self._resume_dirty
        incremental = (
            resume_from is not None
            and saved is not None
            and dirty is not None
            and selected == saved["selected"]
        )
        if incremental:
            # The stored Adj-RIB-In is exact for every machine outside
            # ``dirty`` — config, sessions, originations, and IGP view
            # all unchanged since the fixpoint — so only dirty machines
            # re-advertise and re-decide.  Their neighbors' tables must
            # also be re-sent *towards* them (the receiving side's
            # import policy or session addressing may be what changed),
            # and exports the fixpoint round left queued (selection
            # changes invisible to the state key) still go out.
            rib_in = saved["rib_in"]
            contributions = saved["contributions"]
            senders_to: dict[str, set] = {}
            for sender, session_list in self.sessions.items():
                for session in session_list:
                    senders_to.setdefault(session.peer, set()).add(sender)
            resend = set(dirty)
            for receiver in dirty:
                resend.update(senders_to.get(receiver, ()))
            pending_exports = set(saved["pending_exports"])
            pending_exports.update(
                (name, prefix)
                for name in resend
                for prefix in selected.get(name, {})
            )
            pending_decides = {
                (name, prefix)
                for name in dirty
                for prefix in set(selected.get(name, {}))
                | set(rib_in.get(name, {}))
                | set(self.local_routes.get(name, {}))
            }
            metric_inc("bgp.resume_incremental")
            metric_observe("bgp.resume_dirty", len(dirty))
        else:
            #: receiver -> prefix -> sender -> imported route.
            rib_in = {name: {} for name in self.network.machines}
            #: (sender, prefix) -> {peer: imported route} currently in RIBs.
            contributions = {}
            # Every seeded selection is an unsent update; resumed learned
            # routes must also be re-decided (the reference drops them
            # unless re-delivered), so seed the decide queue with them.
            pending_exports = {
                (name, prefix)
                for name, table in selected.items()
                for prefix in table
            }
            pending_decides = {
                (name, prefix)
                for name, table in selected.items()
                for prefix, route in table.items()
                if route.learned_via != "local"
            }
            if resume_from is not None:
                metric_inc("bgp.resume_full")

        for round_index in range(max_rounds + 1):
            # Queue depth per round is *the* visibility into what the
            # event-driven schedule saves: the reference rebuilds every
            # RIB every round, the fast path touches only these.
            metric_observe(
                "bgp.queue_depth", len(pending_exports) + len(pending_decides)
            )
            state = self._state_key(selected)
            if self.keep_history:
                history.append(self._snapshot(selected))
            if state in seen:
                period = round_index - seen[state]
                converged = period == 1
                if converged:
                    # The fixpoint's RIBs seed the next resume: decide
                    # can swap a selection for an equal-ranking route
                    # the state key cannot see, so exports it queued on
                    # the final round ride along for replay.
                    self._event_state = {
                        "rib_in": rib_in,
                        "contributions": contributions,
                        "selected": selected,
                        "pending_exports": pending_exports,
                    }
                    self._resume_dirty = set()
                return BgpResult(
                    converged=converged,
                    oscillating=not converged,
                    rounds=round_index,
                    period=0 if converged else period,
                    detected_period=period,
                    selected=selected,
                    history=history,
                    session_warnings=list(self.warnings),
                    messages=messages,
                )
            seen[state] = round_index

            # Propagate: recompute contributions of changed selections.
            for sender, prefix in sorted(pending_exports):
                route = selected.get(sender, {}).get(prefix)
                new_map: dict = {}
                if route is not None:
                    for session in self.sessions.get(sender, []):
                        if not self._can_export(route, session):
                            continue
                        imported = self._advertise(sender, route, session)
                        messages += 1
                        if imported is not None:
                            # Parallel sessions to the same peer: the
                            # last non-None import wins, as in the
                            # reference schedule.
                            new_map[session.peer] = imported
                old_map = contributions.get((sender, prefix), {})
                if new_map == old_map:
                    continue
                for peer in old_map.keys() - new_map.keys():
                    rib_in[peer].get(prefix, {}).pop(sender, None)
                    pending_decides.add((peer, prefix))
                for peer, imported in new_map.items():
                    if old_map.get(peer) != imported:
                        rib_in[peer].setdefault(prefix, {})[sender] = imported
                        pending_decides.add((peer, prefix))
                if new_map:
                    contributions[(sender, prefix)] = new_map
                else:
                    contributions.pop((sender, prefix), None)

            # Decide: re-run the decision process where inputs changed.
            pending_exports = set()
            for receiver, prefix in sorted(pending_decides):
                device = self.network.machines.get(receiver)
                if device is None or device.bgp is None:
                    continue
                candidates = []
                local = self.local_routes.get(receiver, {}).get(prefix)
                if local is not None:
                    candidates.append(local)
                candidates.extend(rib_in[receiver].get(prefix, {}).values())
                best = self.decide(receiver, candidates)
                table = selected.setdefault(receiver, {})
                previous = table.get(prefix)
                if best is None:
                    table.pop(prefix, None)
                else:
                    table[prefix] = best
                if best != previous:
                    pending_exports.add((receiver, prefix))
            pending_decides = set()

        return BgpResult(
            converged=False,
            oscillating=False,
            rounds=max_rounds,
            selected=selected,
            history=history,
            session_warnings=list(self.warnings),
            messages=messages,
        )

    @staticmethod
    def _state_key(selected: dict) -> tuple:
        return tuple(
            (name, tuple(sorted(route.selection_key() for route in table.values())))
            for name, table in sorted(selected.items())
        )

    @staticmethod
    def _snapshot(selected: dict) -> dict:
        return {
            name: {prefix: route for prefix, route in table.items()}
            for name, table in selected.items()
        }
