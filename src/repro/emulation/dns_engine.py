"""DNS service engine: serves the zones parsed from rendered bind files.

Forward zones map ``<host>.<as zone>`` names to addresses; the reverse
zone maps addresses back to names — the service that makes hostnames
appear in (non ``-n``) traceroute output (§3.3).
"""

from __future__ import annotations

import ipaddress
from typing import Optional

from repro.emulation.network import EmulatedNetwork


class DnsEngine:
    """All zones of the lab, indexed for forward and reverse lookup."""

    def __init__(self, network: EmulatedNetwork):
        self.network = network
        self._forward: dict[str, str] = {}  # fqdn -> address
        self._reverse: dict[str, str] = {}  # address -> fqdn
        self._server_of: dict[str, str] = {}  # machine -> resolver address
        self._domain_of: dict[str, str] = {}
        self._load()

    def _load(self) -> None:
        for name, device in self.network.machines.items():
            if device.dns is None:
                continue
            if device.dns.resolver:
                self._server_of[name] = device.dns.resolver
            if device.dns.domain:
                self._domain_of[name] = device.dns.domain
            if not device.dns.is_server:
                continue
            for zone in device.dns.zones:
                for host, address in zone.records.items():
                    if host in ("@", "ns"):
                        continue
                    fqdn = "%s.%s" % (host, zone.origin)
                    self._forward[fqdn] = address
                    self._reverse.setdefault(address, fqdn)
                for ptr_name, fqdn in zone.ptr_records.items():
                    address = _ptr_to_address(ptr_name)
                    if address is not None:
                        self._reverse[address] = fqdn.rstrip(".")

    # -- queries ------------------------------------------------------------
    def resolve(self, name: str, client: Optional[str] = None) -> Optional[str]:
        """Resolve a (possibly unqualified) name to an address."""
        if name in self._forward:
            return self._forward[name]
        if client is not None:
            domain = self._domain_of.get(client)
            if domain:
                return self._forward.get("%s.%s" % (name, domain))
        # Fall back to a any-zone suffix search for unqualified names.
        matches = sorted(
            address
            for fqdn, address in self._forward.items()
            if fqdn.split(".")[0] == name
        )
        return matches[0] if matches else None

    def reverse(self, address) -> Optional[str]:
        return self._reverse.get(str(address))

    def has_resolver(self, machine: str) -> bool:
        return machine in self._server_of

    def zone_count(self) -> int:
        return len({fqdn.split(".", 1)[1] for fqdn in self._forward})

    def record_count(self) -> int:
        return len(self._forward)


def _ptr_to_address(ptr_name: str) -> Optional[str]:
    suffix = ".in-addr.arpa"
    name = ptr_name.rstrip(".")
    if not name.endswith(suffix):
        return None
    octets = name[: -len(suffix)].split(".")
    if len(octets) != 4:
        return None
    try:
        return str(ipaddress.ip_address(".".join(reversed(octets))))
    except ValueError:
        return None
