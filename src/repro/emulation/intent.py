"""Device intent: the parsed form of generated configurations.

The emulation substrate never reads the NIDB — it *boots from the
rendered configuration text*, exactly as a real emulation platform
would.  Each platform parser (netkit/dynagen/junosphere/cbgp) produces
the same intermediate representation defined here, so the protocol
engines are vendor-neutral while the *parsing* exercises each vendor's
concrete syntax.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import ipaddress
from typing import Optional


@dataclass
class InterfaceIntent:
    """One configured interface: name, address, and attached segment."""

    name: str
    ip_address: Optional[ipaddress.IPv4Address] = None
    prefixlen: Optional[int] = None
    collision_domain: Optional[str] = None
    is_loopback: bool = False
    is_management: bool = False
    ospf_cost: int = 1
    ipv6_address: Optional[ipaddress.IPv6Address] = None
    ipv6_prefixlen: Optional[int] = None

    @property
    def network(self) -> Optional[ipaddress.IPv4Network]:
        if self.ip_address is None or self.prefixlen is None:
            return None
        # Memoised: the protocol engines resolve interface subnets on
        # every next-hop check, and IPv4Network construction dominated
        # the boot profile before this cache.  Keyed on the address pair
        # so parsers that patch an interface in place stay correct.
        key = (self.ip_address, self.prefixlen)
        cached = self.__dict__.get("_network_cache")
        if cached is None or cached[0] != key:
            cached = (
                key,
                ipaddress.ip_network("%s/%d" % key, strict=False),
            )
            self.__dict__["_network_cache"] = cached
        return cached[1]


@dataclass
class OspfIntent:
    """Parsed OSPF configuration: advertised networks and costs."""

    process_id: int = 1
    router_id: Optional[str] = None
    networks: list[tuple[ipaddress.IPv4Network, int]] = field(default_factory=list)
    interface_costs: dict[str, int] = field(default_factory=dict)

    def advertises(self, network: ipaddress.IPv4Network) -> bool:
        return any(network == advertised or advertised.supernet_of(network)
                   for advertised, _ in self.networks)


@dataclass
class IsisIntent:
    """Parsed IS-IS configuration."""

    process_id: int = 1
    net: Optional[str] = None
    interface_metrics: dict[str, int] = field(default_factory=dict)


@dataclass
class BgpNeighborIntent:
    """One configured BGP session endpoint."""

    peer_ip: ipaddress.IPv4Address
    remote_asn: int
    update_source: Optional[str] = None
    next_hop_self: bool = False
    rr_client: bool = False
    local_pref_in: Optional[int] = None
    med_out: Optional[int] = None
    prepend_out: int = 0
    communities_out: tuple = ()
    deny_out: tuple = ()
    deny_in: tuple = ()
    description: str = ""


@dataclass
class BgpIntent:
    """Parsed BGP configuration for one router."""

    asn: int
    router_id: Optional[str] = None
    networks: list[ipaddress.IPv4Network] = field(default_factory=list)
    neighbors: list[BgpNeighborIntent] = field(default_factory=list)

    def neighbor_for(self, peer_ip) -> Optional[BgpNeighborIntent]:
        peer_ip = ipaddress.ip_address(str(peer_ip))
        for neighbor in self.neighbors:
            if neighbor.peer_ip == peer_ip:
                return neighbor
        return None


@dataclass
class DnsZoneIntent:
    """Parsed zone data from a rendered bind file."""

    origin: str
    records: dict[str, str] = field(default_factory=dict)  # name -> address
    ptr_records: dict[str, str] = field(default_factory=dict)  # reverse name -> fqdn


@dataclass
class DnsIntent:
    """Parsed DNS server/client configuration."""

    is_server: bool = False
    zones: list[DnsZoneIntent] = field(default_factory=list)
    resolver: Optional[str] = None
    domain: Optional[str] = None


@dataclass
class DeviceIntent:
    """Everything one machine's configuration files declared."""

    name: str
    vendor: str = "quagga"
    hostname: Optional[str] = None
    interfaces: list[InterfaceIntent] = field(default_factory=list)
    ospf: Optional[OspfIntent] = None
    isis: Optional[IsisIntent] = None
    bgp: Optional[BgpIntent] = None
    dns: Optional[DnsIntent] = None
    rpki_role: Optional[str] = None
    rpki_config: dict = field(default_factory=dict)
    #: Explicit IGP domain id (C-BGP style); other vendors derive IGP
    #: adjacency from mutually advertised subnets instead.
    igp_domain: Optional[int] = None
    #: Configuration errors collected while parsing this device.  A
    #: non-empty list marks the device un-bootable: strict labs raise
    #: the first error, non-strict labs quarantine the machine.
    boot_errors: list = field(default_factory=list)

    @property
    def loopback(self) -> Optional[ipaddress.IPv4Address]:
        for interface in self.interfaces:
            if interface.is_loopback and interface.ip_address is not None:
                return interface.ip_address
        return None

    def interface(self, name: str) -> Optional[InterfaceIntent]:
        for interface in self.interfaces:
            if interface.name == name:
                return interface
        return None

    def addresses(self) -> list[ipaddress.IPv4Address]:
        return [
            interface.ip_address
            for interface in self.interfaces
            if interface.ip_address is not None and not interface.is_management
        ]

    def owns_address(self, address) -> bool:
        address = ipaddress.ip_address(str(address))
        return address in self.addresses()


@dataclass
class LabIntent:
    """A whole lab: all machines plus platform metadata."""

    platform: str
    devices: dict[str, DeviceIntent] = field(default_factory=dict)
    description: str = ""

    def device_owning(self, address) -> Optional[DeviceIntent]:
        address = ipaddress.ip_address(str(address))
        for device in self.devices.values():
            if device.owns_address(address):
                return device
        return None

    def routers(self) -> list[DeviceIntent]:
        return [device for device in self.devices.values()
                if device.ospf or device.bgp or device.isis]
