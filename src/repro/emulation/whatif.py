"""What-if analysis: failure injection on a booted lab (§8).

"Emulation provides a way to support experimentation, testing, and
'what-if' analysis" — and the paper's conclusion suggests building
incident emulation on top of the system.  These helpers produce a new
lab with links or whole machines failed, so an experiment can compare
routing and reachability before and after an incident,
deterministically.

The original lab is never mutated: each helper forks it (sharing the
parsed intent — no re-parse, no deep copy) and applies the failure as a
live topology fault, reconverging the protocols incrementally from the
parent's state.  For failure *timelines* rather than single incidents,
see :mod:`repro.resilience` — a ``FaultSchedule`` drives the same fault
primitives against one running lab round by round.
"""

from __future__ import annotations

from typing import Iterable

from repro.emulation.lab import EmulatedLab


def fail_links(
    lab: EmulatedLab,
    pairs: Iterable[tuple[str, str]],
    max_rounds: int = 64,
) -> EmulatedLab:
    """A new lab with the links between each machine pair failed.

    Every segment shared by a pair is removed (both attached interfaces
    go down).  Raises when a pair shares no segment — failing a link
    that does not exist is almost certainly an experiment bug.
    """
    failed = lab.fork(converge=False)
    failed.max_rounds = max_rounds
    for left, right in pairs:
        failed.link_down(left, right, reconverge=False)
    failed.reconverge()
    return failed


def fail_node(lab: EmulatedLab, machine: str, max_rounds: int = 64) -> EmulatedLab:
    """A new lab with one machine powered off entirely."""
    failed = lab.fork(converge=False)
    failed.max_rounds = max_rounds
    failed.node_down(machine, reconverge=False)
    failed.reconverge()
    return failed


def reachability_matrix(lab: EmulatedLab, machines: Iterable[str] | None = None) -> dict:
    """Loopback-to-loopback reachability between the given machines.

    Returns ``{(src, dst): bool}``; the comparison input for before/after
    incident studies.  Machines absent from the (possibly degraded)
    fabric are skipped.
    """
    names = sorted(machines) if machines is not None else sorted(lab.network.machines)
    matrix: dict[tuple[str, str], bool] = {}
    for src in names:
        if src not in lab.network.machines:
            continue
        for dst in names:
            if src == dst or dst not in lab.network.machines:
                continue
            loopback = lab.network.device(dst).loopback
            if loopback is None:
                continue
            matrix[(src, dst)] = lab.dataplane.ping(src, loopback)
    return matrix


def reachability_summary(
    lab: EmulatedLab, machines: Iterable[str] | None = None
) -> dict:
    """The reachability matrix condensed to the numbers reports roll up.

    ``{"pairs": N, "reachable": K, "fraction": K/N}`` — what a campaign
    trial records per scenario, instead of the full O(n²) matrix.
    """
    matrix = reachability_matrix(lab, machines)
    reachable = sum(1 for ok in matrix.values() if ok)
    return {
        "pairs": len(matrix),
        "reachable": reachable,
        "fraction": round(reachable / len(matrix), 4) if matrix else 1.0,
    }


def compare_reachability(before: dict, after: dict) -> dict:
    """Partition pairs into kept / lost / gained reachability."""
    kept = {pair for pair, ok in after.items() if ok and before.get(pair)}
    lost = {pair for pair, ok in before.items() if ok and not after.get(pair, False)}
    gained = {pair for pair, ok in after.items() if ok and not before.get(pair, False)}
    return {"kept": kept, "lost": lost, "gained": gained}
