"""What-if analysis: failure injection on a booted lab (§8).

"Emulation provides a way to support experimentation, testing, and
'what-if' analysis" — and the paper's conclusion suggests building
incident emulation on top of the system.  These helpers re-boot a lab
with links or whole machines failed, so an experiment can compare
routing and reachability before and after an incident, deterministically.

Failures operate on the *intent* (the parsed configurations), exactly
as unplugging a cable or powering off a VM would: the remaining
configuration is untouched and the protocols reconverge on the
degraded fabric.
"""

from __future__ import annotations

import copy
from typing import Iterable

from repro.emulation.lab import EmulatedLab
from repro.exceptions import EmulationError


def fail_links(
    lab: EmulatedLab,
    pairs: Iterable[tuple[str, str]],
    max_rounds: int = 64,
) -> EmulatedLab:
    """A new lab with the links between each machine pair failed.

    Every segment shared by a pair is removed (both attached interfaces
    go down).  Raises when a pair shares no segment — failing a link
    that does not exist is almost certainly an experiment bug.
    """
    intent = copy.deepcopy(lab.intent)
    for left, right in pairs:
        segments = lab.network.shared_segments(left, right)
        if not segments:
            raise EmulationError(
                "no link between %r and %r to fail" % (left, right)
            )
        doomed_keys = {segment.key for segment in segments}
        for name in (left, right):
            device = intent.devices[name]
            device.interfaces = [
                interface
                for interface in device.interfaces
                if not _on_segment(interface, doomed_keys)
            ]
    return EmulatedLab(intent, max_rounds=max_rounds, keep_history=False)


def _on_segment(interface, segment_keys: set[str]) -> bool:
    if interface.collision_domain in segment_keys:
        return True
    network = interface.network
    return network is not None and ("net_%s" % network) in segment_keys


def fail_node(lab: EmulatedLab, machine: str, max_rounds: int = 64) -> EmulatedLab:
    """A new lab with one machine powered off entirely."""
    if machine not in lab.network.machines:
        raise EmulationError("no machine named %r to fail" % (machine,))
    intent = copy.deepcopy(lab.intent)
    del intent.devices[machine]
    return EmulatedLab(intent, max_rounds=max_rounds, keep_history=False)


def reachability_matrix(lab: EmulatedLab, machines: Iterable[str] | None = None) -> dict:
    """Loopback-to-loopback reachability between the given machines.

    Returns ``{(src, dst): bool}``; the comparison input for before/after
    incident studies.
    """
    names = sorted(machines) if machines is not None else sorted(lab.network.machines)
    matrix: dict[tuple[str, str], bool] = {}
    for src in names:
        for dst in names:
            if src == dst:
                continue
            loopback = lab.network.device(dst).loopback
            if loopback is None:
                continue
            matrix[(src, dst)] = lab.dataplane.ping(src, loopback)
    return matrix


def compare_reachability(before: dict, after: dict) -> dict:
    """Partition pairs into kept / lost / gained reachability."""
    kept = {pair for pair, ok in after.items() if ok and before.get(pair)}
    lost = {pair for pair, ok in before.items() if ok and not after.get(pair, False)}
    gained = {pair for pair, ok in after.items() if ok and not before.get(pair, False)}
    return {"kept": kept, "lost": lost, "gained": gained}
