"""eBGP overlay design rule (§4.2.1, eq. 3).

The eBGP topology keeps the physical edges whose endpoints are in
*different* ASes::

    E_ebgp = {(i, j) in E_in | f_asn(i) != f_asn(j)}

The overlay is directed with sessions added bidirected (§6.1), since a
BGP session has per-direction policy.  Input edges may carry policy
attributes — ``local_pref`` (applied inbound), ``med`` and
``as_path_prepend`` (applied outbound) — which become routing policy on
both directed session edges (the "attributes that are transformed in
the compiler" policy integration of §7.3).  Per-direction policy can be
set on the overlay edges after construction.
"""

from __future__ import annotations

from repro.anm import AbstractNetworkModel, OverlayGraph


def build_ebgp(anm: AbstractNetworkModel) -> OverlayGraph:
    """Create the directed eBGP overlay from the physical overlay."""
    g_phy = anm["phy"]
    g_ebgp = anm.add_overlay("ebgp", g_phy.routers(), retain=["asn", "prefixes"], directed=True)
    g_ebgp.add_edges_from(
        (
            edge
            for edge in g_phy.edges()
            if g_phy.node(edge.src).is_router()
            and g_phy.node(edge.dst).is_router()
            and edge.src.asn != edge.dst.asn
        ),
        bidirected=True,
        retain=[
            "local_pref",
            "med",
            "as_path_prepend",
            "community",
            "deny_prefixes_out",
            "deny_prefixes_in",
        ],
    )
    for node in g_ebgp:
        node.router_id_seed = str(node.node_id)
    return g_ebgp
