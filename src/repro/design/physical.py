"""Physical overlay construction (§6.1).

``G_phy`` is the device-and-link layer every other overlay is derived
from: all devices from the input graph, with the identity attributes
retained, and only the ``physical``-typed edges.
"""

from __future__ import annotations

from repro.anm import AbstractNetworkModel, OverlayGraph

#: Attributes copied from the input graph onto the physical overlay,
#: straight from the walkthrough in §6.1.
PHY_RETAIN = [
    "device_type",
    "asn",
    "platform",
    "host",
    "syntax",
    "label",
    "rr",
    "rr_cluster",
    "bgp_next_hop_self",
    "prefixes",
    "service",
    "ca_root",
    "dns_server",
    "ospf_area",
    "location",
]


def build_phy(anm: AbstractNetworkModel) -> OverlayGraph:
    """Create the physical overlay from the input overlay."""
    g_in = anm["input"]
    g_phy = anm.add_overlay("phy")
    g_phy.add_nodes_from(g_in, retain=PHY_RETAIN)
    g_phy.add_edges_from(
        g_in.edges(type="physical"),
        retain=[
            "ospf_cost",
            "ospf_area",
            "isis_metric",
            "local_pref",
            "med",
            "as_path_prepend",
            "community",
            "deny_prefixes_out",
            "deny_prefixes_in",
            "link_capacity",
        ],
    )
    return g_phy
