"""iBGP overlay design rules (§4.2.1 eq. 2, §7.1).

Two designs are provided, matching the paper:

* :func:`build_ibgp_full_mesh` — the simple O(n²) full mesh of eq. 2::

      E_ibgp = {(i, j) in N x N | f_asn(i) == f_asn(j)}

* :func:`build_ibgp_route_reflection` — the hierarchical design of
  §7.1: nodes labelled with a boolean ``rr`` attribute become route
  reflectors; sessions are added between all (rr, rr) pairs and all
  (rr, client) pairs.  When clients carry an ``rr_cluster`` attribute
  they only session with reflectors of the same cluster, giving the
  cluster-scoped hierarchy used in the RFC-3345-style oscillation
  gadget of §7.2.

Route reflectors can also be *chosen algorithmically* with
:func:`assign_route_reflectors_by_centrality`, the degree-centrality
design of §7.1.

Session edges are directed and carry a ``session_type``:

* ``"peer"`` — vanilla iBGP (mesh, or rr-to-rr);
* ``"down"`` — reflector toward one of its clients;
* ``"up"`` — client toward its reflector.

The BGP engine uses these to apply reflection semantics (a best route
learned from a non-client is only re-advertised to clients).
"""

from __future__ import annotations

from repro.anm import AbstractNetworkModel, OverlayGraph, groupby, unwrap_graph, wrap_nodes

import networkx as nx

IBGP_RETAIN = ["asn", "rr", "rr_cluster", "bgp_next_hop_self", "prefixes"]


def build_ibgp_full_mesh(anm: AbstractNetworkModel) -> OverlayGraph:
    """Create the full-mesh iBGP overlay (eq. 2)."""
    g_phy = anm["phy"]
    routers = g_phy.routers()
    g_ibgp = anm.add_overlay("ibgp", routers, retain=IBGP_RETAIN, directed=True)
    g_ibgp.add_edges_from(
        (
            (src, dst)
            for src in routers
            for dst in routers
            if src.asn == dst.asn and str(src.node_id) < str(dst.node_id)
        ),
        bidirected=True,
        session_type="peer",
    )
    return g_ibgp


def build_ibgp_route_reflection(anm: AbstractNetworkModel) -> OverlayGraph:
    """Create a route-reflector iBGP hierarchy from ``rr`` attributes (§7.1).

    ASes with no reflector marked fall back to a full mesh, so the two
    designs compose in one multi-AS network.
    """
    g_phy = anm["phy"]
    routers = g_phy.routers()
    g_ibgp = anm.add_overlay("ibgp", routers, retain=IBGP_RETAIN, directed=True)

    for _, members in groupby("asn", wrap_nodes(g_ibgp, routers)).items():
        reflectors = [node for node in members if node.rr]
        clients = [node for node in members if not node.rr]
        if not reflectors:
            g_ibgp.add_edges_from(
                (
                    (src, dst)
                    for src in members
                    for dst in members
                    if str(src.node_id) < str(dst.node_id)
                ),
                bidirected=True,
                session_type="peer",
            )
            continue
        # (rr, rr) full mesh.
        g_ibgp.add_edges_from(
            (
                (src, dst)
                for src in reflectors
                for dst in reflectors
                if str(src.node_id) < str(dst.node_id)
            ),
            bidirected=True,
            session_type="peer",
        )
        # (rr, client) sessions, cluster-scoped when clusters are named.
        for client in clients:
            for reflector in reflectors:
                if client.rr_cluster and reflector.rr_cluster != client.rr_cluster:
                    continue
                g_ibgp.add_edge(reflector, client, session_type="down")
                g_ibgp.add_edge(client, reflector, session_type="up")
    return g_ibgp


def build_ibgp(anm: AbstractNetworkModel) -> OverlayGraph:
    """Pick the iBGP design from the topology's attributes.

    If any router is marked ``rr=True`` the route-reflector hierarchy
    is built, otherwise the full mesh.
    """
    g_phy = anm["phy"]
    if any(node.rr for node in g_phy.routers()):
        return build_ibgp_route_reflection(anm)
    return build_ibgp_full_mesh(anm)


def assign_route_reflectors_by_centrality(
    anm: AbstractNetworkModel, fraction: float = 0.2, minimum: int = 1
) -> list:
    """Mark the most-central routers of each AS as route reflectors (§7.1).

    Applies NetworkX ``degree_centrality`` to the physical graph (via
    ``unwrap_graph``), selects the top ``fraction`` of routers per AS
    (at least ``minimum``), sets ``rr=True`` on them, and returns them.
    """
    g_phy = anm["phy"]
    centrality = nx.degree_centrality(unwrap_graph(g_phy))
    chosen = []
    for _, members in groupby("asn", g_phy.routers()).items():
        count = max(minimum, int(round(fraction * len(members))))
        count = min(count, len(members))
        ranked = sorted(
            members,
            key=lambda node: (-centrality.get(node.node_id, 0.0), str(node.node_id)),
        )
        for node in ranked[:count]:
            node.rr = True
            chosen.append(node)
    return chosen


def ibgp_session_count(n_routers: int) -> int:
    """Bidirectional session count of a full mesh: n(n-1)/2 (§7.1)."""
    return n_routers * (n_routers - 1) // 2
