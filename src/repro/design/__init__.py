"""Network design rules: overlay topologies from the attribute graph (§4.2)."""

from repro.design.base import (
    DEFAULT_RULES,
    DESIGN_RULES,
    apply_design,
    build_anm,
    design_network,
    register_design_rule,
)
from repro.design.dns import build_dns, dns_servers, zone_name
from repro.design.ebgp import build_ebgp
from repro.design.ibgp import (
    assign_route_reflectors_by_centrality,
    build_ibgp,
    build_ibgp_full_mesh,
    build_ibgp_route_reflection,
    ibgp_session_count,
)
from repro.design.ip_addressing import (
    build_ipv4,
    build_ipv6,
    collision_domains,
    domain_between,
    interface_address,
)
from repro.design.isis import build_isis
from repro.design.ospf import build_ospf
from repro.design.physical import build_phy
from repro.design.rpki import build_rpki, publication_point_of

__all__ = [
    "DEFAULT_RULES",
    "DESIGN_RULES",
    "apply_design",
    "assign_route_reflectors_by_centrality",
    "build_anm",
    "build_dns",
    "build_ebgp",
    "build_ibgp",
    "build_ibgp_full_mesh",
    "build_ibgp_route_reflection",
    "build_ipv4",
    "build_ipv6",
    "build_isis",
    "build_ospf",
    "build_phy",
    "build_rpki",
    "collision_domains",
    "design_network",
    "domain_between",
    "dns_servers",
    "ibgp_session_count",
    "interface_address",
    "publication_point_of",
    "register_design_rule",
    "zone_name",
]
