"""IPv4 addressing overlay (§5.2.4, §5.3).

The addressing overlay is where the attribute-based functions earn
their keep: every point-to-point link is *split* to insert a collision
domain node, and each connected block of switches is *aggregated* into
a single collision domain.  Each collision domain then receives a
subnet from its AS's infrastructure block, each attached interface a
host address, and each router a loopback /32 — all deterministic, so a
rebuild assigns identical addresses (repeatable experiments, §2).

Results live in the ``ipv4`` overlay:

* collision-domain nodes carry ``collision_domain=True``, ``subnet``
  and ``asn``;
* device-to-domain edges carry ``ip_address`` and ``prefixlen``;
* router nodes carry ``loopback``;
* the overlay data records ``infra_blocks`` and ``loopback_blocks``
  per ASN (§5.2.1).
"""

from __future__ import annotations

import networkx as nx

from repro.addressing import BaseAllocator, PerAsnAllocator
from repro.anm import AbstractNetworkModel, OverlayGraph, aggregate_nodes, split, unwrap_graph
from repro.exceptions import DesignError
from repro.observability import metric_inc

#: Device types that participate in addressing.
ADDRESSED_TYPES = ("router", "server", "external")


#: Default IPv6 blocks: the documentation prefix, split per AS.
DEFAULT_INFRA_BLOCK_V6 = "2001:db8::/32"
DEFAULT_LOOPBACK_BLOCK_V6 = "2001:db8:ffff::/48"

#: IPv6 convention: one /64 per collision domain, regardless of size.
IPV6_DOMAIN_PREFIXLEN = 64


def build_ipv4(
    anm: AbstractNetworkModel,
    allocator: BaseAllocator | None = None,
) -> OverlayGraph:
    """Create the IPv4 addressing overlay from the physical overlay."""
    return _build_ip_overlay(anm, "ipv4", allocator or PerAsnAllocator())


def build_ipv6(
    anm: AbstractNetworkModel,
    allocator: BaseAllocator | None = None,
) -> OverlayGraph:
    """Create the IPv6 addressing overlay from the physical overlay.

    Same structure as the IPv4 overlay — collision domains, per-AS
    blocks, deterministic assignment — with IPv6 conventions: every
    domain receives a /64 and router loopbacks are /128s from the
    per-AS loopback block.  Both overlays can coexist (dual stack);
    the compiler emits whichever addressing overlays were designed.
    """
    allocator = allocator or PerAsnAllocator(
        infra_block=DEFAULT_INFRA_BLOCK_V6,
        loopback_block=DEFAULT_LOOPBACK_BLOCK_V6,
        min_infra_prefixlen=48,
    )
    return _build_ip_overlay(
        anm, "ipv6", allocator, fixed_prefixlen=IPV6_DOMAIN_PREFIXLEN
    )


def _build_ip_overlay(
    anm: AbstractNetworkModel,
    overlay_id: str,
    allocator: BaseAllocator,
    fixed_prefixlen: int | None = None,
) -> OverlayGraph:
    g_phy = anm["phy"]
    g_ip = anm.add_overlay(overlay_id)
    devices = [
        node for node in g_phy if node.get("device_type") in ADDRESSED_TYPES
    ]
    g_ip.add_nodes_from(devices, retain=["asn", "device_type"])
    g_ip.add_nodes_from(g_phy.switches(), retain=["asn", "device_type"])
    g_ip.add_edges_from(
        edge
        for edge in g_phy.edges()
        if g_ip.has_node(edge.src) and g_ip.has_node(edge.dst)
    )

    _form_collision_domains(g_ip)
    _allocate(g_ip, allocator, fixed_prefixlen=fixed_prefixlen)
    return g_ip


def _form_collision_domains(g_ip: OverlayGraph) -> None:
    """Split point-to-point links and aggregate switch blocks (§5.2.4)."""
    point_to_point = [
        edge
        for edge in g_ip.edges()
        if not edge.src.is_switch() and not edge.dst.is_switch()
    ]
    for domain in split(g_ip, point_to_point, id_prefix="cd"):
        domain.collision_domain = True

    switch_domain_map: dict = {}
    switch_ids = [node.node_id for node in g_ip.nodes(device_type="switch")]
    if switch_ids:
        switch_subgraph = unwrap_graph(g_ip).subgraph(switch_ids)
        # Materialise before aggregating: aggregation mutates the graph
        # the component view iterates.
        for component in list(nx.connected_components(switch_subgraph)):
            members = sorted(component, key=str)
            survivor = aggregate_nodes(g_ip, members)
            survivor.collision_domain = True
            for member in members:
                switch_domain_map[member] = survivor.node_id
    g_ip.data.switch_domain_map = switch_domain_map


def _allocate(
    g_ip: OverlayGraph,
    allocator: BaseAllocator,
    fixed_prefixlen: int | None = None,
) -> None:
    devices = [node for node in g_ip if not node.collision_domain]
    asns = {node.asn for node in devices if node.asn is not None}
    if not asns:
        raise DesignError("no ASN-annotated devices to allocate addresses for")
    allocator.allocate_asn_blocks(asns)

    # Loopbacks: routers only, in (asn, node id) order.
    routers = sorted(
        (node for node in devices if node.device_type == "router"),
        key=lambda node: (node.asn, str(node.node_id)),
    )
    for router in routers:
        router.loopback = allocator.loopback_pool(router.asn).next_address()
        metric_inc("alloc.loopbacks_assigned")

    # Collision domains, in node-id order for determinism.
    domains = sorted(
        (node for node in g_ip if node.collision_domain),
        key=lambda node: str(node.node_id),
    )
    for domain in domains:
        attached = sorted(domain.neighbors(), key=lambda node: str(node.node_id))
        if not attached:
            continue
        domain_asn = min(node.asn for node in attached if node.asn is not None)
        domain.asn = domain_asn
        pool = allocator.infra_pool(domain_asn)
        if fixed_prefixlen is not None:
            subnet = pool.subnet(fixed_prefixlen)
        else:
            subnet = pool.subnet_for_hosts(len(attached))
        domain.subnet = subnet
        metric_inc("alloc.subnets_assigned")
        hosts = subnet.hosts()
        for device in attached:
            edge = g_ip.edge(device, domain)
            edge.ip_address = next(hosts)
            edge.prefixlen = subnet.prefixlen

    g_ip.data.infra_blocks = allocator.infra_blocks()
    g_ip.data.loopback_blocks = allocator.loopback_blocks()


def collision_domains(g_ip: OverlayGraph) -> list:
    """All collision-domain nodes of the addressing overlay."""
    return [node for node in g_ip if node.collision_domain]


def interface_address(g_ip: OverlayGraph, device, domain):
    """The (address, prefixlen) a device has on a collision domain."""
    edge = g_ip.edge(device, domain)
    return edge.ip_address, edge.prefixlen


def domain_between(g_ip: OverlayGraph, device, neighbor):
    """The collision domain realising the physical link device--neighbor.

    For a point-to-point link this is the node :func:`split` inserted;
    when ``neighbor`` is a switch it is the aggregated switch domain.
    Returns ``None`` when the link did not survive into the addressing
    overlay (for example a link between two unaddressed device types).
    """
    device_id = getattr(device, "node_id", device)
    neighbor_id = getattr(neighbor, "node_id", neighbor)
    switch_map = g_ip.data.switch_domain_map or {}
    if neighbor_id in switch_map:
        return g_ip.node(switch_map[neighbor_id])
    if device_id in switch_map:
        return g_ip.node(switch_map[device_id])
    if not g_ip.has_node(device_id):
        return None
    for candidate in g_ip.node(device_id).neighbors():
        if not candidate.collision_domain:
            continue
        if any(other.node_id == neighbor_id for other in candidate.neighbors()):
            return candidate
    return None
