"""IS-IS overlay design rule (§7).

The paper uses IS-IS as the worked example of extensibility: "Basic
IS-IS support requires 2 lines of design code, and 15 lines in the
compiler".  The two essential lines are the overlay creation and the
same-ASN edge rule — everything else here is defaulting.
"""

from __future__ import annotations

from repro.anm import AbstractNetworkModel, OverlayGraph

DEFAULT_ISIS_METRIC = 10


def build_isis(anm: AbstractNetworkModel, default_metric: int = DEFAULT_ISIS_METRIC) -> OverlayGraph:
    """Create the IS-IS overlay from the physical overlay."""
    g_phy = anm["phy"]
    # The "2 lines of design code" of §7:
    g_isis = anm.add_overlay("isis", g_phy.routers(), retain=["asn"])
    g_isis.add_edges_from(
        (edge for edge in g_phy.edges() if edge.src.asn == edge.dst.asn and
         g_phy.node(edge.src).is_router() and g_phy.node(edge.dst).is_router()),
        retain=["isis_metric"],
    )

    for edge in g_isis.edges():
        if edge.isis_metric is None:
            edge.isis_metric = default_metric
    for index, node in enumerate(sorted(g_isis, key=lambda n: str(n.node_id)), start=1):
        node.isis_system_id = "0000.0000.%04d" % index
        node.isis_area = "49.%04d" % (node.asn or 1)
        node.isis_process_id = 1
    return g_isis
