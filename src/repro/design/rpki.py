"""RPKI service overlay (§3.3).

The RPKI case study configures "a set of CA servers to which address
space is assigned, publication points where the data are made available
and a distribution hierarchy".  The input graph carries the service
nodes (``service`` attribute) and labelled relationship edges
(``ca_parent``, ``publishes_to``, ``fetches_from``, ``rtr_feed``); the
design rule lifts exactly those into a dedicated overlay and assigns
the certificate-resource attributes each daemon's configuration needs:
each CA receives a slice of its parent's address space, producing the
ROA payloads published at its publication point.
"""

from __future__ import annotations

import ipaddress

from repro.anm import AbstractNetworkModel, OverlayGraph
from repro.exceptions import DesignError

#: Relationship edge labels recognised from the input graph.
RPKI_EDGE_TYPES = ("ca_parent", "publishes_to", "fetches_from", "rtr_feed")

#: Address space assigned to the root CA by default.
DEFAULT_ROOT_SPACE = "10.0.0.0/8"


def build_rpki(
    anm: AbstractNetworkModel,
    root_space: str = DEFAULT_ROOT_SPACE,
) -> OverlayGraph:
    """Create the RPKI overlay from the input graph's labelled edges."""
    g_in = anm["input"]
    g_rpki = anm.add_overlay("rpki", directed=True)

    service_edges = [
        edge for edge in g_in.edges() if edge.get("type") in RPKI_EDGE_TYPES
    ]
    if not service_edges:
        return g_rpki

    for edge in service_edges:
        for endpoint in (edge.src, edge.dst):
            if not g_rpki.has_node(endpoint):
                g_rpki.add_node(endpoint, retain=["asn", "device_type", "service", "ca_root"])
        # Orient each relationship: child -> parent, ca -> publication
        # point, cache -> publication point, router -> cache.  The
        # input graph is undirected, so orientation comes from explicit
        # tail/head edge attributes when present.
        tail, head = edge.get("tail"), edge.get("head")
        if tail is None or head is None:
            tail, head = edge.src.node_id, edge.dst.node_id
        g_rpki.add_edge(tail, head, type=edge.get("type"))

    _assign_ca_resources(g_rpki, root_space)
    return g_rpki


def _assign_ca_resources(g_rpki: OverlayGraph, root_space: str) -> None:
    """Slice the root's address space down the CA hierarchy."""
    cas = [node for node in g_rpki if node.service == "rpki_ca"]
    roots = [node for node in cas if node.ca_root]
    if not roots:
        if cas:
            raise DesignError("RPKI graph has CAs but no root (ca_root=True)")
        return
    root = roots[0]
    root.resources = [str(ipaddress.ip_network(root_space))]

    def children_of(parent):
        return sorted(
            (
                edge.src
                for edge in g_rpki.edges(type="ca_parent")
                if edge.dst == parent
            ),
            key=lambda node: str(node.node_id),
        )

    frontier = [root]
    while frontier:
        parent = frontier.pop(0)
        children = children_of(parent)
        if not children:
            continue
        parent_space = ipaddress.ip_network(parent.resources[0])
        extra_bits = max(1, (len(children) - 1).bit_length())
        slices = list(parent_space.subnets(prefixlen_diff=extra_bits))
        for child, space in zip(children, slices):
            child.resources = [str(space)]
            frontier.append(child)

    # Each CA publishes ROAs for its resources under its own ASN.
    for ca_node in cas:
        if ca_node.resources:
            ca_node.roas = [
                {"prefix": prefix, "asn": ca_node.asn, "max_length": 24}
                for prefix in ca_node.resources
            ]


def publication_point_of(g_rpki: OverlayGraph, ca_node):
    """The publication point a CA publishes to, or ``None``."""
    for edge in g_rpki.edges(type="publishes_to"):
        if edge.src == ca_node:
            return edge.dst
    return None
