"""OSPF overlay design rule (§4.2.1, eq. 1).

The OSPF topology keeps the physical edges whose endpoints share an
ASN::

    E_ospf = {(i, j) in E_in | f_asn(i) == f_asn(j)}

extended, as in the implementation discussion of §5.2.4, to handle
switches: routers reachable through a (same-AS) switch are made
adjacent by *exploding* the switch node into a clique.

Per-link costs come from the input ``ospf_cost`` attribute (default 1,
as in the Small-Internet resource database of §5.4); per-node areas
from ``ospf_area`` (default 0).  Backbone routers — those with an edge
in area 0 — are flagged, reproducing the design-pattern example of
§5.2.2.
"""

from __future__ import annotations

from repro.anm import AbstractNetworkModel, OverlayGraph, explode_node

DEFAULT_OSPF_COST = 1
DEFAULT_OSPF_AREA = 0


def build_ospf(
    anm: AbstractNetworkModel,
    default_cost: int = DEFAULT_OSPF_COST,
    default_area: int = DEFAULT_OSPF_AREA,
) -> OverlayGraph:
    """Create the OSPF overlay from the physical overlay."""
    g_phy = anm["phy"]
    g_ospf = anm.add_overlay("ospf")
    g_ospf.add_nodes_from(g_phy.routers(), retain=["asn", "ospf_area"])
    g_ospf.add_nodes_from(g_phy.switches(), retain=["asn", "device_type"])
    g_ospf.add_edges_from(g_phy.edges(), retain=["ospf_cost", "ospf_area"])

    # Routers joined by a switch are OSPF-adjacent: explode each switch
    # into a clique of its neighbours (§5.2.4).
    for switch in list(g_ospf.nodes(device_type="switch")):
        explode_node(g_ospf, switch, retain=["ospf_cost"])

    # Drop edges that cross AS boundaries (eq. 1) and any stray
    # non-router endpoints (servers never ran an IGP here).
    g_ospf.remove_edges_from(
        edge for edge in g_ospf.edges() if edge.src.asn != edge.dst.asn
    )
    g_ospf.remove_nodes_from(
        node for node in g_ospf.nodes() if not g_phy.node(node).is_router()
    )

    for node in g_ospf:
        if node.area is None:
            node.area = g_phy.node(node).get("ospf_area", default_area)
        node.process_id = 1
    for edge in g_ospf.edges():
        if edge.ospf_cost is None:
            edge.ospf_cost = default_cost
        if edge.area is None:
            # An explicit per-link area wins; otherwise a link belongs
            # to the higher-numbered area of its endpoints, so an ABR's
            # interface into area N sits in area N (standard practice).
            edge.area = (
                edge.ospf_area
                if edge.ospf_area is not None
                else max(edge.src.area, edge.dst.area)
            )

    # Mark backbone routers: any edge in area 0 (§5.2.2).
    for node in g_ospf:
        if any(edge.area == 0 for edge in node.edges()):
            node.backbone = True
    return g_ospf
