"""DNS service overlay (§3.3).

DNS is the paper's first service example: it "must be configured, and
that configuration has to be consistent with the name and IP address
allocations in the network".  The design rule elects one DNS server per
AS (a node marked ``dns_server=True``, or the first router in id
order), then adds a directed ``dns_client`` edge from the server to
every other device in the AS.

The compiler later turns this overlay plus the ``ipv4`` overlay into
zone data: forward zones ``as<asn>.lab`` mapping hostnames to loopback
(or first-interface) addresses, and reverse zones derived from the
per-AS infrastructure blocks — which is what lets traceroute output be
mapped back to router names in the measurement loop (§5.7).
"""

from __future__ import annotations

from repro.anm import AbstractNetworkModel, OverlayGraph, groupby
from repro.exceptions import DesignError

#: Domain suffix for the per-AS forward zones.
ZONE_SUFFIX = "lab"


def zone_name(asn: int) -> str:
    return "as%d.%s" % (asn, ZONE_SUFFIX)


def build_dns(anm: AbstractNetworkModel) -> OverlayGraph:
    """Create the DNS service overlay from the physical overlay."""
    g_phy = anm["phy"]
    g_dns = anm.add_overlay("dns", directed=True)
    members_by_asn = groupby(
        "asn",
        [
            node
            for node in g_phy
            if node.get("device_type") in ("router", "server")
        ],
    )
    for asn, members in members_by_asn.items():
        if asn is None:
            raise DesignError("DNS design needs ASN annotations on all devices")
        marked = [node for node in members if node.dns_server]
        routers = sorted(
            (node for node in members if node.is_router()),
            key=lambda node: str(node.node_id),
        )
        if marked:
            server = marked[0]
        elif routers:
            server = routers[0]
        else:
            server = sorted(members, key=lambda node: str(node.node_id))[0]
        server_node = g_dns.add_node(server, retain=["asn", "device_type"])
        server_node.dns_server = True
        server_node.zone = zone_name(asn)
        for member in members:
            if member == server:
                continue
            client = g_dns.add_node(member, retain=["asn", "device_type"])
            client.zone = zone_name(asn)
            g_dns.add_edge(server_node, client, type="dns_client")
    return g_dns


def dns_servers(g_dns: OverlayGraph) -> list:
    return [node for node in g_dns if node.dns_server]
