"""Design-rule registry and the standard design pipeline (§4.2).

Each design rule is a function taking the ANM and returning the overlay
it created.  Rules are registered by overlay name so user code (and the
workflow driver) can apply a custom rule set::

    anm = apply_design(anm, rules=("phy", "ipv4", "ospf", "ebgp", "ibgp"))

Decoupling the rules from the input topology is the reuse argument of
§6: the same rule set applies unchanged from the 5-node Figure 5
example to the 1158-router NREN model.
"""

from __future__ import annotations

from typing import Callable, Iterable

import networkx as nx

from repro.anm import AbstractNetworkModel
from repro.design.dns import build_dns
from repro.design.ebgp import build_ebgp
from repro.design.ibgp import build_ibgp
from repro.design.ip_addressing import build_ipv4, build_ipv6
from repro.design.isis import build_isis
from repro.design.ospf import build_ospf
from repro.design.physical import build_phy
from repro.design.rpki import build_rpki
from repro.exceptions import DesignError
from repro.observability import metric_inc, span

DesignRule = Callable[[AbstractNetworkModel], object]

#: The built-in rules, keyed by the overlay they build.
DESIGN_RULES: dict[str, DesignRule] = {
    "phy": build_phy,
    "ipv4": build_ipv4,
    "ipv6": build_ipv6,
    "ospf": build_ospf,
    "isis": build_isis,
    "ebgp": build_ebgp,
    "ibgp": build_ibgp,
    "dns": build_dns,
    "rpki": build_rpki,
}

#: The default pipeline: physical first, addressing before the routing
#: protocols that reference it, DNS last (it reads the address plan).
DEFAULT_RULES = ("phy", "ipv4", "ospf", "ebgp", "ibgp", "dns")


def register_design_rule(name: str, rule: DesignRule) -> None:
    """Register a custom design rule under an overlay name (§7)."""
    DESIGN_RULES[name] = rule


def build_anm(input_graph: nx.Graph) -> AbstractNetworkModel:
    """Create an ANM seeded with ``input_graph`` as the input overlay.

    The graph is re-normalised on a copy first, so edges or nodes added
    after an earlier ``normalise`` still pick up the defaults (notably
    ``type="physical"`` — without it a late-added link would silently
    vanish from every overlay).
    """
    from repro.loader.validate import normalise

    anm = AbstractNetworkModel()
    anm.add_overlay("input", graph=normalise(input_graph.copy()))
    return anm


def apply_design(
    anm: AbstractNetworkModel,
    rules: Iterable[str] = DEFAULT_RULES,
) -> AbstractNetworkModel:
    """Apply the named design rules in order and return the ANM.

    Each rule runs under its own ``design.<overlay>`` span and counts
    towards the ``design.rules_applied`` metric.
    """
    for name in rules:
        try:
            rule = DESIGN_RULES[name]
        except KeyError:
            raise DesignError(
                "no design rule registered for overlay %r (known: %s)"
                % (name, ", ".join(sorted(DESIGN_RULES)))
            ) from None
        with span("design.%s" % name, overlay=name):
            rule(anm)
        metric_inc("design.rules_applied")
    return anm


def design_network(
    input_graph: nx.Graph,
    rules: Iterable[str] = DEFAULT_RULES,
) -> AbstractNetworkModel:
    """One-call helper: input graph in, fully designed ANM out."""
    return apply_design(build_anm(input_graph), rules)
