"""The end-to-end experiment workflow (§6, Figure 2).

One call takes an annotated input topology through the whole system —
design rules, compilation, rendering, deployment into the emulation
substrate — and returns handles to every intermediate artefact plus a
:class:`~repro.observability.Telemetry` of the run: a span tree with
one span per phase (and per-rule / per-device children recorded by the
layers themselves), the metrics registry, and the structured event log.
``ExperimentResult.timings`` stays as a derived per-phase view — the
quantities the §3.2 scale experiment reports: load/build, compile,
render — now measured uniformly from the phase spans.

For *matrices* of runs — the same experiment across platforms, rule
sets, or fault scenarios — :func:`run_campaign` (re-exported from
:mod:`repro.campaign`) drives a whole sharded, resumable campaign and
aggregates its results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

import networkx as nx

from repro.anm import AbstractNetworkModel
from repro.compilers import platform_compiler
from repro.deployment import DeploymentRecord, LocalEmulationHost
from repro.deployment import deploy as deploy_lab
from repro.design import DEFAULT_RULES, apply_design, build_anm
from repro.emulation import EmulatedLab
from repro.exceptions import LoaderError
from repro.loader import load_gml, load_graphml, load_json
from repro.nidb import Nidb
from repro.observability import Telemetry, current_telemetry
from repro.render import RenderResult, render_nidb

# The campaign orchestrator builds *on* the single-experiment workflow;
# re-exported here so `from repro.workflow import run_campaign` mirrors
# `run_experiment` for callers scripting whole evaluation matrices.
from repro.campaign import CampaignResult, CampaignSpec, run_campaign  # noqa: E402

__all__ = [
    "CampaignResult",
    "CampaignSpec",
    "ExperimentResult",
    "TOPOLOGY_LOADERS",
    "load_topology",
    "run_campaign",
    "run_experiment",
]


@dataclass
class ExperimentResult:
    """Every artefact of one experiment run."""

    anm: AbstractNetworkModel
    nidb: Nidb
    render_result: RenderResult
    deployment: Optional[DeploymentRecord] = None
    timings: dict = field(default_factory=dict)
    telemetry: Optional[Telemetry] = None
    #: TrafficReport when the run offered a traffic profile, else None.
    traffic: Optional[object] = None

    @property
    def lab(self) -> Optional[EmulatedLab]:
        return self.deployment.lab if self.deployment else None

    def timing_summary(self) -> str:
        return ", ".join(
            "%s %.2fs" % (phase, seconds) for phase, seconds in self.timings.items()
        )

    def timing_tree(self) -> str:
        """The full span hierarchy of the run, human formatted."""
        return self.telemetry.timing_tree() if self.telemetry else ""


#: File extensions ``load_topology`` understands, mapped to loaders.
TOPOLOGY_LOADERS = {
    ".graphml": load_graphml,
    ".gml": load_gml,
    ".json": load_json,
}


def load_topology(source) -> nx.Graph:
    """Accept a graph object or a GraphML/GML/JSON path.

    Extension matching is case-insensitive — ``TOPO.GraphML`` and
    ``topo.graphml`` load the same way.
    """
    if isinstance(source, nx.Graph):
        return source
    path = str(source)
    for extension, load in TOPOLOGY_LOADERS.items():
        if path.lower().endswith(extension):
            return load(path)
    raise LoaderError(
        "unsupported topology format %r: expected one of %s"
        % (path, ", ".join(sorted(TOPOLOGY_LOADERS)))
    )


def run_experiment(
    source,
    platform: str = "netkit",
    rules: Iterable[str] = DEFAULT_RULES,
    output_dir: Optional[str] = None,
    host: Optional[LocalEmulationHost] = None,
    deploy: bool = True,
    lab_name: str = "lab",
    max_rounds: int = 64,
    telemetry: Optional[Telemetry] = None,
    engine=None,
    strict: bool = True,
    retry_policy=None,
    jobs: int = 1,
    spf_mode: str = "auto",
    bgp_mode: str = "events",
    traffic_profile=None,
    traffic_seed: int = 0,
    traffic_schedule=None,
) -> ExperimentResult:
    """Input topology in, measured-ready emulated network out.

    All phases are timed the same way — one span per phase on the run's
    telemetry (an explicit argument, the ambient active one, or a fresh
    bundle) — so the phase durations sum to the experiment total.

    Passing a :class:`repro.engine.BuildEngine` routes the
    load/compile/render phases through the engine's task DAG — parallel
    executors and the content-addressed artifact cache — instead of the
    straight-line path; the engine's own platform and rules settings
    take precedence, and the phase spans (and therefore ``timings``)
    keep the same names either way.

    ``strict=False`` boots the lab with failed-parse devices
    quarantined instead of aborting, and ``retry_policy`` retries
    transient host errors during deployment.  ``jobs`` fans config
    parsing and per-VM bring-up over the engine executors, and
    ``spf_mode``/``bgp_mode`` select the protocol engines' fast paths
    (the defaults) or the naive reference oracles
    (``"full"``/``"rounds"``) — every combination boots an identical
    lab.

    ``traffic_profile`` (a :class:`repro.traffic.TrafficProfile`, dict,
    JSON text, or file path) additionally offers that workload to the
    deployed lab and stores the :class:`repro.traffic.TrafficReport` on
    ``result.traffic``; ``traffic_schedule`` injects a FaultSchedule on
    the traffic clock mid-run.  Link capacity/delay attributes from the
    design layer's physical overlay shape the traffic link model.
    """
    import tempfile

    telemetry = telemetry or current_telemetry() or Telemetry()

    with telemetry.activate():
        with telemetry.span(
            "experiment", platform=platform, lab_name=lab_name
        ) as experiment_span:
            output_dir = output_dir or tempfile.mkdtemp(prefix="rendered_")
            if engine is not None:
                report = engine.build(
                    source, output_dir=output_dir, telemetry=telemetry
                )
                anm, nidb = engine.anm, engine.nidb
                render_result = report.render_result
            else:
                with telemetry.span("load_build"):
                    graph = load_topology(source)
                    anm = build_anm(graph)
                    apply_design(anm, rules)

                with telemetry.span("compile", platform=platform):
                    nidb = platform_compiler(platform, anm).compile()

                with telemetry.span("render"):
                    render_result = render_nidb(nidb, output_dir)

            deployment = None
            traffic_report = None
            if deploy:
                from repro.resilience import NO_RETRY

                with telemetry.span("deploy", lab_name=lab_name):
                    deployment = deploy_lab(
                        render_result.lab_dir,
                        host=host,
                        lab_name=lab_name,
                        max_rounds=max_rounds,
                        strict=strict,
                        retry_policy=retry_policy or NO_RETRY,
                        jobs=jobs,
                        spf_mode=spf_mode,
                        bgp_mode=bgp_mode,
                    )
                if traffic_profile is not None:
                    from repro.traffic import (
                        coerce_profile,
                        link_overrides_from_anm,
                        run_traffic,
                    )

                    with telemetry.span("traffic"):
                        traffic_report = run_traffic(
                            deployment.lab,
                            coerce_profile(traffic_profile),
                            seed=traffic_seed,
                            schedule=traffic_schedule,
                            link_overrides=link_overrides_from_anm(anm),
                        )

    timings = {phase.name: phase.duration for phase in experiment_span.children}
    return ExperimentResult(
        anm=anm,
        nidb=nidb,
        render_result=render_result,
        deployment=deployment,
        timings=timings,
        telemetry=telemetry,
        traffic=traffic_report,
    )
