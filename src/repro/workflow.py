"""The end-to-end experiment workflow (§6, Figure 2).

One call takes an annotated input topology through the whole system —
design rules, compilation, rendering, deployment into the emulation
substrate — and returns handles to every intermediate artefact plus
per-phase timings (the quantities the §3.2 scale experiment reports:
load/build, compile, render).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Optional

import networkx as nx

from repro.anm import AbstractNetworkModel
from repro.compilers import platform_compiler
from repro.deployment import DeploymentRecord, LocalEmulationHost
from repro.deployment import deploy as deploy_lab
from repro.design import DEFAULT_RULES, apply_design, build_anm
from repro.emulation import EmulatedLab
from repro.loader import load_gml, load_graphml, load_json
from repro.nidb import Nidb
from repro.render import RenderResult, render_nidb


@dataclass
class ExperimentResult:
    """Every artefact of one experiment run."""

    anm: AbstractNetworkModel
    nidb: Nidb
    render_result: RenderResult
    deployment: Optional[DeploymentRecord] = None
    timings: dict = field(default_factory=dict)

    @property
    def lab(self) -> Optional[EmulatedLab]:
        return self.deployment.lab if self.deployment else None

    def timing_summary(self) -> str:
        return ", ".join(
            "%s %.2fs" % (phase, seconds) for phase, seconds in self.timings.items()
        )


def load_topology(source) -> nx.Graph:
    """Accept a graph object or a GraphML/GML/JSON path."""
    if isinstance(source, nx.Graph):
        return source
    path = str(source)
    if path.endswith(".graphml"):
        return load_graphml(path)
    if path.endswith(".gml"):
        return load_gml(path)
    return load_json(path)


def run_experiment(
    source,
    platform: str = "netkit",
    rules: Iterable[str] = DEFAULT_RULES,
    output_dir: Optional[str] = None,
    host: Optional[LocalEmulationHost] = None,
    deploy: bool = True,
    lab_name: str = "lab",
    max_rounds: int = 64,
) -> ExperimentResult:
    """Input topology in, measured-ready emulated network out."""
    import tempfile

    timings: dict[str, float] = {}

    started = time.perf_counter()
    graph = load_topology(source)
    anm = build_anm(graph)
    apply_design(anm, rules)
    timings["load_build"] = time.perf_counter() - started

    started = time.perf_counter()
    nidb = platform_compiler(platform, anm).compile()
    timings["compile"] = time.perf_counter() - started

    started = time.perf_counter()
    output_dir = output_dir or tempfile.mkdtemp(prefix="rendered_")
    render_result = render_nidb(nidb, output_dir)
    timings["render"] = render_result.elapsed_seconds

    deployment = None
    if deploy:
        started = time.perf_counter()
        deployment = deploy_lab(
            render_result.lab_dir,
            host=host,
            lab_name=lab_name,
            max_rounds=max_rounds,
        )
        timings["deploy"] = time.perf_counter() - started

    return ExperimentResult(
        anm=anm,
        nidb=nidb,
        render_result=render_result,
        deployment=deployment,
        timings=timings,
    )
