"""Content-addressed artifact cache for rendered configurations.

Artifacts are the unit of reuse: one device's (or the topology's) fully
rendered file set, keyed by the content hash computed in
:mod:`repro.engine.hashing`.  The cache is two-level — an in-process
dict for warm rebuilds inside one engine, plus an optional on-disk
store (``<dir>/objects/ab/abcd....json``) so ``repro build --cache-dir``
skips rendering across CLI invocations.

Alongside the object store the cache keeps named *manifests*: the
fingerprint/file map of a previous build, which the incremental path
uses to tell dirty devices from clean ones and to delete files that
belonged to devices removed from the topology.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.observability import metric_inc


def text_sha(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def file_sha(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


@dataclass
class Artifact:
    """One cached render result: every output file of one cache key.

    ``files`` entries carry ``path`` (relative to the lab directory),
    ``sha``/``size`` of the content, and either inline ``text`` or a
    ``source`` path to copy from.
    """

    key: str
    owner: str
    files: list[dict] = field(default_factory=list)

    def paths(self) -> list[str]:
        return [entry["path"] for entry in self.files]

    def total_bytes(self) -> int:
        return sum(entry.get("size", 0) for entry in self.files)

    def to_dict(self) -> dict:
        return {"key": self.key, "owner": self.owner, "files": self.files}

    @classmethod
    def from_dict(cls, data: dict) -> "Artifact":
        return cls(
            key=data["key"], owner=data.get("owner", ""), files=data.get("files", [])
        )


class ArtifactCache:
    """Two-level (memory + optional disk) content-addressed store."""

    def __init__(self, directory: str | os.PathLike | None = None):
        self.directory = str(directory) if directory else None
        self._memory: dict[str, Artifact] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        if self.directory:
            os.makedirs(os.path.join(self.directory, "objects"), exist_ok=True)
            os.makedirs(os.path.join(self.directory, "manifests"), exist_ok=True)

    # -- object store -------------------------------------------------------
    def _object_path(self, key: str) -> str:
        return os.path.join(self.directory, "objects", key[:2], "%s.json" % key)

    def get(self, key: str) -> Optional[Artifact]:
        """The artifact for a key, or None; counts hit/miss metrics.

        Disk objects are verified on read: every inline-text entry must
        hash back to its recorded ``sha``.  A mismatch (bit rot, a
        truncated write, hand-editing) evicts the object and counts
        ``engine.cache_corrupt`` — the caller sees a plain miss and
        re-renders, never a silently wrong configuration.
        """
        with self._lock:
            artifact = self._memory.get(key)
        if artifact is None and self.directory:
            path = self._object_path(key)
            if os.path.exists(path):
                try:
                    with open(path) as handle:
                        artifact = Artifact.from_dict(json.load(handle))
                except (OSError, ValueError, KeyError):
                    artifact = None  # unreadable object: treat as a miss
                    self._evict_corrupt(key, path)
                if artifact is not None and not _artifact_intact(artifact):
                    artifact = None
                    self._evict_corrupt(key, path)
                if artifact is not None:
                    with self._lock:
                        self._memory[key] = artifact
        if artifact is None:
            with self._lock:
                self.misses += 1
            metric_inc("engine.cache_misses")
            return None
        with self._lock:
            self.hits += 1
        metric_inc("engine.cache_hits")
        return artifact

    def _evict_corrupt(self, key: str, path: str) -> None:
        """Remove a corrupt disk object so the next read is a clean miss."""
        try:
            os.unlink(path)
        except OSError:
            pass
        with self._lock:
            self._memory.pop(key, None)
        metric_inc("engine.cache_corrupt")

    def put(self, artifact: Artifact) -> None:
        with self._lock:
            self._memory[artifact.key] = artifact
        if self.directory:
            path = self._object_path(artifact.key)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            _atomic_write_json(path, artifact.to_dict())

    def contains(self, key: str) -> bool:
        """Presence probe that does not touch the hit/miss counters."""
        with self._lock:
            if key in self._memory:
                return True
        return bool(self.directory) and os.path.exists(self._object_path(key))

    def stats(self) -> dict:
        """Hit/miss traffic and residency — what campaign reports roll up."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "memory_objects": len(self._memory),
                "directory": self.directory,
            }

    def clear_memory(self) -> None:
        with self._lock:
            self._memory.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def __bool__(self) -> bool:
        # an *empty* cache is still a cache — never let truthiness
        # follow __len__ and silently disable caching
        return True

    # -- manifests ----------------------------------------------------------
    def _manifest_path(self, name: str) -> str:
        slug = hashlib.sha256(name.encode("utf-8")).hexdigest()[:24]
        return os.path.join(self.directory, "manifests", "%s.json" % slug)

    def save_manifest(self, name: str, data: dict) -> None:
        if not self.directory:
            return
        _atomic_write_json(self._manifest_path(name), {"name": name, **data})

    def load_manifest(self, name: str) -> Optional[dict]:
        if not self.directory:
            return None
        path = self._manifest_path(name)
        if not os.path.exists(path):
            return None
        try:
            with open(path) as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None


def _artifact_intact(artifact: Artifact) -> bool:
    """True when every inline-text entry hashes back to its recorded sha."""
    for entry in artifact.files:
        text = entry.get("text")
        if text is None:
            continue
        if text_sha(text) != entry.get("sha"):
            return False
    return True


def _atomic_write_json(path: str, data: Any) -> None:
    directory = os.path.dirname(path)
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(data, handle, default=str)
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise
