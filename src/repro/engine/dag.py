"""The build task graph: phase nodes, per-device fan-out, scheduling.

An experiment build is modelled as a DAG of :class:`Task` nodes —
``load_build -> compile -> {render.<device>...} -> deploy`` — and run
by a :class:`Scheduler` over a pluggable executor.  The scheduler
repeatedly takes every task whose dependencies are done (one *wave*),
runs the parent-process tasks inline and dispatches the rest as a batch
to the executor, so independent tasks in a wave run concurrently.

The fan-out is *dynamic*: the set of per-device render tasks is only
known once the compile task has produced the NIDB, so a task may return
an :class:`Expansion` — the scheduler grafts the new tasks into the
graph and makes everything that depended on the expanding task wait for
them too.  This is the standard build-system trick (a rule that
discovers its outputs while running) and keeps the graph honest without
a separate planning pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from repro.exceptions import EngineError
from repro.observability import WARNING, log_event, metric_inc, span
from repro.resilience import RetryPolicy, retry_call
from repro.supervision.context import checkpoint

from repro.engine.executors import run_calls


@dataclass
class Task:
    """One schedulable unit of build work.

    ``fn`` receives ``arg`` (default None).  ``in_parent`` forces the
    task to run in the parent process/thread — required for closures
    over engine state when the executor is a process pool, and for
    tasks that mutate engine state.  ``phase`` groups tasks under one
    telemetry phase span (``load_build``, ``compile``, ``render``...).
    """

    task_id: str
    fn: Callable[[Any], Any]
    arg: Any = None
    deps: tuple[str, ...] = ()
    phase: str = ""
    in_parent: bool = False


@dataclass
class Expansion:
    """Returned by a task to fan out: insert ``tasks``, keep ``result``.

    Every task that depended on the expanding task additionally waits
    for all inserted tasks.
    """

    tasks: list[Task] = field(default_factory=list)
    result: Any = None


class TaskGraph:
    """A dependency graph of named tasks."""

    def __init__(self):
        self._tasks: dict[str, Task] = {}

    def add(self, task: Task) -> Task:
        if task.task_id in self._tasks:
            raise EngineError("duplicate task id %r" % task.task_id)
        self._tasks[task.task_id] = task
        return task

    def add_task(self, task_id: str, fn, arg=None, deps=(), phase="",
                 in_parent=False) -> Task:
        return self.add(
            Task(task_id, fn, arg=arg, deps=tuple(deps), phase=phase,
                 in_parent=in_parent)
        )

    def task(self, task_id: str) -> Task:
        try:
            return self._tasks[task_id]
        except KeyError:
            raise EngineError("unknown task id %r" % task_id) from None

    def tasks(self) -> list[Task]:
        return list(self._tasks.values())

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks.values())

    def __contains__(self, task_id: str) -> bool:
        return task_id in self._tasks

    def validate(self) -> None:
        """Check every dependency exists and the graph is acyclic."""
        for task in self:
            for dep in task.deps:
                if dep not in self._tasks:
                    raise EngineError(
                        "task %r depends on unknown task %r" % (task.task_id, dep)
                    )
        self._topological_order()

    def _topological_order(self) -> list[str]:
        indegree = {task_id: len(task.deps) for task_id, task in self._tasks.items()}
        dependents: dict[str, list[str]] = {task_id: [] for task_id in self._tasks}
        for task in self:
            for dep in task.deps:
                dependents[dep].append(task.task_id)
        ready = sorted(task_id for task_id, n in indegree.items() if n == 0)
        order: list[str] = []
        while ready:
            task_id = ready.pop()
            order.append(task_id)
            for dependent in dependents[task_id]:
                indegree[dependent] -= 1
                if indegree[dependent] == 0:
                    ready.append(dependent)
        if len(order) != len(self._tasks):
            cyclic = sorted(set(self._tasks) - set(order))
            raise EngineError("dependency cycle among tasks: %s" % ", ".join(cyclic))
        return order


@dataclass
class TaskFailure:
    """Picklable record of one task's failure (crosses process pools)."""

    task_id: str
    error: str
    error_type: str

    def __str__(self) -> str:
        return "%s: %s" % (self.error_type, self.error)


def _guarded_call(payload):
    """Module-level task wrapper: retry, then fail soft or hard.

    ``payload`` is ``(fn, arg, task_id, policy, strict)`` so the wrapper
    stays picklable for process pools.  In non-strict mode an exception
    becomes a :class:`TaskFailure` sentinel instead of propagating out
    of the worker, which is what lets one device's failure yield a
    partial build instead of aborting the whole DAG.
    """
    fn, arg, task_id, policy, strict = payload
    try:
        if policy is not None and policy.max_attempts > 1:
            return retry_call(
                lambda: fn(arg), policy=policy, operation="task.%s" % task_id
            )
        return fn(arg)
    except Exception as exc:
        if strict:
            raise
        return TaskFailure(
            task_id=task_id, error=str(exc), error_type=type(exc).__name__
        )


class Scheduler:
    """Runs a task graph wave by wave over an executor.

    With ``strict=True`` (the default) the first task exception aborts
    the run, exactly as before.  With ``strict=False`` a failing task is
    quarantined into :attr:`failures`, its transitive dependents are
    moved to :attr:`skipped`, and every unaffected task still runs — the
    caller gets a partial result set instead of nothing.  An optional
    ``retry_policy`` retries each task's transient errors first.
    """

    def __init__(self, executor, retry_policy: RetryPolicy | None = None,
                 strict: bool = True):
        self.executor = executor
        self.retry_policy = retry_policy
        self.strict = strict
        self.tasks_run = 0
        self.failures: dict[str, TaskFailure] = {}
        self.skipped: set[str] = set()

    def run(self, graph: TaskGraph) -> dict[str, Any]:
        """Execute every task; returns ``{task id: result}``."""
        graph.validate()
        results: dict[str, Any] = {}
        done: set[str] = set()
        pending: dict[str, Task] = {task.task_id: task for task in graph}

        while pending:
            checkpoint("engine.wave")
            self._cascade_skips(pending)
            if not pending:
                break
            wave = [
                task for task in pending.values()
                if all(dep in done for dep in task.deps)
            ]
            if not wave:
                raise EngineError(
                    "no runnable task (cycle or missing dependency) among: %s"
                    % ", ".join(sorted(pending))
                )
            # One phase span per wave group, so a phase's parent tasks
            # (cache restores, lab.conf) and its executor fan-out all
            # land under a single ``render``/``compile`` span and the
            # per-phase timings stay meaningful.
            for phase, batch in _by_phase(wave):
                if phase:
                    with span(phase, tasks=len(batch), executor=self.executor.kind):
                        self._run_batch(phase, batch, graph, results, done, pending)
                else:
                    self._run_batch(phase, batch, graph, results, done, pending)

        return results

    def _cascade_skips(self, pending) -> None:
        """Move every dependent of a failed/skipped task to ``skipped``."""
        if not self.failures and not self.skipped:
            return
        blocked = set(self.failures) | self.skipped
        changed = True
        while changed:
            changed = False
            for task_id, task in list(pending.items()):
                if any(dep in blocked for dep in task.deps):
                    pending.pop(task_id)
                    self.skipped.add(task_id)
                    blocked.add(task_id)
                    metric_inc("engine.tasks_skipped")
                    log_event(
                        WARNING,
                        "engine.task_skipped",
                        "task %s skipped: dependency failed" % task_id,
                        task=task_id,
                    )
                    changed = True

    def _wrap(self, task: Task):
        """The ``(fn, arg)`` actually submitted for ``task``."""
        if self.strict and self.retry_policy is None:
            return task.fn, task.arg
        payload = (task.fn, task.arg, task.task_id, self.retry_policy,
                   self.strict)
        return _guarded_call, payload

    def _run_batch(self, phase, batch, graph, results, done, pending) -> None:
        """Run one wave's tasks of one phase: parent inline, rest pooled."""
        checkpoint("engine.%s" % phase if phase else "engine.batch")
        parent_tasks = [task for task in batch if task.in_parent]
        pool_tasks = [task for task in batch if not task.in_parent]
        for task in parent_tasks:
            fn, arg = self._wrap(task)
            if task.task_id != phase:
                with span(task.task_id, task=task.task_id):
                    outcome = fn(arg)
            else:
                outcome = fn(arg)
            self._finish(task, outcome, graph, results, done, pending)
        if pool_tasks:
            calls = [
                (task.task_id,) + self._wrap(task) for task in pool_tasks
            ]
            outcomes = run_calls(self.executor, calls)
            for task, outcome in zip(pool_tasks, outcomes):
                self._finish(task, outcome, graph, results, done, pending)

    def _finish(self, task, outcome, graph, results, done, pending) -> None:
        if isinstance(outcome, TaskFailure):
            self.failures[task.task_id] = outcome
            pending.pop(task.task_id, None)
            metric_inc("engine.tasks_failed")
            log_event(
                WARNING,
                "engine.task_failed",
                "task %s failed: %s" % (task.task_id, outcome),
                task=task.task_id,
                error=outcome.error,
                error_type=outcome.error_type,
            )
            return
        if isinstance(outcome, Expansion):
            self._expand(task, outcome, graph, pending, done)
            outcome = outcome.result
        results[task.task_id] = outcome
        done.add(task.task_id)
        pending.pop(task.task_id, None)
        self.tasks_run += 1
        metric_inc("engine.tasks_run")

    def _expand(self, task, expansion, graph, pending, done) -> None:
        new_ids = []
        for new_task in expansion.tasks:
            graph.add(new_task)
            pending[new_task.task_id] = new_task
            new_ids.append(new_task.task_id)
            for dep in new_task.deps:
                if dep not in graph:
                    raise EngineError(
                        "expanded task %r depends on unknown task %r"
                        % (new_task.task_id, dep)
                    )
        if not new_ids:
            return
        for dependent in graph:
            if task.task_id in dependent.deps and dependent.task_id not in done:
                extra = tuple(
                    task_id for task_id in new_ids
                    if task_id not in dependent.deps and task_id != dependent.task_id
                )
                dependent.deps = dependent.deps + extra


def _by_phase(tasks: list[Task]) -> list[tuple[str, list[Task]]]:
    """Group a wave's pool tasks by phase, preserving insertion order."""
    groups: dict[str, list[Task]] = {}
    for task in tasks:
        groups.setdefault(task.phase, []).append(task)
    return list(groups.items())
