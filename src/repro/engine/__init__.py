"""repro.engine: a parallel, incremental, content-addressed build engine.

The compile→render half of the pipeline, restructured as a task DAG
(:mod:`~repro.engine.dag`) run over a pluggable executor
(:mod:`~repro.engine.executors`) with per-device artifacts cached by
content hash (:mod:`~repro.engine.hashing`, :mod:`~repro.engine.cache`).
Entry points: :class:`BuildEngine` for full builds and
:func:`incremental_update` for change-driven rebuilds.
"""

from repro.engine.cache import Artifact, ArtifactCache, file_sha, text_sha
from repro.engine.dag import Expansion, Scheduler, Task, TaskGraph
from repro.engine.executors import (
    EXECUTOR_KINDS,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    default_jobs,
    make_executor,
)
from repro.engine.engine import (
    BuildEngine,
    BuildReport,
    graph_delta,
    incremental_update,
)
from repro.engine.hashing import (
    ENGINE_CACHE_VERSION,
    TemplateHasher,
    device_cache_key,
    topology_cache_key,
)

__all__ = [
    "Artifact",
    "ArtifactCache",
    "BuildEngine",
    "BuildReport",
    "ENGINE_CACHE_VERSION",
    "EXECUTOR_KINDS",
    "Expansion",
    "ProcessExecutor",
    "Scheduler",
    "SerialExecutor",
    "Task",
    "TaskGraph",
    "TemplateHasher",
    "ThreadExecutor",
    "default_jobs",
    "device_cache_key",
    "file_sha",
    "graph_delta",
    "incremental_update",
    "make_executor",
    "text_sha",
    "topology_cache_key",
]
