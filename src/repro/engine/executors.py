"""Pluggable task executors: serial, thread pool, process pool.

The engine hands an executor batches of ``(task_id, fn, arg)`` calls
and gets results back in submission order.  The serial executor is the
reference implementation (and the default); the thread executor covers
the common case — rendering is a mix of template CPU work and file I/O,
and the GIL is released around the writes; the process executor is for
pure-CPU scale-out and therefore only accepts picklable module-level
functions (``supports_closures`` is False).

Every executor records per-task queue wait and run time into the
ambient telemetry (``engine.queue_seconds`` / ``engine.task_seconds``
histograms), so ``--metrics`` shows where the wall-clock went.
"""

from __future__ import annotations

import os
import time
from concurrent import futures as _futures
from typing import Any, Callable, Optional, Sequence

from repro.exceptions import EngineError
from repro.observability import gauge_set, metric_inc, metric_observe
from repro.supervision.context import beat as _beat

#: One schedulable unit: (task id, callable, single argument).
TaskCall = tuple[str, Callable[[Any], Any], Any]

#: One streamed completion from :meth:`run_iter`:
#: ``(index into the submitted batch, result or None, error or None)``.
TaskCompletion = tuple[int, Any, Optional[Exception]]


def default_jobs() -> int:
    return os.cpu_count() or 1


class SerialExecutor:
    """Run every call inline, in order — the deterministic baseline."""

    kind = "serial"
    supports_closures = True

    def __init__(self):
        self.jobs = 1

    def run(self, calls: Sequence[TaskCall]) -> list[Any]:
        results = []
        for _, fn, arg in calls:
            metric_observe("engine.queue_seconds", 0.0)
            started = time.perf_counter()
            results.append(fn(arg))
            metric_observe("engine.task_seconds", time.perf_counter() - started)
        return results

    def run_iter(self, calls: Sequence[TaskCall]):
        """Stream completions in submission order, capturing errors."""
        for index, (_, fn, arg) in enumerate(calls):
            metric_observe("engine.queue_seconds", 0.0)
            started = time.perf_counter()
            try:
                result = fn(arg)
            except Exception as error:
                metric_observe("engine.task_seconds", time.perf_counter() - started)
                _beat()
                yield index, None, error
                continue
            metric_observe("engine.task_seconds", time.perf_counter() - started)
            _beat()
            yield index, result, None

    def shutdown(self) -> None:
        pass

    def __repr__(self) -> str:
        return "SerialExecutor()"


class ThreadExecutor:
    """A shared thread pool; closures are fine, telemetry is ambient."""

    kind = "thread"
    supports_closures = True

    def __init__(self, jobs: int | None = None):
        self.jobs = max(1, jobs or default_jobs())
        self._pool: Optional[_futures.ThreadPoolExecutor] = None

    def _ensure_pool(self) -> _futures.ThreadPoolExecutor:
        if self._pool is None:
            self._pool = _futures.ThreadPoolExecutor(
                max_workers=self.jobs, thread_name_prefix="repro-engine"
            )
            gauge_set("engine.executor.jobs", self.jobs)
        return self._pool

    def run(self, calls: Sequence[TaskCall]) -> list[Any]:
        pool = self._ensure_pool()
        pending = [
            pool.submit(_timed_call, fn, arg, time.perf_counter())
            for _, fn, arg in calls
        ]
        return [future.result() for future in pending]

    def run_iter(self, calls: Sequence[TaskCall]):
        """Stream completions in *completion* order, capturing errors."""
        pool = self._ensure_pool()
        pending = {
            pool.submit(_timed_call, fn, arg, time.perf_counter()): index
            for index, (_, fn, arg) in enumerate(calls)
        }
        for future in _futures.as_completed(pending):
            index = pending[future]
            try:
                result = future.result()
            except Exception as error:
                _beat()
                yield index, None, error
                continue
            _beat()
            yield index, result, None

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self) -> str:
        return "ThreadExecutor(jobs=%d)" % self.jobs


def _timed_call(fn, arg, submitted: float):
    """Worker-side wrapper recording queue wait and run time."""
    metric_observe("engine.queue_seconds", time.perf_counter() - submitted)
    started = time.perf_counter()
    result = fn(arg)
    metric_observe("engine.task_seconds", time.perf_counter() - started)
    return result


class ProcessExecutor:
    """A process pool for pure-CPU fan-out.

    Functions must be picklable (module-level) and arguments
    self-contained; per-worker context is shipped once via
    :meth:`prepare` instead of once per task.  Task latencies are
    measured parent-side as submit-to-done roundtrips
    (``engine.task_roundtrip_seconds``) because child processes have no
    shared telemetry.
    """

    kind = "process"
    supports_closures = False

    def __init__(self, jobs: int | None = None):
        self.jobs = max(1, jobs or default_jobs())
        self._pool: Optional[_futures.ProcessPoolExecutor] = None
        self._initializer = None
        self._initargs: tuple = ()

    def prepare(self, initializer, initargs: tuple) -> None:
        """Set (or replace) the per-worker initializer before first use."""
        if self._pool is not None:
            self.shutdown()
        self._initializer = initializer
        self._initargs = initargs

    def _ensure_pool(self) -> _futures.ProcessPoolExecutor:
        if self._pool is None:
            self._pool = _futures.ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=self._initializer,
                initargs=self._initargs,
            )
            gauge_set("engine.executor.jobs", self.jobs)
        return self._pool

    def run(self, calls: Sequence[TaskCall]) -> list[Any]:
        pool = self._ensure_pool()
        submitted = time.perf_counter()
        pending = [pool.submit(fn, arg) for _, fn, arg in calls]
        results = []
        for future in pending:
            results.append(future.result())
            metric_observe(
                "engine.task_roundtrip_seconds", time.perf_counter() - submitted
            )
        return results

    def run_iter(self, calls: Sequence[TaskCall]):
        """Stream completions in *completion* order, capturing errors.

        A dead worker surfaces here as ``BrokenProcessPool`` on every
        unfinished future — callers classify that as infrastructure
        failure (and typically step down the degradation ladder) rather
        than a task failure.
        """
        pool = self._ensure_pool()
        submitted = time.perf_counter()
        pending = {
            pool.submit(fn, arg): index for index, (_, fn, arg) in enumerate(calls)
        }
        for future in _futures.as_completed(pending):
            index = pending[future]
            try:
                result = future.result()
            except Exception as error:
                _beat()
                yield index, None, error
                continue
            metric_observe(
                "engine.task_roundtrip_seconds", time.perf_counter() - submitted
            )
            _beat()
            yield index, result, None

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self) -> str:
        return "ProcessExecutor(jobs=%d)" % self.jobs


EXECUTOR_KINDS = ("serial", "thread", "process")


def make_executor(jobs: int = 1, kind: str | None = None):
    """Build an executor: ``jobs<=1`` is serial, otherwise a thread pool
    unless ``kind`` asks for processes explicitly."""
    if kind is None:
        kind = "serial" if jobs <= 1 else "thread"
    if kind == "serial":
        return SerialExecutor()
    if kind == "thread":
        return ThreadExecutor(jobs=jobs)
    if kind == "process":
        return ProcessExecutor(jobs=jobs)
    raise EngineError(
        "unknown executor kind %r (choose from %s)" % (kind, ", ".join(EXECUTOR_KINDS))
    )


def run_calls(executor, calls: Sequence[TaskCall]) -> list[Any]:
    """Run a batch on any executor, counting scheduled tasks."""
    if not calls:
        return []
    metric_inc("engine.tasks_scheduled", len(calls))
    return executor.run(calls)


def iter_calls(executor, calls: Sequence[TaskCall]):
    """Stream ``(index, result, error)`` completions from any executor.

    Unlike :func:`run_calls` this never raises for a failing task — each
    error rides out in its completion tuple, in completion order, so
    callers can record finished work incrementally and decide per-error
    whether it was the task or the infrastructure that died.
    """
    if not calls:
        return iter(())
    metric_inc("engine.tasks_scheduled", len(calls))
    return executor.run_iter(calls)
