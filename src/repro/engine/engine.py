"""The build engine: parallel, incremental, content-addressed builds.

:class:`BuildEngine` runs the compile→render half of the pipeline as a
task DAG — ``load_build → compile → {render.<device>…, render.topology}
→ deploy`` — over a pluggable executor (serial, thread pool, process
pool; ``--jobs N``).  The per-device fan-out is discovered dynamically:
the compile task expands the graph with one render task per device once
the NIDB exists.

Each device's render task is keyed by a stable content hash of its
compiled NIDB subtree plus the source of every template it references
(:mod:`repro.engine.hashing`).  Hits in the :class:`ArtifactCache` skip
rendering entirely — a warm rebuild of an unchanged topology re-renders
0 device files — and :func:`incremental_update` diffs a new topology
against the previous run, recompiles only the touched devices (through
``PlatformCompiler.compile(only=…)``), and re-renders only the devices
whose fingerprints moved.

Every task runs under a telemetry span, and the engine maintains
``engine.cache_hits`` / ``engine.cache_misses`` / ``engine.tasks_run``
plus per-executor queue/latency histograms, so speedup and cache
efficacy read straight off ``--metrics``.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Any, Optional

import networkx as nx

from repro.compilers import platform_compiler
from repro.design import DEFAULT_RULES, design_network
from repro.engine.cache import Artifact, ArtifactCache, file_sha, text_sha
from repro.engine.dag import Expansion, Scheduler, Task, TaskGraph
from repro.engine.executors import make_executor
from repro.engine.hashing import TemplateHasher, device_cache_key, topology_cache_key
from repro.exceptions import EngineError, RenderError
from repro.nidb import Nidb
from repro.observability import (
    INFO,
    Telemetry,
    current_telemetry,
    gauge_set,
    log_event,
    metric_inc,
    span,
)
from repro.render import (
    RenderResult,
    add_template_directory,
    device_render_jobs,
    template_directories,
    topology_render_jobs,
)

#: Artifact owner id for the topology-level files (lab.conf, ...).
TOPOLOGY_OWNER = "__topology__"


@dataclass
class BuildReport:
    """What one engine run did: artifacts, cache traffic, task counts."""

    output_dir: str = ""
    lab_dir: str = ""
    mode: str = "full"
    executor: str = "serial"
    render_result: Optional[RenderResult] = None
    devices_total: int = 0
    rendered_devices: list[str] = field(default_factory=list)
    cached_devices: list[str] = field(default_factory=list)
    removed_devices: list[str] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    tasks_run: int = 0
    files_written: int = 0
    files_unchanged: int = 0
    deployment: Any = None
    #: task id -> error text for tasks that failed in non-strict mode
    failed_tasks: dict = field(default_factory=dict)
    #: task ids skipped because a dependency failed
    skipped_tasks: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failed_tasks and not self.skipped_tasks

    def summary(self) -> str:
        text = (
            "%s build: %d devices (%d rendered, %d from cache), "
            "%d tasks, cache %d hit / %d miss, %d files written, %d unchanged"
            % (
                self.mode,
                self.devices_total,
                len(self.rendered_devices),
                len(self.cached_devices),
                self.tasks_run,
                self.cache_hits,
                self.cache_misses,
                self.files_written,
                self.files_unchanged,
            )
        )
        if not self.ok:
            text += ", %d task(s) FAILED (%s)" % (
                len(self.failed_tasks),
                ", ".join(sorted(self.failed_tasks)),
            )
            if self.skipped_tasks:
                text += ", %d skipped" % len(self.skipped_tasks)
        return text


@dataclass
class _GraphDelta:
    """Difference between two input topologies, engine-classified."""

    structural: bool = False
    changed_nodes: set = field(default_factory=set)
    changed_edges: set = field(default_factory=set)

    @property
    def changed(self) -> bool:
        return self.structural or bool(self.changed_nodes) or bool(self.changed_edges)

    @property
    def partial_safe(self) -> bool:
        """Edge-attribute-only changes keep device membership, addressing
        and session topology intact, so recompiling the endpoints alone
        is equivalent to a full compile."""
        return not self.structural and not self.changed_nodes

    def candidates(self) -> set[str]:
        found = set(str(node) for node in self.changed_nodes)
        for src, dst in self.changed_edges:
            found.add(str(src))
            found.add(str(dst))
        return found


def graph_delta(old: nx.Graph, new: nx.Graph) -> _GraphDelta:
    """Classify what changed between two input topologies."""
    delta = _GraphDelta()
    old_nodes, new_nodes = set(old.nodes), set(new.nodes)
    old_edges = {frozenset((u, v)) for u, v in old.edges}
    new_edges = {frozenset((u, v)) for u, v in new.edges}
    if old_nodes != new_nodes or old_edges != new_edges:
        delta.structural = True
        return delta
    for node in new_nodes:
        if dict(old.nodes[node]) != dict(new.nodes[node]):
            delta.changed_nodes.add(node)
    for u, v in new.edges:
        if dict(old.edges[u, v]) != dict(new.edges[u, v]):
            delta.changed_edges.add((u, v))
    return delta


class BuildEngine:
    """Schedules the compile→render pipeline as a cached, parallel DAG."""

    def __init__(
        self,
        platform: str = "netkit",
        rules=DEFAULT_RULES,
        host: str = "localhost",
        output_dir: str | os.PathLike | None = None,
        jobs: int = 1,
        executor=None,
        cache: ArtifactCache | None = None,
        cache_dir: str | os.PathLike | None = None,
        use_cache: bool = True,
        strict: bool = True,
        retry_policy=None,
    ):
        self.platform = platform
        self.rules = tuple(rules)
        self.host = host
        self.output_dir = str(output_dir) if output_dir else None
        self.strict = strict
        self.retry_policy = retry_policy
        self.executor = executor if executor is not None else make_executor(jobs)
        if not use_cache:
            self.cache: ArtifactCache | None = None
        else:
            self.cache = cache if cache is not None else ArtifactCache(cache_dir)
        # previous-run state (drives warm and incremental rebuilds)
        self.graph: Optional[nx.Graph] = None
        self.anm = None
        self.nidb: Optional[Nidb] = None
        self.fingerprints: dict[str, str] = {}
        self.artifacts: dict[str, Artifact] = {}
        self.render_result: Optional[RenderResult] = None
        self._hasher = TemplateHasher()
        self._plan_hits: list[str] = []
        self._plan_misses: list[str] = []
        self._manifest_name: Optional[str] = None

    # -- properties ---------------------------------------------------------
    @property
    def lab_dir(self) -> str:
        return os.path.join(self.output_dir or "", self.host, self.platform)

    # -- full build ---------------------------------------------------------
    def build(
        self,
        source,
        output_dir: str | os.PathLike | None = None,
        telemetry: Telemetry | None = None,
        deploy: bool = False,
        lab_name: str = "lab",
        max_rounds: int = 64,
        deploy_host=None,
        manifest_name: str | None = None,
        prune_stale: bool = False,
    ) -> BuildReport:
        """Run the full DAG for a topology source (path or graph).

        With ``manifest_name`` the build's fingerprint/file map is saved
        to the cache directory; ``prune_stale`` additionally deletes lab
        files recorded by the previous manifest that this build no
        longer produces (devices removed from the topology between two
        CLI invocations).
        """
        telemetry = telemetry or current_telemetry() or Telemetry()
        if output_dir:
            self.output_dir = str(output_dir)
        if self.output_dir is None:
            self.output_dir = tempfile.mkdtemp(prefix="rendered_")
        self._manifest_name = manifest_name
        previous_manifest = self.load_manifest() if prune_stale else None
        with telemetry.activate():
            graph = TaskGraph()
            graph.add_task(
                "load_build", self._task_load, arg=source,
                phase="load_build", in_parent=True,
            )
            graph.add_task(
                "compile", self._task_compile, deps=("load_build",),
                phase="compile", in_parent=True,
            )
            if deploy:
                graph.add_task(
                    "deploy", self._task_deploy,
                    arg=(lab_name, max_rounds, deploy_host),
                    deps=("compile",), phase="deploy", in_parent=True,
                )
            scheduler = self._scheduler()
            results = scheduler.run(graph)
        report = self._assemble_report(results, scheduler, telemetry, mode="full")
        report.deployment = results.get("deploy")
        if previous_manifest is not None:
            report.removed_devices = self._prune_stale(previous_manifest)
        return report

    # -- incremental build --------------------------------------------------
    def incremental_update(
        self, new_source, telemetry: Telemetry | None = None
    ) -> BuildReport:
        """Re-execute only what a topology change actually dirtied.

        Diffs the new input graph against the previous run's; for
        edge-attribute-only changes the touched endpoint devices are
        recompiled through ``PlatformCompiler.compile(only=…)`` and
        grafted into the previous NIDB, otherwise the whole database is
        recompiled.  Either way, only devices whose fingerprints moved
        are re-rendered.
        """
        if self.nidb is None or self.graph is None:
            raise EngineError(
                "incremental_update requires a completed build() on this engine"
            )
        telemetry = telemetry or current_telemetry() or Telemetry()
        previous_fingerprints = dict(self.fingerprints)
        with telemetry.activate():
            new_graph = _as_graph(new_source)
            delta = graph_delta(self.graph, new_graph)
            with span("load_build", incremental=True):
                anm = design_network(new_graph, rules=self.rules)
            if delta.partial_safe:
                mode = "incremental-partial"
                candidates = delta.candidates()
                with span("compile", incremental=True, only=len(candidates)):
                    if candidates:
                        self._graft_partial_compile(anm, candidates)
            else:
                mode = "incremental-full"
                with span("compile", incremental=True):
                    self.nidb = platform_compiler(
                        self.platform, anm, host=self.host
                    ).compile()
            self.graph, self.anm = new_graph, anm

            new_fingerprints = self.nidb.fingerprints()
            dirty = {
                device_id
                for device_id, fingerprint in new_fingerprints.items()
                if previous_fingerprints.get(device_id) != fingerprint
            }
            removed = sorted(
                device_id
                for device_id in previous_fingerprints
                if device_id not in new_fingerprints
            )
            log_event(
                INFO, "engine",
                "incremental update: %d dirty, %d removed (%s)"
                % (len(dirty), len(removed), mode),
                dirty=sorted(dirty), removed=removed,
            )

            graph = TaskGraph()
            for task in self._plan_render_tasks(limit_to=dirty):
                graph.add(task)
            scheduler = self._scheduler()
            results = scheduler.run(graph)
            self._delete_artifacts(removed)
        report = self._assemble_report(results, scheduler, telemetry, mode=mode)
        report.removed_devices = removed
        return report

    def _graft_partial_compile(self, anm, candidates: set[str]) -> None:
        """Recompile only the candidate devices and swap them in.

        TAP management addresses are allocated in full-machine-set
        order, so the partial devices inherit the previous run's TAP
        stanza — ``compile(only=…)`` restarts the allocator and would
        otherwise disagree with a from-scratch compile.
        """
        compiler = platform_compiler(self.platform, anm, host=self.host)
        partial = compiler.compile(only=candidates)
        for device in partial:
            previous = self.nidb.node(device.node_id)
            if previous.tap is not None:
                device.tap = previous.tap.to_dict()
            self.nidb.replace_device(device)

    # -- DAG task bodies ----------------------------------------------------
    def _task_load(self, source):
        self.graph = _as_graph(source)
        self.anm = design_network(self.graph, rules=self.rules)
        return self.anm

    def _task_compile(self, _arg) -> Expansion:
        self.nidb = platform_compiler(self.platform, self.anm, host=self.host).compile()
        metric_inc("engine.builds")
        return Expansion(tasks=self._plan_render_tasks(), result=self.nidb)

    def _scheduler(self) -> Scheduler:
        return Scheduler(
            self.executor, retry_policy=self.retry_policy, strict=self.strict
        )

    def _task_deploy(self, arg):
        from repro.deployment import deploy as deploy_lab
        from repro.resilience import NO_RETRY

        lab_name, max_rounds, deploy_host = arg
        return deploy_lab(
            self.lab_dir,
            host=deploy_host,
            lab_name=lab_name,
            max_rounds=max_rounds,
            strict=self.strict,
            retry_policy=self.retry_policy or NO_RETRY,
        )

    # -- render planning ----------------------------------------------------
    def _context_devices(self) -> list:
        return sorted(self.nidb.nodes(), key=lambda device: str(device.node_id))

    def _plan_render_tasks(self, limit_to: set[str] | None = None) -> list[Task]:
        """Render (or cache-restore) tasks for every device, plus topology.

        ``limit_to`` restricts planning to the given device ids (the
        incremental path); everything else keeps its stored artifact.

        On a serial executor every device gets its own ``render.<id>``
        task.  With ``jobs > 1`` per-device work is batched into
        ``jobs * 2`` contiguous ``render.chunk<NN>`` tasks instead: one
        device's render is far cheaper than a task dispatch (queue hop,
        span, executor metrics), so per-device fan-out at the 116-device
        Small-Internet scale made ``--jobs 4`` *slower* than serial —
        chunking amortises the dispatch overhead while still keeping
        every worker busy.
        """
        self._plan_hits, self._plan_misses = [], []
        devices = self._context_devices()
        renderable = [device for device in devices if device.render]
        restore_in_parent = not self.executor.supports_closures
        tasks: list[Task] = []

        # ("render", device, key) | ("restore", device, key, artifact)
        closure_items: list[tuple] = []
        process_ids: list[tuple[str, Optional[str]]] = []
        for device in renderable:
            device_id = str(device.node_id)
            if limit_to is not None and device_id not in limit_to:
                continue
            use_cache = self.cache is not None
            key = device_cache_key(device, self._hasher) if use_cache else None
            artifact = self.cache.get(key) if use_cache else None
            if artifact is not None:
                self._plan_hits.append(device_id)
                if restore_in_parent:
                    tasks.append(
                        Task(
                            "render.%s" % device_id,
                            self._task_restore,
                            arg=(device, key, artifact),
                            phase="render",
                            in_parent=True,
                        )
                    )
                else:
                    closure_items.append(("restore", device, key, artifact))
            else:
                self._plan_misses.append(device_id)
                if self.executor.supports_closures:
                    closure_items.append(("render", device, key))
                else:
                    process_ids.append((device_id, key))

        if self.executor.jobs > 1 and len(closure_items) > 1:
            for index, chunk in enumerate(
                _chunked(closure_items, self.executor.jobs * 2)
            ):
                tasks.append(
                    Task(
                        "render.chunk%02d" % index,
                        self._task_render_chunk,
                        arg=chunk,
                        phase="render",
                    )
                )
        else:
            for item in closure_items:
                device_id = str(item[1].node_id)
                if item[0] == "restore":
                    tasks.append(
                        Task(
                            "render.%s" % device_id,
                            self._task_restore,
                            arg=item[1:],
                            phase="render",
                        )
                    )
                else:
                    tasks.append(
                        Task(
                            "render.%s" % device_id,
                            self._task_render_device,
                            arg=item[1:],
                            phase="render",
                        )
                    )

        if process_ids:
            self.executor.prepare(
                _process_worker_init,
                (
                    {
                        "devices": devices,
                        "topology": self.nidb.topology,
                        "lab_dir": self.lab_dir,
                        "template_dirs": template_directories(),
                    },
                ),
            )
            if self.executor.jobs > 1 and len(process_ids) > 1:
                for index, chunk in enumerate(
                    _chunked(process_ids, self.executor.jobs * 2)
                ):
                    tasks.append(
                        Task(
                            "render.chunk%02d" % index,
                            _process_render_chunk,
                            arg=chunk,
                            phase="render",
                        )
                    )
            else:
                for device_id, key in process_ids:
                    tasks.append(
                        Task(
                            "render.%s" % device_id,
                            _process_render_device,
                            arg=(device_id, key),
                            phase="render",
                        )
                    )

        tasks.append(
            Task(
                "render.topology",
                self._task_render_topology,
                phase="render",
                in_parent=True,
            )
        )
        gauge_set("engine.devices_total", len(renderable))
        return tasks

    # -- render task bodies -------------------------------------------------
    def _task_render_chunk(self, items) -> dict:
        """One chunk of per-device work; records come back as a batch."""
        records = []
        for item in items:
            if item[0] == "restore":
                records.append(self._task_restore(item[1:]))
            else:
                records.append(self._task_render_device(item[1:]))
        return {"chunk": records}

    def _render_device_artifact(self, device, key: Optional[str]) -> Artifact:
        jobs = device_render_jobs(device, self.nidb.topology, self._context_devices())
        return _artifact_from_jobs(str(device.node_id), key or "", jobs)

    def _task_render_device(self, arg) -> dict:
        device, key = arg
        artifact = self._render_device_artifact(device, key)
        written, unchanged = _write_artifact(
            artifact, self.lab_dir, skip_unchanged=False
        )
        return {
            "owner": artifact.owner, "artifact": artifact, "from_cache": False,
            "written": written, "unchanged": unchanged,
        }

    def _task_restore(self, arg) -> dict:
        device, key, artifact = arg
        try:
            written, unchanged = _write_artifact(
                artifact, self.lab_dir, skip_unchanged=True
            )
        except (OSError, RenderError):
            # the cached artifact could not be materialised (e.g. a
            # static source file vanished) — fall back to a fresh render
            artifact = self._render_device_artifact(device, key)
            written, unchanged = _write_artifact(
                artifact, self.lab_dir, skip_unchanged=False
            )
            return {
                "owner": artifact.owner, "artifact": artifact, "from_cache": False,
                "written": written, "unchanged": unchanged,
            }
        return {
            "owner": artifact.owner, "artifact": artifact, "from_cache": True,
            "written": written, "unchanged": unchanged,
        }

    def _task_render_topology(self, _arg=None) -> dict:
        use_cache = self.cache is not None
        key = topology_cache_key(self.nidb, self._hasher) if use_cache else None
        artifact = self.cache.get(key) if use_cache else None
        from_cache = artifact is not None
        if artifact is None:
            jobs = topology_render_jobs(self.nidb.topology, self._context_devices())
            artifact = _artifact_from_jobs(TOPOLOGY_OWNER, key or "", jobs)
        written, unchanged = _write_artifact(artifact, self.lab_dir, skip_unchanged=True)
        return {
            "owner": TOPOLOGY_OWNER, "artifact": artifact, "from_cache": from_cache,
            "written": written, "unchanged": unchanged,
        }

    # -- assembly -----------------------------------------------------------
    def _assemble_report(
        self, results: dict, scheduler: Scheduler, telemetry: Telemetry, mode: str
    ) -> BuildReport:
        report = BuildReport(
            output_dir=self.output_dir,
            lab_dir=self.lab_dir,
            mode=mode,
            executor=self.executor.kind,
            failed_tasks={
                task_id: str(failure)
                for task_id, failure in scheduler.failures.items()
            },
            skipped_tasks=sorted(scheduler.skipped),
        )
        for task_id, result in results.items():
            for record in _flatten_records(result):
                artifact = record["artifact"]
                if isinstance(artifact, dict):  # from a process-pool worker
                    artifact = Artifact.from_dict(artifact)
                    record["artifact"] = artifact
                self.artifacts[record["owner"]] = artifact
                report.files_written += record["written"]
                report.files_unchanged += record["unchanged"]
                if record["from_cache"]:
                    if record["owner"] != TOPOLOGY_OWNER:
                        report.cached_devices.append(record["owner"])
                else:
                    if record["owner"] != TOPOLOGY_OWNER:
                        report.rendered_devices.append(record["owner"])
                    if self.cache is not None and artifact.key:
                        self.cache.put(artifact)

        if self.nidb is None:
            # load/compile failed in non-strict mode: there is nothing to
            # fingerprint or collect — return the (empty) partial report.
            report.tasks_run = scheduler.tasks_run
            gauge_set("engine.devices_rendered", 0)
            gauge_set("engine.devices_cached", 0)
            return report

        self.fingerprints = self.nidb.fingerprints()
        renderable = [device for device in self._context_devices() if device.render]
        report.devices_total = len(renderable)
        report.rendered_devices.sort()
        report.cached_devices.sort()
        report.cache_hits = len(self._plan_hits)
        report.cache_misses = len(self._plan_misses)
        report.tasks_run = scheduler.tasks_run

        render_result = RenderResult(output_dir=self.output_dir, lab_dir=self.lab_dir)
        for device in renderable:
            artifact = self.artifacts.get(str(device.node_id))
            if artifact is None:
                continue
            for entry in artifact.files:
                render_result.files.append(os.path.join(self.lab_dir, entry["path"]))
                render_result.total_bytes += entry.get("size", 0)
        topology_artifact = self.artifacts.get(TOPOLOGY_OWNER)
        if topology_artifact is not None:
            for entry in topology_artifact.files:
                render_result.files.append(os.path.join(self.lab_dir, entry["path"]))
                render_result.total_bytes += entry.get("size", 0)
        for finished in reversed(telemetry.tracer.finished):
            if finished.name == "render":
                render_result.elapsed_seconds = finished.duration
                break
        report.render_result = render_result
        self.render_result = render_result

        gauge_set("engine.devices_rendered", len(report.rendered_devices))
        gauge_set("engine.devices_cached", len(report.cached_devices))
        self._save_manifest()
        return report

    def _delete_artifacts(self, owners) -> None:
        """Remove the output files of devices that left the topology."""
        for owner in owners:
            artifact = self.artifacts.pop(owner, None)
            self.fingerprints.pop(owner, None)
            if artifact is None:
                continue
            for entry in artifact.files:
                path = os.path.join(self.lab_dir, entry["path"])
                if os.path.exists(path):
                    os.unlink(path)
            machine_dir = os.path.join(self.lab_dir, owner)
            if os.path.isdir(machine_dir):
                shutil.rmtree(machine_dir, ignore_errors=True)

    def _save_manifest(self) -> None:
        if self.cache is None or not self.cache.directory or not self._manifest_name:
            return
        self.cache.save_manifest(
            self._manifest_name,
            {
                "platform": self.platform,
                "output_dir": self.output_dir,
                "fingerprints": self.fingerprints,
                "files": {
                    owner: artifact.paths()
                    for owner, artifact in self.artifacts.items()
                },
            },
        )

    def _prune_stale(self, previous_manifest: dict) -> list[str]:
        """Delete lab files a previous manifest produced but we did not."""
        current = {
            path
            for artifact in self.artifacts.values()
            for path in artifact.paths()
        }
        removed_owners = []
        for owner, paths in (previous_manifest.get("files") or {}).items():
            stale = [path for path in paths if path not in current]
            if stale and owner not in self.artifacts:
                removed_owners.append(owner)
            for path in stale:
                full = os.path.join(self.lab_dir, path)
                if os.path.exists(full):
                    os.unlink(full)
                    metric_inc("engine.files_pruned")
            if owner not in self.artifacts and owner != TOPOLOGY_OWNER:
                machine_dir = os.path.join(self.lab_dir, owner)
                if os.path.isdir(machine_dir):
                    shutil.rmtree(machine_dir, ignore_errors=True)
        return sorted(removed_owners)

    def load_manifest(self) -> Optional[dict]:
        if self.cache is None or not self._manifest_name:
            return None
        return self.cache.load_manifest(self._manifest_name)

    def shutdown(self) -> None:
        self.executor.shutdown()

    def __repr__(self) -> str:
        return "BuildEngine(platform=%r, executor=%s, cache=%s)" % (
            self.platform,
            self.executor.kind,
            "off" if self.cache is None else "on",
        )


def incremental_update(engine: BuildEngine, new_source) -> BuildReport:
    """Module-level convenience: ``engine.incremental_update(new_source)``."""
    return engine.incremental_update(new_source)


def _chunked(items: list, chunk_count: int) -> list[tuple]:
    """Partition ``items`` into at most ``chunk_count`` contiguous runs.

    Contiguity keeps chunk membership (and therefore task boundaries)
    deterministic for a given device ordering, and sizes differ by at
    most one so no worker inherits a long tail.
    """
    count = min(len(items), max(1, chunk_count))
    size, extra = divmod(len(items), count)
    chunks, start = [], 0
    for index in range(count):
        end = start + size + (1 if index < extra else 0)
        chunks.append(tuple(items[start:end]))
        start = end
    return chunks


def _flatten_records(result) -> list[dict]:
    """Per-device records from a task result — single or chunked."""
    if not isinstance(result, dict):
        return []
    if "chunk" in result:
        return [
            record
            for record in result["chunk"]
            if isinstance(record, dict) and "artifact" in record
        ]
    if "artifact" in result:
        return [result]
    return []


def _as_graph(source) -> nx.Graph:
    if isinstance(source, nx.Graph):
        return source
    from repro.workflow import load_topology

    return load_topology(source)


def _artifact_from_jobs(owner: str, key: str, jobs) -> Artifact:
    artifact = Artifact(key=key, owner=owner)
    for job in jobs:
        if job.text is not None:
            artifact.files.append(
                {
                    "path": job.path,
                    "sha": text_sha(job.text),
                    "size": len(job.text),
                    "text": job.text,
                }
            )
        else:
            artifact.files.append(
                {
                    "path": job.path,
                    "sha": file_sha(job.source),
                    "size": os.path.getsize(job.source),
                    "source": job.source,
                }
            )
    return artifact


def _write_artifact(
    artifact: Artifact, lab_dir: str, skip_unchanged: bool
) -> tuple[int, int]:
    """Materialise an artifact under the lab dir; returns (written, skipped).

    With ``skip_unchanged`` the on-disk content hash is compared first,
    so warm rebuilds touch nothing — the §3.2 bottleneck is exactly
    these file-system writes.
    """
    written = unchanged = 0
    for entry in artifact.files:
        out_path = os.path.join(lab_dir, entry["path"])
        if skip_unchanged and os.path.exists(out_path):
            try:
                if file_sha(out_path) == entry["sha"]:
                    unchanged += 1
                    metric_inc("engine.files_unchanged")
                    continue
            except OSError:
                pass
        os.makedirs(os.path.dirname(out_path), exist_ok=True)
        if entry.get("text") is not None:
            with open(out_path, "w") as handle:
                handle.write(entry["text"])
        elif entry.get("source") is not None:
            shutil.copyfile(entry["source"], out_path)
        else:
            raise RenderError(
                "cached artifact entry for %r has neither text nor source"
                % entry["path"]
            )
        written += 1
        metric_inc("engine.files_written")
    return written, unchanged


# -- process-pool worker side ------------------------------------------------
_WORKER_CONTEXT: dict = {}


def _process_worker_init(context: dict) -> None:
    """Runs once per worker process: install the shared render context."""
    _WORKER_CONTEXT.clear()
    _WORKER_CONTEXT.update(context)
    _WORKER_CONTEXT["by_id"] = {
        str(device.node_id): device for device in context["devices"]
    }
    for path in context.get("template_dirs", []):
        add_template_directory(path)


def _process_render_device(arg) -> dict:
    """Render one device inside a pool worker; returns a plain-dict record."""
    device_id, key = arg
    device = _WORKER_CONTEXT["by_id"][device_id]
    jobs = device_render_jobs(
        device, _WORKER_CONTEXT["topology"], _WORKER_CONTEXT["devices"]
    )
    artifact = _artifact_from_jobs(device_id, key or "", jobs)
    written, unchanged = _write_artifact(
        artifact, _WORKER_CONTEXT["lab_dir"], skip_unchanged=False
    )
    return {
        "owner": device_id, "artifact": artifact.to_dict(), "from_cache": False,
        "written": written, "unchanged": unchanged,
    }


def _process_render_chunk(arg) -> dict:
    """Render a whole chunk of devices inside one pool-worker dispatch."""
    return {"chunk": [_process_render_device(item) for item in arg]}
