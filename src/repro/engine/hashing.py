"""Content-addressed cache keys for rendered device configurations.

A device's rendered output is a pure function of (a) its compiled NIDB
subtree and (b) the source text of every template and template-folder
file its render stanza references.  The cache key is therefore a stable
hash over exactly those inputs: change a link weight and only the two
endpoint devices' keys move; edit ``ospfd.conf.j2`` and every OSPF
router's key moves; touch nothing and a rebuild is all cache hits.

Device templates are node-scoped by design (§4.1 keeps "complicated
transformations" in the compiler), so no global state belongs in the
key.  The topology-level files (``lab.conf`` and friends) *do* depend
on every device, and get a key over the whole database.
"""

from __future__ import annotations

import hashlib
import os

from repro.nidb.database import DeviceModel, Nidb, stable_hash
from repro.render import template_source

#: Bump to invalidate every previously cached artifact (format changes).
ENGINE_CACHE_VERSION = 1


class TemplateHasher:
    """Memoises template-source hashes for one build run."""

    def __init__(self):
        self._hashes: dict[str, str] = {}

    def source_hash(self, template_name: str) -> str:
        if template_name not in self._hashes:
            text = template_source(template_name)
            self._hashes[template_name] = hashlib.sha256(
                text.encode("utf-8")
            ).hexdigest()
        return self._hashes[template_name]


def _entry_template(entry) -> str:
    return str(entry["template"] if isinstance(entry, dict) else entry.template)


def _folder_source(folder) -> str:
    return str(folder["source"] if isinstance(folder, dict) else folder.source)


def _folder_hashes(folder) -> dict[str, str]:
    """``{relative path: content hash}`` for every file under a folder."""
    source = _folder_source(folder)
    hashes: dict[str, str] = {}
    if not os.path.isdir(source):
        return hashes
    for root, _, names in os.walk(source):
        relative_root = os.path.relpath(root, source)
        for name in sorted(names):
            relative = os.path.normpath(os.path.join(relative_root, name))
            with open(os.path.join(root, name), "rb") as handle:
                hashes[relative] = hashlib.sha256(handle.read()).hexdigest()
    return hashes


def device_cache_key(
    device: DeviceModel, hasher: TemplateHasher | None = None
) -> str:
    """The content-addressed key of one device's rendered artifact."""
    hasher = hasher or TemplateHasher()
    render = device.render
    templates: dict[str, str] = {}
    folders: dict[str, dict[str, str]] = {}
    if render:
        for entry in render.files or []:
            name = _entry_template(entry)
            templates[name] = hasher.source_hash(name)
        for folder in render.folders or []:
            folders[_folder_source(folder)] = _folder_hashes(folder)
    return stable_hash(
        {
            "version": ENGINE_CACHE_VERSION,
            "kind": "device",
            "fingerprint": device.fingerprint(),
            "templates": templates,
            "folders": folders,
        }
    )


def topology_cache_key(nidb: Nidb, hasher: TemplateHasher | None = None) -> str:
    """The key of the topology-level files — moves when any device does."""
    hasher = hasher or TemplateHasher()
    templates: dict[str, str] = {}
    render = nidb.topology.render
    if render:
        for entry in render.files or []:
            name = _entry_template(entry)
            templates[name] = hasher.source_hash(name)
    return stable_hash(
        {
            "version": ENGINE_CACHE_VERSION,
            "kind": "topology",
            "topology": nidb.topology.to_dict(),
            "devices": sorted(nidb.fingerprints().items()),
            "templates": templates,
        }
    )
