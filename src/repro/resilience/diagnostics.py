"""Structured failure diagnostics: boot quarantine and convergence.

A :class:`BootDiagnostic` is the answer to "*which* device broke, and
why" — the file, line and cause of a configuration that failed to parse
or boot.  Devices carrying one are quarantined in non-strict boots
instead of aborting the whole lab.

A :class:`ConvergenceReport` classifies how a boot (or reconvergence
after a fault) ended against its round deadline:

* ``converged`` — the protocol state reached a fixpoint;
* ``oscillating`` — the state revisits itself with a period > 1
  (persistent oscillation, the §7.2 Bad-Gadget behaviour);
* ``partitioned`` — no fixpoint within the deadline *and* the active
  fabric is disconnected, so full convergence is impossible;
* ``undetermined`` — the deadline elapsed without a verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

CONVERGED = "converged"
OSCILLATING = "oscillating"
PARTITIONED = "partitioned"
UNDETERMINED = "undetermined"


@dataclass(frozen=True)
class BootDiagnostic:
    """Why one device could not boot: file, line, and cause."""

    device: str
    cause: str
    file: Optional[str] = None
    line: Optional[int] = None
    stage: str = "parse"  # parse | boot

    @classmethod
    def from_error(cls, device: str, error: BaseException, stage: str = "parse"):
        file = getattr(error, "filename", None)
        line = getattr(error, "line", None)
        # ConfigParseError.__str__ appends "(file:line)"; keep the bare
        # cause here since file/line are structured fields already.
        cause = error.args[0] if error.args else str(error)
        return cls(device=device, cause=str(cause), file=file, line=line, stage=stage)

    def location(self) -> str:
        if self.file is None:
            return self.device
        if self.line is None:
            return self.file
        return "%s:%d" % (self.file, self.line)

    def to_dict(self) -> dict:
        return {
            "device": self.device,
            "cause": self.cause,
            "file": self.file,
            "line": self.line,
            "stage": self.stage,
        }

    def __str__(self) -> str:
        return "%s quarantined (%s): %s" % (self.device, self.location(), self.cause)


@dataclass
class ConvergenceReport:
    """How a convergence run ended, against its round deadline."""

    status: str  # converged | oscillating | partitioned | undetermined
    rounds: int
    deadline: int
    period: int = 0
    components: int = 1
    quarantined: list = field(default_factory=list)  # device names

    @property
    def converged(self) -> bool:
        return self.status == CONVERGED

    @property
    def degraded(self) -> bool:
        return bool(self.quarantined)

    def to_dict(self) -> dict:
        return {
            "status": self.status,
            "rounds": self.rounds,
            "deadline": self.deadline,
            "period": self.period,
            "components": self.components,
            "quarantined": list(self.quarantined),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ConvergenceReport":
        """Rebuild a report from its ``to_dict`` form (result-store records)."""
        return cls(
            status=data.get("status", UNDETERMINED),
            rounds=int(data.get("rounds", 0)),
            deadline=int(data.get("deadline", 0)),
            period=int(data.get("period", 0)),
            components=int(data.get("components", 1)),
            quarantined=list(data.get("quarantined") or []),
        )

    def summary(self) -> str:
        text = "%s after %d/%d rounds" % (self.status, self.rounds, self.deadline)
        if self.status == OSCILLATING:
            text += " (period %d)" % self.period
        if self.status == PARTITIONED:
            text += " (%d fabric components)" % self.components
        if self.quarantined:
            text += ", %d quarantined: %s" % (
                len(self.quarantined),
                ", ".join(sorted(self.quarantined)),
            )
        return text

    def __str__(self) -> str:
        return self.summary()
