"""Apply a fault schedule to a running lab and watch it reconverge.

:func:`apply_schedule` is the chaos-engineering driver: it validates a
:class:`~repro.resilience.faults.FaultSchedule` against a booted
:class:`~repro.emulation.lab.EmulatedLab`, then walks the schedule in
round order — all events sharing a round are applied as one atomic
topology delta, the lab reconverges incrementally (resuming from the
previous BGP state, no config re-parse), and the outcome is recorded as
a :class:`ChaosStep`.  The result is a :class:`ChaosReport` an incident
study can diff round by round.

The lab is mutated in place.  Callers who need the pristine lab
afterwards should pass ``lab.fork()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.observability import INFO, WARNING, log_event, metric_inc, span

from repro.resilience.diagnostics import ConvergenceReport
from repro.resilience.faults import (
    LINK_DOWN,
    LINK_UP,
    NODE_DOWN,
    NODE_UP,
    FaultEvent,
    FaultSchedule,
)


@dataclass
class ChaosStep:
    """One schedule round: the events applied and how the lab settled."""

    at_round: int
    events: list[FaultEvent]
    report: ConvergenceReport

    def to_dict(self) -> dict:
        return {
            "at_round": self.at_round,
            "events": [event.to_dict() for event in self.events],
            "report": self.report.to_dict(),
        }


@dataclass
class ChaosReport:
    """Outcome of running a whole schedule against a lab."""

    steps: list[ChaosStep] = field(default_factory=list)

    @property
    def final(self) -> ConvergenceReport | None:
        return self.steps[-1].report if self.steps else None

    @property
    def settled(self) -> bool:
        """Did the lab converge after the last injected incident?"""
        return bool(self.steps) and self.steps[-1].report.converged

    @property
    def total_rounds(self) -> int:
        return sum(step.report.rounds for step in self.steps)

    def to_dict(self) -> dict:
        return {
            "steps": [step.to_dict() for step in self.steps],
            "settled": self.settled,
            "total_rounds": self.total_rounds,
        }

    def summary(self) -> str:
        if not self.steps:
            return "no fault events applied"
        lines = []
        for step in self.steps:
            lines.append(
                "round %d: %s -> %s"
                % (
                    step.at_round,
                    "; ".join(str(event) for event in step.events),
                    step.report.summary(),
                )
            )
        return "\n".join(lines)


def _apply_event(lab, event: FaultEvent) -> None:
    if event.kind == LINK_DOWN:
        lab.link_down(*event.target, reconverge=False)
    elif event.kind == LINK_UP:
        lab.link_up(*event.target, reconverge=False)
    elif event.kind == NODE_DOWN:
        lab.node_down(event.target[0], reconverge=False)
    else:  # NODE_UP — FaultEvent already validated the kind
        lab.node_up(event.target[0], reconverge=False)


def apply_schedule(lab, schedule: FaultSchedule) -> ChaosReport:
    """Run every event of ``schedule`` against ``lab``, in round order.

    Mutates the lab.  Returns the per-incident convergence record; all
    injections also land in telemetry as ``fault.*`` events, so the
    JSONL trace alone reconstructs the incident timeline.
    """
    schedule.validate(lab)
    report = ChaosReport()
    with span("chaos.schedule", events=len(schedule)):
        for at_round, events in schedule.grouped():
            for event in events:
                log_event(
                    INFO,
                    "fault.%s" % event.kind,
                    "injecting %s" % event,
                    at_round=at_round,
                    kind=event.kind,
                    target=list(event.target),
                )
                metric_inc("fault.injected")
                _apply_event(lab, event)
            with span("chaos.reconverge", at_round=at_round):
                convergence = lab.reconverge()
            step = ChaosStep(at_round=at_round, events=list(events), report=convergence)
            report.steps.append(step)
            level = INFO if convergence.converged else WARNING
            log_event(
                level,
                "fault.reconverge",
                "after round-%d events: %s" % (at_round, convergence.summary()),
                at_round=at_round,
                **convergence.to_dict(),
            )
    return report
