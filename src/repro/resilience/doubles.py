"""Fault-injecting test doubles for the deployment and measurement paths.

These wrap real objects and make their first *N* calls fail with
:class:`~repro.exceptions.TransientError`, then delegate normally — the
shape of a host that drops one SSH connection or a VM that is still
booting.  They exist so retry behaviour is exercised end-to-end by the
test suite (and by ``repro chaos`` demos) without patching internals:

* :class:`FlakyHost` wraps an emulation host's ``receive`` / ``extract``
  / ``lstart`` stages;
* :class:`FlakyVM` wraps a :class:`~repro.emulation.vm.VirtualMachine`'s
  ``run``;
* :func:`inject_flaky_vm` swaps a booted lab's VM handle for a flaky
  one in place.

Everything not explicitly wrapped is delegated via ``__getattr__``, so
a double is drop-in wherever the real object is accepted.
"""

from __future__ import annotations

from typing import Iterable

from repro.exceptions import TransientError

_HOST_STAGES = ("receive", "extract", "lstart")


class FlakyHost:
    """An emulation host whose first ``failures`` calls per stage fail."""

    def __init__(self, host, failures: int = 1, stages: Iterable[str] = _HOST_STAGES):
        self._host = host
        self._remaining = {stage: failures for stage in stages}
        #: every stage call in order, for assertions on retry behaviour
        self.calls: list[str] = []

    def _maybe_fail(self, stage: str) -> None:
        self.calls.append(stage)
        remaining = self._remaining.get(stage, 0)
        if remaining > 0:
            self._remaining[stage] = remaining - 1
            raise TransientError(
                "injected transient %s failure on host %s"
                % (stage, getattr(self._host, "name", "?"))
            )

    def receive(self, archive_path, lab_name):
        self._maybe_fail("receive")
        return self._host.receive(archive_path, lab_name)

    def extract(self, archive_path, lab_name):
        self._maybe_fail("extract")
        return self._host.extract(archive_path, lab_name)

    def lstart(self, lab_dir, lab_name, **boot_options):
        self._maybe_fail("lstart")
        return self._host.lstart(lab_dir, lab_name, **boot_options)

    def __getattr__(self, name):
        return getattr(self._host, name)

    def __repr__(self) -> str:
        return "FlakyHost(%r, remaining=%r)" % (self._host, self._remaining)


class FlakyVM:
    """A VM whose first ``failures`` command executions fail."""

    def __init__(self, vm, failures: int = 1):
        self._vm = vm
        self._remaining = failures
        self.calls: list[str] = []

    def run(self, command: str) -> str:
        self.calls.append(command)
        if self._remaining > 0:
            self._remaining -= 1
            raise TransientError(
                "injected transient failure on %s running %r"
                % (self._vm.name, command)
            )
        return self._vm.run(command)

    def __getattr__(self, name):
        return getattr(self._vm, name)

    def __repr__(self) -> str:
        return "FlakyVM(%s, remaining=%d)" % (self._vm.name, self._remaining)


def inject_flaky_vm(lab, machine: str, failures: int = 1) -> FlakyVM:
    """Replace ``lab``'s handle for ``machine`` with a flaky wrapper."""
    flaky = FlakyVM(lab.vm(machine), failures=failures)
    lab._vms[machine] = flaky
    return flaky
