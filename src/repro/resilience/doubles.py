"""Fault-injecting test doubles for the deployment and measurement paths.

These wrap real objects and make their first *N* calls fail with
:class:`~repro.exceptions.TransientError`, then delegate normally — the
shape of a host that drops one SSH connection or a VM that is still
booting.  They exist so retry behaviour is exercised end-to-end by the
test suite (and by ``repro chaos`` demos) without patching internals:

* :class:`FlakyHost` wraps an emulation host's ``receive`` / ``extract``
  / ``lstart`` stages;
* :class:`FlakyVM` wraps a :class:`~repro.emulation.vm.VirtualMachine`'s
  ``run``;
* :func:`inject_flaky_vm` swaps a booted lab's VM handle for a flaky
  one in place;
* :class:`SleepyVM` / :func:`inject_sleepy_vm` are the *hang* variant:
  the first ``hangs`` command executions block in a plain
  ``time.sleep`` (no heartbeats, no cooperation) — the shape of a VM
  whose console wedged.  They exist so deadline and watchdog reaping is
  exercised against a genuinely stuck worker.

Everything not explicitly wrapped is delegated via ``__getattr__``, so
a double is drop-in wherever the real object is accepted.
"""

from __future__ import annotations

import time
from typing import Iterable

from repro.exceptions import TransientError

_HOST_STAGES = ("receive", "extract", "lstart")


class FlakyHost:
    """An emulation host whose first ``failures`` calls per stage fail."""

    def __init__(self, host, failures: int = 1, stages: Iterable[str] = _HOST_STAGES):
        self._host = host
        self._remaining = {stage: failures for stage in stages}
        #: every stage call in order, for assertions on retry behaviour
        self.calls: list[str] = []

    def _maybe_fail(self, stage: str) -> None:
        self.calls.append(stage)
        remaining = self._remaining.get(stage, 0)
        if remaining > 0:
            self._remaining[stage] = remaining - 1
            raise TransientError(
                "injected transient %s failure on host %s"
                % (stage, getattr(self._host, "name", "?"))
            )

    def receive(self, archive_path, lab_name):
        self._maybe_fail("receive")
        return self._host.receive(archive_path, lab_name)

    def extract(self, archive_path, lab_name):
        self._maybe_fail("extract")
        return self._host.extract(archive_path, lab_name)

    def lstart(self, lab_dir, lab_name, **boot_options):
        self._maybe_fail("lstart")
        return self._host.lstart(lab_dir, lab_name, **boot_options)

    def __getattr__(self, name):
        return getattr(self._host, name)

    def __repr__(self) -> str:
        return "FlakyHost(%r, remaining=%r)" % (self._host, self._remaining)


class FlakyVM:
    """A VM whose first ``failures`` command executions fail."""

    def __init__(self, vm, failures: int = 1):
        self._vm = vm
        self._remaining = failures
        self.calls: list[str] = []

    def run(self, command: str) -> str:
        self.calls.append(command)
        if self._remaining > 0:
            self._remaining -= 1
            raise TransientError(
                "injected transient failure on %s running %r"
                % (self._vm.name, command)
            )
        return self._vm.run(command)

    def __getattr__(self, name):
        return getattr(self._vm, name)

    def __repr__(self) -> str:
        return "FlakyVM(%s, remaining=%d)" % (self._vm.name, self._remaining)


def inject_flaky_vm(lab, machine: str, failures: int = 1) -> FlakyVM:
    """Replace ``lab``'s handle for ``machine`` with a flaky wrapper."""
    flaky = FlakyVM(lab.vm(machine), failures=failures)
    lab._vms[machine] = flaky
    return flaky


class SleepyVM:
    """A VM whose first ``hangs`` command executions block for ``sleep_s``.

    Unlike :class:`FlakyVM` this does not raise — it *wedges*, sleeping
    uncooperatively with no heartbeat, then delegates.  Retry logic
    never sees an error; only a deadline budget or watchdog can cut the
    call short.  ``sleep_s`` defaults high enough that any test which
    reaches the sleep without supervision would visibly hang.
    """

    def __init__(self, vm, sleep_s: float = 30.0, hangs: int = 1):
        self._vm = vm
        self.sleep_s = sleep_s
        self._remaining = hangs
        self.calls: list[str] = []

    def run(self, command: str) -> str:
        self.calls.append(command)
        if self._remaining > 0:
            self._remaining -= 1
            time.sleep(self.sleep_s)
        return self._vm.run(command)

    def __getattr__(self, name):
        return getattr(self._vm, name)

    def __repr__(self) -> str:
        return "SleepyVM(%s, sleep_s=%s, remaining=%d)" % (
            self._vm.name,
            self.sleep_s,
            self._remaining,
        )


def inject_sleepy_vm(lab, machine: str, sleep_s: float = 30.0, hangs: int = 1) -> SleepyVM:
    """Replace ``lab``'s handle for ``machine`` with a wedging wrapper."""
    sleepy = SleepyVM(lab.vm(machine), sleep_s=sleep_s, hangs=hangs)
    lab._vms[machine] = sleepy
    return sleepy
