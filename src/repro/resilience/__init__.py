"""Fault tolerance for the pipeline: retries, quarantine, chaos.

The resilience package makes failure a first-class, observable state of
every runtime layer:

* :mod:`repro.resilience.policy` — deterministic retry with exponential
  backoff and deadline budgets (:class:`RetryPolicy`, :func:`retry_call`);
* :mod:`repro.resilience.diagnostics` — structured failure records
  (:class:`BootDiagnostic`, :class:`ConvergenceReport`);
* :mod:`repro.resilience.faults` — timed fault schedules
  (:class:`FaultSchedule`, :class:`FaultEvent`) with a one-line DSL;
* :mod:`repro.resilience.chaos` — applying schedules to a running lab
  (:func:`apply_schedule`);
* :mod:`repro.resilience.doubles` — fault-injecting test doubles
  (:class:`FlakyHost`, :class:`FlakyVM`, :class:`SleepyVM`).
"""

from repro.resilience.chaos import ChaosReport, ChaosStep, apply_schedule
from repro.resilience.diagnostics import (
    CONVERGED,
    OSCILLATING,
    PARTITIONED,
    UNDETERMINED,
    BootDiagnostic,
    ConvergenceReport,
)
from repro.resilience.doubles import (
    FlakyHost,
    FlakyVM,
    SleepyVM,
    inject_flaky_vm,
    inject_sleepy_vm,
)
from repro.resilience.faults import FaultEvent, FaultSchedule
from repro.resilience.policy import (
    DEFAULT_RETRY,
    NO_RETRY,
    RetryAttempt,
    RetryPolicy,
    retry_call,
)

__all__ = [
    "BootDiagnostic",
    "ChaosReport",
    "ChaosStep",
    "ConvergenceReport",
    "CONVERGED",
    "DEFAULT_RETRY",
    "FaultEvent",
    "FaultSchedule",
    "FlakyHost",
    "FlakyVM",
    "NO_RETRY",
    "OSCILLATING",
    "PARTITIONED",
    "RetryAttempt",
    "RetryPolicy",
    "SleepyVM",
    "UNDETERMINED",
    "apply_schedule",
    "inject_flaky_vm",
    "inject_sleepy_vm",
    "retry_call",
]
