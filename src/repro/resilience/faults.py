"""Fault schedules: timed topology events against a running lab.

A :class:`FaultSchedule` is an ordered list of :class:`FaultEvent`
entries — ``link_down``/``link_up``/``node_down``/``node_up`` pinned to
a BGP round — written either programmatically or in a one-line-per-event
DSL::

    # take the r1-r2 link down two rounds in, restore it at round 5
    at 2 link_down r1 r2
    at 5 link_up r1 r2
    at 7 node_down r9

Events sharing an ``at_round`` are applied together before the lab
reconverges, so a correlated incident (a whole PoP failing) is one
atomic topology delta.  Schedules are plain data: they validate against
a lab without mutating it, and round-trip through ``to_dicts`` for JSON
transport.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.exceptions import FaultScheduleError

LINK_DOWN = "link_down"
LINK_UP = "link_up"
NODE_DOWN = "node_down"
NODE_UP = "node_up"

EVENT_KINDS = (LINK_DOWN, LINK_UP, NODE_DOWN, NODE_UP)
_LINK_KINDS = (LINK_DOWN, LINK_UP)


@dataclass(frozen=True)
class FaultEvent:
    """One timed topology change: kind + target at a BGP round."""

    at_round: int
    kind: str  # link_down | link_up | node_down | node_up
    target: tuple  # (left, right) for links, (machine,) for nodes

    def __post_init__(self):
        if self.kind not in EVENT_KINDS:
            raise FaultScheduleError(
                "unknown fault kind %r (choose from %s)"
                % (self.kind, ", ".join(EVENT_KINDS))
            )
        expected = 2 if self.kind in _LINK_KINDS else 1
        if len(self.target) != expected:
            raise FaultScheduleError(
                "%s takes %d target name%s, got %r"
                % (self.kind, expected, "" if expected == 1 else "s", self.target)
            )
        if self.at_round < 0:
            raise FaultScheduleError("at_round must be >= 0, got %d" % self.at_round)

    def to_dict(self) -> dict:
        return {"at_round": self.at_round, "kind": self.kind,
                "target": list(self.target)}

    def __str__(self) -> str:
        return "at %d %s %s" % (self.at_round, self.kind, " ".join(self.target))


class FaultSchedule:
    """An ordered set of fault events, sorted by round then input order."""

    def __init__(self, events: Iterable[FaultEvent] = ()):
        self.events: list[FaultEvent] = sorted(
            events, key=lambda event: event.at_round
        )

    # -- construction --------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "FaultSchedule":
        """Parse the DSL: ``at <round> <kind> <name> [<name>]`` per line."""
        events = []
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if parts[0] != "at" or len(parts) < 3:
                raise FaultScheduleError(
                    "expected 'at <round> <kind> <targets...>', got %r" % line,
                    line=lineno,
                )
            try:
                at_round = int(parts[1])
            except ValueError:
                raise FaultScheduleError(
                    "bad round number %r" % parts[1], line=lineno
                ) from None
            try:
                events.append(
                    FaultEvent(at_round=at_round, kind=parts[2],
                               target=tuple(parts[3:]))
                )
            except FaultScheduleError as exc:
                raise FaultScheduleError(str(exc), line=lineno) from None
        return cls(events)

    @classmethod
    def load(cls, path: str) -> "FaultSchedule":
        with open(path) as handle:
            return cls.parse(handle.read())

    @classmethod
    def from_dicts(cls, entries: Iterable[dict]) -> "FaultSchedule":
        return cls(
            FaultEvent(
                at_round=int(entry["at_round"]),
                kind=entry["kind"],
                target=tuple(entry["target"]),
            )
            for entry in entries
        )

    def to_dicts(self) -> list[dict]:
        return [event.to_dict() for event in self.events]

    # -- validation ----------------------------------------------------------
    def validate(self, lab) -> None:
        """Check every event's targets exist in the lab's full topology.

        Uses the *full* machine set (quarantined and downed machines
        included) so a schedule can legitimately restore a machine that
        an earlier event took down.
        """
        known = set(lab.network.all_machines)
        for event in self.events:
            for name in event.target:
                if name not in known:
                    raise FaultScheduleError(
                        "%s targets unknown machine %r" % (event, name)
                    )
            if event.kind in _LINK_KINDS:
                left, right = event.target
                if not lab.network.segment_keys_between(left, right):
                    raise FaultScheduleError(
                        "%s: no link between %r and %r" % (event, left, right)
                    )

    # -- iteration -----------------------------------------------------------
    def rounds(self) -> list[int]:
        seen: list[int] = []
        for event in self.events:
            if event.at_round not in seen:
                seen.append(event.at_round)
        return seen

    def grouped(self) -> Iterator[tuple[int, list[FaultEvent]]]:
        """Events grouped by round, in round order."""
        for at_round in self.rounds():
            yield at_round, [
                event for event in self.events if event.at_round == at_round
            ]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __repr__(self) -> str:
        return "FaultSchedule(%d events over %d rounds)" % (
            len(self.events),
            len(self.rounds()),
        )
