"""Deterministic retry policies with backoff, deadlines, and telemetry.

A :class:`RetryPolicy` is a frozen value object: the same policy always
produces the same backoff sequence, so retried runs stay reproducible —
there is deliberately no jitter.  :func:`retry_call` executes a callable
under a policy, recording every attempt into the ambient telemetry:

* ``retry.attempts`` counts every call attempt made under a policy;
* ``retry.recoveries`` counts calls that failed then later succeeded;
* ``retry.exhausted`` counts calls that ran out of budget;
* each transient failure emits a ``fault.<operation>`` warning event
  carrying the attempt number and the error text.

Only exceptions matching ``retry_on`` are retried; anything else is a
permanent failure and propagates immediately.  A ``deadline`` caps the
*total* time budget: once the next backoff would cross it, the call
fails with :class:`~repro.exceptions.RetryExhaustedError` rather than
sleeping past the budget.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional

from repro.exceptions import RetryExhaustedError, TransientError
from repro.observability import WARNING, INFO, log_event, metric_inc, metric_observe


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to try, and how long to wait between tries."""

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    deadline: Optional[float] = None  # total seconds across all attempts
    retry_on: tuple = (TransientError, OSError)

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")

    def delays(self) -> Iterator[float]:
        """The deterministic backoff sequence between attempts."""
        delay = self.base_delay
        for _ in range(self.max_attempts - 1):
            yield min(delay, self.max_delay)
            delay *= self.multiplier

    def should_retry(self, error: BaseException) -> bool:
        return isinstance(error, self.retry_on)

    def with_retries(self, retries: int) -> "RetryPolicy":
        """The same policy allowing ``retries`` retries (attempts - 1)."""
        from dataclasses import replace

        return replace(self, max_attempts=retries + 1)


#: A single attempt and no waiting: the "retries disabled" policy.
NO_RETRY = RetryPolicy(max_attempts=1, base_delay=0.0)

#: A small default for interactive use: 3 attempts, fast backoff.
DEFAULT_RETRY = RetryPolicy(max_attempts=3, base_delay=0.05)


@dataclass
class RetryAttempt:
    """Telemetry record of one attempt under :func:`retry_call`."""

    number: int
    succeeded: bool
    elapsed: float
    error: Optional[BaseException] = None


def retry_call(
    fn: Callable[[], Any],
    policy: RetryPolicy = DEFAULT_RETRY,
    operation: str = "operation",
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.perf_counter,
    attempts_log: Optional[list] = None,
) -> Any:
    """Call ``fn`` under ``policy``; returns its result or raises.

    ``sleep`` and ``clock`` are injectable so tests (and simulations)
    can run the full backoff schedule without waiting real time.
    ``attempts_log``, when given, collects a :class:`RetryAttempt` per
    try for callers that want the per-attempt record programmatically.
    """
    started = clock()
    delays = list(policy.delays())
    last_error: Optional[BaseException] = None
    for attempt in range(1, policy.max_attempts + 1):
        attempt_started = clock()
        metric_inc("retry.attempts")
        try:
            result = fn()
        except BaseException as error:
            elapsed = clock() - attempt_started
            if attempts_log is not None:
                attempts_log.append(
                    RetryAttempt(attempt, False, elapsed, error=error)
                )
            if not policy.should_retry(error):
                raise
            last_error = error
            metric_inc("fault.transient_errors")
            log_event(
                WARNING,
                "fault.%s" % operation,
                "transient failure in %s (attempt %d/%d): %s"
                % (operation, attempt, policy.max_attempts, error),
                operation=operation,
                attempt=attempt,
                max_attempts=policy.max_attempts,
                error=str(error),
                error_type=type(error).__name__,
            )
            if attempt >= policy.max_attempts:
                break
            delay = delays[attempt - 1]
            if policy.deadline is not None:
                spent = clock() - started
                if spent + delay > policy.deadline:
                    log_event(
                        WARNING,
                        "fault.%s" % operation,
                        "retry deadline %.2fs exhausted for %s after %d attempts"
                        % (policy.deadline, operation, attempt),
                        operation=operation,
                        attempt=attempt,
                        deadline=policy.deadline,
                    )
                    break
            if delay > 0:
                sleep(delay)
            continue
        elapsed = clock() - attempt_started
        metric_observe("retry.attempt_seconds", elapsed)
        if attempts_log is not None:
            attempts_log.append(RetryAttempt(attempt, True, elapsed))
        if attempt > 1:
            metric_inc("retry.recoveries")
            log_event(
                INFO,
                "fault.%s" % operation,
                "%s recovered on attempt %d/%d"
                % (operation, attempt, policy.max_attempts),
                operation=operation,
                attempt=attempt,
            )
        return result
    metric_inc("retry.exhausted")
    raise RetryExhaustedError(operation, attempt, last_error) from last_error
