"""Netkit platform compiler (§5.4, §6.1).

Produces the Netkit lab layout:

* ``lab.conf`` — machine-to-collision-domain wiring;
* ``<machine>.startup`` — interface configuration and daemon startup;
* ``<machine>/etc/quagga/*`` — Quagga daemon configurations;
* ``<machine>/etc/bind/*``, ``<machine>/etc/rpki/*`` — service
  configurations for DNS and RPKI nodes;
* ``<machine>/etc/resolv.conf`` — resolver pointing at the AS's DNS
  server.

Netkit provides management interfaces using Linux TAP; the compiler
allocates each machine a TAP address after its physical interfaces.
"""

from __future__ import annotations

from repro.compilers.base import ServerCompiler
from repro.compilers.devices import QuaggaCompiler
from repro.compilers.platform_base import PlatformCompiler
from repro.nidb import DeviceModel


class NetkitCompiler(PlatformCompiler):
    platform = "netkit"
    default_syntax = "quagga"

    def syntax_compilers(self) -> dict[str, type]:
        return {"quagga": QuaggaCompiler, "linux": ServerCompiler}

    def loopback_name(self) -> str:
        return "lo"

    def format_hostname(self, node_id) -> str:
        # Netkit machine names: lowercase alphanumerics and underscores.
        return super().format_hostname(node_id).lower()

    def render_device(self, device: DeviceModel) -> None:
        machine = device.hostname
        files = [
            {"template": "netkit/startup.j2", "path": "%s.startup" % machine},
        ]
        if device.device_type in ("router", "external"):
            files.append(
                {"template": "quagga/daemons.j2", "path": "%s/etc/quagga/daemons" % machine}
            )
            files.append(
                {"template": "quagga/zebra.conf.j2", "path": "%s/etc/quagga/zebra.conf" % machine}
            )
            if device.ospf:
                files.append(
                    {
                        "template": "quagga/ospfd.conf.j2",
                        "path": "%s/etc/quagga/ospfd.conf" % machine,
                    }
                )
            if device.bgp:
                files.append(
                    {
                        "template": "quagga/bgpd.conf.j2",
                        "path": "%s/etc/quagga/bgpd.conf" % machine,
                    }
                )
            if device.isis:
                files.append(
                    {
                        "template": "quagga/isisd.conf.j2",
                        "path": "%s/etc/quagga/isisd.conf" % machine,
                    }
                )
        if device.dns:
            files.append(
                {"template": "bind/named.conf.j2", "path": "%s/etc/bind/named.conf" % machine}
            )
            files.append(
                {"template": "bind/db.zone.j2", "path": "%s/etc/bind/db.%s" % (machine, device.dns.zone)}
            )
            files.append(
                {"template": "bind/db.reverse.j2", "path": "%s/etc/bind/db.reverse" % machine}
            )
        if device.dns_client:
            files.append(
                {"template": "linux/resolv.conf.j2", "path": "%s/etc/resolv.conf" % machine}
            )
        if device.rpki:
            files.append(
                {
                    "template": "rpki/%s.conf.j2" % device.rpki.role,
                    "path": "%s/etc/rpki/%s.conf" % (machine, device.rpki.role),
                }
            )
        device.render = {
            "base": "templates/quagga",
            "dst_folder": "%s/%s/%s" % (device.host, self.platform, machine),
            "files": files,
        }

    def render_topology(self) -> None:
        # The (lab-scoped) collision-domain map is set by the base
        # compile(); here only the TAP wiring and render entries remain.
        # TAP interface: one index past the last physical interface.
        for device in self.nidb:
            n_physical = len(device.physical_interfaces())
            device.tap.interface = "eth%d" % n_physical
        self.nidb.topology.render = {
            "files": [
                {"template": "netkit/lab.conf.j2", "path": "lab.conf"},
                {"template": "netkit/deploy.expect.j2", "path": "deploy.expect"},
            ],
        }
