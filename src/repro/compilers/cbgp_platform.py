"""C-BGP platform compiler (§5.4, §7.2).

C-BGP is a whole-network BGP solver: one script describes every node
(identified by loopback address), the IGP weights, and all BGP
sessions.  The compiler therefore emits a single ``network.cli`` at
topology level; there are no per-device files.
"""

from __future__ import annotations

from repro.compilers.devices import CbgpCompiler
from repro.compilers.platform_base import PlatformCompiler
from repro.nidb import DeviceModel


class CbgpPlatformCompiler(PlatformCompiler):
    platform = "cbgp"
    default_syntax = "cbgp"

    def syntax_compilers(self) -> dict[str, type]:
        return {"cbgp": CbgpCompiler}

    def render_device(self, device: DeviceModel) -> None:
        device.render = {
            "base": "templates/cbgp",
            "dst_folder": "%s/%s" % (device.host, self.platform),
            "files": [],
        }

    def render_topology(self) -> None:
        links = []
        for src_device, dst_device, data in self.nidb.links():
            cost = 1
            domain = data.get("collision_domain")
            for interface in src_device.physical_interfaces():
                if interface.collision_domain == domain:
                    cost = interface.ospf_cost or 1
                    break
            if src_device.loopback is None or dst_device.loopback is None:
                continue
            links.append(
                {
                    "src": str(src_device.loopback),
                    "dst": str(dst_device.loopback),
                    "igp_weight": cost,
                    "intra_as": src_device.asn == dst_device.asn,
                    "asn": src_device.asn,
                }
            )
        self.nidb.topology.links = links
        self.nidb.topology.asns = sorted(
            {device.asn for device in self.nidb if device.asn is not None}
        )
        self.nidb.topology.render = {
            "files": [{"template": "cbgp/network.cli.j2", "path": "network.cli"}],
        }
