"""Platform compiler base (§5.4).

"The platform compiler module constructs information needed by a
particular emulation platform, allocates platform specified
information, such as interface names ..., and management IP addresses,
and performs platform based formatting, such as removing any invalid
characters from hostnames.  ...  The platform compiler module then
calls the per-device compilers."

Subclasses define the interface-naming scheme, hostname rules, the
device-syntax compilers they support, and the render entries (which
templates produce which output files).
"""

from __future__ import annotations

import ipaddress
import re
from typing import Iterator

from repro.anm import AbstractNetworkModel
from repro.compilers.base import DeviceCompiler, RouterCompiler, ServerCompiler
from repro.design.ip_addressing import domain_between, interface_address
from repro.exceptions import CompilerError
from repro.nidb import DeviceModel, Nidb
from repro.observability import metric_inc, span

#: Management (TAP) block used for host-to-VM connectivity (§5.4).
DEFAULT_TAP_BLOCK = "172.16.0.0/16"

#: Device types that become emulated machines (switches become
#: collision domains instead).
MACHINE_TYPES = ("router", "server", "external")


class PlatformCompiler:
    """Base class turning a designed ANM into a NIDB for one platform."""

    platform = "base"
    default_syntax = "quagga"

    def __init__(self, anm: AbstractNetworkModel, host: str = "localhost"):
        self.anm = anm
        self.host = host
        self._device_compilers: dict[str, DeviceCompiler] = {}

    # -- hooks for subclasses -------------------------------------------------
    def interface_names(self) -> Iterator[str]:
        """Yield physical interface names in platform order."""
        index = 0
        while True:
            yield "eth%d" % index
            index += 1

    def loopback_name(self) -> str:
        return "lo0"

    def format_hostname(self, node_id) -> str:
        """Remove characters the platform's hostnames cannot contain."""
        hostname = re.sub(r"[^A-Za-z0-9_-]", "_", str(node_id))
        return hostname or "device"

    def device_compiler_for(self, syntax: str) -> DeviceCompiler:
        """The device compiler for a syntax, cached per platform run."""
        if syntax not in self._device_compilers:
            compiler_cls = self.syntax_compilers().get(syntax)
            if compiler_cls is None:
                raise CompilerError(
                    "platform %r does not support device syntax %r"
                    % (self.platform, syntax)
                )
            self._device_compilers[syntax] = compiler_cls(self.anm, self.nidb)
        return self._device_compilers[syntax]

    def syntax_compilers(self) -> dict[str, type]:
        """Mapping of device syntax name to compiler class."""
        return {"generic": RouterCompiler, "linux": ServerCompiler}

    def render_device(self, device: DeviceModel) -> None:
        """Attach the per-device render entries (template -> output path)."""
        device.render = {"base": "templates", "dst_folder": str(device.node_id), "files": []}

    def render_topology(self) -> None:
        """Attach platform-level render entries (lab.conf and friends)."""
        self.nidb.topology.render = {"files": []}

    # -- main entry -------------------------------------------------------------
    def compile(self, only: set | None = None) -> Nidb:
        """Create and fill the NIDB for this platform.

        ``only`` restricts compilation to the named devices — the
        multi-host path (§5.4) uses it to build one lab per
        (host, platform) target.
        """
        self.nidb = Nidb()
        g_phy = self.anm["phy"]
        g_ip = self.anm["ipv4"] if self.anm.has_overlay("ipv4") else None
        if g_ip is None:
            raise CompilerError("the ipv4 overlay must be designed before compiling")

        machines = sorted(
            (
                node
                for node in g_phy
                if node.get("device_type") in MACHINE_TYPES
                and (only is None or str(node.node_id) in only)
            ),
            key=lambda node: str(node.node_id),
        )
        tap_hosts = ipaddress.ip_network(DEFAULT_TAP_BLOCK).hosts()
        next(tap_hosts)  # first host is the emulation host's end

        for phy_node in machines:
            device = self.nidb.add_device(
                phy_node.node_id,
                hostname=self.format_hostname(phy_node.node_id),
                device_type=phy_node.device_type,
                asn=phy_node.asn,
                platform=self.platform,
                syntax=self._syntax_of(phy_node),
                host=self.host,
                label=phy_node.label,
            )
            if g_ip.has_node(phy_node):
                device.loopback = g_ip.node(phy_node).loopback
            device.tap = {"ip": str(next(tap_hosts))}
            self.allocate_interfaces(phy_node, device, g_phy, g_ip)

        for phy_node in machines:
            device = self.nidb.node(phy_node)
            syntax = device.syntax
            if device.device_type == "server":
                syntax = "linux"
            with span(
                "compile.%s" % device.hostname,
                device=str(phy_node.node_id),
                syntax=syntax,
                platform=self.platform,
            ):
                self.device_compiler_for(syntax).compile(phy_node, device)
                self.render_device(device)
            metric_inc("compile.devices_compiled")

        self._add_links(machines, g_phy, g_ip)
        members = collision_domain_members(self.anm)
        local_names = {str(node.node_id) for node in machines}
        self.nidb.topology.collision_domains = {
            domain: [str(device) for device, _ in attached]
            for domain, attached in sorted(members.items())
            if any(str(device) in local_names for device, _ in attached)
        }
        self.render_topology()
        self.nidb.topology.platform = self.platform
        self.nidb.topology.host = self.host
        return self.nidb

    def _syntax_of(self, phy_node) -> str:
        syntax = phy_node.get("syntax") or self.default_syntax
        if syntax not in self.syntax_compilers():
            syntax = self.default_syntax
        return syntax

    # -- interfaces ---------------------------------------------------------
    def allocate_interfaces(self, phy_node, device: DeviceModel, g_phy, g_ip) -> None:
        """Create the device's interface records, in neighbour-id order."""
        names = self.interface_names()
        g_ip6 = self.anm["ipv6"] if self.anm.has_overlay("ipv6") else None
        if g_ip6 is not None and g_ip6.has_node(phy_node):
            device.loopback_v6 = g_ip6.node(phy_node).loopback
        if device.device_type == "router" and device.loopback is not None:
            loopback = device.add_interface(
                id=self.loopback_name(),
                category="loopback",
                description="loopback",
                ip_address=device.loopback,
                prefixlen=32,
                subnet="%s/32" % device.loopback,
            )
            if device.loopback_v6 is not None:
                loopback.ipv6_address = device.loopback_v6
                loopback.ipv6_prefixlen = 128
                loopback.ipv6_subnet = "%s/128" % device.loopback_v6
        g_ospf = self.anm["ospf"] if self.anm.has_overlay("ospf") else None
        edges = sorted(
            g_phy.node(phy_node).edges(),
            key=lambda edge: str(edge.other_end(phy_node).node_id),
        )
        for edge in edges:
            neighbor = edge.other_end(phy_node)
            domain = domain_between(g_ip, phy_node.node_id, neighbor.node_id)
            if domain is None:
                continue
            try:
                address, prefixlen = interface_address(g_ip, phy_node.node_id, domain)
            except Exception:
                continue
            ospf_cost, area = self._igp_parameters(g_ospf, phy_node, neighbor)
            interface = device.add_interface(
                id=next(names),
                category="physical",
                description="%s to %s" % (phy_node.node_id, neighbor.node_id),
                ip_address=address,
                prefixlen=prefixlen,
                subnet=str(domain.subnet),
                collision_domain=str(domain.node_id),
                neighbor=neighbor.node_id,
                ospf_cost=ospf_cost,
                area=area,
                igp_active=(domain.asn == phy_node.asn),
            )
            if g_ip6 is not None and g_ip6.has_node(phy_node):
                domain_v6 = domain_between(g_ip6, phy_node.node_id, neighbor.node_id)
                if domain_v6 is not None:
                    address_v6, prefixlen_v6 = interface_address(
                        g_ip6, phy_node.node_id, domain_v6
                    )
                    interface.ipv6_address = address_v6
                    interface.ipv6_prefixlen = prefixlen_v6
                    interface.ipv6_subnet = str(domain_v6.subnet)

    def _igp_parameters(self, g_ospf, phy_node, neighbor):
        if g_ospf is None or not g_ospf.has_node(phy_node):
            return 1, 0
        if g_ospf.has_node(neighbor) and g_ospf.has_edge(phy_node, neighbor):
            edge = g_ospf.edge(phy_node, neighbor)
            return edge.ospf_cost or 1, edge.area if edge.area is not None else 0
        node = g_ospf.node(phy_node)
        return 1, node.area if node.area is not None else 0

    def _add_links(self, machines, g_phy, g_ip) -> None:
        for phy_node in machines:
            for edge in g_phy.node(phy_node).edges():
                neighbor = edge.other_end(phy_node)
                if str(neighbor.node_id) <= str(phy_node.node_id):
                    continue
                if not self.nidb.has_node(neighbor):
                    continue
                domain = domain_between(g_ip, phy_node.node_id, neighbor.node_id)
                self.nidb.add_link(
                    phy_node.node_id,
                    neighbor.node_id,
                    collision_domain=str(domain.node_id) if domain else None,
                )


def collision_domain_members(anm: AbstractNetworkModel) -> dict[str, list[tuple]]:
    """Mapping of collision-domain id to [(device id, interface ip)].

    Platform compilers use this to emit the machine-to-segment wiring
    (for example Netkit's ``lab.conf``).
    """
    g_ip = anm["ipv4"]
    members: dict[str, list[tuple]] = {}
    for node in g_ip:
        if not node.collision_domain:
            continue
        attached = sorted(node.neighbors(), key=lambda device: str(device.node_id))
        members[str(node.node_id)] = [
            (device.node_id, interface_address(g_ip, device.node_id, node)[0])
            for device in attached
        ]
    return members
