"""Device compiler base classes (§5.4).

"The generic router compiler consists of base functions: compile(),
ospf(), interfaces().  These can be overwritten in the inherited device
compilers, extended by calling the super() module, or added to for new
overlays."

The platform compiler (see ``platform_base``) creates the NIDB devices
and allocates their interfaces (names are platform semantics); the
device compiler then condenses the protocol overlays into the nested
stanzas the templates consume: ``ospf``, ``bgp``, ``isis``, ``dns``,
``rpki``.
"""

from __future__ import annotations


from repro.anm import AbstractNetworkModel
from repro.design.ip_addressing import domain_between, interface_address
from repro.exceptions import CompilerError
from repro.nidb import DeviceModel, Nidb

DEFAULT_ZEBRA_PASSWORD = "1234"


class DeviceCompiler:
    """Base for all device compilers: wiring plus no-op protocol hooks."""

    syntax = "base"

    def __init__(self, anm: AbstractNetworkModel, nidb: Nidb):
        self.anm = anm
        self.nidb = nidb

    # Convenience overlay handles (absent overlays read as None).
    def overlay(self, overlay_id: str):
        if self.anm.has_overlay(overlay_id):
            return self.anm[overlay_id]
        return None

    def compile(self, phy_node, device: DeviceModel) -> None:
        raise NotImplementedError


class RouterCompiler(DeviceCompiler):
    """The generic router compiler (§5.4)."""

    syntax = "generic"

    def compile(self, phy_node, device: DeviceModel) -> None:
        """Condense every routing/service overlay into device stanzas."""
        self.system(phy_node, device)
        self.ospf(phy_node, device)
        self.isis(phy_node, device)
        self.bgp(phy_node, device)
        self.dns(phy_node, device)
        self.rpki_client(phy_node, device)

    # -- base functions ----------------------------------------------------
    def system(self, phy_node, device: DeviceModel) -> None:
        device.zebra = {
            "hostname": device.hostname,
            "password": DEFAULT_ZEBRA_PASSWORD,
        }

    def ospf(self, phy_node, device: DeviceModel) -> None:
        g_ospf = self.overlay("ospf")
        if g_ospf is None or not g_ospf.has_node(phy_node):
            return
        ospf_node = g_ospf.node(phy_node)
        if not ospf_node.edges():
            return
        links = []
        for interface in device.physical_interfaces():
            if not interface.igp_active:
                continue
            links.append(
                {
                    "network": interface.subnet,
                    "area": interface.area if interface.area is not None else 0,
                    "cost": interface.ospf_cost or 1,
                    "interface": interface.id,
                }
            )
        loopback = device.loopback_interface()
        if loopback is not None:
            links.append(
                {
                    # The loopback sits in the router's home area, so a
                    # pure area-N internal router stays out of area 0.
                    "network": "%s/32" % loopback.ip_address,
                    "area": ospf_node.area if ospf_node.area is not None else 0,
                    "cost": 1,
                    "interface": loopback.id,
                }
            )
        device.ospf = {
            "process_id": ospf_node.process_id or 1,
            "router_id": str(device.loopback),
            "ospf_links": links,
        }

    def isis(self, phy_node, device: DeviceModel) -> None:
        # The "15 lines in the compiler" of §7: condense the isis
        # overlay node and its interfaces into a device stanza.
        g_isis = self.overlay("isis")
        if g_isis is None or not g_isis.has_node(phy_node):
            return
        isis_node = g_isis.node(phy_node)
        if not isis_node.edges():
            return
        metric_by_neighbor = {
            edge.other_end(isis_node).node_id: edge.isis_metric for edge in isis_node.edges()
        }
        interfaces = [
            {"id": i.id, "metric": metric_by_neighbor.get(i.neighbor, 10)}
            for i in device.physical_interfaces()
            if i.igp_active
        ]
        device.isis = {
            "process_id": isis_node.isis_process_id or 1,
            "net": "%s.%s.00" % (isis_node.isis_area, isis_node.isis_system_id),
            "interfaces": interfaces,
        }

    def bgp(self, phy_node, device: DeviceModel) -> None:
        g_ebgp = self.overlay("ebgp")
        g_ibgp = self.overlay("ibgp")
        g_ip = self.overlay("ipv4")
        ebgp_neighbors = self._ebgp_neighbors(phy_node, device, g_ebgp, g_ip)
        ibgp_neighbors = self._ibgp_neighbors(phy_node, device, g_ibgp, g_ip)
        networks = list(phy_node.prefixes or [])
        if not (ebgp_neighbors or ibgp_neighbors or networks):
            return
        # BGP speakers originate their AS's allocated blocks so other
        # ASes learn how to reach the infrastructure and loopbacks.
        if (ebgp_neighbors or ibgp_neighbors) and g_ip is not None:
            for blocks_name in ("infra_blocks", "loopback_blocks"):
                blocks = g_ip.data.get(blocks_name) or {}
                block = blocks.get(device.asn)
                if block is not None and str(block) not in networks:
                    networks.append(str(block))
        device.bgp = {
            "asn": device.asn,
            "router_id": str(device.loopback),
            "networks": networks,
            "ebgp_neighbors": ebgp_neighbors,
            "ibgp_neighbors": ibgp_neighbors,
        }

    def _ebgp_neighbors(self, phy_node, device, g_ebgp, g_ip) -> list[dict]:
        if g_ebgp is None or g_ip is None or not g_ebgp.has_node(phy_node):
            return []
        neighbors = []
        raw = g_ebgp._graph
        for _, neighbor_id, data in sorted(
            raw.out_edges(phy_node.node_id, data=True), key=lambda item: str(item[1])
        ):
            domain = domain_between(g_ip, phy_node.node_id, neighbor_id)
            if domain is None:
                raise CompilerError(
                    "no collision domain between eBGP peers %s and %s"
                    % (phy_node.node_id, neighbor_id)
                )
            neighbor_ip, _ = interface_address(g_ip, neighbor_id, domain)
            neighbor_phy = self.anm["phy"].node(neighbor_id)
            neighbor_loopback = g_ip.node(neighbor_id).loopback
            neighbors.append(
                {
                    "neighbor": str(neighbor_id),
                    "neighbor_ip": str(neighbor_ip),
                    "neighbor_loopback": str(neighbor_loopback) if neighbor_loopback else None,
                    "remote_asn": neighbor_phy.asn,
                    "description": "eBGP to %s (AS %s)" % (neighbor_id, neighbor_phy.asn),
                    "is_ebgp": True,
                    "local_pref": data.get("local_pref"),
                    "med": data.get("med"),
                    "as_path_prepend": data.get("as_path_prepend"),
                    "community": data.get("community"),
                    "deny_prefixes_out": list(data.get("deny_prefixes_out") or []),
                    "deny_prefixes_in": list(data.get("deny_prefixes_in") or []),
                }
            )
        return neighbors

    def _ibgp_neighbors(self, phy_node, device, g_ibgp, g_ip) -> list[dict]:
        if g_ibgp is None or g_ip is None or not g_ibgp.has_node(phy_node):
            return []
        node = g_ibgp.node(phy_node)
        neighbors = []
        raw = g_ibgp._graph
        for _, neighbor_id, data in sorted(
            raw.out_edges(phy_node.node_id, data=True), key=lambda item: str(item[1])
        ):
            neighbor_loopback = g_ip.node(neighbor_id).loopback
            if neighbor_loopback is None:
                raise CompilerError(
                    "iBGP neighbor %s has no loopback allocated" % (neighbor_id,)
                )
            neighbors.append(
                {
                    "neighbor": str(neighbor_id),
                    "neighbor_ip": str(neighbor_loopback),
                    "neighbor_loopback": str(neighbor_loopback),
                    "remote_asn": device.asn,
                    "description": "iBGP to %s" % (neighbor_id,),
                    "is_ebgp": False,
                    "update_source": "lo0",
                    # next-hop-self defaults on: iBGP-learned external
                    # routes must have an IGP-resolvable next hop, and
                    # inter-AS link subnets are not in the IGP.
                    "next_hop_self": (
                        True
                        if phy_node.bgp_next_hop_self is None
                        else bool(phy_node.bgp_next_hop_self)
                    ),
                    "rr_client": data.get("session_type") == "down",
                    "session_type": data.get("session_type", "peer"),
                    "cluster_id": phy_node.rr_cluster if phy_node.rr else None,
                }
            )
        return neighbors

    def dns(self, phy_node, device: DeviceModel) -> None:
        g_dns = self.overlay("dns")
        g_ip = self.overlay("ipv4")
        if g_dns is None or g_ip is None or not g_dns.has_node(phy_node):
            return
        dns_node = g_dns.node(phy_node)
        server = self._dns_server_of(dns_node)
        if server is None:
            return
        resolver_ip = self._primary_address(server.node_id, g_ip)
        device.dns_client = {
            "resolver": str(resolver_ip),
            "domain": dns_node.zone,
        }
        if not dns_node.dns_server:
            return
        members = [dns_node] + [
            edge.dst for edge in g_dns.edges(type="dns_client") if edge.src == dns_node
        ]
        records = []
        for member in sorted(members, key=lambda n: str(n.node_id)):
            address = self._primary_address(member.node_id, g_ip)
            if address is not None:
                records.append({"name": str(member.node_id), "ip": str(address)})
        reverse_records = [
            {
                "ptr": _reverse_name(record["ip"]),
                "name": "%s.%s." % (record["name"], dns_node.zone),
            }
            for record in records
        ]
        device.dns = {
            "zone": dns_node.zone,
            "records": records,
            "reverse_records": reverse_records,
        }

    def rpki_client(self, phy_node, device: DeviceModel) -> None:
        g_rpki = self.overlay("rpki")
        if g_rpki is None or not g_rpki.has_node(phy_node):
            return
        rpki_node = g_rpki.node(phy_node)
        caches = [
            str(edge.dst.node_id)
            for edge in g_rpki.edges(type="rtr_feed")
            if edge.src == rpki_node
        ]
        if caches:
            device.rpki = {"role": "rtr_client", "cache": caches[0]}

    def _dns_server_of(self, dns_node):
        if dns_node.dns_server:
            return dns_node
        for edge in dns_node.edges(type="dns_client"):
            if edge.dst == dns_node:
                return edge.src
        return None

    def _primary_address(self, node_id, g_ip):
        node = g_ip.node(node_id)
        if node.loopback is not None:
            return node.loopback
        for domain in node.neighbors():
            if domain.collision_domain:
                address, _ = interface_address(g_ip, node_id, domain)
                return address
        return None


class ServerCompiler(DeviceCompiler):
    """Compiler for server devices: addressing, resolver, and services."""

    syntax = "linux"

    def compile(self, phy_node, device: DeviceModel) -> None:
        self.dns_client(phy_node, device)
        self.rpki(phy_node, device)

    def dns_client(self, phy_node, device: DeviceModel) -> None:
        RouterCompiler.dns(self, phy_node, device)  # reuse record logic

    # RouterCompiler.dns needs these two helpers; share them.
    _dns_server_of = RouterCompiler._dns_server_of
    _primary_address = RouterCompiler._primary_address

    def rpki(self, phy_node, device: DeviceModel) -> None:
        g_rpki = self.overlay("rpki")
        if g_rpki is None or not g_rpki.has_node(phy_node):
            return
        rpki_node = g_rpki.node(phy_node)
        service = rpki_node.service
        if service == "rpki_ca":
            publishes_to = [
                str(edge.dst.node_id)
                for edge in g_rpki.edges(type="publishes_to")
                if edge.src == rpki_node
            ]
            parent = [
                str(edge.dst.node_id)
                for edge in g_rpki.edges(type="ca_parent")
                if edge.src == rpki_node
            ]
            device.rpki = {
                "role": "ca",
                "is_root": bool(rpki_node.ca_root),
                "parent": parent[0] if parent else None,
                "resources": list(rpki_node.resources or []),
                "roas": [dict(roa) for roa in (rpki_node.roas or [])],
                "publication_point": publishes_to[0] if publishes_to else None,
            }
        elif service == "rpki_publication":
            publishers = [
                str(edge.src.node_id)
                for edge in g_rpki.edges(type="publishes_to")
                if edge.dst == rpki_node
            ]
            device.rpki = {"role": "publication", "publishers": sorted(publishers)}
        elif service == "rpki_cache":
            fetches = [
                str(edge.dst.node_id)
                for edge in g_rpki.edges(type="fetches_from")
                if edge.src == rpki_node
            ]
            clients = [
                str(edge.src.node_id)
                for edge in g_rpki.edges(type="rtr_feed")
                if edge.dst == rpki_node
            ]
            device.rpki = {
                "role": "cache",
                "fetches_from": fetches[0] if fetches else None,
                "rtr_clients": sorted(clients),
            }


def _reverse_name(ip: str) -> str:
    """PTR owner name for an IPv4 address: d.c.b.a.in-addr.arpa."""
    octets = str(ip).split(".")
    return ".".join(reversed(octets)) + ".in-addr.arpa."
