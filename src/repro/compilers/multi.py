"""Multi-host / multi-platform compilation (§5.4).

"Cross-emulation platform connections can be realised using our
querying language, by selecting links which traverse two target hosts,
or target emulation platforms on the same host ...  The appropriate
cross-machine connections, such as GRE tunnels between distributed
Open vSwitches, can be created from the resulting edge sets.  The
result is that emulations written on different platforms or real
hardware can be connected."

Devices carry ``host`` and ``platform`` attributes; this module splits
a designed ANM into one NIDB per (host, platform) pair and derives the
GRE tunnel set for every link whose endpoints land in different labs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.anm import AbstractNetworkModel
from repro.design.ip_addressing import domain_between
from repro.exceptions import CompilerError
from repro.nidb import Nidb


@dataclass
class CrossHostLink:
    """One physical link whose endpoints live in different labs."""

    src: str
    dst: str
    src_target: tuple[str, str]  # (host, platform)
    dst_target: tuple[str, str]
    collision_domain: str | None


@dataclass
class MultiCompileResult:
    """One NIDB per (host, platform) target plus the tunnel set."""

    nidbs: dict[tuple[str, str], Nidb] = field(default_factory=dict)
    cross_links: list[CrossHostLink] = field(default_factory=list)

    def targets(self) -> list[tuple[str, str]]:
        return sorted(self.nidbs)

    def nidb(self, host: str, platform: str) -> Nidb:
        try:
            return self.nidbs[(host, platform)]
        except KeyError:
            raise CompilerError(
                "no compiled lab for host %r platform %r" % (host, platform)
            ) from None


def device_targets(anm: AbstractNetworkModel) -> dict[tuple[str, str], list]:
    """Group the machines of the physical overlay by (host, platform)."""
    from repro.compilers.platform_base import MACHINE_TYPES

    groups: dict[tuple[str, str], list] = {}
    for node in anm["phy"]:
        if node.get("device_type") not in MACHINE_TYPES:
            continue
        target = (node.get("host") or "localhost", node.get("platform") or "netkit")
        groups.setdefault(target, []).append(node)
    return groups


def cross_host_links(anm: AbstractNetworkModel) -> list[CrossHostLink]:
    """The §5.4 edge-set query: links traversing two targets."""
    g_phy = anm["phy"]
    g_ip = anm["ipv4"] if anm.has_overlay("ipv4") else None
    links = []
    for edge in g_phy.edges():
        src, dst = edge.src, edge.dst
        src_target = (src.get("host") or "localhost", src.get("platform") or "netkit")
        dst_target = (dst.get("host") or "localhost", dst.get("platform") or "netkit")
        if src_target == dst_target:
            continue
        domain = None
        if g_ip is not None:
            found = domain_between(g_ip, src.node_id, dst.node_id)
            domain = str(found.node_id) if found is not None else None
        links.append(
            CrossHostLink(
                src=str(src.node_id),
                dst=str(dst.node_id),
                src_target=src_target,
                dst_target=dst_target,
                collision_domain=domain,
            )
        )
    return links


def compile_multi(anm: AbstractNetworkModel) -> MultiCompileResult:
    """Compile one NIDB per (host, platform) and wire the tunnels."""
    from repro.compilers import PLATFORM_COMPILERS  # deferred: avoids cycle

    result = MultiCompileResult()
    groups = device_targets(anm)
    if not groups:
        raise CompilerError("no machines to compile")

    for (host, platform), members in sorted(groups.items()):
        compiler_cls = PLATFORM_COMPILERS.get(platform)
        if compiler_cls is None:
            raise CompilerError("unknown platform %r on host %r" % (platform, host))
        compiler = compiler_cls(anm, host=host)
        member_ids = {str(node.node_id) for node in members}
        nidb = compiler.compile(only=member_ids)
        result.nidbs[(host, platform)] = nidb

    result.cross_links = cross_host_links(anm)
    for link in result.cross_links:
        for local, remote, local_target, remote_target in (
            (link.src, link.dst, link.src_target, link.dst_target),
            (link.dst, link.src, link.dst_target, link.src_target),
        ):
            nidb = result.nidbs[local_target]
            tunnels = nidb.topology.tunnels or []
            tunnels.append(
                {
                    "local_device": local,
                    "remote_device": remote,
                    "remote_host": remote_target[0],
                    "remote_platform": remote_target[1],
                    "collision_domain": link.collision_domain,
                }
            )
            nidb.topology.tunnels = tunnels
            render = nidb.topology.render
            if render is not None and not any(
                (entry.path if not isinstance(entry, dict) else entry["path"])
                == "tunnels.sh"
                for entry in (render.files or [])
            ):
                render.files.append(
                    {"template": "netkit/tunnels.sh.j2", "path": "tunnels.sh"}
                )
    return result
