"""Platform and device compilers: overlays to device-level state (§5.4)."""

from repro.compilers.base import DeviceCompiler, RouterCompiler, ServerCompiler
from repro.compilers.cbgp_platform import CbgpPlatformCompiler
from repro.compilers.devices import CbgpCompiler, IosCompiler, JunosCompiler, QuaggaCompiler
from repro.compilers.dynagen import DynagenCompiler
from repro.compilers.junosphere import JunosphereCompiler
from repro.compilers.netkit import NetkitCompiler
from repro.compilers.platform_base import PlatformCompiler, collision_domain_members
from repro.compilers.multi import (
    CrossHostLink,
    MultiCompileResult,
    compile_multi,
    cross_host_links,
    device_targets,
)

#: Registry of platform compilers, keyed by platform name (§5.4).
PLATFORM_COMPILERS = {
    "netkit": NetkitCompiler,
    "dynagen": DynagenCompiler,
    "junosphere": JunosphereCompiler,
    "cbgp": CbgpPlatformCompiler,
}


def platform_compiler(platform: str, anm, host: str = "localhost") -> PlatformCompiler:
    """Instantiate the platform compiler registered under ``platform``."""
    from repro.exceptions import CompilerError

    try:
        compiler_cls = PLATFORM_COMPILERS[platform]
    except KeyError:
        raise CompilerError(
            "unknown platform %r (known: %s)" % (platform, ", ".join(sorted(PLATFORM_COMPILERS)))
        ) from None
    return compiler_cls(anm, host=host)


__all__ = [
    "CbgpCompiler",
    "CrossHostLink",
    "MultiCompileResult",
    "compile_multi",
    "cross_host_links",
    "device_targets",
    "CbgpPlatformCompiler",
    "DeviceCompiler",
    "DynagenCompiler",
    "IosCompiler",
    "JunosCompiler",
    "JunosphereCompiler",
    "NetkitCompiler",
    "PLATFORM_COMPILERS",
    "PlatformCompiler",
    "QuaggaCompiler",
    "RouterCompiler",
    "ServerCompiler",
    "collision_domain_members",
    "platform_compiler",
]
