"""Dynagen platform compiler (§5.4).

Dynagen drives Cisco 7200 images under Dynamips.  The compiler emits a
``lab.net`` topology file wiring router interfaces together, plus one
IOS configuration per router under ``configs/``.  Interface names use
the IOS slot/port convention (f0/0, f0/1, ...).
"""

from __future__ import annotations

from typing import Iterator

from repro.compilers.devices import IosCompiler
from repro.compilers.platform_base import PlatformCompiler
from repro.nidb import DeviceModel


class DynagenCompiler(PlatformCompiler):
    platform = "dynagen"
    default_syntax = "ios"

    def syntax_compilers(self) -> dict[str, type]:
        return {"ios": IosCompiler}

    def interface_names(self) -> Iterator[str]:
        slot = 0
        while True:
            for port in range(2):
                yield "f%d/%d" % (slot, port)
            slot += 1

    def loopback_name(self) -> str:
        return "Loopback0"

    def render_device(self, device: DeviceModel) -> None:
        device.render = {
            "base": "templates/ios",
            "dst_folder": "%s/%s" % (device.host, self.platform),
            "files": [
                {
                    "template": "ios/router.conf.j2",
                    "path": "configs/%s.cfg" % device.hostname,
                }
            ],
        }

    def render_topology(self) -> None:
        # lab.net needs both ends of every link with interface names.
        links = []
        for src_device, dst_device, data in self.nidb.links():
            domain = data.get("collision_domain")
            src_int = _interface_on(src_device, domain)
            dst_int = _interface_on(dst_device, domain)
            if src_int is None or dst_int is None:
                continue
            links.append(
                {
                    "src": src_device.hostname,
                    "src_interface": src_int.id,
                    "dst": dst_device.hostname,
                    "dst_interface": dst_int.id,
                }
            )
        self.nidb.topology.links = links
        self.nidb.topology.render = {
            "files": [{"template": "dynagen/lab.net.j2", "path": "lab.net"}],
        }


def _interface_on(device: DeviceModel, domain: str | None):
    if domain is None:
        return None
    for interface in device.physical_interfaces():
        if interface.collision_domain == domain:
            return interface
    return None
