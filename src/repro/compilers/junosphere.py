"""Junosphere platform compiler (§5.4).

Junosphere runs JunOS VMs from a ``topology.vmm`` description plus one
JunOS configuration per router.  Interface names use the gigabit
convention ge-0/0/N.
"""

from __future__ import annotations

from typing import Iterator

from repro.compilers.devices import JunosCompiler
from repro.compilers.platform_base import PlatformCompiler
from repro.nidb import DeviceModel


class JunosphereCompiler(PlatformCompiler):
    platform = "junosphere"
    default_syntax = "junos"

    def syntax_compilers(self) -> dict[str, type]:
        return {"junos": JunosCompiler}

    def interface_names(self) -> Iterator[str]:
        port = 0
        while True:
            yield "ge-0/0/%d" % port
            port += 1

    def loopback_name(self) -> str:
        return "lo0"

    def render_device(self, device: DeviceModel) -> None:
        device.render = {
            "base": "templates/junos",
            "dst_folder": "%s/%s" % (device.host, self.platform),
            "files": [
                {
                    "template": "junos/router.conf.j2",
                    "path": "configs/%s.conf" % device.hostname,
                }
            ],
        }

    def render_topology(self) -> None:
        self.nidb.topology.render = {
            "files": [{"template": "junosphere/topology.vmm.j2", "path": "topology.vmm"}],
        }
