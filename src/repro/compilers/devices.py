"""Vendor device compilers: Quagga, IOS, JunOS, C-BGP (§5.4).

Vendor *syntax* lives in the templates; these compilers only apply
device-specific semantics on top of the generic router compiler —
"device-specific operations, such as subnet formatting, to match the
semantics of the target device" (§4).  Most formatting is handled by
the renderer's filters (netmask/wildcard), so the subclasses stay
small, which is the paper's extensibility argument (§7.3).
"""

from __future__ import annotations

from repro.compilers.base import RouterCompiler
from repro.nidb import DeviceModel


class QuaggaCompiler(RouterCompiler):
    """Quagga routing suite: one daemon configuration file per protocol."""

    syntax = "quagga"


class IosCompiler(RouterCompiler):
    """Cisco IOS: one monolithic configuration per router."""

    syntax = "ios"

    def compile(self, phy_node, device: DeviceModel) -> None:
        super().compile(phy_node, device)
        # IOS carries OSPF costs on the interface stanzas and network
        # statements use wildcard masks; both are template concerns.
        # Loopback interfaces are named explicitly:
        loopback = device.loopback_interface()
        if loopback is not None:
            loopback.id = "Loopback0"


class JunosCompiler(RouterCompiler):
    """Juniper JunOS: hierarchical configuration."""

    syntax = "junos"

    def compile(self, phy_node, device: DeviceModel) -> None:
        super().compile(phy_node, device)
        loopback = device.loopback_interface()
        if loopback is not None:
            loopback.id = "lo0"


class CbgpCompiler(RouterCompiler):
    """C-BGP: whole-network script, per-device stanzas only feed it."""

    syntax = "cbgp"
